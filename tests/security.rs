//! Cross-crate security tests: the full attack matrix of paper §V-C
//! mounted against live stores (Aria-H, Aria-T, Aria w/o Cache and the
//! ShieldStore baseline), plus confidentiality checks on everything that
//! lands in untrusted memory.

use aria::prelude::*;
use std::sync::Arc;

fn enclave() -> Arc<Enclave> {
    Arc::new(Enclave::with_default_epc())
}

fn loaded_hash(keys: u64) -> AriaHash {
    let mut cfg = StoreConfig::for_keys(keys);
    cfg.cache = CacheConfig::with_capacity(8 << 20);
    let mut s = AriaHash::new(cfg, enclave()).unwrap();
    for i in 0..keys {
        s.put(&encode_key(i), format!("secret-{i:08}").as_bytes()).unwrap();
    }
    s
}

#[test]
fn tamper_any_of_many_entries_detected() {
    let mut s = loaded_hash(2000);
    for probe in [0u64, 17, 999, 1999] {
        let mut s2 = loaded_hash(2000);
        assert!(s2.attack_tamper_value(&encode_key(probe)));
        assert!(
            s2.get(&encode_key(probe)).unwrap_err().is_integrity_violation(),
            "tamper of key {probe} undetected"
        );
    }
    // The untouched store still works.
    assert!(s.get(&encode_key(0)).unwrap().is_some());
}

#[test]
fn replay_detected_even_after_cache_flush() {
    let mut s = loaded_hash(500);
    let key = encode_key(7);
    let snap = s.attack_snapshot(&key).unwrap();
    s.put(&key, b"secret-REPLACED").unwrap(); // same length: in-place
                                              // Flush the Secure Cache so nothing shields the untrusted state.
    s.core_mut().counters.as_cached_mut().unwrap().flush();
    assert!(s.attack_replay(&snap));
    assert!(s.get(&key).unwrap_err().is_integrity_violation());
}

#[test]
fn values_never_appear_in_untrusted_memory() {
    // Scan the raw untrusted bytes of a loaded store for plaintext.
    let mut cfg = StoreConfig::for_keys(256);
    cfg.cache = CacheConfig::with_capacity(1 << 20);
    let mut s = AriaHash::new(cfg, enclave()).unwrap();
    let needle = b"EXTREMELY-SECRET-PLAINTEXT-VALUE";
    for i in 0..256u64 {
        s.put(&encode_key(i), needle).unwrap();
    }
    for i in 0..256u64 {
        let ptr = s.attack_locate(&encode_key(i)).expect("entry exists");
        let bytes = s.core().heap.read(ptr, 128).unwrap().to_vec();
        assert!(
            !bytes.windows(needle.len()).any(|w| w == needle),
            "plaintext value leaked into untrusted memory"
        );
        // The key must not leak either.
        let key = encode_key(i);
        assert!(
            !bytes.windows(key.len()).any(|w| w == key),
            "plaintext key leaked into untrusted memory"
        );
    }
}

#[test]
fn shieldstore_attack_matrix() {
    let mut s = ShieldStore::new(64, enclave()).unwrap();
    for i in 0..500u64 {
        s.put(&encode_key(i), format!("shield-{i:06}").as_bytes()).unwrap();
    }
    // Tamper.
    assert!(s.attack_tamper_value(&encode_key(3)));
    assert!(s.get(&encode_key(3)).is_err());
    // Full replay (entry + counter + MAC): caught by the bucket root.
    let mut s = ShieldStore::new(64, enclave()).unwrap();
    for i in 0..500u64 {
        s.put(&encode_key(i), format!("shield-{i:06}").as_bytes()).unwrap();
    }
    let snap = s.attack_snapshot(&encode_key(9)).unwrap();
    // Same value length: the entry is re-sealed in place, so the replay
    // lands on the live block.
    s.put(&encode_key(9), b"SHIELD-000009").unwrap();
    assert!(s.attack_replay(&snap));
    assert!(s.get(&encode_key(9)).is_err());
}

#[test]
fn counter_tamper_detected_through_merkle_tree() {
    let mut s = loaded_hash(4000);
    // Flush so counters live (only) in untrusted memory, then corrupt a
    // counter leaf directly.
    s.core_mut().counters.as_cached_mut().unwrap().flush();
    let area = s.core_mut().counters.as_cached_mut().unwrap();
    let (leaf, _) = area.cache(0).tree().locate_counter(123);
    area.cache_mut(0).tree_mut_raw().node_mut_raw(leaf)[7] ^= 0x80;
    // Some key owns counter 123; scanning a range must surface the
    // violation (counter ids are assigned in load order).
    let err = s.get(&encode_key(123)).unwrap_err();
    assert!(err.is_integrity_violation());
}

#[test]
fn without_cache_counters_are_tamper_proof() {
    // In the w/o-cache scheme counters live inside the enclave: the
    // attack surface is only entries + MACs, and both are covered.
    let mut cfg = StoreConfig::for_keys(1000);
    cfg.scheme = Scheme::AriaWithoutCache;
    let mut s = AriaHash::new(cfg, enclave()).unwrap();
    for i in 0..1000u64 {
        s.put(&encode_key(i), b"epc-counter-protected").unwrap();
    }
    let snap = s.attack_snapshot(&encode_key(50)).unwrap();
    s.put(&encode_key(50), b"epc-counter-refreshed").unwrap();
    assert!(s.attack_replay(&snap));
    assert!(s.get(&encode_key(50)).unwrap_err().is_integrity_violation());
}

#[test]
fn tree_index_attack_matrix() {
    let mut cfg = StoreConfig::for_keys(5000);
    cfg.btree_order = 7;
    cfg.cache = CacheConfig::with_capacity(8 << 20);
    let mut t = AriaTree::new(cfg, enclave()).unwrap();
    for i in 0..2000u64 {
        t.put(&encode_key(i), b"tree-secret").unwrap();
    }
    assert!(t.attack_swap_child_pointers());
    let detected =
        (0..2000u64).any(|i| matches!(t.get(&encode_key(i)), Err(e) if e.is_integrity_violation()));
    assert!(detected, "tree pointer swap undetected");

    let mut cfg = StoreConfig::for_keys(5000);
    cfg.btree_order = 7;
    cfg.cache = CacheConfig::with_capacity(8 << 20);
    let mut t = AriaTree::new(cfg, enclave()).unwrap();
    for i in 0..500u64 {
        t.put(&encode_key(i), b"tree-secret").unwrap();
    }
    assert!(t.attack_truncate_root());
    let detected =
        (0..500u64).any(|i| matches!(t.get(&encode_key(i)), Err(e) if e.is_integrity_violation()));
    assert!(detected, "root truncation undetected");
}

#[test]
fn violations_are_reported_not_panics() {
    // A violently corrupted store keeps returning Err, never panicking
    // or returning wrong data.
    let mut s = loaded_hash(200);
    for i in 0..200u64 {
        s.attack_tamper_value(&encode_key(i));
    }
    for i in 0..200u64 {
        match s.get(&encode_key(i)) {
            Err(e) => assert!(e.is_integrity_violation()),
            Ok(v) => panic!("corrupted key {i} served: {v:?}"),
        }
    }
}
