//! End-to-end overload-control tests over the real TCP stack: deadline
//! shedding before execution, admission refusals with retry-after
//! hints while the control plane stays responsive (brownout), the
//! chaos-gated stuck-shard regression (stall → watchdog quarantine →
//! recovery → re-admission), and v1–v3 wire compatibility on both
//! engines.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use aria::chaos::{ChaosEngine, FaultPlan, FaultSite};
use aria::net::proto::{self, Decoded, Response};
use aria::prelude::*;

/// Fail fast (abort with a message) instead of letting a hung
/// connection thread stall the whole test job.
struct Watchdog(Arc<AtomicBool>);

fn watchdog(name: &'static str, limit: Duration) -> Watchdog {
    let armed = Arc::new(AtomicBool::new(true));
    let flag = Arc::clone(&armed);
    thread::spawn(move || {
        let start = std::time::Instant::now();
        while start.elapsed() < limit {
            thread::sleep(Duration::from_millis(50));
            if !flag.load(Ordering::SeqCst) {
                return;
            }
        }
        eprintln!("watchdog: test {name} exceeded {limit:?}; aborting");
        std::process::abort();
    });
    Watchdog(armed)
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.0.store(true, Ordering::SeqCst);
        self.0.store(false, Ordering::SeqCst);
    }
}

fn server_with(shards: usize, config: ServerConfig) -> (Arc<ShardedStore<AriaHash>>, AriaServer) {
    let store = Arc::new(
        ShardedStore::with_shards(shards, |_| {
            AriaHash::new(StoreConfig::for_keys(16_384), Arc::new(Enclave::with_default_epc()))
        })
        .unwrap(),
    );
    let server =
        AriaServer::bind("127.0.0.1:0", Arc::clone(&store), config).expect("bind loopback server");
    (store, server)
}

// --- raw-frame helpers (for exact version / deadline control) ------------

fn send_req(stream: &mut TcpStream, id: u64, req: &proto::Request, deadline_ns: u64, version: u16) {
    let mut out = Vec::new();
    proto::encode_request_versioned(&mut out, id, req, deadline_ns, version).expect("encode");
    stream.write_all(&out).expect("write frame");
}

fn read_resp(stream: &mut TcpStream, rbuf: &mut Vec<u8>, version: u16) -> (u64, Response) {
    loop {
        match proto::decode_response_versioned(rbuf, version).expect("typed decode") {
            Decoded::Frame(consumed, id, resp) => {
                rbuf.drain(..consumed);
                return (id, resp);
            }
            Decoded::Incomplete => {
                let mut chunk = [0u8; 4096];
                let n = stream.read(&mut chunk).expect("read");
                assert!(n > 0, "server closed mid-conversation");
                rbuf.extend_from_slice(&chunk[..n]);
            }
        }
    }
}

/// Open a raw connection and run the HELLO handshake offering
/// `version`; returns the negotiated version (= `version` for v1–v4
/// against this server).
fn raw_hello(addr: std::net::SocketAddr, version: u16) -> (TcpStream, Vec<u8>, u16) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut rbuf = Vec::new();
    send_req(
        &mut stream,
        1,
        &proto::Request::Hello { version, features: 0 },
        0,
        proto::BASE_PROTOCOL_VERSION,
    );
    let (id, resp) = read_resp(&mut stream, &mut rbuf, proto::BASE_PROTOCOL_VERSION);
    assert_eq!(id, 1);
    let negotiated = match resp {
        Response::HelloAck { version: v, .. } => v,
        other => panic!("want HelloAck, got {other:?}"),
    };
    assert_eq!(negotiated, version.min(proto::PROTOCOL_VERSION));
    (stream, rbuf, negotiated)
}

// --- deadline shedding ----------------------------------------------------

/// A data op whose client deadline already expired while buffered is
/// refused with `DeadlineExceeded` *before* execution — the write must
/// never be applied — while a no-deadline op in the same window runs.
#[test]
fn expired_deadline_sheds_before_execution_on_both_engines() {
    let _wd = watchdog("expired_deadline_sheds", Duration::from_secs(60));
    for engine in [Engine::Threads, Engine::Reactor] {
        let config = ServerConfig::builder().engine(engine).build().unwrap();
        let (store, server) = server_with(1, config);
        let (mut stream, mut rbuf, v4) = raw_hello(server.local_addr(), proto::PROTOCOL_VERSION);
        assert_eq!(v4, proto::PROTOCOL_VERSION);

        // One pipelined window: a normal put, then a put whose budget
        // (1 ns) has certainly lapsed by the time the server plans it.
        let mut out = Vec::new();
        proto::encode_request_versioned(
            &mut out,
            10,
            &proto::Request::Put { key: b"live".to_vec(), value: b"v".to_vec() },
            0, // no deadline
            v4,
        )
        .unwrap();
        proto::encode_request_versioned(
            &mut out,
            11,
            &proto::Request::Put { key: b"dead".to_vec(), value: b"v".to_vec() },
            1, // 1 ns: expired on arrival
            v4,
        )
        .unwrap();
        stream.write_all(&out).unwrap();

        let (id, resp) = read_resp(&mut stream, &mut rbuf, v4);
        assert_eq!(id, 10, "{engine:?}");
        assert!(matches!(resp, Response::PutOk), "{engine:?}: live op must run, got {resp:?}");
        let (id, resp) = read_resp(&mut stream, &mut rbuf, v4);
        assert_eq!(id, 11, "{engine:?}");
        match resp {
            Response::Error { code, retry_after_ms, .. } => {
                assert_eq!(code, ErrorCode::DeadlineExceeded, "{engine:?}");
                assert_eq!(retry_after_ms, 0, "{engine:?}: deadline refusals carry no hint");
            }
            other => panic!("{engine:?}: want DeadlineExceeded, got {other:?}"),
        }

        // Refused ≠ acknowledged ≠ applied: the shed write must not
        // exist, and the shed is visible in STATS.
        assert_eq!(store.get(b"dead").unwrap(), None, "{engine:?}: shed write was applied");
        assert_eq!(store.get(b"live").unwrap().unwrap(), b"v");
        send_req(&mut stream, 12, &proto::Request::Stats, 0, v4);
        let (_, resp) = read_resp(&mut stream, &mut rbuf, v4);
        match resp {
            Response::Stats(s) => {
                assert_eq!(s.ops_shed_deadline, 1, "{engine:?}: shed count in STATS")
            }
            other => panic!("want Stats, got {other:?}"),
        }
        drop(stream);
        server.shutdown();
    }
}

// --- admission control + brownout ----------------------------------------

/// With a queue-delay budget set, a backlogged shard refuses data ops
/// fast with `Overloaded` + a retry-after hint, while control-plane
/// ops (PING/HEALTH/STATS) keep answering — and STATS reports the
/// brownout (shed count, degraded flag).
#[test]
fn overload_refusal_hints_retry_and_control_plane_stays_responsive() {
    let _wd = watchdog("overload_refusal_hints_retry", Duration::from_secs(60));
    let config = ServerConfig::builder()
        .engine(Engine::Threads)
        .queue_delay_budget(Some(Duration::from_nanos(1)))
        .build()
        .unwrap();
    let (store, server) = server_with(1, config);
    let addr = server.local_addr();
    let no_retry = ClientConfig { retry_budget: 0, ..ClientConfig::default() };

    // Warm the per-op service-time EWMA so the queue-delay estimate is
    // nonzero once ops queue up.
    let mut control = AriaClient::connect(addr, no_retry.clone()).unwrap();
    for i in 0..32u32 {
        control.put(format!("warm{i}").as_bytes(), b"v").unwrap();
    }

    // Wedge the only shard's worker, then park a pipelined window of
    // writes behind the stall so the backlog estimate goes over budget.
    const STALL: Duration = Duration::from_millis(600);
    assert!(store.exec_detached(0, |_st| thread::sleep(STALL)));
    let stalled_at = Instant::now();
    let filler = thread::spawn(move || {
        let mut c = AriaClient::connect(addr, ClientConfig::default()).unwrap();
        let reqs: Vec<proto::Request> = (0..64u32)
            .map(|i| proto::Request::Put {
                key: format!("fill{i}").into_bytes(),
                value: b"v".to_vec(),
            })
            .collect();
        c.pipeline(&reqs).expect("queued window completes after the stall")
    });
    // The window is in the queue once the backlog estimate is visible.
    let deadline = Instant::now() + Duration::from_secs(5);
    while store.queue_delay_estimates()[0] == 0 {
        assert!(Instant::now() < deadline, "filler window never reached the queue");
        thread::sleep(Duration::from_millis(2));
    }

    // Data ops are refused fast, with a usable hint.
    let mut victim = AriaClient::connect(addr, no_retry).unwrap();
    let refused_at = Instant::now();
    let err = victim.put(b"refused", b"v").expect_err("over-budget shard must refuse");
    assert!(
        refused_at.elapsed() < Duration::from_millis(200),
        "refusal must be fast, took {:?}",
        refused_at.elapsed()
    );
    match &err {
        NetError::Server { code: ErrorCode::Overloaded, retry_after_ms, .. } => {
            assert!(*retry_after_ms >= 1, "refusal must carry a retry-after hint");
        }
        other => panic!("want Overloaded, got {other:?}"),
    }
    assert!(err.is_safe_to_retry(), "admission refusals are safe to re-issue");

    // Brownout: the control plane bypasses admission and still answers
    // while the data plane is refusing.
    control.ping().expect("PING must answer during brownout");
    let health = control.health().expect("HEALTH must answer during brownout");
    assert_eq!(health.shards.len(), 1);
    let stats = control.stats().expect("STATS must answer during brownout");
    assert!(stats.ops_shed_overload >= 1, "shed count must be surfaced");
    assert!(stats.degraded, "an over-budget shard must mark the server degraded");
    assert!(stalled_at.elapsed() < STALL, "all brownout checks must land inside the stall");

    // The refused write really was refused, and service recovers once
    // the backlog drains.
    let _ = filler.join().expect("filler thread must not panic");
    assert_eq!(store.get(b"refused").unwrap(), None, "refused ≠ applied");
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match victim.put(b"refused", b"v2") {
            Ok(()) => break,
            Err(e) => {
                assert!(Instant::now() < deadline, "service never recovered: {e}");
                thread::sleep(Duration::from_millis(10));
            }
        }
    }
    assert_eq!(store.get(b"refused").unwrap().unwrap(), b"v2");
    server.shutdown();
}

// --- chaos: stuck-shard watchdog ------------------------------------------

/// The `shard_stall` chaos site: a wedged primary that keeps accepting
/// work but retires nothing is quarantined by the watchdog, recovered,
/// and re-admitted — pinned end-to-end through HEALTH.
#[test]
fn chaos_shard_stall_quarantine_recovery_readmission() {
    let _wd = watchdog("chaos_shard_stall", Duration::from_secs(120));
    let config = ServerConfig::builder()
        .engine(Engine::Threads)
        .watchdog_window(Some(Duration::from_millis(60)))
        .build()
        .unwrap();
    let (store, server) = server_with(1, config);
    let addr = server.local_addr();

    // Gate the stall through the chaos engine like every other fault.
    let engine = ChaosEngine::new(
        FaultPlan::new(0xA11A).with_rate(FaultSite::ShardStall, 10_000).with_budget(1),
    );
    engine.arm(true);
    let _entropy = engine.try_inject(FaultSite::ShardStall).expect("armed site must fire");
    assert!(store.exec_detached(0, |_st| thread::sleep(Duration::from_millis(400))));

    // Work keeps arriving during the stall: the shard is accepting but
    // not retiring — exactly what the watchdog quarantines.
    let blocked = thread::spawn(move || {
        let mut c = AriaClient::connect(addr, ClientConfig::default()).unwrap();
        c.put(b"queued", b"v")
    });

    let mut health_client = AriaClient::connect(addr, ClientConfig::default()).unwrap();
    let state_of = |h: &proto::HealthReply| ShardHealth::from_u8(h.shards[0].state);
    // Quarantine must be observable through HEALTH while stalled.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let h = health_client.health().expect("HEALTH must answer during the stall");
        if state_of(&h) != ShardHealth::Healthy {
            break;
        }
        assert!(Instant::now() < deadline, "watchdog never quarantined the stalled shard");
        thread::sleep(Duration::from_millis(5));
    }
    // After the stall clears, recovery verifies the store and re-admits.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let h = health_client.health().expect("HEALTH must answer");
        if state_of(&h) == ShardHealth::Healthy {
            assert!(h.shards[0].recoveries >= 1, "re-admission must count as a recovery");
            break;
        }
        assert!(Instant::now() < deadline, "stalled shard was never re-admitted");
        thread::sleep(Duration::from_millis(10));
    }
    let _ = blocked.join().expect("queued writer must not hang or panic");

    // Re-admitted means serving again (ride out any tail refusals).
    let mut client = AriaClient::connect(
        addr,
        ClientConfig {
            retry_budget: 32,
            op_deadline: Duration::from_secs(10),
            ..ClientConfig::default()
        },
    )
    .unwrap();
    client.put(b"after", b"v").expect("re-admitted shard must serve");
    assert_eq!(client.get(b"after").unwrap().unwrap(), b"v");
    assert_eq!(engine.stats().site(FaultSite::ShardStall).injected, 1);
    server.shutdown();
}

// --- cross-version compatibility ------------------------------------------

/// v1–v3 peers (and pre-HELLO base peers) still parse every response
/// on both engines: the v4 deadline/retry-after fields are strictly
/// version-gated.
#[test]
fn old_protocol_peers_parse_all_responses_on_both_engines() {
    let _wd = watchdog("old_protocol_peers", Duration::from_secs(60));
    for engine in [Engine::Threads, Engine::Reactor] {
        let config = ServerConfig::builder().engine(engine).build().unwrap();
        let (_store, server) = server_with(2, config);
        for version in 1..proto::PROTOCOL_VERSION {
            let (mut stream, mut rbuf, v) = raw_hello(server.local_addr(), version);
            assert_eq!(v, version, "{engine:?}: server must negotiate down to v{version}");
            let key = format!("k-{engine:?}-{version}").into_bytes();
            send_req(
                &mut stream,
                2,
                &proto::Request::Put { key: key.clone(), value: b"old".to_vec() },
                0,
                v,
            );
            let (_, resp) = read_resp(&mut stream, &mut rbuf, v);
            assert!(matches!(resp, Response::PutOk), "{engine:?} v{version}: got {resp:?}");
            send_req(&mut stream, 3, &proto::Request::Get { key }, 0, v);
            let (_, resp) = read_resp(&mut stream, &mut rbuf, v);
            match resp {
                Response::Value(Some(val)) => assert_eq!(val, b"old"),
                other => panic!("{engine:?} v{version}: want value, got {other:?}"),
            }
            send_req(&mut stream, 4, &proto::Request::Stats, 0, v);
            let (_, resp) = read_resp(&mut stream, &mut rbuf, v);
            match resp {
                Response::Stats(s) => {
                    assert_eq!(s.shards, 2, "{engine:?} v{version}");
                    // v4 fields are not on the pre-v4 wire: decode 0.
                    assert_eq!(s.ops_shed_overload, 0);
                    assert_eq!(s.queue_delay_ms, 0);
                    assert_eq!(s.slow_disconnects, 0);
                }
                other => panic!("{engine:?} v{version}: want stats, got {other:?}"),
            }
            send_req(&mut stream, 5, &proto::Request::Health, 0, v);
            let (_, resp) = read_resp(&mut stream, &mut rbuf, v);
            match resp {
                Response::Health(h) => assert_eq!(h.shards.len(), 2),
                other => panic!("{engine:?} v{version}: want health, got {other:?}"),
            }
        }
        server.shutdown();
    }
}
