//! End-to-end tests of the TCP service layer against the full stack:
//! ≥4 concurrent pipelined client connections over a 4-shard
//! `ShardedStore<AriaHash>` under zipfian key popularity, each checked
//! against a sequential model store, plus the mid-load server-kill path
//! (typed errors, never hangs).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use aria::net::proto;
use aria::prelude::*;
use aria::workload::ZipfianGenerator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fail fast (abort with a message) instead of letting a hung
/// connection thread stall the whole test job.
struct Watchdog(Arc<AtomicBool>);

fn watchdog(name: &'static str, limit: Duration) -> Watchdog {
    let armed = Arc::new(AtomicBool::new(true));
    let flag = Arc::clone(&armed);
    thread::spawn(move || {
        let start = std::time::Instant::now();
        while start.elapsed() < limit {
            thread::sleep(Duration::from_millis(50));
            if !flag.load(Ordering::SeqCst) {
                return;
            }
        }
        eprintln!("watchdog: test {name} exceeded {limit:?}; aborting");
        std::process::abort();
    });
    Watchdog(armed)
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.0.store(true, Ordering::SeqCst);
        self.0.store(false, Ordering::SeqCst);
    }
}

fn sharded_server(shards: usize, engine: Engine) -> (Arc<ShardedStore<AriaHash>>, AriaServer) {
    let store = Arc::new(
        ShardedStore::with_shards(shards, |_| {
            AriaHash::new(StoreConfig::for_keys(32_768), Arc::new(Enclave::with_default_epc()))
        })
        .unwrap(),
    );
    let config = ServerConfig::builder().engine(engine).build().expect("valid server config");
    let server =
        AriaServer::bind("127.0.0.1:0", Arc::clone(&store), config).expect("bind loopback server");
    (store, server)
}

/// The acceptance scenario: 4 shards, 6 pipelined client connections,
/// zipfian keys, every response checked against a per-client sequential
/// model (clients own disjoint id ranges, so each model is exact).
/// Run against both serving engines — the wire contract is identical.
#[test]
fn pipelined_clients_match_sequential_model_over_tcp_reactor() {
    pipelined_clients_match_sequential_model(Engine::Reactor);
}

#[test]
fn pipelined_clients_match_sequential_model_over_tcp_threads() {
    pipelined_clients_match_sequential_model(Engine::Threads);
}

fn pipelined_clients_match_sequential_model(engine: Engine) {
    const SHARDS: usize = 4;
    const CLIENTS: usize = 6;
    const WINDOWS_PER_CLIENT: usize = 120;
    const DEPTH: usize = 24;
    const IDS_PER_CLIENT: u64 = 2_000;

    let _wd = watchdog("pipelined_clients_match_sequential_model", Duration::from_secs(300));
    let (store, server) = sharded_server(SHARDS, engine);
    let addr = server.local_addr();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|client_id| {
            thread::spawn(move || {
                let mut client = AriaClient::connect(addr, ClientConfig::default()).unwrap();
                let base = client_id as u64 * IDS_PER_CLIENT;
                let zipf = ZipfianGenerator::new(IDS_PER_CLIENT, 0.99);
                let mut rng = StdRng::seed_from_u64(0xE2E + client_id as u64);
                let mut model: HashMap<u64, Vec<u8>> = HashMap::new();

                for window_no in 0..WINDOWS_PER_CLIENT {
                    // Build a pipelined window of mixed ops and the
                    // model's expected replies. The model is sequential:
                    // ops on the same key are ordered (same shard), and
                    // ops on distinct keys commute within a window
                    // because each id appears once per window at most —
                    // enforce that to keep the model exact.
                    let mut window = Vec::with_capacity(DEPTH);
                    let mut expected: Vec<proto::Response> = Vec::with_capacity(DEPTH);
                    let mut used = std::collections::HashSet::new();
                    while window.len() < DEPTH {
                        let id = base + zipf.next(&mut rng);
                        if !used.insert(id) {
                            continue;
                        }
                        let key = encode_key(id).to_vec();
                        match rng.gen_range(0..10u32) {
                            0..=5 => {
                                expected.push(proto::Response::Value(model.get(&id).cloned()));
                                window.push(proto::Request::Get { key });
                            }
                            6..=8 => {
                                let value = value_bytes(id ^ window_no as u64, 24);
                                model.insert(id, value.clone());
                                expected.push(proto::Response::PutOk);
                                window.push(proto::Request::Put { key, value });
                            }
                            _ => {
                                let existed = model.remove(&id).is_some();
                                expected.push(proto::Response::Deleted(existed));
                                window.push(proto::Request::Delete { key });
                            }
                        }
                    }
                    let responses = client
                        .pipeline(&window)
                        .unwrap_or_else(|e| panic!("client {client_id} window {window_no}: {e}"));
                    assert_eq!(
                        responses, expected,
                        "client {client_id} window {window_no} diverged from the model"
                    );
                }
                model.len() as u64
            })
        })
        .collect();

    let mut live = 0u64;
    for handle in handles {
        live += handle.join().expect("client thread");
    }
    // Every client's surviving keys — and nothing else — are in the store.
    assert_eq!(store.len(), live);
    let stats = store.stats();
    assert_eq!(stats.enclaves, SHARDS);
    server.shutdown();
    assert_eq!(store.len(), live, "shutdown must not disturb store state");
}

/// Killing the server mid-load: every client gets typed transport
/// errors quickly — no hang (watchdog-enforced) and no bogus success.
/// Run against both serving engines.
#[test]
fn killing_server_mid_load_yields_typed_errors_reactor() {
    killing_server_mid_load(Engine::Reactor);
}

#[test]
fn killing_server_mid_load_yields_typed_errors_threads() {
    killing_server_mid_load(Engine::Threads);
}

fn killing_server_mid_load(engine: Engine) {
    const CLIENTS: usize = 4;

    let _wd = watchdog("killing_server_mid_load", Duration::from_secs(120));
    let (_store, server) = sharded_server(4, engine);
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));

    let handles: Vec<_> = (0..CLIENTS)
        .map(|client_id| {
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut client = AriaClient::connect(
                    addr,
                    ClientConfig {
                        op_timeout: Duration::from_secs(2),
                        connect_timeout: Duration::from_millis(200),
                        reconnect_attempts: 2,
                        reconnect_backoff: Duration::from_millis(10),
                        ..ClientConfig::default()
                    },
                )
                .unwrap();
                let zipf = ZipfianGenerator::new(5_000, 0.99);
                let mut rng = StdRng::seed_from_u64(client_id as u64);
                let mut transport_errors = 0u64;
                let mut ok_before_kill = 0u64;
                while !stop.load(Ordering::SeqCst) || transport_errors == 0 {
                    let id = zipf.next(&mut rng);
                    let reqs: Vec<proto::Request> = (0..16)
                        .map(|i| proto::Request::Put {
                            key: encode_key(id + i).to_vec(),
                            value: value_bytes(id, 16),
                        })
                        .collect();
                    match client.pipeline(&reqs) {
                        Ok(_) => ok_before_kill += 1,
                        Err(e) => {
                            assert!(
                                e.is_transport(),
                                "client {client_id}: want typed transport error, got {e}"
                            );
                            transport_errors += 1;
                        }
                    }
                }
                (ok_before_kill, transport_errors)
            })
        })
        .collect();

    // Let the load build, then pull the plug underneath the clients.
    thread::sleep(Duration::from_millis(200));
    server.shutdown();
    stop.store(true, Ordering::SeqCst);

    for handle in handles {
        let (ok, errors) = handle.join().expect("client thread must exit, not hang");
        assert!(ok > 0, "no load reached the server before the kill");
        assert!(errors > 0, "the kill was never observed as a typed error");
    }
}
