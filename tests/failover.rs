//! End-to-end replication/failover test over the real TCP stack:
//! 6 pipelined client connections write through an `AriaServer` backed
//! by a primary+backup `ShardedStore<AriaHash>` while primaries are
//! killed mid-load. The acknowledged-write durability contract is
//! checked at three points: after the kill schedule's re-sync cycles,
//! immediately after a final promotion (while the rejoiner may still be
//! re-syncing), and after its verified re-admission.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use aria::prelude::*;
use aria::workload::encode_key;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fail fast (abort with a message) instead of letting a hung
/// connection thread stall the whole test job.
struct Watchdog(Arc<AtomicBool>);

fn watchdog(name: &'static str, limit: Duration) -> Watchdog {
    let armed = Arc::new(AtomicBool::new(true));
    let flag = Arc::clone(&armed);
    thread::spawn(move || {
        let start = std::time::Instant::now();
        while start.elapsed() < limit {
            thread::sleep(Duration::from_millis(50));
            if !flag.load(Ordering::SeqCst) {
                return;
            }
        }
        eprintln!("watchdog: test {name} exceeded {limit:?}; aborting");
        std::process::abort();
    });
    Watchdog(armed)
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.0.store(true, Ordering::SeqCst);
        self.0.store(false, Ordering::SeqCst);
    }
}

const GROUPS: usize = 2;
const REPLICAS: usize = 2;
const CLIENTS: usize = 6;
const KEYS_PER_CLIENT: u64 = 256;
const WINDOWS_PER_CLIENT: usize = 120;
const PIPELINE_DEPTH: usize = 8;

fn replicated_server() -> (Arc<ShardedStore<AriaHash>>, AriaServer) {
    let store = Arc::new(
        ShardedStore::with_replicas(GROUPS, REPLICAS, 64, |_| {
            AriaHash::new(StoreConfig::for_keys(16_384), Arc::new(Enclave::with_default_epc()))
        })
        .unwrap(),
    );
    let server = AriaServer::bind(
        "127.0.0.1:0",
        Arc::clone(&store),
        ServerConfig::builder().max_connections(CLIENTS + 4).build().expect("valid server config"),
    )
    .expect("bind loopback server");
    (store, server)
}

fn value_for(key_id: u64, version: u64) -> Vec<u8> {
    let mut v = vec![0u8; 16];
    v[..8].copy_from_slice(&key_id.to_le_bytes());
    v[8..].copy_from_slice(&version.to_le_bytes());
    v
}

fn decode_value(bytes: &[u8]) -> Option<(u64, u64)> {
    if bytes.len() != 16 {
        return None;
    }
    Some((
        u64::from_le_bytes(bytes[..8].try_into().ok()?),
        u64::from_le_bytes(bytes[8..].try_into().ok()?),
    ))
}

/// Versions a read of this key may legally return: the last acked write
/// plus any writes whose outcome is unknown (transport/refusal errors).
type Model = HashMap<u64, Vec<u64>>;

/// One pipelined client: windows of `PIPELINE_DEPTH` mixed get/put
/// requests over a disjoint key range, model-checked per response.
/// Returns (model, wrong_reads).
fn run_client(addr: std::net::SocketAddr, base: u64, seed: u64) -> (Model, u64) {
    let mut client = AriaClient::connect(
        addr,
        ClientConfig {
            retry_budget: 32,
            op_deadline: Duration::from_secs(15),
            ..ClientConfig::default()
        },
    )
    .expect("connect pipelined client");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model: Model = HashMap::new();
    let mut next_version: HashMap<u64, u64> = HashMap::new();
    let mut wrong = 0u64;

    for _ in 0..WINDOWS_PER_CLIENT {
        // Build one pipeline window.
        let mut reqs = Vec::with_capacity(PIPELINE_DEPTH);
        let mut plan = Vec::with_capacity(PIPELINE_DEPTH);
        for _ in 0..PIPELINE_DEPTH {
            let key_id = base + rng.gen_range(0..KEYS_PER_CLIENT);
            let key = encode_key(key_id).to_vec();
            if rng.gen_bool(0.5) {
                reqs.push(aria::net::proto::Request::Get { key });
                plan.push((key_id, None));
            } else {
                let v = next_version.entry(key_id).or_insert(1);
                let version = *v;
                *v += 1;
                reqs.push(aria::net::proto::Request::Put {
                    key,
                    value: value_for(key_id, version),
                });
                plan.push((key_id, Some(version)));
            }
        }
        match client.pipeline(&reqs) {
            Ok(responses) => {
                for ((key_id, put_version), resp) in plan.into_iter().zip(responses) {
                    let acceptable = model.entry(key_id).or_insert_with(|| vec![0]);
                    match (put_version, resp) {
                        (Some(v), aria::net::proto::Response::PutOk) => *acceptable = vec![v],
                        (Some(v), _) => acceptable.push(v), // refused or unknown
                        (None, aria::net::proto::Response::Value(Some(bytes))) => {
                            match decode_value(&bytes) {
                                Some((k, v)) if k == key_id && acceptable.contains(&v) => {
                                    *acceptable = vec![v];
                                }
                                _ => wrong += 1,
                            }
                        }
                        (None, aria::net::proto::Response::Value(None)) => {
                            // Keys start unwritten: absent is only legal
                            // while version 0 (never written) is live.
                            if !acceptable.contains(&0) {
                                wrong += 1;
                            }
                        }
                        (None, aria::net::proto::Response::Error { .. }) => {}
                        (None, _) => wrong += 1,
                    }
                }
            }
            Err(_) => {
                // Whole-window failure: every put in it is ambiguous.
                for (key_id, put_version) in plan {
                    if let Some(v) = put_version {
                        model.entry(key_id).or_insert_with(|| vec![0]).push(v);
                    }
                }
            }
        }
    }
    (model, wrong)
}

/// Kill the acting primary of `group` and return the failover count it
/// must exceed.
fn kill_primary(store: &ShardedStore<AriaHash>, group: usize) -> u64 {
    let stats = &store.group_stats()[group];
    assert!(
        stats.replicas.iter().all(|r| r.health == ShardHealth::Healthy),
        "kill only fully healthy groups: {stats:?}"
    );
    let before = stats.failovers;
    assert!(store.exec_detached_replica(group, stats.primary, |_st: &mut AriaHash| {
        panic!("failover test: injected primary kill")
    }));
    before
}

/// Drive reads until `pred` holds (a dead worker is only noticed when a
/// later op fails, so polling must generate traffic).
fn drive_until(
    client: &mut AriaClient,
    store: &ShardedStore<AriaHash>,
    what: &str,
    pred: impl Fn(&[GroupStats]) -> bool,
) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = store.group_stats();
        if pred(&stats) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}: {stats:?}");
        // A dead worker is only noticed when an op is routed to it, and
        // key→group hashing is opaque: probe a spread of keys so every
        // group sees traffic even after the load clients have finished.
        for k in 0..8u64 {
            let _ = client.get(&encode_key(k));
        }
        thread::sleep(Duration::from_millis(2));
    }
}

fn all_healthy(stats: &[GroupStats]) -> bool {
    stats.iter().all(|g| g.replicas.iter().all(|r| r.health == ShardHealth::Healthy))
}

/// Sweep every modeled key and assert the read returns an acceptable
/// version. `label` names the durability checkpoint being verified.
fn assert_acked_writes_readable(client: &mut AriaClient, model: &Model, label: &str) {
    for (&key_id, acceptable) in model {
        let got = client
            .get(&encode_key(key_id))
            .unwrap_or_else(|e| panic!("{label}: get({key_id}) failed: {e}"));
        match got {
            Some(bytes) => {
                let (k, v) = decode_value(&bytes)
                    .unwrap_or_else(|| panic!("{label}: get({key_id}) returned junk"));
                assert_eq!(k, key_id, "{label}: value for wrong key");
                assert!(
                    acceptable.contains(&v),
                    "{label}: acked write lost — key {key_id} returned v{v}, \
                     acceptable {acceptable:?}"
                );
            }
            None => assert!(
                acceptable.contains(&0),
                "{label}: acked write lost — key {key_id} absent, acceptable {acceptable:?}"
            ),
        }
    }
}

#[test]
fn pipelined_clients_survive_primary_kills_with_no_acked_write_loss() {
    let _wd = watchdog("pipelined_clients_survive_primary_kills", Duration::from_secs(300));
    let (store, server) = replicated_server();
    let addr = server.local_addr();

    // --- phase 1: 6 pipelined clients under a mid-load kill schedule ----
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let base = c as u64 * KEYS_PER_CLIENT;
            let seed = 0x0fa1_10e5_u64 ^ ((c as u64) << 32);
            thread::spawn(move || run_client(addr, base, seed))
        })
        .collect();

    // Kill primaries while the load runs: each group once, gated on the
    // previous cycle having fully re-admitted.
    let mut admin =
        AriaClient::connect(addr, ClientConfig::default()).expect("connect admin client");
    let mut kills = 0u64;
    for round in 0..2 {
        for group in 0..GROUPS {
            drive_until(&mut admin, &store, "group to settle before a kill", |s| {
                s[group].replicas.iter().all(|r| r.health == ShardHealth::Healthy)
            });
            let before = kill_primary(&store, group);
            kills += 1;
            drive_until(&mut admin, &store, "promotion after a kill", |s| {
                s[group].failovers > before
            });
            let _ = round;
        }
    }

    let mut wrong_total = 0u64;
    let mut model: Model = HashMap::new();
    for c in clients {
        let (m, wrong) = c.join().expect("client thread panicked");
        wrong_total += wrong;
        model.extend(m); // disjoint key ranges
    }
    assert_eq!(wrong_total, 0, "a client read an unacceptable value mid-failover");

    // Every kill must complete a verified re-sync before the contract
    // checks: `resyncs` only advances when the content roots matched.
    drive_until(&mut admin, &store, "all kills to re-sync and re-admit", |s| {
        all_healthy(s) && s.iter().map(|g| g.resyncs).sum::<u64>() >= kills
    });
    let mut checker =
        AriaClient::connect(addr, ClientConfig { retry_budget: 16, ..ClientConfig::default() })
            .expect("connect checker client");
    assert_acked_writes_readable(&mut checker, &model, "after the kill schedule");

    // --- phase 2: one more kill; check right after promotion, then after
    // re-admission ------------------------------------------------------
    let stats = store.group_stats();
    let target = 0usize;
    let (before_failovers, before_resyncs) = (stats[target].failovers, stats[target].resyncs);
    kill_primary(&store, target);
    drive_until(&mut admin, &store, "final promotion", |s| s[target].failovers > before_failovers);
    // Promotion done; the rejoiner may still be down or re-syncing.
    assert_acked_writes_readable(&mut checker, &model, "immediately after promotion");

    drive_until(&mut admin, &store, "final re-admission", |s| {
        all_healthy(s) && s[target].resyncs > before_resyncs
    });
    assert_acked_writes_readable(&mut checker, &model, "after verified re-admission");

    // The sweep after re-admission proves both replicas converge: the
    // re-sync root check happened inside the store, and lag must return
    // to zero once the group is healthy again.
    let final_stats = store.group_stats();
    assert!(final_stats.iter().all(|g| g.replicas.iter().all(|r| r.lag == 0)), "{final_stats:?}");

    server.shutdown();
    drop(store);
}
