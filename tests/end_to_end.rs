//! Cross-crate integration: stores driven by real workload generators on
//! simulated enclaves, checking both functional correctness and the
//! performance-model properties the paper's evaluation relies on.

use aria::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

const KEYS: u64 = 50_000;

fn load(store: &mut dyn KvStore, keys: u64, value_len: usize) {
    for id in 0..keys {
        store.put(&encode_key(id), &value_bytes(id, value_len)).unwrap();
    }
}

fn drive(store: &mut dyn KvStore, dist: KeyDistribution, ops: u64) -> f64 {
    let mut wl = YcsbWorkload::new(YcsbConfig {
        keyspace: KEYS,
        read_ratio: 0.95,
        value_len: 16,
        distribution: dist,
        seed: 42,
    });
    for _ in 0..ops {
        step(store, wl.next_request());
    }
    store.enclave().reset_metrics();
    let t0 = store.enclave().cycles();
    for _ in 0..ops {
        step(store, wl.next_request());
    }
    store.enclave().throughput(ops, t0)
}

fn step(store: &mut dyn KvStore, req: Request) {
    match req {
        Request::Get { id } => {
            assert!(store.get(&encode_key(id)).unwrap().is_some(), "loaded key missing");
        }
        Request::Put { id, value_len } => {
            store.put(&encode_key(id), &value_bytes(id ^ 0xff, value_len)).unwrap();
        }
    }
}

fn small_enclave() -> Arc<Enclave> {
    // EPC deliberately smaller than the metadata working set.
    Arc::new(Enclave::new(CostModel::default(), 3 << 20))
}

fn aria_store(enclave: &Arc<Enclave>) -> AriaHash {
    let mut cfg = StoreConfig::for_keys(KEYS);
    cfg.cache = CacheConfig::with_capacity(1 << 20);
    AriaHash::new(cfg, Arc::clone(enclave)).unwrap()
}

#[test]
fn aria_prefers_skewed_workloads() {
    let enclave = small_enclave();
    let mut store = aria_store(&enclave);
    load(&mut store, KEYS, 16);
    let skew = drive(&mut store, KeyDistribution::Zipfian { theta: 0.99 }, 60_000);

    let enclave = small_enclave();
    let mut store = aria_store(&enclave);
    load(&mut store, KEYS, 16);
    let uniform = drive(&mut store, KeyDistribution::Uniform, 60_000);

    assert!(
        skew > uniform * 1.05,
        "secure cache should prefer skew: skew={skew:.0} uniform={uniform:.0}"
    );
}

#[test]
fn aria_beats_shieldstore_under_skew() {
    let enclave = small_enclave();
    let mut store = aria_store(&enclave);
    load(&mut store, KEYS, 16);
    let aria = drive(&mut store, KeyDistribution::Zipfian { theta: 0.99 }, 60_000);

    // ShieldStore with chains of ~2.5 like the paper's 10M/4M setup.
    let enclave = small_enclave();
    let mut shield = ShieldStore::new((KEYS as f64 / 2.5) as usize, Arc::clone(&enclave)).unwrap();
    for id in 0..KEYS {
        shield.put(&encode_key(id), &value_bytes(id, 16)).unwrap();
    }
    let mut wl = YcsbWorkload::new(YcsbConfig {
        keyspace: KEYS,
        read_ratio: 0.95,
        value_len: 16,
        distribution: KeyDistribution::Zipfian { theta: 0.99 },
        seed: 42,
    });
    let ops = 60_000u64;
    for _ in 0..ops {
        match wl.next_request() {
            Request::Get { id } => {
                shield.get(&encode_key(id)).unwrap();
            }
            Request::Put { id, value_len } => {
                shield.put(&encode_key(id), &value_bytes(id ^ 0xff, value_len)).unwrap();
            }
        }
    }
    enclave.reset_metrics();
    let t0 = enclave.cycles();
    for _ in 0..ops {
        match wl.next_request() {
            Request::Get { id } => {
                shield.get(&encode_key(id)).unwrap();
            }
            Request::Put { id, value_len } => {
                shield.put(&encode_key(id), &value_bytes(id ^ 0xff, value_len)).unwrap();
            }
        }
    }
    let shield_tput = enclave.throughput(ops, t0);
    assert!(
        aria > shield_tput,
        "Aria ({aria:.0}) should beat ShieldStore ({shield_tput:.0}) under skew"
    );
}

#[test]
fn full_aria_never_hardware_pages() {
    let enclave = small_enclave();
    let mut store = aria_store(&enclave);
    load(&mut store, KEYS, 16);
    drive(&mut store, KeyDistribution::Zipfian { theta: 0.99 }, 30_000);
    assert_eq!(enclave.total_page_faults(), 0, "Secure Cache must avoid secure paging");
}

#[test]
fn without_cache_scheme_pages_when_counters_exceed_epc() {
    // ~900 KB of in-enclave counters against a 640 KB EPC.
    let enclave = Arc::new(Enclave::new(CostModel::default(), 640 << 10));
    let mut cfg = StoreConfig::for_keys(KEYS);
    cfg.scheme = Scheme::AriaWithoutCache;
    let mut store = AriaHash::new(cfg, Arc::clone(&enclave)).unwrap();
    load(&mut store, KEYS, 16);
    drive(&mut store, KeyDistribution::Uniform, 20_000);
    assert!(enclave.total_page_faults() > 0, "counters exceed the EPC; paging expected");
}

#[test]
fn etc_workload_end_to_end_on_both_indexes() {
    let keys = 5_000u64;
    for tree_index in [false, true] {
        let enclave = Arc::new(Enclave::with_default_epc());
        let mut cfg = StoreConfig::for_keys(keys);
        cfg.cache = CacheConfig::with_capacity(4 << 20);
        cfg.btree_order = 9;
        let mut store: Box<dyn KvStore> = if tree_index {
            Box::new(AriaTree::new(cfg, enclave).unwrap())
        } else {
            Box::new(AriaHash::new(cfg, enclave).unwrap())
        };
        let wl =
            EtcWorkload::new(EtcConfig { keyspace: keys, read_ratio: 0.9, ..EtcConfig::default() });
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        for (id, len) in wl.load_items().collect::<Vec<_>>() {
            let v = value_bytes(id, len);
            store.put(&encode_key(id), &v).unwrap();
            model.insert(id, v);
        }
        let mut wl =
            EtcWorkload::new(EtcConfig { keyspace: keys, read_ratio: 0.9, ..EtcConfig::default() });
        for _ in 0..20_000 {
            match wl.next_request() {
                Request::Get { id } => {
                    assert_eq!(store.get(&encode_key(id)).unwrap().as_ref(), model.get(&id));
                }
                Request::Put { id, value_len } => {
                    let v = value_bytes(id ^ 0xabc, value_len);
                    store.put(&encode_key(id), &v).unwrap();
                    model.insert(id, v);
                }
            }
        }
        assert_eq!(store.len(), keys, "tree_index={tree_index}");
    }
}

#[test]
fn no_sgx_model_is_faster_than_sgx() {
    let run_with = |cost: CostModel| {
        let enclave = Arc::new(Enclave::new(cost, 8 << 20));
        let mut cfg = StoreConfig::for_keys(KEYS);
        cfg.cache = CacheConfig::with_capacity(2 << 20);
        let mut store = AriaHash::new(cfg, Arc::clone(&enclave)).unwrap();
        load(&mut store, KEYS, 16);
        drive(&mut store, KeyDistribution::Zipfian { theta: 0.99 }, 40_000)
    };
    let sgx = run_with(CostModel::default());
    let plain = run_with(CostModel::no_sgx());
    assert!(
        plain > sgx * 1.1,
        "removing SGX costs must speed things up: sgx={sgx:.0} plain={plain:.0}"
    );
}
