//! End-to-end crash-recovery durability tests for the tiered store:
//! SIGKILL-style cuts at random byte offsets of the live segment,
//! restart, verified recovery (content root must match the sealed
//! checkpoint), zero acknowledged-write loss below the checkpoint
//! frontier, and typed refusal of tampered or rolled-back logs.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use aria::prelude::*;
use aria::store::RecoveryFailure;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MASTER: [u8; 16] = *b"durability-e2e-k";

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "aria-durability-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn hot_store() -> AriaHash {
    let mut cfg = StoreConfig::for_keys(8_192);
    cfg.master_key = MASTER;
    AriaHash::new(cfg, Arc::new(Enclave::new(CostModel::no_sgx(), 512 << 20))).unwrap()
}

fn opts(dir: &Path, min_epoch: u64) -> TieredOptions {
    TieredOptions::new(dir.to_path_buf())
        .segment_bytes(32 << 10)
        .hot_budget_bytes(16 << 10)
        .checkpoint_every(0)
        .min_epoch(min_epoch)
}

fn open(dir: &Path, min_epoch: u64) -> Result<TieredStore<AriaHash>, StoreError> {
    TieredStore::open(hot_store(), &MASTER, opts(dir, min_epoch))
}

fn key(i: u64) -> Vec<u8> {
    format!("e2e-{i:06}").into_bytes()
}

fn value(i: u64, round: u64) -> Vec<u8> {
    format!("val-{round:03}-{i:06}-{}", "d".repeat(40)).into_bytes()
}

/// The core durability contract, exercised at random cut offsets: cut
/// the live segment anywhere past the checkpoint frontier, reopen, and
/// require (a) the open succeeds with the root verified, (b) every
/// checkpointed key reads back exactly, (c) post-checkpoint survivors
/// are an exact prefix of the append order — acknowledged-then-lost
/// writes are only ever a contiguous unattested tail, never a hole.
#[test]
fn random_cut_recovery_loses_only_an_unattested_suffix() {
    let mut rng = StdRng::seed_from_u64(0xdead_beef);
    for trial in 0..6u64 {
        let dir = tmpdir(&format!("cut-{trial}"));
        let mut store = open(&dir, 0).unwrap();
        let attested = 60 + rng.gen_range(0..40u64);
        for i in 0..attested {
            store.put(&key(i), &value(i, trial)).unwrap();
        }
        let cp = store.force_checkpoint().unwrap();
        let (cp_seg, cp_off) = store.log_frontier();
        let tail = 20 + rng.gen_range(0..60u64);
        for i in attested..attested + tail {
            store.put(&key(i), &value(i, trial)).unwrap();
        }
        let (end_seg, end_off) = store.log_frontier();
        drop(store);

        // Cut at a uniformly random offset in the post-checkpoint
        // region of the final segment (same segment: after the
        // frontier; later segment: anywhere in it).
        let cut = if end_seg == cp_seg {
            cp_off + 1 + rng.gen_range(0..end_off - cp_off)
        } else {
            rng.gen_range(0..end_off.max(1))
        };
        aria::log::crash_cut(&dir, end_seg, cut).unwrap();

        let mut reopened = open(&dir, cp.epoch).expect("tail cut must recover");
        for i in 0..attested {
            assert_eq!(
                reopened.get(&key(i)).unwrap().as_deref(),
                Some(value(i, trial).as_slice()),
                "trial {trial}: checkpointed key {i} lost or changed"
            );
        }
        let mut seen_gap = false;
        for i in attested..attested + tail {
            match reopened.get(&key(i)).unwrap() {
                Some(v) => {
                    assert!(!seen_gap, "trial {trial}: survivor {i} after a gap (hole!)");
                    assert_eq!(v, value(i, trial), "trial {trial}: survivor {i} corrupted");
                }
                None => seen_gap = true,
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Cuts that destroy acknowledged-and-attested state must be refused
/// with the typed recovery error, not silently served.
#[test]
fn cut_destroying_attested_state_is_refused() {
    let mut rng = StdRng::seed_from_u64(0xfee1_dead);
    for trial in 0..3u64 {
        let dir = tmpdir(&format!("deep-{trial}"));
        let mut store = open(&dir, 0).unwrap();
        for i in 0..80 {
            store.put(&key(i), &value(i, trial)).unwrap();
        }
        let cp = store.force_checkpoint().unwrap();
        let (seg, off) = store.log_frontier();
        drop(store);
        let cut = 1 + rng.gen_range(0..off.saturating_sub(1).max(1));
        aria::log::crash_cut(&dir, seg, cut).unwrap();
        let err = open(&dir, cp.epoch).expect_err("attested loss must refuse");
        assert!(
            matches!(
                err,
                StoreError::RecoveryDiverged {
                    reason: RecoveryFailure::RootMismatch
                        | RecoveryFailure::LogCorrupt { .. }
                        | RecoveryFailure::LogTampered { .. }
                }
            ),
            "trial {trial}: got {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A byte flip anywhere in the attested region must be refused at open
/// — the recomputed content root cannot match the sealed checkpoint.
#[test]
fn tampered_log_is_refused_at_open() {
    let mut rng = StdRng::seed_from_u64(0x7a3b_11c5);
    let dir = tmpdir("tamper");
    let mut store = open(&dir, 0).unwrap();
    for i in 0..80 {
        store.put(&key(i), &value(i, 0)).unwrap();
    }
    let cp = store.force_checkpoint().unwrap();
    drop(store);
    for _ in 0..4 {
        let len = aria::log::segment_file_len(&dir, 0).unwrap();
        let off = rng.gen_range(0..len);
        let mask = rng.gen_range(1..=255) as u8;
        aria::log::flip_byte(&dir, 0, off, mask).unwrap();
        let err = open(&dir, cp.epoch).expect_err("flip must refuse");
        assert!(
            matches!(err, StoreError::RecoveryDiverged { .. }),
            "flip at {off} mask {mask:#x}: got {err}"
        );
        // Undo (XOR is self-inverse) so the next flip starts clean.
        aria::log::flip_byte(&dir, 0, off, mask).unwrap();
    }
    // Sanity: the pristine log still opens.
    open(&dir, cp.epoch).expect("pristine log must recover");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Restoring an older (internally consistent) log+checkpoint snapshot
/// must be refused once the caller carries a newer epoch floor.
#[test]
fn rolled_back_log_is_refused_by_epoch_floor() {
    let dir = tmpdir("rollback");
    let snap = tmpdir("rollback-snap");
    let mut store = open(&dir, 0).unwrap();
    for i in 0..40 {
        store.put(&key(i), &value(i, 0)).unwrap();
    }
    let cp1 = store.force_checkpoint().unwrap();
    drop(store);
    std::fs::create_dir_all(&snap).unwrap();
    for entry in std::fs::read_dir(&dir).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), snap.join(entry.file_name())).unwrap();
    }
    let mut store = open(&dir, cp1.epoch).unwrap();
    for i in 40..80 {
        store.put(&key(i), &value(i, 0)).unwrap();
    }
    let cp2 = store.force_checkpoint().unwrap();
    assert!(cp2.epoch > cp1.epoch);
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::rename(&snap, &dir).unwrap();
    let err = open(&dir, cp2.epoch).expect_err("rollback must refuse");
    assert!(
        matches!(err, StoreError::RecoveryDiverged { reason: RecoveryFailure::Rollback { .. } }),
        "got {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
