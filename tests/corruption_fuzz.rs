//! Corruption fuzzing: the strongest statement of the paper's security
//! claim, checked as a property — **no corruption of untrusted memory
//! can make the store return wrong data**.
//!
//! For each case we load a store, flip random bits in random live blocks
//! of the untrusted heap (entries, index nodes, pointers — whatever lives
//! there), and then read every key back. Each read must either:
//!
//! * return the exact value the model expects (the corruption missed
//!   everything relevant, or hit only slack bytes of a block), or
//! * fail with an integrity violation.
//!
//! Returning a wrong value, a wrong `None`, or panicking is a security
//! bug. (`Ok(None)` for a key that exists means the corruption silently
//! unlinked it — exactly what the paper's deletion metadata must catch.)

use aria::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

const KEYS: u64 = 300;

fn loaded_hash(seed: u64) -> (AriaHash, HashMap<u64, Vec<u8>>) {
    let enclave = Arc::new(Enclave::with_default_epc());
    let mut cfg = StoreConfig::for_keys(KEYS);
    cfg.cache = CacheConfig::with_capacity(1 << 20);
    cfg.buckets = 64; // force real chains
    cfg.seed = seed;
    let mut store = AriaHash::new(cfg, enclave).unwrap();
    let mut model = HashMap::new();
    for id in 0..KEYS {
        let v = value_bytes(id ^ seed, 24);
        store.put(&encode_key(id), &v).unwrap();
        model.insert(id, v);
    }
    // Flush the secure cache so corrupted counters can't be shielded by
    // EPC copies (worst case for the defender).
    store.core_mut().counters.as_cached_mut().unwrap().flush();
    (store, model)
}

/// Flip `flips` random bits in live untrusted blocks located via the
/// attacker-side API.
fn corrupt_hash_store(store: &mut AriaHash, rng_state: &mut u64, flips: usize) {
    let mut next = || {
        *rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *rng_state >> 11
    };
    for _ in 0..flips {
        let id = next() % KEYS;
        if let Some(ptr) = store.attack_locate(&encode_key(id)) {
            let off = (next() % 80) as usize;
            let bit = (next() % 8) as u8;
            if let Ok(bytes) = store.core_mut().heap.raw_mut(ptr, off + 1) {
                bytes[off] ^= 1 << bit;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn hash_store_never_serves_corrupted_data(seed in any::<u64>(), flips in 1usize..40) {
        let (mut store, model) = loaded_hash(seed);
        let mut rng = seed ^ 0xfeed_f00d;
        corrupt_hash_store(&mut store, &mut rng, flips);
        for (id, expect) in &model {
            match store.get(&encode_key(*id)) {
                Ok(Some(v)) => prop_assert_eq!(&v, expect, "wrong value served for key {}", id),
                Ok(None) => prop_assert!(false, "key {} silently vanished", id),
                Err(e) => prop_assert!(e.is_integrity_violation(), "unexpected error {e:?}"),
            }
        }
    }

    /// Corrupting the Merkle tree itself (any node, any byte) must never
    /// yield wrong data either.
    #[test]
    fn merkle_corruption_never_serves_wrong_data(
        seed in any::<u64>(),
        level_pick in any::<u32>(),
        node_pick in any::<u64>(),
        byte_pick in any::<usize>(),
    ) {
        let (mut store, model) = loaded_hash(seed);
        {
            let area = store.core_mut().counters.as_cached_mut().unwrap();
            let tree = area.cache_mut(0).tree_mut_raw();
            let level = level_pick % tree.height();
            let index = node_pick % tree.nodes_in_level(level);
            let node = aria::merkle::NodeId { level, index };
            let size = tree.node_size();
            tree.node_mut_raw(node)[byte_pick % size] ^= 0x01;
        }
        for (id, expect) in &model {
            match store.get(&encode_key(*id)) {
                Ok(Some(v)) => prop_assert_eq!(&v, expect, "wrong value for key {}", id),
                Ok(None) => prop_assert!(false, "key {} silently vanished", id),
                Err(e) => prop_assert!(e.is_integrity_violation(), "unexpected error {e:?}"),
            }
        }
    }
}

/// The same no-wrong-data property for the B-tree and B+-tree indexes,
/// with corruption hitting the tree structure (child-pointer swaps).
#[test]
fn tree_indexes_never_serve_corrupted_data() {
    fn check_reads(
        mut get: impl FnMut(&[u8]) -> Result<Option<Vec<u8>>, StoreError>,
        model: &HashMap<u64, Vec<u8>>,
        label: &str,
    ) {
        for (id, expect) in model {
            match get(&encode_key(*id)) {
                Ok(Some(v)) => assert_eq!(&v, expect, "wrong value for key {id} ({label})"),
                Ok(None) => panic!("key {id} silently vanished ({label})"),
                Err(e) => assert!(e.is_integrity_violation(), "unexpected error {e:?} ({label})"),
            }
        }
    }

    for seed in [1u64, 7, 42] {
        let mut model = HashMap::new();
        for id in 0..KEYS {
            model.insert(id, value_bytes(id ^ seed, 24));
        }

        let enclave = Arc::new(Enclave::with_default_epc());
        let mut cfg = StoreConfig::for_keys(KEYS);
        cfg.cache = CacheConfig::with_capacity(1 << 20);
        cfg.btree_order = 7;
        cfg.seed = seed;
        let mut btree = AriaTree::new(cfg.clone(), enclave).unwrap();
        for (id, v) in &model {
            btree.put(&encode_key(*id), v).unwrap();
        }
        assert!(btree.attack_swap_child_pointers(), "B-tree attack setup failed");
        check_reads(|k| btree.get(k), &model, "btree");

        let enclave = Arc::new(Enclave::with_default_epc());
        let mut bplus = AriaBPlusTree::new(cfg, enclave).unwrap();
        for (id, v) in &model {
            bplus.put(&encode_key(*id), v).unwrap();
        }
        assert!(bplus.attack_swap_child_pointers(), "B+-tree attack setup failed");
        check_reads(|k| bplus.get(k), &model, "bplus");
    }
}
