//! Corruption fuzzing: the strongest statement of the paper's security
//! claim, checked as a property — **no corruption of untrusted memory
//! can make the store return wrong data**.
//!
//! For each case we load a store, flip random bits in random live blocks
//! of the untrusted heap (entries, index nodes, pointers — whatever lives
//! there), and then read every key back. Each read must either:
//!
//! * return the exact value the model expects (the corruption missed
//!   everything relevant, or hit only slack bytes of a block), or
//! * fail with an integrity violation.
//!
//! Returning a wrong value, a wrong `None`, or panicking is a security
//! bug. (`Ok(None)` for a key that exists means the corruption silently
//! unlinked it — exactly what the paper's deletion metadata must catch.)
//!
//! The second half drives corruption through the `aria-chaos` fault
//! sites instead of ad-hoc byte pokes, and checks the *classification*
//! claim: each fault class is detected as the `Violation` variant its
//! site promises (entry flips and pointer swaps as MAC/pointer
//! violations, node flips and stale replays as Merkle mismatches,
//! free-list tampering as allocator-metadata violations).

use aria::chaos::{ChaosEngine, FaultPlan, FaultSite, HeapInjector};
use aria::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

const KEYS: u64 = 300;

fn loaded_hash(seed: u64) -> (AriaHash, HashMap<u64, Vec<u8>>) {
    let enclave = Arc::new(Enclave::with_default_epc());
    let mut cfg = StoreConfig::for_keys(KEYS);
    cfg.cache = CacheConfig::with_capacity(1 << 20);
    cfg.buckets = 64; // force real chains
    cfg.seed = seed;
    let mut store = AriaHash::new(cfg, enclave).unwrap();
    let mut model = HashMap::new();
    for id in 0..KEYS {
        let v = value_bytes(id ^ seed, 24);
        store.put(&encode_key(id), &v).unwrap();
        model.insert(id, v);
    }
    // Flush the secure cache so corrupted counters can't be shielded by
    // EPC copies (worst case for the defender).
    store.core_mut().counters.as_cached_mut().unwrap().flush();
    (store, model)
}

/// Flip `flips` random bits in live untrusted blocks located via the
/// attacker-side API.
fn corrupt_hash_store(store: &mut AriaHash, rng_state: &mut u64, flips: usize) {
    let mut next = || {
        *rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *rng_state >> 11
    };
    for _ in 0..flips {
        let id = next() % KEYS;
        if let Some(ptr) = store.attack_locate(&encode_key(id)) {
            let off = (next() % 80) as usize;
            let bit = (next() % 8) as u8;
            if let Ok(bytes) = store.core_mut().heap.raw_mut(ptr, off + 1) {
                bytes[off] ^= 1 << bit;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn hash_store_never_serves_corrupted_data(seed in any::<u64>(), flips in 1usize..40) {
        let (mut store, model) = loaded_hash(seed);
        let mut rng = seed ^ 0xfeed_f00d;
        corrupt_hash_store(&mut store, &mut rng, flips);
        for (id, expect) in &model {
            match store.get(&encode_key(*id)) {
                Ok(Some(v)) => prop_assert_eq!(&v, expect, "wrong value served for key {}", id),
                Ok(None) => prop_assert!(false, "key {} silently vanished", id),
                Err(e) => prop_assert!(e.is_integrity_violation(), "unexpected error {e:?}"),
            }
        }
    }

    /// Corrupting the Merkle tree itself (any node, any byte) must never
    /// yield wrong data either.
    #[test]
    fn merkle_corruption_never_serves_wrong_data(
        seed in any::<u64>(),
        level_pick in any::<u32>(),
        node_pick in any::<u64>(),
        byte_pick in any::<usize>(),
    ) {
        let (mut store, model) = loaded_hash(seed);
        {
            let area = store.core_mut().counters.as_cached_mut().unwrap();
            let tree = area.cache_mut(0).tree_mut_raw();
            let level = level_pick % tree.height();
            let index = node_pick % tree.nodes_in_level(level);
            let node = aria::merkle::NodeId { level, index };
            let size = tree.node_size();
            tree.node_mut_raw(node)[byte_pick % size] ^= 0x01;
        }
        for (id, expect) in &model {
            match store.get(&encode_key(*id)) {
                Ok(Some(v)) => prop_assert_eq!(&v, expect, "wrong value for key {}", id),
                Ok(None) => prop_assert!(false, "key {} silently vanished", id),
                Err(e) => prop_assert!(e.is_integrity_violation(), "unexpected error {e:?}"),
            }
        }
    }
}

// ----------------------------------------------------------- chaos sites

/// Read every model key and enforce the classification contract: a read
/// returns the expected value, or fails with a `Violation` the site's
/// `allowed` predicate accepts. Returns how many reads detected a fault.
fn sweep_classified(
    store: &mut AriaHash,
    model: &HashMap<u64, Vec<u8>>,
    allowed: impl Fn(&Violation) -> bool,
    label: &str,
) -> u64 {
    let mut detected = 0;
    for (id, expect) in model {
        match store.get(&encode_key(*id)) {
            Ok(Some(v)) => assert_eq!(&v, expect, "wrong value for key {id} ({label})"),
            Ok(None) => panic!("key {id} silently vanished ({label})"),
            Err(StoreError::Integrity(v)) => {
                assert!(allowed(&v), "key {id}: violation {v:?} outside the {label} class");
                detected += 1;
            }
            Err(e) => panic!("key {id}: non-integrity error {e:?} ({label})"),
        }
    }
    detected
}

/// The class write-path entry corruption must land in: the entry MAC
/// check, or the pointer bounds check when a length field was hit.
fn mac_or_pointer(v: &Violation) -> bool {
    matches!(v, Violation::EntryMacMismatch | Violation::CorruptPointer)
}

/// Entry-flip detections: a flip may also hit the `redptr` field, in
/// which case the redirection layer's id check fires first.
fn entry_flip_class(v: &Violation) -> bool {
    mac_or_pointer(v) || matches!(v, Violation::CounterReuse { .. })
}

/// Write-path bit flips land in the MAC-covered region of sealed
/// entries, so they must surface as `EntryMacMismatch` (or, when a
/// length or redptr field is hit, the corresponding pointer/counter
/// check).
#[test]
fn chaos_entry_flip_is_detected_as_mac_or_pointer_violation() {
    for seed in [3u64, 11, 77] {
        let (mut store, mut model) = loaded_hash(seed);
        let engine = ChaosEngine::new(
            FaultPlan::new(seed)
                .with_rate(FaultSite::EntryFlip, FaultPlan::RATE_SCALE)
                .with_budget(8),
        );
        HeapInjector::install(&mut store.core_mut().heap, Arc::clone(&engine));
        for id in 0..8u64 {
            let v = value_bytes(id ^ seed ^ 1, 24);
            if store.put(&encode_key(id), &v).is_ok() {
                model.insert(id, v);
            }
        }
        store.core_mut().heap.set_fault_hook(None);
        assert!(engine.injected() > 0, "plan failed to fire (seed {seed})");
        let detected = sweep_classified(&mut store, &model, entry_flip_class, "entry_flip");
        assert!(detected > 0, "no flip was detected (seed {seed})");
    }
}

/// Torn writes persist the header plus a stale suffix, so the entry MAC
/// can no longer verify.
#[test]
fn chaos_torn_write_is_detected_as_mac_violation() {
    for seed in [5u64, 23] {
        let (mut store, mut model) = loaded_hash(seed);
        let engine = ChaosEngine::new(
            FaultPlan::new(seed)
                .with_rate(FaultSite::TornWrite, FaultPlan::RATE_SCALE)
                .with_budget(6),
        );
        HeapInjector::install(&mut store.core_mut().heap, Arc::clone(&engine));
        for id in 0..6u64 {
            let v = value_bytes(id ^ seed ^ 2, 24);
            if store.put(&encode_key(id), &v).is_ok() {
                model.insert(id, v);
            }
        }
        store.core_mut().heap.set_fault_hook(None);
        assert!(engine.injected() > 0, "plan failed to fire (seed {seed})");
        let detected = sweep_classified(&mut store, &model, mac_or_pointer, "torn_write");
        assert!(detected > 0, "no torn write was detected (seed {seed})");
    }
}

/// Counter-node bit flips break the node's MAC against its parent: the
/// Merkle path, not the entry MAC, must report them.
#[test]
fn chaos_node_flip_is_detected_as_merkle_mismatch() {
    let seed = 13u64;
    let (mut store, model) = loaded_hash(seed);
    let engine = ChaosEngine::new(
        FaultPlan::new(seed).with_rate(FaultSite::NodeFlip, FaultPlan::RATE_SCALE).with_budget(4),
    );
    while let Some(entropy) = engine.try_inject(FaultSite::NodeFlip) {
        let area = store.core_mut().counters.as_cached_mut().unwrap();
        area.flush();
        let tree = area.cache_mut(0).tree_mut_raw();
        let (node, _) = tree.locate_counter(entropy % tree.num_counters());
        let size = tree.node_size();
        tree.node_mut_raw(node)[(entropy >> 24) as usize % size] ^= 1 << (entropy % 8);
    }
    assert_eq!(engine.injected(), 4);
    let detected = sweep_classified(
        &mut store,
        &model,
        |v| matches!(v, Violation::MerkleMismatch { .. }),
        "node_flip",
    );
    assert!(detected > 0, "no node flip was detected");
}

/// Replaying a stale snapshot of a counter leaf (a rollback) must be
/// caught by the parent MAC chain once the counters underneath moved.
#[test]
fn chaos_stale_node_replay_is_detected_as_merkle_mismatch() {
    let seed = 29u64;
    let (mut store, mut model) = loaded_hash(seed);
    let engine = ChaosEngine::new(
        FaultPlan::new(seed)
            .with_rate(FaultSite::StaleNodeReplay, FaultPlan::RATE_SCALE)
            .with_budget(1),
    );
    let entropy = engine.try_inject(FaultSite::StaleNodeReplay).expect("scheduled replay");

    // The victim leaf must cover a counter that will actually move:
    // resolve a live key's redirection pointer the way the adversary
    // would (header read, no verification).
    let victim = encode_key(entropy % 32);
    let redptr = {
        let ptr = store.attack_locate(&victim).expect("victim key is live");
        let bytes = store.core().heap.read(ptr, aria::store::entry::HEADER_LEN).unwrap();
        aria::store::entry::parse_header(bytes).expect("parseable header").redptr
    };
    // Snapshot the leaf, then advance the counters beneath it.
    let stale = {
        let area = store.core_mut().counters.as_cached_mut().unwrap();
        area.flush();
        let tree = area.cache(0).tree();
        let (node, _) = tree.locate_counter(redptr % tree.num_counters());
        (node, tree.node(node).to_vec())
    };
    for id in 0..32u64 {
        let v = value_bytes(id ^ seed ^ 3, 24);
        store.put(&encode_key(id), &v).unwrap();
        model.insert(id, v);
    }
    {
        let area = store.core_mut().counters.as_cached_mut().unwrap();
        area.flush();
        let tree = area.cache_mut(0).tree_mut_raw();
        tree.write_node(stale.0, &stale.1);
    }
    let detected = sweep_classified(
        &mut store,
        &model,
        |v| matches!(v, Violation::MerkleMismatch { .. }),
        "stale_node_replay",
    );
    assert!(detected > 0, "stale replay was not detected");
}

/// Swapping two buckets' head pointers breaks the AdField binding of
/// every entry reached through them: an `EntryMacMismatch`, per §V-C.
#[test]
fn chaos_index_pointer_swap_is_detected_as_mac_violation() {
    let seed = 31u64;
    let (mut store, model) = loaded_hash(seed);
    let engine = ChaosEngine::new(
        FaultPlan::new(seed)
            .with_rate(FaultSite::IndexPointerSwap, FaultPlan::RATE_SCALE)
            .with_budget(4),
    );
    while let Some(entropy) = engine.try_inject(FaultSite::IndexPointerSwap) {
        let a = encode_key(entropy % KEYS);
        let b = encode_key(entropy.rotate_right(21) % KEYS);
        if a != b {
            store.attack_swap_bucket_pointers(&a, &b);
        }
    }
    let detected = sweep_classified(&mut store, &model, mac_or_pointer, "index_pointer_swap");
    assert!(detected > 0, "no pointer swap was detected");
}

/// Planting a live block on the untrusted free list must trip the
/// allocator's bitmap cross-check on the next allocation.
#[test]
fn chaos_freelist_tamper_is_detected_as_allocator_metadata() {
    let seed = 37u64;
    let (mut store, model) = loaded_hash(seed);
    let engine = ChaosEngine::new(
        FaultPlan::new(seed)
            .with_rate(FaultSite::FreeListTamper, FaultPlan::RATE_SCALE)
            .with_budget(1),
    );
    let entropy = engine.try_inject(FaultSite::FreeListTamper).expect("scheduled tamper");
    let victim = encode_key(entropy % KEYS);
    let ptr = store.attack_locate(&victim).expect("victim key is live");
    assert!(store.core_mut().heap.attack_requeue_block(ptr));

    // New inserts in the same size class must hit the planted block and
    // fail closed with AllocatorMetadata — never double-allocate.
    let mut tripped = false;
    for id in KEYS..KEYS + 16 {
        match store.put(&encode_key(id), &value_bytes(id, 24)) {
            Ok(()) => continue,
            Err(StoreError::Integrity(Violation::AllocatorMetadata)) => {
                tripped = true;
                break;
            }
            Err(e) => panic!("unexpected error {e:?} from tampered free list"),
        }
    }
    assert!(tripped, "free-list tamper never tripped the bitmap cross-check");
    // Existing data stays intact: the planted block was never handed out.
    let detected = sweep_classified(&mut store, &model, |_| false, "freelist_tamper_readback");
    assert_eq!(detected, 0, "reads must be unaffected once the tamper is refused");
}

/// The same no-wrong-data property for the B-tree and B+-tree indexes,
/// with corruption hitting the tree structure (child-pointer swaps).
#[test]
fn tree_indexes_never_serve_corrupted_data() {
    fn check_reads(
        mut get: impl FnMut(&[u8]) -> Result<Option<Vec<u8>>, StoreError>,
        model: &HashMap<u64, Vec<u8>>,
        label: &str,
    ) {
        for (id, expect) in model {
            match get(&encode_key(*id)) {
                Ok(Some(v)) => assert_eq!(&v, expect, "wrong value for key {id} ({label})"),
                Ok(None) => panic!("key {id} silently vanished ({label})"),
                Err(e) => assert!(e.is_integrity_violation(), "unexpected error {e:?} ({label})"),
            }
        }
    }

    for seed in [1u64, 7, 42] {
        let mut model = HashMap::new();
        for id in 0..KEYS {
            model.insert(id, value_bytes(id ^ seed, 24));
        }

        let enclave = Arc::new(Enclave::with_default_epc());
        let mut cfg = StoreConfig::for_keys(KEYS);
        cfg.cache = CacheConfig::with_capacity(1 << 20);
        cfg.btree_order = 7;
        cfg.seed = seed;
        let mut btree = AriaTree::new(cfg.clone(), enclave).unwrap();
        for (id, v) in &model {
            btree.put(&encode_key(*id), v).unwrap();
        }
        assert!(btree.attack_swap_child_pointers(), "B-tree attack setup failed");
        check_reads(|k| btree.get(k), &model, "btree");

        let enclave = Arc::new(Enclave::with_default_epc());
        let mut bplus = AriaBPlusTree::new(cfg, enclave).unwrap();
        for (id, v) in &model {
            bplus.put(&encode_key(*id), v).unwrap();
        }
        assert!(bplus.attack_swap_child_pointers(), "B+-tree attack setup failed");
        check_reads(|k| bplus.get(k), &model, "bplus");
    }
}
