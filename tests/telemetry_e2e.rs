//! End-to-end telemetry: the `METRICS` opcode round-trips a full
//! snapshot over aria-net, the snapshot's cache accounting agrees with
//! the store's own `CacheStats` to within one op, the verify-depth
//! histogram is populated by real cache misses, slow-op spans surface
//! over the wire, and `STATS` keeps counting quarantined shards
//! (reporting `degraded`) instead of silently excluding them.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use aria::prelude::*;
use aria::store::ShardHealth;
use aria::telemetry::SNAPSHOT_VERSION;
use aria::workload::encode_key;

/// Abort instead of hanging the test job if a connection wedges.
struct Watchdog(Arc<AtomicBool>);

fn watchdog(name: &'static str, limit: Duration) -> Watchdog {
    let armed = Arc::new(AtomicBool::new(true));
    let flag = Arc::clone(&armed);
    thread::spawn(move || {
        let start = std::time::Instant::now();
        while start.elapsed() < limit {
            thread::sleep(Duration::from_millis(50));
            if !flag.load(Ordering::SeqCst) {
                return;
            }
        }
        eprintln!("watchdog: test {name} exceeded {limit:?}; aborting");
        std::process::abort();
    });
    Watchdog(armed)
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.0.store(false, Ordering::SeqCst);
    }
}

fn sharded_server(shards: usize) -> (Arc<ShardedStore<AriaHash>>, AriaServer) {
    let store = Arc::new(
        ShardedStore::with_shards(shards, |_| {
            AriaHash::new(StoreConfig::for_keys(8_192), Arc::new(Enclave::with_default_epc()))
        })
        .unwrap(),
    );
    let server = AriaServer::bind("127.0.0.1:0", Arc::clone(&store), ServerConfig::default())
        .expect("bind loopback server");
    (store, server)
}

#[test]
fn metrics_round_trip_matches_store_accounting() {
    const SHARDS: usize = 4;
    const KEYS: u64 = 2_000;
    const GETS: u64 = 6_000;

    let _wd = watchdog("metrics_round_trip_matches_store_accounting", Duration::from_secs(180));
    let (store, server) = sharded_server(SHARDS);
    // Trace every op so the slow-op ring is exercised without relying
    // on wall-clock luck.
    store.slow_ops().set_threshold_nanos(0);
    let mut client = AriaClient::connect(server.local_addr(), ClientConfig::default()).unwrap();

    for id in 0..KEYS {
        client.put(&encode_key(id), format!("v{id}").as_bytes()).unwrap();
    }
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    for _ in 0..GETS {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let id = x % KEYS;
        assert!(client.get(&encode_key(id)).unwrap().is_some());
    }

    let snap = client.metrics().expect("METRICS round-trips");
    assert_eq!(snap.version, SNAPSHOT_VERSION);
    assert_eq!(snap.shards.len(), SHARDS);

    // The client's ops are all acked, the server is otherwise idle:
    // telemetry's cache accounting must agree with the counter cache's
    // own stats to within one op on every shard.
    let own: Vec<CacheStats> = store
        .cache_stats()
        .into_iter()
        .map(|s| s.expect("healthy shard has a counter cache"))
        .collect();
    for (i, (tele, own)) in snap.shards.iter().zip(&own).enumerate() {
        let (th, oh) = (tele.cache.hits, own.hits);
        let (tm, om) = (tele.cache.misses, own.misses);
        assert!(th.abs_diff(oh) <= 1, "shard {i}: telemetry hits {th} vs CacheStats {oh}");
        assert!(tm.abs_diff(om) <= 1, "shard {i}: telemetry misses {tm} vs CacheStats {om}");
    }
    let agg = snap.aggregate();
    assert!(agg.cache.hits + agg.cache.misses > 0, "cache accounting never moved");

    // Counter fetches that missed the cache verified real tree paths:
    // the verify-stop-depth histogram the paper's Figure 11 reasons
    // about must be reproducible from the wire snapshot.
    assert!(agg.cache.verify_depth.count() > 0, "verify-depth histogram empty");
    assert!(agg.cache.verify_depth.sum > 0, "verify-depth histogram sums to zero");

    // Store-layer instrumentation flowed through the same snapshot.
    assert!(agg.store.get_latency.count() >= GETS, "get latency undercounted");
    assert!(agg.store.put_latency.count() >= KEYS, "put latency undercounted");
    assert_eq!(agg.store.keys_live, KEYS, "keys_live gauge wrong");
    assert!(agg.store.index_probes > 0, "index probes never recorded");

    // With a zero threshold every batch records a span.
    assert!(!snap.slow_ops.is_empty(), "slow-op ring stayed empty at threshold 0");
    let op = &snap.slow_ops[0];
    assert!((op.shard as usize) < SHARDS);
    assert!(op.batch >= 1);

    // The per-opcode net histograms saw our traffic (get=1, put=2).
    assert!(snap.net.op_latency[1].count() >= GETS);
    assert!(snap.net.op_latency[2].count() >= KEYS);

    server.shutdown();
}

#[test]
fn stats_count_quarantined_shards_and_report_degraded() {
    const SHARDS: usize = 4;
    const KEYS: u64 = 1_000;

    let _wd = watchdog("stats_count_quarantined_shards", Duration::from_secs(180));
    let (store, server) = sharded_server(SHARDS);
    let mut client = AriaClient::connect(server.local_addr(), ClientConfig::default()).unwrap();

    for id in 0..KEYS {
        client.put(&encode_key(id), b"payload").unwrap();
    }
    let baseline = client.stats().unwrap();
    assert_eq!(baseline.len, KEYS, "len_estimate must count every shard");
    assert!(!baseline.degraded, "healthy store reported degraded");

    // Tamper with one key's sealed entry and read it: the violation
    // quarantines its shard.
    let key = encode_key(7);
    let victim = store.shard_of(&key);
    assert!(store.with_shard(victim, move |s: &mut AriaHash| s.attack_tamper_value(&encode_key(7))));
    let got = client.get(&key);
    assert!(got.is_err(), "tampered read must fail, got {got:?}");

    // While the shard quarantines/recovers, STATS must keep reporting
    // the unhealthy shard's last-known key count — the pre-fix behavior
    // silently excluded the whole shard. Recovery destroys the one
    // unverifiable (tampered) entry, so len may drop by exactly one,
    // never by the shard's whole population. `degraded` must be
    // visible at least once before the shard heals.
    let mut saw_degraded = false;
    loop {
        let stats = client.stats().unwrap();
        assert!(
            stats.len >= KEYS - 1,
            "len {} excluded shard {victim} while it was unhealthy",
            stats.len
        );
        saw_degraded |= stats.degraded;
        let health = client.health().unwrap();
        let info = &health.shards[victim];
        if info.health() == ShardHealth::Healthy && info.recoveries >= 1 {
            break;
        }
        thread::sleep(Duration::from_millis(2));
    }
    assert!(saw_degraded, "degraded flag never observed during quarantine");

    // Telemetry recorded the violation and the health transitions.
    let snap = client.metrics().unwrap();
    let st = &snap.shards[victim].store;
    assert!(st.violations.iter().sum::<u64>() >= 1, "violation class not recorded");
    assert!(
        st.health_events.len() >= 2,
        "expected quarantine + recovery transitions, got {:?}",
        st.health_events
    );

    server.shutdown();
}
