//! End-to-end tests of the sharded concurrent front-end: many client
//! threads over `ShardedStore<AriaHash>`, partition stability, shard
//! isolation under attack injection, and the batched-API cost model.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread;

use aria::prelude::*;
use aria::workload::ZipfianGenerator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sharded_hash(shards: usize, keys_per_shard: u64) -> ShardedStore<AriaHash> {
    ShardedStore::with_shards(shards, move |_| {
        AriaHash::new(StoreConfig::for_keys(keys_per_shard), Arc::new(Enclave::with_default_epc()))
    })
    .unwrap()
}

/// ≥4 shards, ≥4 client threads, mixed put/get/delete under zipfian key
/// popularity, every get checked against a per-thread model, zero
/// integrity violations.
#[test]
fn concurrent_clients_mixed_ops_zipfian() {
    const SHARDS: usize = 4;
    const CLIENTS: usize = 6;
    const OPS_PER_CLIENT: usize = 4_000;
    const IDS_PER_CLIENT: u64 = 2_000;

    let store = Arc::new(sharded_hash(SHARDS, 32_768));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                // Each client owns a disjoint id range so its local model
                // is exact even though all clients run concurrently.
                let base = client as u64 * IDS_PER_CLIENT;
                let zipf = ZipfianGenerator::new(IDS_PER_CLIENT, 0.99);
                let mut rng = StdRng::seed_from_u64(0xC11E47 + client as u64);
                let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
                let mut violations = 0u64;
                for op in 0..OPS_PER_CLIENT {
                    let id = base + zipf.next(&mut rng);
                    let key = encode_key(id);
                    match rng.gen_range(0..10u32) {
                        // 60% reads, 30% writes, 10% deletes.
                        0..=5 => match store.get(&key) {
                            Ok(found) => {
                                assert_eq!(
                                    found.as_deref(),
                                    model.get(&id).map(|v| v.as_slice()),
                                    "client {client} op {op}: wrong value for id {id}"
                                );
                            }
                            Err(e) if e.is_integrity_violation() => violations += 1,
                            Err(e) => panic!("client {client}: unexpected error {e}"),
                        },
                        6..=8 => {
                            let value = value_bytes(id ^ op as u64, 24);
                            store.put(&key, &value).unwrap();
                            model.insert(id, value);
                        }
                        _ => {
                            let existed = store.delete(&key).unwrap();
                            assert_eq!(
                                existed,
                                model.remove(&id).is_some(),
                                "client {client} op {op}: delete disagreed for id {id}"
                            );
                        }
                    }
                }
                (model.len() as u64, violations)
            })
        })
        .collect();

    let mut live = 0u64;
    for handle in handles {
        let (client_live, violations) = handle.join().unwrap();
        assert_eq!(violations, 0, "no integrity violations in an attack-free run");
        live += client_live;
    }
    assert_eq!(store.len(), live, "cross-shard len() equals the sum of client models");
}

/// Batches from several threads at once, reassembled in input order.
#[test]
fn concurrent_run_batch_smoke() {
    const CLIENTS: usize = 4;
    let store = Arc::new(sharded_hash(4, 16_384));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                let base = client as u64 * 10_000;
                let puts: Vec<BatchOp> = (0..500)
                    .map(|i| BatchOp::Put(encode_key(base + i).to_vec(), value_bytes(base + i, 16)))
                    .collect();
                for reply in store.run_batch(puts) {
                    assert!(matches!(reply, BatchReply::Put(Ok(()))));
                }
                let gets: Vec<BatchOp> =
                    (0..500).map(|i| BatchOp::Get(encode_key(base + i).to_vec())).collect();
                for (i, reply) in store.run_batch(gets).into_iter().enumerate() {
                    match reply {
                        BatchReply::Get(Ok(Some(v))) => {
                            assert_eq!(v, value_bytes(base + i as u64, 16));
                        }
                        other => panic!("client {client} get {i}: {other:?}"),
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    assert_eq!(store.len(), CLIENTS as u64 * 500);
}

/// The key -> shard mapping is a pure function of key bytes and shard
/// count: stable over time and identical across store instances.
#[test]
fn partitioning_is_stable() {
    let a = sharded_hash(4, 4_096);
    let b = sharded_hash(4, 4_096);
    for id in 0..512u64 {
        let key = encode_key(id);
        let shard = a.shard_of(&key);
        assert!(shard < 4);
        assert_eq!(shard, a.shard_of(&key), "mapping must not drift within an instance");
        assert_eq!(shard, b.shard_of(&key), "mapping must agree across instances");
    }
}

#[test]
fn cross_shard_len_and_is_empty() {
    let store = sharded_hash(4, 4_096);
    assert!(store.is_empty());
    assert_eq!(store.len(), 0);
    for id in 0..100u64 {
        store.put(&encode_key(id), b"v").unwrap();
    }
    assert_eq!(store.len(), 100);
    assert!(!store.is_empty());
    // Every shard got some of the uniform keys.
    for shard in 0..store.shards() {
        let shard_len = store.with_shard(shard, |s| s.len());
        assert!(shard_len > 0, "shard {shard} holds no keys");
    }
    for id in 0..100u64 {
        assert!(store.delete(&encode_key(id)).unwrap());
    }
    assert_eq!(store.len(), 0);
    assert!(store.is_empty());
}

/// Tampering with one shard's untrusted memory is detected by that
/// shard and leaves every sibling shard fully functional: per-shard
/// Merkle roots share no verification state.
#[test]
fn attack_on_one_shard_does_not_poison_siblings() {
    let store = sharded_hash(4, 4_096);
    for id in 0..400u64 {
        store.put(&encode_key(id), &value_bytes(id, 16)).unwrap();
    }

    let victim_id = 7u64;
    let victim_key = encode_key(victim_id);
    let victim_shard = store.shard_of(&victim_key);

    let tampered =
        store.with_shard(victim_shard, move |s| s.attack_tamper_value(&encode_key(victim_id)));
    assert!(tampered, "attacker should find the victim entry");

    // The victim shard detects the attack on access.
    let err = store.get(&victim_key).unwrap_err();
    assert!(err.is_integrity_violation());

    // Every key on every *other* shard is untouched and verifiable.
    let (mut checked, mut sibling_reads) = (0u64, 0u64);
    for id in 0..400u64 {
        let key = encode_key(id);
        if store.shard_of(&key) == victim_shard {
            continue;
        }
        assert_eq!(
            store.get(&key).unwrap().unwrap(),
            value_bytes(id, 16),
            "sibling shard read of id {id} after attack on shard {victim_shard}"
        );
        sibling_reads += 1;
        checked += 1;
    }
    assert!(checked > 0 && sibling_reads > 0);

    // Sibling shards also still accept writes.
    for id in 1000..1050u64 {
        let key = encode_key(id);
        if store.shard_of(&key) != victim_shard {
            store.put(&key, b"post-attack").unwrap();
            assert_eq!(store.get(&key).unwrap().unwrap(), b"post-attack");
        }
    }
}

/// The batched KvStore API charges the per-request fixed cost once per
/// batch: a multi_get over N keys must cost strictly less than N
/// individual gets, and return identical results.
#[test]
fn multi_get_amortizes_request_costs() {
    let enclave = Arc::new(Enclave::with_default_epc());
    let mut store = AriaHash::new(StoreConfig::for_keys(8_192), Arc::clone(&enclave)).unwrap();
    for id in 0..256u64 {
        store.put(&encode_key(id), &value_bytes(id, 16)).unwrap();
    }
    // Zipf-flavored batch: heavy duplication of a few hot keys.
    let ids: Vec<u64> = (0..128u64).map(|i| if i % 4 == 0 { i } else { i % 8 }).collect();
    let keys: Vec<Vec<u8>> = ids.iter().map(|&id| encode_key(id).to_vec()).collect();
    let key_refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();

    let before = enclave.cycles();
    let sequential: Vec<_> = key_refs.iter().map(|k| store.get(k).unwrap()).collect();
    let sequential_cycles = enclave.cycles() - before;

    let before = enclave.cycles();
    let batched: Vec<_> = store.multi_get(&key_refs).into_iter().map(|r| r.unwrap()).collect();
    let batched_cycles = enclave.cycles() - before;

    assert_eq!(batched, sequential, "multi_get must agree with sequential gets");
    assert!(
        batched_cycles < sequential_cycles,
        "batched {batched_cycles} cycles should beat sequential {sequential_cycles}"
    );
}

/// put_batch coalesces duplicate keys last-write-wins and ends in the
/// same state as a sequential replay, for fewer simulated cycles.
#[test]
fn put_batch_amortizes_and_matches_sequential_state() {
    let make = || {
        let enclave = Arc::new(Enclave::with_default_epc());
        let store = AriaHash::new(StoreConfig::for_keys(8_192), Arc::clone(&enclave)).unwrap();
        (store, enclave)
    };

    let pairs_owned: Vec<(Vec<u8>, Vec<u8>)> = (0..128u64)
        .map(|i| {
            let id = i % 32; // heavy duplication
            (encode_key(id).to_vec(), value_bytes(i, 16))
        })
        .collect();
    let pairs: Vec<(&[u8], &[u8])> =
        pairs_owned.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();

    let (mut sequential, seq_enclave) = make();
    let before = seq_enclave.cycles();
    for (k, v) in &pairs {
        sequential.put(k, v).unwrap();
    }
    let sequential_cycles = seq_enclave.cycles() - before;

    let (mut batched, batch_enclave) = make();
    let before = batch_enclave.cycles();
    for result in batched.put_batch(&pairs) {
        result.unwrap();
    }
    let batched_cycles = batch_enclave.cycles() - before;

    assert_eq!(batched.len(), sequential.len());
    for id in 0..32u64 {
        let key = encode_key(id);
        assert_eq!(
            batched.get(&key).unwrap(),
            sequential.get(&key).unwrap(),
            "final state must match for id {id}"
        );
    }
    assert!(
        batched_cycles < sequential_cycles,
        "batched {batched_cycles} cycles should beat sequential {sequential_cycles}"
    );
}
