//! # Aria — a secure in-memory key-value store tolerating skewed workloads
//!
//! A from-scratch Rust reproduction of *Aria: Tolerating Skewed Workloads
//! in Secure In-memory Key-value Stores* (Yang, Chen, Lu, Wang, Shu —
//! ICDE 2021), including every substrate the paper depends on:
//!
//! * [`sim`] — an SGX platform simulator (EPC budget, cycle-accounting
//!   cost model, 4 KB secure-paging simulation);
//! * [`crypto`] — AES-128, AES-CTR and AES-CMAC implemented from scratch
//!   and validated against the standard test vectors;
//! * [`mem`] — the paper's user-space untrusted heap allocator;
//! * [`merkle`] — the flat N-ary counter Merkle tree;
//! * [`cache`] — **Secure Cache**, the paper's core contribution: a
//!   software-managed, per-node EPC cache of Merkle-tree nodes;
//! * [`store`] — the Aria KV store with hash (Aria-H) and B-tree
//!   (Aria-T) indexes, the `Aria w/o Cache` and `Baseline` comparison
//!   schemes, and attack-injection APIs;
//! * [`shieldstore`] — the ShieldStore (EuroSys'19) baseline;
//! * [`workload`] — YCSB and Facebook-ETC workload generators;
//! * [`net`] — the pipelined TCP service layer (`AriaServer` /
//!   `AriaClient` and the binary wire protocol);
//! * [`chaos`] — deterministic, seed-scheduled fault injection for the
//!   untrusted boundary (bit flips, torn writes, stale-node replays),
//!   the adversary of the `chaosbench` robustness harness;
//! * [`telemetry`] — the lock-free observability plane: per-shard
//!   counters/gauges/histograms, a bounded slow-op tracer, and the
//!   snapshot served by the `METRICS` wire opcode (watch it live with
//!   the `ariatop` binary).
//!
//! ## Quickstart
//!
//! ```
//! use aria::prelude::*;
//! use std::sync::Arc;
//!
//! // A simulated enclave with the paper's 91 MB of usable EPC.
//! let enclave = Arc::new(Enclave::with_default_epc());
//! let mut store = AriaHash::new(StoreConfig::for_keys(10_000), enclave).unwrap();
//!
//! store.put(b"user:42", b"alice").unwrap();
//! assert_eq!(store.get(b"user:42").unwrap().unwrap(), b"alice");
//!
//! // Everything in untrusted memory is encrypted and integrity
//! // protected; tampering is detected, not served:
//! store.attack_tamper_value(b"user:42");
//! assert!(store.get(b"user:42").unwrap_err().is_integrity_violation());
//! ```
//!
//! See `examples/` for workload-driven scenarios and `crates/bench` for
//! the binaries that regenerate every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use aria_cache as cache;
pub use aria_chaos as chaos;
pub use aria_crypto as crypto;
pub use aria_log as log;
pub use aria_mem as mem;
pub use aria_merkle as merkle;
pub use aria_net as net;
pub use aria_shieldstore as shieldstore;
pub use aria_sim as sim;
pub use aria_store as store;
pub use aria_telemetry as telemetry;
pub use aria_workload as workload;

/// Commonly used types in one import.
pub mod prelude {
    pub use aria_cache::{CacheConfig, EvictionPolicy, SwapMode};
    pub use aria_crypto::{CipherSuite, RealSuite};
    pub use aria_mem::AllocStrategy;
    pub use aria_net::{
        AriaClient, AriaServer, ClientConfig, Engine, ErrorCode, NetConfigError, NetError,
        ServerConfig,
    };
    pub use aria_shieldstore::ShieldStore;
    pub use aria_sim::{CostModel, Enclave, DEFAULT_EPC_BYTES};
    pub use aria_store::{
        AriaBPlusTree, AriaHash, AriaTree, BaselineStore, BatchOp, BatchReply, CacheStats,
        ConfigError, GroupStats, KvStore, MaintenanceReport, RecoveryFailure, ReplicaRole, Scheme,
        ShardHealth, ShardedStore, StoreConfig, StoreError, TierStats, TieredOptions, TieredStore,
        Violation,
    };
    pub use aria_workload::{
        encode_key, value_bytes, EtcConfig, EtcWorkload, KeyDistribution, Request, YcsbConfig,
        YcsbWorkload,
    };
}
