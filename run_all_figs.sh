#!/bin/bash
# Regenerate every table and figure (scaled defaults). See EXPERIMENTS.md.
set -u
cd "$(dirname "$0")"
mkdir -p results
rm -f results/*.jsonl
for fig in table1 fig2 fig9 fig11 fig12 fig14 fig15 fig16b memory ablation_scramble ext_bplus fig16a fig10 fig13 scaling; do
  echo "=== running $fig ==="
  start=$SECONDS
  ./target/release/$fig "$@" > results/$fig.txt 2> results/$fig.log || echo "$fig FAILED"
  echo "$fig took $((SECONDS-start))s"
done
echo ALL_FIGS_DONE
