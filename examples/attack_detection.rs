//! Attack injection walkthrough (paper §V-C threat analysis): every
//! class of untrusted-memory attack the paper defends against is
//! mounted from the "attacker side" and shown to be detected.
//!
//! ```sh
//! cargo run --release --example attack_detection
//! ```

use aria::prelude::*;
use std::sync::Arc;

fn check(label: &str, detected: bool) {
    println!("{:<44} {}", label, if detected { "DETECTED" } else { "!! MISSED !!" });
    assert!(detected, "{label} went undetected");
}

fn main() {
    let enclave = Arc::new(Enclave::with_default_epc());
    let mut store = AriaHash::new(StoreConfig::for_keys(10_000), enclave).unwrap();
    for i in 0..1000u64 {
        store.put(&encode_key(i), format!("secret-value-{i}").as_bytes()).unwrap();
    }

    // 1. Value tampering: flip one ciphertext bit.
    store.attack_tamper_value(&encode_key(1));
    check(
        "ciphertext tamper (one bit)",
        store.get(&encode_key(1)).is_err_and(|e| e.is_integrity_violation()),
    );

    // 2. Replay: restore an entry (ciphertext + MAC) to an older version.
    // The update keeps the value length, so the entry stays in place and
    // the attacker can overwrite the live block with the stale bytes.
    let snapshot = store.attack_snapshot(&encode_key(2)).unwrap();
    store.put(&encode_key(2), b"newer-value-2!").unwrap();
    store.attack_replay(&snapshot);
    check(
        "entry replay to stale version",
        store.get(&encode_key(2)).is_err_and(|e| e.is_integrity_violation()),
    );

    // 3. Index connection attack (Figure 7): swap two bucket pointers.
    store.attack_swap_bucket_pointers(&encode_key(3), &encode_key(4));
    let r3 = store.get(&encode_key(3));
    let r4 = store.get(&encode_key(4));
    check(
        "bucket pointer swap",
        r3.is_err_and(|e| e.is_integrity_violation())
            || r4.is_err_and(|e| e.is_integrity_violation()),
    );

    // Fresh store for the remaining attacks (the one above is poisoned).
    let enclave = Arc::new(Enclave::with_default_epc());
    let mut store = AriaHash::new(StoreConfig::for_keys(10_000), enclave).unwrap();
    for i in 0..1000u64 {
        store.put(&encode_key(i), b"protected").unwrap();
    }

    // 4. Unauthorized deletion: unlink an entry without touching the
    //    in-enclave per-bucket counts.
    store.attack_unauthorized_delete(&encode_key(5));
    // Detected either by the in-enclave bucket count (chain got shorter)
    // or by the successor's AdField MAC (its incoming pointer cell moved).
    check(
        "unauthorized deletion (unlink)",
        store.get(&encode_key(5)).is_err_and(|e| e.is_integrity_violation()),
    );

    // 5. B-tree connection attack: swap child pointers across parents.
    let enclave = Arc::new(Enclave::with_default_epc());
    let mut tree =
        AriaTree::new(StoreConfig { btree_order: 7, ..StoreConfig::for_keys(10_000) }, enclave)
            .unwrap();
    for i in 0..3000u64 {
        tree.put(&encode_key(i), b"v").unwrap();
    }
    assert!(tree.attack_swap_child_pointers());
    let mut detected = false;
    for i in 0..3000u64 {
        if tree.get(&encode_key(i)).is_err_and(|e| e.is_integrity_violation()) {
            detected = true;
            break;
        }
    }
    check("B-tree child-pointer swap", detected);

    println!("\nall injected attacks were detected.");
}
