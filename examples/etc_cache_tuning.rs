//! Tune the Secure Cache for a production-like workload: run the
//! Facebook ETC mix against Aria-H at several cache sizes and
//! replacement policies, showing the price-performance trade-off that
//! the paper's Figure 12/14 analyses (a smaller cache frees EPC for
//! other tenants at a modest throughput cost; FIFO beats LRU because
//! hits pay no metadata tax).
//!
//! ```sh
//! cargo run --release --example etc_cache_tuning
//! ```

use aria::prelude::*;
use std::sync::Arc;

const KEYS: u64 = 200_000;
const OPS: u64 = 100_000;

fn run_point(cache_bytes: usize, policy: EvictionPolicy) -> (f64, f64) {
    let enclave = Arc::new(Enclave::with_default_epc());
    let mut cfg = StoreConfig::for_keys(KEYS);
    cfg.cache = CacheConfig { capacity_bytes: cache_bytes, policy, ..CacheConfig::default() };
    let mut store = AriaHash::new(cfg, Arc::clone(&enclave)).unwrap();

    let mut wl =
        EtcWorkload::new(EtcConfig { keyspace: KEYS, read_ratio: 0.95, ..EtcConfig::default() });
    for (id, len) in wl.load_items().collect::<Vec<_>>() {
        store.put(&encode_key(id), &value_bytes(id, len)).unwrap();
    }
    for _ in 0..OPS {
        step(&mut store, wl.next_request());
    }
    enclave.reset_metrics();
    let t0 = enclave.cycles();
    for _ in 0..OPS {
        step(&mut store, wl.next_request());
    }
    (enclave.throughput(OPS, t0), store.cache_stats().map(|c| c.hit_ratio()).unwrap_or(0.0))
}

fn step(store: &mut AriaHash, req: Request) {
    match req {
        Request::Get { id } => {
            store.get(&encode_key(id)).unwrap();
        }
        Request::Put { id, value_len } => {
            store.put(&encode_key(id), &value_bytes(id ^ 7, value_len)).unwrap();
        }
    }
}

fn main() {
    println!("Facebook ETC mix, {KEYS} keys, 95% reads\n");
    println!("{:<12} {:<8} {:>12} {:>10}", "cache", "policy", "ops/s", "hit ratio");
    for mb in [8usize, 4, 2, 1] {
        for policy in [EvictionPolicy::Fifo, EvictionPolicy::Lru] {
            let (tput, hit) = run_point(mb << 20, policy);
            println!(
                "{:<12} {:<8} {:>12.0} {:>9.1}%",
                format!("{mb} MB"),
                format!("{policy:?}"),
                tput,
                hit * 100.0
            );
        }
    }
    println!("\ntakeaway: throughput degrades gracefully as the cache shrinks,");
    println!("and FIFO consistently edges out LRU on the hit path (paper §IV-E).");
}
