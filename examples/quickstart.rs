//! Quickstart: create an Aria store inside a simulated enclave, run a
//! few operations, and inspect what the protection machinery did.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use aria::prelude::*;
use std::sync::Arc;

fn main() {
    // A simulated SGX enclave with the paper's 91 MB of usable EPC.
    let enclave = Arc::new(Enclave::with_default_epc());

    // An Aria store with the hash index (Aria-H), sized for 100k keys.
    // Counters are protected by a Merkle tree whose nodes the Secure
    // Cache keeps in the EPC at fine granularity.
    let mut store = AriaHash::new(StoreConfig::for_keys(100_000), Arc::clone(&enclave))
        .expect("store construction");

    // Ordinary KV usage. Everything that leaves the enclave is
    // AES-CTR-encrypted and CMAC-authenticated.
    store.put(b"user:1001", b"alice").unwrap();
    store.put(b"user:1002", b"bob").unwrap();
    store.put(b"session:9", b"{\"ttl\": 3600}").unwrap();

    assert_eq!(store.get(b"user:1001").unwrap().unwrap(), b"alice");
    assert_eq!(store.get(b"nope").unwrap(), None);

    store.put(b"user:1001", b"alice-v2").unwrap(); // update re-encrypts with a bumped counter
    assert_eq!(store.get(b"user:1001").unwrap().unwrap(), b"alice-v2");

    assert!(store.delete(b"user:1002").unwrap());
    assert_eq!(store.get(b"user:1002").unwrap(), None);

    // What did that cost on the simulated SGX platform?
    let snap = enclave.snapshot();
    println!("simulated cycles:        {}", snap.cycles);
    println!("MACs computed:           {}", snap.macs_computed);
    println!("bytes encrypted:         {}", snap.bytes_crypted);
    println!("EPC page faults:         {}", snap.page_faults);
    println!("EPC in use:              {} KB", enclave.epc_used() / 1024);
    println!(
        "secure cache hit ratio:  {:.1}%",
        store.cache_stats().map(|c| c.hit_ratio()).unwrap_or(0.0) * 100.0
    );

    // The B-tree index (Aria-T) offers the same API plus ordered scans.
    let enclave2 = Arc::new(Enclave::with_default_epc());
    let mut tree = AriaTree::new(StoreConfig::for_keys(10_000), enclave2).unwrap();
    for user in [3u64, 1, 2] {
        tree.put(format!("user:{user:04}").as_bytes(), b"profile").unwrap();
    }
    let ordered = tree.keys_in_order().unwrap();
    println!(
        "tree keys in order:      {:?}",
        ordered.iter().map(|k| String::from_utf8_lossy(k).into_owned()).collect::<Vec<_>>()
    );
}
