//! Drive Aria-H and ShieldStore with a skewed YCSB workload and compare
//! simulated throughput — a miniature of the paper's Figure 9 headline.
//!
//! ```sh
//! cargo run --release --example ycsb_skew
//! ```

use aria::prelude::*;
use std::sync::Arc;

const KEYS: u64 = 200_000;
const OPS: u64 = 100_000;
const EPC: usize = DEFAULT_EPC_BYTES / 10; // keep the working set > EPC

fn drive(store: &mut dyn KvStore, label: &str) {
    // Load every key, then measure a zipfian read-mostly phase.
    for id in 0..KEYS {
        store.put(&encode_key(id), &value_bytes(id, 16)).unwrap();
    }
    let mut workload = YcsbWorkload::new(YcsbConfig {
        keyspace: KEYS,
        read_ratio: 0.95,
        value_len: 16,
        distribution: KeyDistribution::Zipfian { theta: 0.99 },
        seed: 7,
    });
    // Warm up the caches, then measure.
    for _ in 0..OPS {
        step(store, workload.next_request());
    }
    store.enclave().reset_metrics();
    let t0 = store.enclave().cycles();
    for _ in 0..OPS {
        step(store, workload.next_request());
    }
    let throughput = store.enclave().throughput(OPS, t0);
    println!(
        "{:<12} {:>10.0} ops/s   (cache hit ratio {})",
        label,
        throughput,
        store
            .cache_stats()
            .map(|c| format!("{:.1}%", c.hit_ratio() * 100.0))
            .unwrap_or_else(|| "n/a".into()),
    );
}

fn step(store: &mut dyn KvStore, req: Request) {
    match req {
        Request::Get { id } => {
            store.get(&encode_key(id)).unwrap();
        }
        Request::Put { id, value_len } => {
            store.put(&encode_key(id), &value_bytes(id ^ 99, value_len)).unwrap();
        }
    }
}

fn main() {
    println!("{KEYS} keys, {OPS} measured ops, zipf 0.99, 95% reads, EPC {} MB\n", EPC >> 20);

    let enclave = Arc::new(Enclave::new(CostModel::default(), EPC));
    let mut cfg = StoreConfig::for_keys(KEYS);
    // Size the Secure Cache within this enclave's EPC slice.
    cfg.cache = CacheConfig::with_capacity(EPC / 2);
    let mut aria = AriaHash::new(cfg, Arc::clone(&enclave)).unwrap();
    drive(&mut aria, "Aria-H");

    let enclave = Arc::new(Enclave::new(CostModel::default(), EPC));
    let mut shield = ShieldStore::new((KEYS / 2) as usize, enclave).unwrap();
    // ShieldStore has its own error type; drive it directly.
    for id in 0..KEYS {
        shield.put(&encode_key(id), &value_bytes(id, 16)).unwrap();
    }
    let mut workload = YcsbWorkload::new(YcsbConfig {
        keyspace: KEYS,
        read_ratio: 0.95,
        value_len: 16,
        distribution: KeyDistribution::Zipfian { theta: 0.99 },
        seed: 7,
    });
    for _ in 0..OPS {
        match workload.next_request() {
            Request::Get { id } => {
                shield.get(&encode_key(id)).unwrap();
            }
            Request::Put { id, value_len } => {
                shield.put(&encode_key(id), &value_bytes(id ^ 99, value_len)).unwrap();
            }
        }
    }
    shield.enclave().reset_metrics();
    let t0 = shield.enclave().cycles();
    for _ in 0..OPS {
        match workload.next_request() {
            Request::Get { id } => {
                shield.get(&encode_key(id)).unwrap();
            }
            Request::Put { id, value_len } => {
                shield.put(&encode_key(id), &value_bytes(id ^ 99, value_len)).unwrap();
            }
        }
    }
    println!("{:<12} {:>10.0} ops/s", "ShieldStore", shield.enclave().throughput(OPS, t0));
}
