//! Multi-tenant deployment: several independent Aria enclaves share the
//! physical EPC (paper §VI-D5). Each tenant gets an even EPC slice; the
//! Secure Cache shrinks accordingly and no tenant ever triggers secure
//! paging.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use aria::prelude::*;
use std::sync::Arc;

const KEYS_PER_TENANT: u64 = 100_000;
const OPS: u64 = 50_000;

fn tenant_throughput(epc_slice: usize, seed: u64) -> f64 {
    let enclave = Arc::new(Enclave::new(CostModel::default(), epc_slice));
    let mut cfg = StoreConfig::for_keys(KEYS_PER_TENANT);
    // Size the cache inside the tenant's EPC slice, leaving room for the
    // index metadata and allocator bitmaps.
    cfg.cache = CacheConfig::with_capacity(epc_slice / 2);
    let mut store = AriaHash::new(cfg, Arc::clone(&enclave)).unwrap();

    for id in 0..KEYS_PER_TENANT {
        store.put(&encode_key(id), &value_bytes(id, 16)).unwrap();
    }
    let mut wl = YcsbWorkload::new(YcsbConfig {
        keyspace: KEYS_PER_TENANT,
        read_ratio: 0.95,
        value_len: 16,
        distribution: KeyDistribution::Zipfian { theta: 0.99 },
        seed,
    });
    for _ in 0..OPS {
        match wl.next_request() {
            Request::Get { id } => {
                store.get(&encode_key(id)).unwrap();
            }
            Request::Put { id, value_len } => {
                store.put(&encode_key(id), &value_bytes(id ^ 3, value_len)).unwrap();
            }
        }
    }
    enclave.reset_metrics();
    let t0 = enclave.cycles();
    for _ in 0..OPS {
        match wl.next_request() {
            Request::Get { id } => {
                store.get(&encode_key(id)).unwrap();
            }
            Request::Put { id, value_len } => {
                store.put(&encode_key(id), &value_bytes(id ^ 3, value_len)).unwrap();
            }
        }
    }
    enclave.throughput(OPS, t0)
}

fn main() {
    println!(
        "EPC {} MB shared by N tenants, {KEYS_PER_TENANT} keys each\n",
        DEFAULT_EPC_BYTES >> 20
    );
    println!("{:<10} {:>16} {:>18}", "tenants", "per-tenant ops/s", "aggregate ops/s");
    for tenants in [1usize, 2, 4, 8] {
        let slice = DEFAULT_EPC_BYTES / tenants;
        let mut sum = 0.0;
        for t in 0..tenants {
            sum += tenant_throughput(slice, 0xbeef ^ (t as u64) << 24);
        }
        let avg = sum / tenants as f64;
        println!("{:<10} {:>16.0} {:>18.0}", tenants, avg, sum);
    }
    println!("\nper-tenant throughput degrades gently as the EPC slice shrinks —");
    println!("the Secure Cache absorbs the pressure (paper Figure 16a).");
}
