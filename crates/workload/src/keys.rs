//! Deterministic key encoding.
//!
//! Every experiment in the paper uses fixed 16-byte keys. We derive the
//! key bytes from a `u64` key id so that loaders, request generators and
//! verifiers agree on the byte representation without coordination.

/// Fixed key length used throughout the evaluation (16 bytes).
pub const KEY_LEN: usize = 16;

/// Encode a key id as its 16-byte key.
///
/// Layout: 8-byte big-endian id followed by an 8-byte mix of the id, so
/// keys are unique, order-correlated in the first half (useful for B-tree
/// range sanity checks) and non-trivial in the second half.
pub fn encode_key(id: u64) -> [u8; KEY_LEN] {
    let mut key = [0u8; KEY_LEN];
    key[..8].copy_from_slice(&id.to_be_bytes());
    let mut x = id.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5bf0_3635;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    key[8..].copy_from_slice(&x.to_le_bytes());
    key
}

/// Recover the key id from an encoded key.
pub fn decode_key(key: &[u8]) -> Option<u64> {
    if key.len() != KEY_LEN {
        return None;
    }
    let id = u64::from_be_bytes(key[..8].try_into().unwrap());
    if encode_key(id)[8..] == key[8..] {
        Some(id)
    } else {
        None
    }
}

/// Deterministic value bytes for a key id and length (so tests can verify
/// store contents without keeping a shadow copy).
pub fn value_bytes(id: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut x = id ^ 0xa076_1d64_78bd_642f;
    while out.len() < len {
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let bytes = x.to_le_bytes();
        let take = (len - out.len()).min(8);
        out.extend_from_slice(&bytes[..take]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for id in [0u64, 1, 255, 1 << 40, u64::MAX] {
            assert_eq!(decode_key(&encode_key(id)), Some(id));
        }
    }

    #[test]
    fn keys_are_unique_and_ordered_by_prefix() {
        let a = encode_key(10);
        let b = encode_key(11);
        assert_ne!(a, b);
        assert!(a < b, "big-endian prefix must preserve id order");
    }

    #[test]
    fn decode_rejects_corruption() {
        let mut k = encode_key(7);
        k[12] ^= 1;
        assert_eq!(decode_key(&k), None);
        assert_eq!(decode_key(&k[..8]), None);
    }

    #[test]
    fn value_bytes_deterministic_and_sized() {
        for len in [0usize, 1, 13, 300, 1024] {
            let v = value_bytes(9, len);
            assert_eq!(v.len(), len);
            assert_eq!(v, value_bytes(9, len));
        }
        assert_ne!(value_bytes(1, 16), value_bytes(2, 16));
    }
}
