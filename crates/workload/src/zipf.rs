//! Zipfian key-popularity generators, following the YCSB implementation
//! (Gray et al.'s "Quickly generating billion-record synthetic databases"
//! rejection-free method).
//!
//! `theta` (the paper calls it skewness) defaults to 0.99 — YCSB's
//! default — and Figure 16(b) sweeps it up to 1.2 to model the
//! "unprecedented skew" of recent production traces.

use rand::Rng;

/// Zipfian generator over `0..n` where rank 0 is the most popular item.
#[derive(Debug, Clone)]
pub struct ZipfianGenerator {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

impl ZipfianGenerator {
    /// Build a generator over `n` items with skew `theta` (0 < theta,
    /// theta != 1; YCSB default 0.99).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian domain must be non-empty");
        assert!(theta > 0.0 && (theta - 1.0).abs() > 1e-9, "theta must be > 0 and != 1");
        let zetan = zeta(n, theta);
        let zeta2theta = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        ZipfianGenerator { n, theta, alpha, zetan, eta, zeta2theta }
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draw the next rank (0 = hottest).
    pub fn next<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Theoretical probability of rank `r` (for tests).
    pub fn probability(&self, rank: u64) -> f64 {
        1.0 / ((rank + 1) as f64).powf(self.theta) / self.zetan
    }

    /// `zeta(2, theta)` — exposed for diagnostics.
    pub fn zeta2theta(&self) -> f64 {
        self.zeta2theta
    }
}

/// Zipfian popularity with ranks scattered over the key space (YCSB's
/// `ScrambledZipfianGenerator`): hot keys are spread out instead of being
/// the numerically smallest ids, which is what defeats page-granularity
/// hotness tracking in the paper's motivation.
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    inner: ZipfianGenerator,
}

/// FNV-1a 64-bit hash, as used by YCSB for scrambling.
#[inline]
pub fn fnv1a64(mut x: u64) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for _ in 0..8 {
        hash ^= x & 0xff;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        x >>= 8;
    }
    hash
}

impl ScrambledZipfian {
    /// Build over `0..n` with skew `theta`.
    pub fn new(n: u64, theta: f64) -> Self {
        ScrambledZipfian { inner: ZipfianGenerator::new(n, theta) }
    }

    /// Draw the next key id in `0..n`.
    pub fn next<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        fnv1a64(self.inner.next(rng)) % self.inner.n()
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.inner.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranks_stay_in_domain() {
        let g = ZipfianGenerator::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(g.next(&mut rng) < 1000);
        }
    }

    #[test]
    fn rank_zero_is_hottest() {
        let g = ZipfianGenerator::new(10_000, 0.99);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u64; 10];
        let draws = 200_000;
        for _ in 0..draws {
            let r = g.next(&mut rng);
            if r < 10 {
                counts[r as usize] += 1;
            }
        }
        for i in 1..10 {
            assert!(counts[0] >= counts[i], "rank 0 ({}) < rank {i} ({})", counts[0], counts[i]);
        }
        // Empirical frequency of rank 0 close to theory (within 15%).
        let expect = g.probability(0);
        let got = counts[0] as f64 / draws as f64;
        assert!((got - expect).abs() / expect < 0.15, "expect {expect}, got {got}");
    }

    #[test]
    fn higher_theta_is_more_skewed() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut share = |theta: f64| {
            let g = ZipfianGenerator::new(100_000, theta);
            let mut hot = 0u64;
            for _ in 0..50_000 {
                if g.next(&mut rng) < 100 {
                    hot += 1;
                }
            }
            hot
        };
        let low = share(0.8);
        let high = share(1.2);
        assert!(high > low, "theta=1.2 ({high}) should concentrate more than 0.8 ({low})");
    }

    #[test]
    fn scrambled_covers_domain_uniform_positions() {
        let g = ScrambledZipfian::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20_000 {
            let k = g.next(&mut rng);
            assert!(k < 1000);
            seen.insert(k);
        }
        // The hot set should not be the first few ids (scrambling works).
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(g.next(&mut rng)).or_insert(0u64) += 1;
        }
        let hottest = counts.iter().max_by_key(|(_, c)| **c).map(|(k, _)| *k).unwrap();
        assert_eq!(hottest, fnv1a64(0) % 1000);
    }

    #[test]
    fn fnv_matches_reference_implementation() {
        fn reference(x: u64) -> u64 {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in x.to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            hash
        }
        for x in [0u64, 1, 2, 42, u64::MAX, 0xdead_beef] {
            assert_eq!(fnv1a64(x), reference(x));
        }
        assert_ne!(fnv1a64(1), fnv1a64(2));
    }
}
