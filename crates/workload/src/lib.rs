//! Workload generators for the Aria evaluation.
//!
//! * [`ycsb`] — the YCSB microbenchmark grid (§VI-A): uniform / zipfian
//!   key popularity, configurable read ratio and value size.
//! * [`etc`] — the Facebook ETC pool emulation (§VI-B): tiny/small/large
//!   value classes with zipfian traffic over the tiny+small keys.
//! * [`zipf`] — the underlying YCSB-style (scrambled) zipfian samplers.
//! * [`keys`] — deterministic 16-byte key and value codecs shared by
//!   loaders, drivers and verifiers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod etc;
pub mod keys;
pub mod ycsb;
pub mod zipf;

pub use etc::{EtcConfig, EtcWorkload};
pub use keys::{decode_key, encode_key, value_bytes, KEY_LEN};
pub use ycsb::{KeyDistribution, Request, YcsbConfig, YcsbWorkload};
pub use zipf::{fnv1a64, ScrambledZipfian, ZipfianGenerator};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #[test]
        fn zipf_ranks_always_in_domain(n in 1u64..10_000, theta in 0.2f64..1.4, seed in any::<u64>()) {
            // theta == 1.0 is excluded by construction assertions.
            let theta = if (theta - 1.0).abs() < 1e-3 { 0.99 } else { theta };
            let g = ZipfianGenerator::new(n, theta);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..100 {
                prop_assert!(g.next(&mut rng) < n);
            }
        }

        #[test]
        fn key_codec_roundtrips(id in any::<u64>()) {
            prop_assert_eq!(decode_key(&encode_key(id)), Some(id));
        }

        #[test]
        fn etc_value_lengths_in_class(ks in 100u64..100_000, id in any::<u64>()) {
            let id = id % ks;
            let len = EtcWorkload::value_len_for(ks, id);
            prop_assert!((1..=etc::LARGE_VALUE_CAP).contains(&len));
        }
    }
}
