//! YCSB-style microbenchmark workloads (paper §VI-A).
//!
//! The paper's grid: keyspace of 10 M 16-byte keys; value sizes 16 B
//! (small), 128 B (medium), 512 B (large); read ratios 50 %, 95 %, 100 %;
//! key popularity either uniform or zipfian with skewness 0.99 (YCSB's
//! default skew). Plain and scrambled zipfian variants are provided; see
//! [`KeyDistribution`] for the locality trade-off between them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::{ScrambledZipfian, ZipfianGenerator};

/// Key-popularity distribution.
#[derive(Debug, Clone)]
pub enum KeyDistribution {
    /// Every key equally likely.
    Uniform,
    /// Plain zipfian: rank r = key id r, so hot keys are contiguous in
    /// the id space (and therefore cluster in counter Merkle leaves and
    /// EPC pages, since ids are assigned in load order). This matches
    /// the locality the paper's measurements imply for both Secure Cache
    /// and hardware-paging hotness.
    Zipfian {
        /// Skew parameter (YCSB default 0.99).
        theta: f64,
    },
    /// YCSB's ScrambledZipfianGenerator: zipfian popularity with hot keys
    /// scattered uniformly over the id space — the adversarial layout for
    /// any page- or node-granularity hotness tracking.
    ScrambledZipfian {
        /// Skew parameter.
        theta: f64,
    },
}

/// One generated request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Read the value of a key id.
    Get {
        /// Key id in `0..keyspace`.
        id: u64,
    },
    /// Write (upsert) a key id with a value of the given length.
    Put {
        /// Key id in `0..keyspace`.
        id: u64,
        /// Value length in bytes.
        value_len: usize,
    },
}

impl Request {
    /// The key id this request touches.
    pub fn id(&self) -> u64 {
        match self {
            Request::Get { id } | Request::Put { id, .. } => *id,
        }
    }

    /// Whether this is a read.
    pub fn is_get(&self) -> bool {
        matches!(self, Request::Get { .. })
    }
}

/// YCSB workload configuration.
#[derive(Debug, Clone)]
pub struct YcsbConfig {
    /// Number of distinct keys.
    pub keyspace: u64,
    /// Fraction of Get requests (0.0 ..= 1.0).
    pub read_ratio: f64,
    /// Fixed value length in bytes.
    pub value_len: usize,
    /// Key popularity.
    pub distribution: KeyDistribution,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        YcsbConfig {
            keyspace: 10_000_000,
            read_ratio: 0.95,
            value_len: 16,
            distribution: KeyDistribution::Zipfian { theta: 0.99 },
            seed: 0x5eed,
        }
    }
}

enum Sampler {
    Uniform,
    Plain(ZipfianGenerator),
    Scrambled(ScrambledZipfian),
}

/// Streaming YCSB request generator.
pub struct YcsbWorkload {
    cfg: YcsbConfig,
    sampler: Sampler,
    rng: StdRng,
}

impl YcsbWorkload {
    /// Build the generator (precomputes the zipfian constants).
    pub fn new(cfg: YcsbConfig) -> Self {
        let sampler = match cfg.distribution {
            KeyDistribution::Uniform => Sampler::Uniform,
            KeyDistribution::Zipfian { theta } => {
                Sampler::Plain(ZipfianGenerator::new(cfg.keyspace, theta))
            }
            KeyDistribution::ScrambledZipfian { theta } => {
                Sampler::Scrambled(ScrambledZipfian::new(cfg.keyspace, theta))
            }
        };
        let rng = StdRng::seed_from_u64(cfg.seed);
        YcsbWorkload { cfg, sampler, rng }
    }

    /// The configuration.
    pub fn config(&self) -> &YcsbConfig {
        &self.cfg
    }

    /// Draw the next key id.
    pub fn next_id(&mut self) -> u64 {
        match &self.sampler {
            Sampler::Uniform => self.rng.gen_range(0..self.cfg.keyspace),
            Sampler::Plain(z) => z.next(&mut self.rng),
            Sampler::Scrambled(z) => z.next(&mut self.rng),
        }
    }

    /// Draw the next request.
    pub fn next_request(&mut self) -> Request {
        let id = self.next_id();
        if self.rng.gen::<f64>() < self.cfg.read_ratio {
            Request::Get { id }
        } else {
            Request::Put { id, value_len: self.cfg.value_len }
        }
    }

    /// Key ids for the initial load phase (every key once).
    pub fn load_ids(&self) -> impl Iterator<Item = u64> {
        0..self.cfg.keyspace
    }
}

impl Iterator for YcsbWorkload {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        Some(self.next_request())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_ratio_respected() {
        let mut w = YcsbWorkload::new(YcsbConfig {
            keyspace: 1000,
            read_ratio: 0.95,
            ..YcsbConfig::default()
        });
        let n = 20_000;
        let gets = (&mut w).take(n).filter(|r| r.is_get()).count();
        let ratio = gets as f64 / n as f64;
        assert!((ratio - 0.95).abs() < 0.01, "got {ratio}");
    }

    #[test]
    fn ids_in_range_both_distributions() {
        for dist in [KeyDistribution::Uniform, KeyDistribution::Zipfian { theta: 0.99 }] {
            let mut w = YcsbWorkload::new(YcsbConfig {
                keyspace: 500,
                distribution: dist,
                ..YcsbConfig::default()
            });
            for _ in 0..5_000 {
                assert!(w.next_id() < 500);
            }
        }
    }

    #[test]
    fn zipfian_is_skewed_uniform_is_not() {
        let hot_share = |dist| {
            let mut w = YcsbWorkload::new(YcsbConfig {
                keyspace: 10_000,
                distribution: dist,
                seed: 7,
                ..YcsbConfig::default()
            });
            let mut counts = std::collections::HashMap::new();
            for _ in 0..50_000 {
                *counts.entry(w.next_id()).or_insert(0u64) += 1;
            }
            let mut freq: Vec<u64> = counts.into_values().collect();
            freq.sort_unstable_by(|a, b| b.cmp(a));
            freq.iter().take(100).sum::<u64>() as f64 / 50_000.0
        };
        let zipf = hot_share(KeyDistribution::Zipfian { theta: 0.99 });
        let unif = hot_share(KeyDistribution::Uniform);
        assert!(zipf > 0.4, "zipf top-100 share {zipf}");
        assert!(unif < 0.1, "uniform top-100 share {unif}");
    }

    #[test]
    fn seeded_generation_is_reproducible() {
        let cfg = YcsbConfig { keyspace: 100, seed: 42, ..YcsbConfig::default() };
        let a: Vec<Request> = YcsbWorkload::new(cfg.clone()).take(100).collect();
        let b: Vec<Request> = YcsbWorkload::new(cfg).take(100).collect();
        assert_eq!(a, b);
    }
}
