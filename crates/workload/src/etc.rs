//! Facebook ETC pool emulation (paper §VI-B, after Atikoglu et al.,
//! SIGMETRICS'12).
//!
//! Fixed 16-byte keys, variable values in three classes:
//!
//! * **tiny** (1–13 B) — 40 % of the keyspace,
//! * **small** (14–300 B) — 55 % of the keyspace,
//! * **large** (> 300 B, capped at 1024 B here) — the remaining 5 %.
//!
//! Key popularity is zipfian (skewness 0.99) over the tiny+small keys —
//! plain (unscrambled) zipfian, so the hottest keys are the tiny-value
//! ids, consistent with the SIGMETRICS'12 observation that tiny values
//! dominate ETC traffic. Large keys are "chosen uniformly at random"
//! (paper wording). The paper does not state how request traffic splits
//! between the two groups; we route requests to the large group in
//! proportion to its keyspace share (5 %), which keeps large keys cold.
//! Recorded as a reproduction assumption in DESIGN.md/EXPERIMENTS.md.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ycsb::Request;
use crate::zipf::{fnv1a64, ZipfianGenerator};

/// Fraction of keys with tiny values.
pub const TINY_KEY_FRACTION: f64 = 0.40;
/// Fraction of keys with small values.
pub const SMALL_KEY_FRACTION: f64 = 0.55;
/// Fraction of requests routed to the (uniform) large-key group.
pub const LARGE_REQUEST_FRACTION: f64 = 0.05;
/// Upper bound we place on "large" (> 300 B) values.
pub const LARGE_VALUE_CAP: usize = 1024;

/// ETC workload configuration.
#[derive(Debug, Clone)]
pub struct EtcConfig {
    /// Number of distinct keys.
    pub keyspace: u64,
    /// Fraction of Get requests.
    pub read_ratio: f64,
    /// Zipf skewness over the tiny+small keys.
    pub theta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EtcConfig {
    fn default() -> Self {
        EtcConfig { keyspace: 10_000_000, read_ratio: 0.95, theta: 0.99, seed: 0xe7c }
    }
}

/// Streaming ETC request generator.
pub struct EtcWorkload {
    cfg: EtcConfig,
    /// Zipf over the tiny+small partition.
    zipf: ZipfianGenerator,
    hot_keys: u64,
    rng: StdRng,
}

impl EtcWorkload {
    /// Build the generator.
    pub fn new(cfg: EtcConfig) -> Self {
        let hot_keys = ((cfg.keyspace as f64) * (TINY_KEY_FRACTION + SMALL_KEY_FRACTION)) as u64;
        let hot_keys = hot_keys.max(1).min(cfg.keyspace);
        let zipf = ZipfianGenerator::new(hot_keys, cfg.theta);
        EtcWorkload { zipf, hot_keys, rng: StdRng::seed_from_u64(cfg.seed), cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &EtcConfig {
        &self.cfg
    }

    /// Value length for a key id — deterministic, so load and request
    /// phases agree. Ids `0..40%` are tiny, `40%..95%` small, rest large.
    pub fn value_len_for(cfg_keyspace: u64, id: u64) -> usize {
        let tiny_end = ((cfg_keyspace as f64) * TINY_KEY_FRACTION) as u64;
        let small_end = ((cfg_keyspace as f64) * (TINY_KEY_FRACTION + SMALL_KEY_FRACTION)) as u64;
        let h = fnv1a64(id ^ 0xe7c0_ffee);
        if id < tiny_end {
            1 + (h % 13) as usize // 1..=13
        } else if id < small_end {
            14 + (h % 287) as usize // 14..=300
        } else {
            301 + (h % (LARGE_VALUE_CAP as u64 - 300)) as usize // 301..=1024
        }
    }

    /// Draw the next key id.
    pub fn next_id(&mut self) -> u64 {
        if self.hot_keys < self.cfg.keyspace && self.rng.gen::<f64>() < LARGE_REQUEST_FRACTION {
            // Uniform over the large keys.
            self.rng.gen_range(self.hot_keys..self.cfg.keyspace)
        } else {
            self.zipf.next(&mut self.rng)
        }
    }

    /// Draw a fresh value length for a put to `id`: the key keeps its
    /// size *class* but the size within the class is redrawn, as in the
    /// production trace — so most updates change the value length and
    /// force a reallocation (this is what makes per-allocation OCALLs
    /// visible in the paper's Figure 12 `AriaBase` ablation).
    pub fn draw_put_len(&mut self, id: u64) -> usize {
        let tiny_end = ((self.cfg.keyspace as f64) * TINY_KEY_FRACTION) as u64;
        let small_end =
            ((self.cfg.keyspace as f64) * (TINY_KEY_FRACTION + SMALL_KEY_FRACTION)) as u64;
        if id < tiny_end {
            self.rng.gen_range(1..=13)
        } else if id < small_end {
            self.rng.gen_range(14..=300)
        } else {
            self.rng.gen_range(301..=LARGE_VALUE_CAP)
        }
    }

    /// Draw the next request.
    pub fn next_request(&mut self) -> Request {
        let id = self.next_id();
        if self.rng.gen::<f64>() < self.cfg.read_ratio {
            Request::Get { id }
        } else {
            let value_len = self.draw_put_len(id);
            Request::Put { id, value_len }
        }
    }

    /// Key ids plus value lengths for the load phase.
    pub fn load_items(&self) -> impl Iterator<Item = (u64, usize)> + '_ {
        let ks = self.cfg.keyspace;
        (0..ks).map(move |id| (id, Self::value_len_for(ks, id)))
    }
}

impl Iterator for EtcWorkload {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        Some(self.next_request())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_classes_match_key_partition() {
        let ks = 10_000;
        let mut tiny = 0;
        let mut small = 0;
        let mut large = 0;
        for id in 0..ks {
            match EtcWorkload::value_len_for(ks, id) {
                1..=13 => tiny += 1,
                14..=300 => small += 1,
                301..=LARGE_VALUE_CAP => large += 1,
                other => panic!("value length {other} out of any class"),
            }
        }
        assert_eq!(tiny, 4000);
        assert_eq!(small, 5500);
        assert_eq!(large, 500);
    }

    #[test]
    fn requests_mostly_hit_hot_partition() {
        let mut w = EtcWorkload::new(EtcConfig { keyspace: 10_000, ..EtcConfig::default() });
        let hot_end = 9500;
        let mut hot = 0;
        let n = 20_000;
        for _ in 0..n {
            if w.next_id() < hot_end {
                hot += 1;
            }
        }
        let share = hot as f64 / n as f64;
        assert!((share - 0.95).abs() < 0.02, "hot share {share}");
    }

    #[test]
    fn read_ratio_respected() {
        for rr in [0.0, 0.5, 0.95, 1.0] {
            let mut w = EtcWorkload::new(EtcConfig {
                keyspace: 1000,
                read_ratio: rr,
                ..EtcConfig::default()
            });
            let n = 10_000;
            let gets = (&mut w).take(n).filter(|r| r.is_get()).count() as f64 / n as f64;
            assert!((gets - rr).abs() < 0.02, "rr {rr} got {gets}");
        }
    }

    #[test]
    fn put_lengths_stay_in_key_class() {
        let mut w = EtcWorkload::new(EtcConfig {
            keyspace: 10_000,
            read_ratio: 0.0,
            ..EtcConfig::default()
        });
        for _ in 0..5_000 {
            if let Request::Put { id, value_len } = w.next_request() {
                let class_len = EtcWorkload::value_len_for(10_000, id);
                let same_class = match class_len {
                    1..=13 => (1..=13).contains(&value_len),
                    14..=300 => (14..=300).contains(&value_len),
                    _ => (301..=LARGE_VALUE_CAP).contains(&value_len),
                };
                assert!(same_class, "id {id}: class len {class_len}, put len {value_len}");
            }
        }
    }

    #[test]
    fn load_items_cover_keyspace() {
        let w = EtcWorkload::new(EtcConfig { keyspace: 100, ..EtcConfig::default() });
        let items: Vec<(u64, usize)> = w.load_items().collect();
        assert_eq!(items.len(), 100);
        assert!(items.iter().all(|(id, len)| *id < 100 && *len >= 1 && *len <= LARGE_VALUE_CAP));
    }

    #[test]
    fn hot_keys_are_skewed() {
        let mut w = EtcWorkload::new(EtcConfig { keyspace: 100_000, ..EtcConfig::default() });
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(w.next_id()).or_insert(0u64) += 1;
        }
        let mut freq: Vec<u64> = counts.into_values().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        let top100: u64 = freq.iter().take(100).sum();
        assert!(top100 as f64 / 50_000.0 > 0.3, "top-100 share too low");
    }
}
