//! Loopback integration tests for the TCP service layer: protocol round
//! trips over a real socket, pipelining, connection-limit rejection,
//! backpressure bounds, and the shutdown paths (graceful drain keeps
//! every acknowledged write; a killed server yields typed errors, not
//! hangs).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use aria_net::{proto, AriaClient, AriaServer, ClientConfig, ErrorCode, NetError, ServerConfig};
use aria_sim::Enclave;
use aria_store::sharded::ShardedStore;
use aria_store::{AriaHash, StoreConfig};

/// Abort the whole process if a test wedges: a hung connection thread
/// must fail fast (with a clear message) instead of stalling CI until
/// the job-level timeout.
struct Watchdog {
    armed: Arc<AtomicBool>,
}

fn watchdog(name: &'static str, limit: Duration) -> Watchdog {
    let armed = Arc::new(AtomicBool::new(true));
    let flag = Arc::clone(&armed);
    thread::spawn(move || {
        let start = std::time::Instant::now();
        while start.elapsed() < limit {
            thread::sleep(Duration::from_millis(50));
            if !flag.load(Ordering::SeqCst) {
                return;
            }
        }
        eprintln!("watchdog: test {name} exceeded {limit:?}; aborting");
        std::process::abort();
    });
    Watchdog { armed }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.armed.store(false, Ordering::SeqCst);
    }
}

fn sharded(shards: usize) -> Arc<ShardedStore<AriaHash>> {
    Arc::new(
        ShardedStore::with_shards(shards, |_| {
            AriaHash::new(StoreConfig::for_keys(16_384), Arc::new(Enclave::with_default_epc()))
        })
        .unwrap(),
    )
}

fn quick_config() -> ClientConfig {
    ClientConfig {
        op_timeout: Duration::from_secs(10),
        connect_timeout: Duration::from_secs(1),
        reconnect_attempts: 3,
        reconnect_backoff: Duration::from_millis(10),
        ..ClientConfig::default()
    }
}

fn quick_client(addr: std::net::SocketAddr) -> AriaClient {
    AriaClient::connect(addr, quick_config()).expect("connect to loopback server")
}

#[test]
fn every_op_round_trips_over_tcp() {
    let _wd = watchdog("every_op_round_trips_over_tcp", Duration::from_secs(60));
    let store = sharded(2);
    let server = AriaServer::bind("127.0.0.1:0", Arc::clone(&store), ServerConfig::default())
        .expect("bind loopback");
    let mut client = quick_client(server.local_addr());

    client.ping().unwrap();
    assert_eq!(client.get(b"missing").unwrap(), None);
    client.put(b"k1", b"v1").unwrap();
    assert_eq!(client.get(b"k1").unwrap().unwrap(), b"v1");
    assert!(client.delete(b"k1").unwrap());
    assert!(!client.delete(b"k1").unwrap());

    let statuses = client.put_batch(&[(b"a".as_ref(), b"1".as_ref()), (b"b", b"2")]).unwrap();
    assert!(statuses.iter().all(|s| s.is_ok()));
    let values = client.multi_get(&[b"a".as_ref(), b"b", b"nope"]).unwrap();
    assert_eq!(values[0], Ok(Some(b"1".to_vec())));
    assert_eq!(values[1], Ok(Some(b"2".to_vec())));
    assert_eq!(values[2], Ok(None));

    let stats = client.stats().unwrap();
    assert_eq!(stats.shards, 2);
    assert_eq!(stats.len, 2);
    assert!(stats.ops_served >= 8);
    assert_eq!(stats.active_connections, 1);

    // The server's view matches the in-process store.
    assert_eq!(store.len(), 2);
    server.shutdown();
}

#[test]
fn pipelined_requests_answer_in_order() {
    let _wd = watchdog("pipelined_requests_answer_in_order", Duration::from_secs(60));
    let store = sharded(4);
    let server = AriaServer::bind("127.0.0.1:0", store, ServerConfig::default()).unwrap();
    let mut client = quick_client(server.local_addr());

    // A mixed window: puts, interleaved gets and a ping, all written
    // before any response is read.
    let mut reqs = Vec::new();
    for i in 0..100u32 {
        reqs.push(proto::Request::Put {
            key: format!("key{i}").into_bytes(),
            value: i.to_le_bytes().to_vec(),
        });
    }
    reqs.push(proto::Request::Ping);
    for i in 0..100u32 {
        reqs.push(proto::Request::Get { key: format!("key{i}").into_bytes() });
    }
    let resps = client.pipeline(&reqs).unwrap();
    assert_eq!(resps.len(), 201);
    for resp in &resps[..100] {
        assert_eq!(*resp, proto::Response::PutOk);
    }
    assert_eq!(resps[100], proto::Response::Pong);
    for (i, resp) in resps[101..].iter().enumerate() {
        assert_eq!(*resp, proto::Response::Value(Some((i as u32).to_le_bytes().to_vec())));
    }
    server.shutdown();
}

#[test]
fn same_key_pipelined_writes_read_their_own_writes() {
    let _wd = watchdog("same_key_pipelined_writes", Duration::from_secs(60));
    let server = AriaServer::bind("127.0.0.1:0", sharded(4), ServerConfig::default()).unwrap();
    let mut client = quick_client(server.local_addr());
    // put(k) then get(k) in the same pipeline window target the same
    // shard, so the read must observe the write.
    let reqs = vec![
        proto::Request::Put { key: b"k".to_vec(), value: b"1".to_vec() },
        proto::Request::Get { key: b"k".to_vec() },
        proto::Request::Put { key: b"k".to_vec(), value: b"2".to_vec() },
        proto::Request::Get { key: b"k".to_vec() },
        proto::Request::Delete { key: b"k".to_vec() },
        proto::Request::Get { key: b"k".to_vec() },
    ];
    let resps = client.pipeline(&reqs).unwrap();
    assert_eq!(resps[1], proto::Response::Value(Some(b"1".to_vec())));
    assert_eq!(resps[3], proto::Response::Value(Some(b"2".to_vec())));
    assert_eq!(resps[5], proto::Response::Value(None));
    server.shutdown();
}

/// A base-version peer (one that never sends HELLO) must keep decoding
/// the STATS reply: the server notices the connection never negotiated
/// v3 and omits the tiering fields, on both engines. A handshaking
/// client on the same server sees the full v3 reply.
#[test]
fn base_version_client_still_decodes_stats() {
    let _wd = watchdog("base_version_client_still_decodes_stats", Duration::from_secs(60));
    for engine in [aria_net::Engine::Reactor, aria_net::Engine::Threads] {
        let server = AriaServer::bind(
            "127.0.0.1:0",
            sharded(2),
            ServerConfig::builder().engine(engine).build().unwrap(),
        )
        .unwrap();

        let mut old = AriaClient::connect(
            server.local_addr(),
            ClientConfig { handshake: false, ..quick_config() },
        )
        .unwrap();
        assert_eq!(old.protocol_version(), None, "no handshake ran");
        old.put(b"k", b"v").unwrap();
        let stats = old.stats().expect("v1 peer must still parse STATS");
        assert_eq!(stats.shards, 2);
        assert_eq!(stats.len, 1);
        assert_eq!(
            (stats.hot_keys, stats.cold_keys, stats.recovering),
            (0, 0, false),
            "fields the base version does not carry decode to zero"
        );

        let mut new = quick_client(server.local_addr());
        assert_eq!(new.protocol_version(), Some(proto::PROTOCOL_VERSION));
        let stats = new.stats().expect("negotiated peer parses the v3 STATS");
        assert_eq!(stats.shards, 2);
        assert_eq!(stats.len, 1);
        server.shutdown();
    }
}

#[test]
fn connection_limit_rejects_cleanly() {
    let _wd = watchdog("connection_limit_rejects_cleanly", Duration::from_secs(60));
    let server = AriaServer::bind(
        "127.0.0.1:0",
        sharded(1),
        ServerConfig::builder().max_connections(1).reactors(1).build().unwrap(),
    )
    .unwrap();
    let mut first = quick_client(server.local_addr());
    first.ping().unwrap(); // the slot is provably taken

    // The HELLO handshake consumes the rejection frame, so an
    // over-limit connection fails at connect time with the typed code.
    match AriaClient::connect(server.local_addr(), quick_config()) {
        Err(NetError::Server { code, .. }) => assert_eq!(code, ErrorCode::TooManyConnections),
        other => panic!("want TooManyConnections, got {other:?}"),
    }

    // Closing the first connection frees the slot.
    drop(first);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match AriaClient::connect(server.local_addr(), quick_config()) {
            Ok(mut retry) => {
                retry.ping().expect("admitted connection must serve");
                break;
            }
            Err(NetError::Server { code: ErrorCode::TooManyConnections, .. })
                if std::time::Instant::now() < deadline =>
            {
                thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("unexpected error while slot frees: {e}"),
        }
    }
    server.shutdown();
}

#[test]
fn malformed_frames_get_typed_error_then_close() {
    use std::io::{Read, Write};
    let _wd = watchdog("malformed_frames", Duration::from_secs(60));
    let server = AriaServer::bind("127.0.0.1:0", sharded(1), ServerConfig::default()).unwrap();
    let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // A frame with an unknown opcode.
    let mut buf = Vec::new();
    buf.extend_from_slice(&9u32.to_le_bytes());
    buf.push(0x6F);
    buf.extend_from_slice(&42u64.to_le_bytes());
    raw.write_all(&buf).unwrap();
    let mut resp = Vec::new();
    raw.read_to_end(&mut resp).unwrap(); // server answers then closes
                                         // No HELLO ran on this raw socket, so the server answers at the
                                         // base version; decode accordingly.
    match aria_net::proto::decode_response_versioned(&resp, aria_net::proto::BASE_PROTOCOL_VERSION)
        .unwrap()
    {
        aria_net::proto::Decoded::Frame(_, id, aria_net::proto::Response::Error { code, .. }) => {
            assert_eq!(id, aria_net::proto::CONTROL_ID);
            assert_eq!(code, ErrorCode::UnknownOpcode);
        }
        other => panic!("want control error frame, got {other:?}"),
    }
    server.shutdown();
}

/// Graceful shutdown under pipelined load: every write the server
/// acknowledged must be readable from the store afterwards.
#[test]
fn graceful_shutdown_loses_no_acknowledged_write() {
    let _wd = watchdog("graceful_shutdown_loses_no_acknowledged_write", Duration::from_secs(120));
    const CLIENTS: usize = 4;
    const DEPTH: usize = 32;

    let store = sharded(4);
    let server = AriaServer::bind("127.0.0.1:0", Arc::clone(&store), ServerConfig::default())
        .expect("bind loopback");
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut client = AriaClient::connect(
                    addr,
                    ClientConfig {
                        op_timeout: Duration::from_secs(10),
                        reconnect_attempts: 1,
                        ..ClientConfig::default()
                    },
                )
                .unwrap();
                let mut acked: Vec<u64> = Vec::new();
                let mut seq = 0u64;
                'pump: while !stop.load(Ordering::SeqCst) {
                    let ids: Vec<u64> = (0..DEPTH).map(|i| seq + i as u64).collect();
                    let reqs: Vec<proto::Request> = ids
                        .iter()
                        .map(|id| proto::Request::Put {
                            key: format!("c{c}-{id}").into_bytes(),
                            value: id.to_le_bytes().to_vec(),
                        })
                        .collect();
                    seq += DEPTH as u64;
                    match client.pipeline(&reqs) {
                        Ok(resps) => {
                            for (id, resp) in ids.iter().zip(resps) {
                                if resp == proto::Response::PutOk {
                                    acked.push(*id);
                                }
                            }
                        }
                        // Shutdown closed the connection: whatever this
                        // window would have acked was never acked.
                        Err(_) => break 'pump,
                    }
                }
                acked
            })
        })
        .collect();

    // Let the writers build up real in-flight pipelines, then shut down
    // underneath them.
    thread::sleep(Duration::from_millis(300));
    server.shutdown();
    stop.store(true, Ordering::SeqCst);

    for (c, writer) in writers.into_iter().enumerate() {
        let acked = writer.join().expect("writer thread");
        assert!(!acked.is_empty(), "client {c} never got an ack; no load was generated");
        for id in acked {
            let key = format!("c{c}-{id}").into_bytes();
            let got = store.get(&key).expect("store intact after shutdown");
            assert_eq!(
                got,
                Some(id.to_le_bytes().to_vec()),
                "client {c} write {id} was acked but is not in the store"
            );
        }
    }
}

/// A server killed mid-load yields typed transport errors on every
/// client — quickly, never a hang (the watchdog enforces that).
#[test]
fn killed_server_yields_typed_errors_not_hangs() {
    let _wd = watchdog("killed_server_yields_typed_errors", Duration::from_secs(120));
    let store = sharded(2);
    let server = AriaServer::bind("127.0.0.1:0", store, ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut client = AriaClient::connect(
        addr,
        ClientConfig {
            op_timeout: Duration::from_secs(2),
            connect_timeout: Duration::from_millis(200),
            reconnect_attempts: 2,
            reconnect_backoff: Duration::from_millis(10),
            ..ClientConfig::default()
        },
    )
    .unwrap();
    client.put(b"live", b"yes").unwrap();

    server.shutdown();

    // In-flight/after-shutdown ops fail with transport errors; the
    // client survives to report each one.
    let mut failures = 0;
    for i in 0..5u32 {
        match client.put(format!("after{i}").as_bytes(), b"x") {
            Ok(()) => panic!("put succeeded against a dead server"),
            Err(e) => {
                assert!(e.is_transport(), "want a transport error against a dead server, got {e}");
                failures += 1;
            }
        }
    }
    assert_eq!(failures, 5);
}

/// Backpressure: a giant multi-get answer larger than the write-buffer
/// bound streams out in bounded flushes and still arrives intact.
#[test]
fn bounded_write_buffer_streams_large_windows() {
    let _wd = watchdog("bounded_write_buffer", Duration::from_secs(120));
    let store = sharded(2);
    let server = AriaServer::bind(
        "127.0.0.1:0",
        Arc::clone(&store),
        ServerConfig::builder().write_buffer_limit(8 * 1024).build().unwrap(),
    )
    .unwrap();
    let mut client = quick_client(server.local_addr());

    let value = vec![0xAB; 1024];
    let pairs: Vec<(Vec<u8>, Vec<u8>)> =
        (0..512u32).map(|i| (format!("big{i}").into_bytes(), value.clone())).collect();
    let pair_refs: Vec<(&[u8], &[u8])> =
        pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
    assert!(client.put_batch(&pair_refs).unwrap().iter().all(|s| s.is_ok()));

    let keys: Vec<&[u8]> = pairs.iter().map(|(k, _)| k.as_slice()).collect();
    let values = client.multi_get(&keys).unwrap();
    assert_eq!(values.len(), 512);
    for v in values {
        assert_eq!(v.unwrap().unwrap(), value);
    }
    server.shutdown();
}

/// A shard worker crash surfaces on the wire as the stable
/// `ShardUnavailable` code while other shards keep serving.
#[test]
fn dead_shard_maps_to_wire_error_code() {
    let _wd = watchdog("dead_shard_maps_to_wire_error_code", Duration::from_secs(60));
    let store = sharded(2);
    let server =
        AriaServer::bind("127.0.0.1:0", Arc::clone(&store), ServerConfig::default()).unwrap();
    let mut client = quick_client(server.local_addr());

    // Find keys on each shard, then kill shard 0's worker.
    let on0 = (0..1000u32)
        .map(|i| format!("probe{i}").into_bytes())
        .find(|k| store.shard_of(k) == 0)
        .unwrap();
    let on1 = (0..1000u32)
        .map(|i| format!("probe{i}").into_bytes())
        .find(|k| store.shard_of(k) == 1)
        .unwrap();
    assert!(store.exec_detached(0, |_| panic!("injected crash")));
    // Wait until the worker is provably gone.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while store.put(&on0, b"x") != Err(aria_store::StoreError::ShardUnavailable { shard: 0 }) {
        assert!(std::time::Instant::now() < deadline, "worker never died");
        thread::yield_now();
    }

    match client.put(&on0, b"x") {
        Err(NetError::Server { code, .. }) => assert_eq!(code, ErrorCode::ShardUnavailable),
        other => panic!("want ShardUnavailable on the wire, got {other:?}"),
    }
    client.put(&on1, b"y").expect("healthy shard still serves");
    assert_eq!(client.get(&on1).unwrap().unwrap(), b"y");
    server.shutdown();
}

/// End-to-end tracing on both engines: a v5 client sampling every
/// request produces server-side spans whose stamps cross
/// decode → admission → queue → execute → encode → flush in causal
/// order, streamable over the TRACE opcode; a wire dump request
/// answers with a JSON flight-recorder post-mortem.
#[test]
fn sampled_requests_stream_spans_end_to_end() {
    use aria_telemetry::{outcome, stage};
    let _wd = watchdog("sampled_requests_stream_spans_end_to_end", Duration::from_secs(120));
    for engine in [aria_net::Engine::Reactor, aria_net::Engine::Threads] {
        let server = AriaServer::bind(
            "127.0.0.1:0",
            sharded(2),
            ServerConfig::builder().engine(engine).build().unwrap(),
        )
        .unwrap();
        let mut client = AriaClient::connect(
            server.local_addr(),
            ClientConfig { trace_sample: 1, ..quick_config() },
        )
        .unwrap();
        assert_eq!(client.protocol_version(), Some(proto::PROTOCOL_VERSION));

        client.put(b"traced", b"v").unwrap();
        assert_eq!(client.get(b"traced").unwrap().unwrap(), b"v");
        let values = client.multi_get(&[b"traced".as_ref(), b"missing"]).unwrap();
        assert_eq!(values[0], Ok(Some(b"v".to_vec())));

        // Spans publish when the response bytes drain to the socket, a
        // beat after the client sees the response; poll briefly.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let spans = loop {
            let (spans, cursors) = client.trace_spans(&[]).unwrap();
            assert!(!cursors.is_empty(), "one resume cursor per trace ring");
            if spans.len() >= 3 {
                break spans;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "sampled spans never reached the trace rings ({engine:?}): {spans:?}"
            );
            thread::sleep(Duration::from_millis(10));
        };
        for span in &spans {
            assert_ne!(span.trace_id, 0, "sampled spans carry the wire trace id");
            assert!(span.stages_monotone(), "stage stamps out of order: {span:?}");
            for st in [
                stage::DECODE,
                stage::ADMIT,
                stage::ENQUEUE,
                stage::DEQUEUE,
                stage::EXEC_START,
                stage::EXEC_END,
                stage::ENCODE,
            ] {
                assert_ne!(span.stages[st], 0, "stage {st} unstamped: {span:?}");
            }
            assert_eq!(span.outcome, outcome::OK);
            assert!(span.ops >= 1);
        }
        assert!(
            spans.iter().any(|s| s.stages[stage::FLUSH] != 0),
            "at least one span must observe its bytes hitting the socket"
        );
        // Executed spans attribute their cache traffic: the get and the
        // multi-get hit the hot tier.
        assert!(spans.iter().any(|s| s.hot_hits > 0), "no span attributed a hot hit: {spans:?}");

        // A wire-requested flight dump renders the JSON post-mortem.
        let dump = client.flight_dump().expect("mode-1 TRACE answers with a dump");
        assert!(dump.trim_start().starts_with('{'), "dump is a JSON object: {dump}");
        assert!(dump.contains("\"reason\":\"request\""), "dump names its trigger: {dump}");
        assert!(dump.contains("\"spans\""), "dump embeds recent spans: {dump}");
        server.shutdown();
    }
}

/// Pop the next response frame off a raw socket at the given
/// negotiated version, carrying unconsumed bytes in `buf` across
/// calls (pipelined replies can share one read).
fn read_response_at(
    stream: &mut std::net::TcpStream,
    buf: &mut Vec<u8>,
    version: u16,
) -> proto::Response {
    use std::io::Read;
    let mut chunk = [0u8; 4096];
    loop {
        match proto::decode_response_versioned(buf, version).expect("well-formed reply") {
            proto::Decoded::Frame(consumed, _, resp) => {
                buf.drain(..consumed);
                return resp;
            }
            proto::Decoded::Incomplete => {}
        }
        let n = stream.read(&mut chunk).expect("read reply");
        assert!(n > 0, "server closed mid-frame");
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Peers below v5 are untouched by the trace trailer: a hand-rolled
/// peer that negotiates v4 and a client that never sends HELLO both
/// keep round-tripping data ops on both engines, even while the same
/// server serves a sampling v5 client.
#[test]
fn pre_v5_peers_interoperate_unchanged() {
    use std::io::Write;
    let _wd = watchdog("pre_v5_peers_interoperate_unchanged", Duration::from_secs(120));
    for engine in [aria_net::Engine::Reactor, aria_net::Engine::Threads] {
        let server = AriaServer::bind(
            "127.0.0.1:0",
            sharded(2),
            ServerConfig::builder().engine(engine).build().unwrap(),
        )
        .unwrap();

        // A sampling v5 client shares the server the whole time.
        let mut v5 = AriaClient::connect(
            server.local_addr(),
            ClientConfig { trace_sample: 1, ..quick_config() },
        )
        .unwrap();
        v5.put(b"v5", b"yes").unwrap();

        // Pre-HELLO peer: the client speaks the base protocol; the
        // sampling knob is inert without a negotiated v5.
        let mut old = AriaClient::connect(
            server.local_addr(),
            ClientConfig { handshake: false, trace_sample: 1, ..quick_config() },
        )
        .unwrap();
        assert_eq!(old.protocol_version(), None);
        old.put(b"base", b"ok").unwrap();
        assert_eq!(old.get(b"base").unwrap().unwrap(), b"ok");

        // Hand-rolled v4 peer: HELLO caps the connection at v4, after
        // which data frames carry the deadline trailer but no trace
        // trailer — and the server answers them cleanly.
        let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut inbuf = Vec::new();
        let mut buf = Vec::new();
        proto::encode_request(&mut buf, 1, &proto::Request::Hello { version: 4, features: 0 })
            .unwrap();
        raw.write_all(&buf).unwrap();
        match read_response_at(&mut raw, &mut inbuf, proto::BASE_PROTOCOL_VERSION) {
            proto::Response::HelloAck { version, .. } => {
                assert_eq!(version, 4, "server meets an old peer at its version");
            }
            other => panic!("want HelloAck, got {other:?}"),
        }
        buf.clear();
        proto::encode_request_versioned(
            &mut buf,
            2,
            &proto::Request::Put { key: b"v4".to_vec(), value: b"ok".to_vec() },
            0,
            4,
        )
        .unwrap();
        proto::encode_request_versioned(
            &mut buf,
            3,
            &proto::Request::Get { key: b"v4".to_vec() },
            0,
            4,
        )
        .unwrap();
        raw.write_all(&buf).unwrap();
        assert_eq!(read_response_at(&mut raw, &mut inbuf, 4), proto::Response::PutOk);
        assert_eq!(
            read_response_at(&mut raw, &mut inbuf, 4),
            proto::Response::Value(Some(b"ok".to_vec()))
        );

        // The v5 client still works after the old peers' traffic.
        assert_eq!(v5.get(b"v5").unwrap().unwrap(), b"yes");
        server.shutdown();
    }
}

/// Peers below v6 are untouched by the routing-epoch trailer: a
/// hand-rolled peer that negotiates v5 keeps sending trace-trailer
/// frames byte-identical to the pre-reshard wire and round-trips data
/// ops on both engines, even while a v6 client (which stamps epoch
/// claims on every data op) shares the server.
#[test]
fn pre_v6_peers_interoperate_unchanged() {
    use std::io::Write;
    let _wd = watchdog("pre_v6_peers_interoperate_unchanged", Duration::from_secs(120));
    for engine in [aria_net::Engine::Reactor, aria_net::Engine::Threads] {
        let server = AriaServer::bind(
            "127.0.0.1:0",
            sharded(2),
            ServerConfig::builder().engine(engine).build().unwrap(),
        )
        .unwrap();

        // A v6 client shares the server the whole time and stamps its
        // cached routing epoch on every data frame.
        let mut v6 = AriaClient::connect(server.local_addr(), quick_config()).unwrap();
        assert_eq!(v6.protocol_version(), Some(proto::PROTOCOL_VERSION));
        assert_eq!(v6.routing_epoch(), 1, "connect primes the routing cache");
        v6.put(b"v6", b"yes").unwrap();

        // Hand-rolled v5 peer: HELLO caps the connection at v5, after
        // which its data frames end at the trace trailer — no epoch
        // claim — and must be byte-identical to the pre-v6 encoding.
        let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut inbuf = Vec::new();
        let mut buf = Vec::new();
        proto::encode_request(&mut buf, 1, &proto::Request::Hello { version: 5, features: 0 })
            .unwrap();
        raw.write_all(&buf).unwrap();
        match read_response_at(&mut raw, &mut inbuf, proto::BASE_PROTOCOL_VERSION) {
            proto::Response::HelloAck { version, .. } => {
                assert_eq!(version, 5, "server meets an old peer at its version");
            }
            other => panic!("want HelloAck, got {other:?}"),
        }
        let put = proto::Request::Put { key: b"v5peer".to_vec(), value: b"ok".to_vec() };
        buf.clear();
        proto::encode_request_traced(&mut buf, 2, &put, 0, proto::TraceContext::NONE, 5).unwrap();
        // Pin the bytes: a v5 frame from this build matches a v5 frame
        // from a pre-v6 build (same encoder path, no trailing epoch).
        let mut pinned = Vec::new();
        proto::encode_request_versioned(&mut pinned, 2, &put, 0, 5).unwrap();
        assert_eq!(buf, pinned, "v5 data frames grew bytes they must not have");
        proto::encode_request_traced(
            &mut buf,
            3,
            &proto::Request::Get { key: b"v5peer".to_vec() },
            0,
            proto::TraceContext::NONE,
            5,
        )
        .unwrap();
        raw.write_all(&buf).unwrap();
        assert_eq!(read_response_at(&mut raw, &mut inbuf, 5), proto::Response::PutOk);
        assert_eq!(
            read_response_at(&mut raw, &mut inbuf, 5),
            proto::Response::Value(Some(b"ok".to_vec()))
        );

        // The v6 client still works after the old peer's traffic, and
        // can read what the v5 peer wrote.
        assert_eq!(v6.get(b"v6").unwrap().unwrap(), b"yes");
        assert_eq!(v6.get(b"v5peer").unwrap().unwrap(), b"ok");
        server.shutdown();
    }
}
