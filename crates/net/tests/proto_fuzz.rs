//! Wire-decoder fuzzing: the decoder sits on the untrusted network
//! edge, so arbitrary, truncated and oversized byte soup must produce
//! typed decode results — `Frame`, `Incomplete` or a `WireError` —
//! and never panic, over-read, or accept a frame beyond the 4 MiB cap.

use aria_net::proto::{
    self, decode_request, decode_request_ref, decode_request_ref_versioned, decode_response,
    decode_response_versioned, Decoded, ErrorCode, Request, Response, TraceContext, WireError,
    BASE_PROTOCOL_VERSION, MAX_FRAME_LEN, OVERLOAD_PROTOCOL_VERSION, PROTOCOL_VERSION,
    RESHARD_PROTOCOL_VERSION, TRACE_PROTOCOL_VERSION,
};
use proptest::prelude::*;

/// A small request generator for stream-level properties: every opcode
/// the wire speaks, with short keys/values so many frames fit a case.
fn arb_request() -> impl Strategy<Value = Request> {
    fn key() -> impl Strategy<Value = Vec<u8>> {
        collection::vec(any::<u8>(), 0..24)
    }
    fn val() -> impl Strategy<Value = Vec<u8>> {
        collection::vec(any::<u8>(), 0..48)
    }
    prop_oneof![
        Just(Request::Ping),
        Just(Request::Stats),
        Just(Request::Health),
        Just(Request::Metrics),
        (any::<u16>(), any::<u64>())
            .prop_map(|(version, features)| Request::Hello { version, features }),
        key().prop_map(|key| Request::Get { key }),
        (key(), val()).prop_map(|(key, value)| Request::Put { key, value }),
        key().prop_map(|key| Request::Delete { key }),
        collection::vec(key(), 0..4).prop_map(|keys| Request::MultiGet { keys }),
        collection::vec((key(), val()), 0..4).prop_map(|pairs| Request::PutBatch { pairs }),
        (any::<u8>(), any::<u32>(), any::<u32>())
            .prop_map(|(mode, source, target)| Request::Reshard { mode, source, target }),
    ]
}

/// Exercise one decoder over a buffer and sanity-check what comes back.
fn check_decode<T>(
    buf: &[u8],
    decode: impl Fn(&[u8]) -> Result<Decoded<T>, WireError>,
) -> Result<(), TestCaseError> {
    match decode(buf) {
        Ok(Decoded::Frame(consumed, _id, _msg)) => {
            prop_assert!(consumed <= buf.len(), "consumed {} > {} buffered", consumed, buf.len());
            prop_assert!(consumed >= 13, "a frame is at least header-sized");
        }
        Ok(Decoded::Incomplete) => {
            // Incomplete must only be claimed when the declared frame
            // really extends past the buffer.
            if buf.len() >= 4 {
                let declared = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
                prop_assert!(4 + declared > buf.len(), "complete frame reported Incomplete");
            }
        }
        Err(WireError::FrameTooLarge { len }) => {
            prop_assert!(len > MAX_FRAME_LEN, "FrameTooLarge for a {len}-byte frame");
        }
        Err(WireError::Malformed) | Err(WireError::UnknownOpcode(_)) => {}
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Pure garbage: both decoders must return a typed result.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in collection::vec(any::<u8>(), 0..256)) {
        check_decode(&bytes, decode_request)?;
        check_decode(&bytes, decode_response)?;
    }

    /// A valid frame truncated at every possible point must come back
    /// `Incomplete` (or a typed error once the header itself is cut),
    /// and the full buffer must round-trip.
    #[test]
    fn truncated_valid_frames_are_incomplete(id in any::<u64>(), klen in 0usize..64) {
        let req = Request::Get { key: vec![0xA5; klen] };
        let mut buf = Vec::new();
        proto::encode_request(&mut buf, id, &req).expect("small frame encodes");
        for cut in 0..buf.len() {
            match decode_request(&buf[..cut]) {
                Ok(Decoded::Incomplete) => {}
                other => prop_assert!(false, "cut at {cut}: unexpected {other:?}"),
            }
        }
        match decode_request(&buf) {
            Ok(Decoded::Frame(consumed, got_id, got)) => {
                prop_assert_eq!(consumed, buf.len());
                prop_assert_eq!(got_id, id);
                prop_assert_eq!(got, req);
            }
            other => prop_assert!(false, "full frame failed to decode: {other:?}"),
        }
    }

    /// A length prefix over the cap is rejected before any allocation,
    /// no matter what follows it.
    #[test]
    fn oversized_length_prefix_is_rejected(over in 1u64..1_000_000, tail in collection::vec(any::<u8>(), 0..32)) {
        let declared = (MAX_FRAME_LEN as u64 + over) as u32;
        let mut buf = declared.to_le_bytes().to_vec();
        buf.extend_from_slice(&tail);
        prop_assert_eq!(
            decode_request(&buf),
            Err(WireError::FrameTooLarge { len: declared as usize })
        );
        prop_assert_eq!(
            decode_response(&buf),
            Err(WireError::FrameTooLarge { len: declared as usize })
        );
    }

    /// Corrupting one byte of a valid frame must still yield a typed
    /// result — decoded frame, Incomplete, or typed error.
    #[test]
    fn bit_flipped_frames_stay_typed(
        id in any::<u64>(),
        pos_pick in any::<usize>(),
        bit in 0u8..8,
    ) {
        let req = Request::Put { key: b"key".to_vec(), value: vec![7u8; 20] };
        let mut buf = Vec::new();
        proto::encode_request(&mut buf, id, &req).expect("small frame encodes");
        let pos = pos_pick % buf.len();
        buf[pos] ^= 1 << bit;
        check_decode(&buf, decode_request)?;
    }

    /// HELLO is version/feature negotiation — it must round-trip every
    /// possible (version, features) pair through both decoders, and the
    /// borrowed decode must agree with the owned one.
    #[test]
    fn hello_round_trips_all_versions(id in any::<u64>(), version in any::<u16>(), features in any::<u64>()) {
        let req = Request::Hello { version, features };
        let mut buf = Vec::new();
        proto::encode_request(&mut buf, id, &req).expect("hello frames are tiny");
        match decode_request(&buf) {
            Ok(Decoded::Frame(consumed, got_id, got)) => {
                prop_assert_eq!(consumed, buf.len());
                prop_assert_eq!(got_id, id);
                prop_assert_eq!(&got, &req);
            }
            other => prop_assert!(false, "hello failed to decode: {other:?}"),
        }
        match decode_request_ref(&buf) {
            Ok(Decoded::Frame(_, got_id, got)) => {
                prop_assert_eq!(got_id, id);
                prop_assert_eq!(got.to_owned(), req);
            }
            other => prop_assert!(false, "borrowed hello decode failed: {other:?}"),
        }
        // Truncations stay Incomplete — never a bogus negotiation.
        for cut in 0..buf.len() {
            prop_assert!(
                matches!(decode_request(&buf[..cut]), Ok(Decoded::Incomplete)),
                "truncated hello at {} must be Incomplete", cut
            );
        }
    }

    /// Stream reassembly, the reactor's read path in miniature: several
    /// frames encoded back to back, delivered in arbitrary chunk splits,
    /// must decode to exactly the same sequence as one contiguous
    /// buffer — no frame lost, duplicated, reordered, or corrupted at a
    /// chunk boundary.
    #[test]
    fn split_reads_reassemble_identically(
        reqs in collection::vec(arb_request(), 1..8),
        splits in collection::vec(1usize..64, 0..16),
    ) {
        let mut stream = Vec::new();
        for (id, req) in reqs.iter().enumerate() {
            proto::encode_request(&mut stream, id as u64, req).expect("small frame encodes");
        }

        // Reference: decode the whole stream in one pass.
        let mut expect = Vec::new();
        let mut off = 0;
        while off < stream.len() {
            match decode_request(&stream[off..]) {
                Ok(Decoded::Frame(consumed, id, req)) => {
                    off += consumed;
                    expect.push((id, req));
                }
                other => prop_assert!(false, "contiguous decode failed: {other:?}"),
            }
        }
        prop_assert_eq!(expect.len(), reqs.len());

        // Replay through an incremental buffer, feeding one chunk at a
        // time (chunk sizes from `splits`, cycled; remainder at the
        // end), draining every complete frame after each arrival —
        // exactly what a reactor does with its per-connection rbuf.
        let mut got = Vec::new();
        let mut rbuf: Vec<u8> = Vec::new();
        let mut fed = 0;
        let mut split_idx = 0;
        while fed < stream.len() {
            let step = if splits.is_empty() {
                stream.len() - fed
            } else {
                splits[split_idx % splits.len()].min(stream.len() - fed)
            };
            split_idx += 1;
            rbuf.extend_from_slice(&stream[fed..fed + step]);
            fed += step;

            let mut roff = 0;
            loop {
                match decode_request_ref(&rbuf[roff..]) {
                    Ok(Decoded::Frame(consumed, id, req)) => {
                        got.push((id, req.to_owned()));
                        roff += consumed;
                    }
                    Ok(Decoded::Incomplete) => break,
                    Err(e) => {
                        prop_assert!(false, "split decode failed: {e:?}");
                        break;
                    }
                }
            }
            rbuf.drain(..roff);
        }
        prop_assert!(rbuf.is_empty(), "stream ended with {} undecoded bytes", rbuf.len());
        prop_assert_eq!(got, expect);
    }

    /// Hostile batch counts (`MultiGet`/`PutBatch` claiming more items
    /// than bytes exist) must be rejected, not trusted as a capacity.
    #[test]
    fn hostile_batch_counts_are_malformed(count in 1_000_000u32..u32::MAX) {
        // Hand-build: opcode 0x04 (MULTI_GET), id 0, body = count only.
        let mut buf = Vec::new();
        let body_len = 9u32 + 4; // opcode + id + u32 count
        buf.extend_from_slice(&body_len.to_le_bytes());
        buf.push(0x04);
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&count.to_le_bytes());
        prop_assert_eq!(decode_request(&buf), Err(WireError::Malformed));
    }

    /// v4 data ops carry a `deadline_ns` trailer: any (request, deadline)
    /// pair must round-trip at v4, every truncation must stay
    /// `Incomplete`, and the strict cross-version rule must hold — a v4
    /// data frame decoded at an older version is `Malformed` (trailing
    /// bytes), never silently misparsed.
    #[test]
    fn deadline_trailer_round_trips_and_gates(
        id in any::<u64>(),
        klen in 0usize..32,
        deadline_ns in any::<u64>(),
        old_version in 1u16..OVERLOAD_PROTOCOL_VERSION,
    ) {
        let req = Request::Put { key: vec![0xB7; klen], value: b"v".to_vec() };
        let mut buf = Vec::new();
        proto::encode_request_versioned(&mut buf, id, &req, deadline_ns, PROTOCOL_VERSION)
            .expect("small frame encodes");
        match decode_request_ref_versioned(&buf, PROTOCOL_VERSION) {
            Ok(Decoded::Frame(consumed, got_id, (got, got_meta))) => {
                prop_assert_eq!(consumed, buf.len());
                prop_assert_eq!(got_id, id);
                prop_assert_eq!(got.to_owned(), req.clone());
                prop_assert_eq!(got_meta.deadline_ns, deadline_ns);
                prop_assert_eq!(got_meta.trace, TraceContext::NONE, "unsampled encode");
            }
            other => prop_assert!(false, "v4 frame failed to decode: {other:?}"),
        }
        for cut in 0..buf.len() {
            prop_assert!(
                matches!(
                    decode_request_ref_versioned(&buf[..cut], PROTOCOL_VERSION),
                    Ok(Decoded::Incomplete)
                ),
                "truncated v4 frame at {} must be Incomplete", cut
            );
        }
        prop_assert!(
            matches!(
                decode_request_ref_versioned(&buf, old_version),
                Err(WireError::Malformed)
            ),
            "a v4 data frame must not parse at v{}", old_version
        );
        // And the mirror image: an old-version frame decoded at v4 is
        // missing its trailer — also Malformed, never a garbage deadline.
        let mut old = Vec::new();
        proto::encode_request_versioned(&mut old, id, &req, 0, old_version)
            .expect("small frame encodes");
        prop_assert_eq!(
            decode_request_ref_versioned(&old, PROTOCOL_VERSION)
                .map(|_| ()),
            Err(WireError::Malformed),
            "a v{} data frame must not parse at v4", old_version
        );
    }

    /// The v4 `retry_after_ms` field of error responses round-trips at
    /// v4, every truncation stays `Incomplete`, and peers at v1–v3
    /// still parse the error encoded *for them* (the field is omitted,
    /// decoding as 0) — version gating on the response side.
    #[test]
    fn retry_after_field_round_trips_and_gates(
        id in any::<u64>(),
        retry_after_ms in any::<u64>(),
        mlen in 0usize..32,
        old_version in 1u16..OVERLOAD_PROTOCOL_VERSION,
    ) {
        let resp = Response::Error {
            code: ErrorCode::Overloaded,
            message: "x".repeat(mlen),
            retry_after_ms,
        };
        let mut buf = Vec::new();
        proto::encode_response_versioned(&mut buf, id, &resp, PROTOCOL_VERSION)
            .expect("small frame encodes");
        match decode_response_versioned(&buf, PROTOCOL_VERSION) {
            Ok(Decoded::Frame(consumed, got_id, got)) => {
                prop_assert_eq!(consumed, buf.len());
                prop_assert_eq!(got_id, id);
                prop_assert_eq!(got, resp.clone());
            }
            other => prop_assert!(false, "v4 error failed to decode: {other:?}"),
        }
        for cut in 0..buf.len() {
            prop_assert!(
                matches!(
                    decode_response_versioned(&buf[..cut], PROTOCOL_VERSION),
                    Ok(Decoded::Incomplete)
                ),
                "truncated v4 error at {} must be Incomplete", cut
            );
        }
        // Encoded for an older peer: the hint is omitted and decodes 0.
        let mut old = Vec::new();
        proto::encode_response_versioned(&mut old, id, &resp, old_version)
            .expect("small frame encodes");
        match decode_response_versioned(&old, old_version) {
            Ok(Decoded::Frame(_, _, Response::Error { code, message, retry_after_ms: got })) => {
                prop_assert_eq!(code, ErrorCode::Overloaded);
                prop_assert_eq!(message.len(), mlen);
                prop_assert_eq!(got, 0, "pre-v4 wire carries no hint");
            }
            other => prop_assert!(false, "v{} error failed to decode: {other:?}", old_version),
        }
    }

    /// Control ops are version-invariant: their frames are byte-for-byte
    /// identical at every version, so pre-v4 peers parse them unchanged.
    #[test]
    fn control_ops_are_version_invariant(id in any::<u64>(), version in 1u16..=PROTOCOL_VERSION) {
        for req in [
            Request::Ping,
            Request::Stats,
            Request::Health,
            Request::Metrics,
            Request::Hello { version: 7, features: 0b101 },
        ] {
            let mut base = Vec::new();
            proto::encode_request_versioned(&mut base, id, &req, 0, BASE_PROTOCOL_VERSION)
                .expect("control frames are tiny");
            let mut at_v = Vec::new();
            proto::encode_request_versioned(&mut at_v, id, &req, u64::MAX, version)
                .expect("control frames are tiny");
            prop_assert_eq!(&base, &at_v, "control frame differs at v{}", version);
            // Both ends of the version range parse it.
            prop_assert!(matches!(
                decode_request_ref_versioned(&at_v, BASE_PROTOCOL_VERSION),
                Ok(Decoded::Frame(..))
            ));
            prop_assert!(matches!(
                decode_request_ref_versioned(&at_v, PROTOCOL_VERSION),
                Ok(Decoded::Frame(..))
            ));
        }
    }

    /// v5 data ops carry the trace-context trailer after the deadline:
    /// any (trace id, sampled) pair must round-trip at v5, every
    /// truncation must stay `Incomplete`, and the strict cross-version
    /// rule must hold in both directions — a v5 frame at v4 and a v4
    /// frame at v5 are each `Malformed`, never silently misparsed.
    #[test]
    fn trace_trailer_round_trips_and_gates(
        id in any::<u64>(),
        klen in 0usize..32,
        deadline_ns in any::<u64>(),
        trace_id in any::<u64>(),
        sampled in any::<bool>(),
    ) {
        let req = Request::Get { key: vec![0x5E; klen] };
        let trace = TraceContext { id: trace_id, sampled };
        let mut buf = Vec::new();
        proto::encode_request_traced(
            &mut buf, id, &req, deadline_ns, trace, TRACE_PROTOCOL_VERSION,
        )
        .expect("small frame encodes");
        match decode_request_ref_versioned(&buf, TRACE_PROTOCOL_VERSION) {
            Ok(Decoded::Frame(consumed, got_id, (got, got_meta))) => {
                prop_assert_eq!(consumed, buf.len());
                prop_assert_eq!(got_id, id);
                prop_assert_eq!(got.to_owned(), req.clone());
                prop_assert_eq!(got_meta.deadline_ns, deadline_ns);
                prop_assert_eq!(got_meta.trace, trace);
            }
            other => prop_assert!(false, "v5 frame failed to decode: {other:?}"),
        }
        for cut in 0..buf.len() {
            prop_assert!(
                matches!(
                    decode_request_ref_versioned(&buf[..cut], TRACE_PROTOCOL_VERSION),
                    Ok(Decoded::Incomplete)
                ),
                "truncated v5 frame at {} must be Incomplete", cut
            );
        }
        prop_assert!(
            matches!(
                decode_request_ref_versioned(&buf, OVERLOAD_PROTOCOL_VERSION),
                Err(WireError::Malformed)
            ),
            "a v5 data frame must not parse at v4"
        );
        // Mirror image: a v4 frame at v5 is missing the trace trailer.
        let mut old = Vec::new();
        proto::encode_request_versioned(&mut old, id, &req, deadline_ns, OVERLOAD_PROTOCOL_VERSION)
            .expect("small frame encodes");
        prop_assert_eq!(
            decode_request_ref_versioned(&old, TRACE_PROTOCOL_VERSION).map(|_| ()),
            Err(WireError::Malformed),
            "a v4 data frame must not parse at v5"
        );
    }

    /// The trace flags byte reserves bits 1–7: a frame whose flags byte
    /// has any reserved bit set is `Malformed`, so future flag bits
    /// cannot be smuggled past an old decoder as a sampled bit.
    #[test]
    fn reserved_trace_flag_bits_are_malformed(
        id in any::<u64>(),
        trace_id in any::<u64>(),
        bad_flags in 2u8..=u8::MAX,
    ) {
        let req = Request::Get { key: b"k".to_vec() };
        let mut buf = Vec::new();
        proto::encode_request_traced(
            &mut buf,
            id,
            &req,
            0,
            TraceContext { id: trace_id, sampled: true },
            TRACE_PROTOCOL_VERSION,
        )
        .expect("small frame encodes");
        // The flags byte is the final byte of the frame body.
        *buf.last_mut().expect("non-empty frame") = bad_flags;
        prop_assert_eq!(
            decode_request_ref_versioned(&buf, TRACE_PROTOCOL_VERSION).map(|_| ()),
            Err(WireError::Malformed),
            "reserved flag bits must be rejected"
        );
    }

    /// TRACE is a control op: its frames are version-invariant (no data
    /// trailers at any version), any (mode, cursors) pair round-trips,
    /// and every truncation stays `Incomplete`.
    #[test]
    fn trace_requests_round_trip_at_every_version(
        id in any::<u64>(),
        mode in any::<u8>(),
        cursors in proptest::collection::vec(any::<u64>(), 0..8),
        version in 1u16..=PROTOCOL_VERSION,
    ) {
        let req = Request::Trace { mode, cursors };
        let mut base = Vec::new();
        proto::encode_request_versioned(&mut base, id, &req, 0, BASE_PROTOCOL_VERSION)
            .expect("small frame encodes");
        let mut at_v = Vec::new();
        proto::encode_request_versioned(&mut at_v, id, &req, u64::MAX, version)
            .expect("small frame encodes");
        prop_assert_eq!(&base, &at_v, "TRACE frame differs at v{}", version);
        match decode_request_ref_versioned(&at_v, version) {
            Ok(Decoded::Frame(consumed, got_id, (got, got_meta))) => {
                prop_assert_eq!(consumed, at_v.len());
                prop_assert_eq!(got_id, id);
                prop_assert_eq!(got.to_owned(), req.clone());
                prop_assert_eq!(got_meta.deadline_ns, 0, "control ops carry no deadline");
                prop_assert_eq!(got_meta.trace, TraceContext::NONE);
            }
            other => prop_assert!(false, "TRACE frame failed to decode: {other:?}"),
        }
        for cut in 0..at_v.len() {
            prop_assert!(
                matches!(
                    decode_request_ref_versioned(&at_v[..cut], version),
                    Ok(Decoded::Incomplete)
                ),
                "truncated TRACE frame at {} must be Incomplete", cut
            );
        }
    }

    /// v6 data ops carry a `routing_epoch` trailer after the v5 trace
    /// context: any (request, epoch) combination must round-trip at v6,
    /// every truncation must stay `Incomplete`, and the strict
    /// cross-version rule must hold in both directions — a v6 frame at
    /// v5 and a v5 frame at v6 are each `Malformed`, never silently
    /// misparsed (an epoch claim can never be misread as key bytes).
    #[test]
    fn routing_epoch_trailer_round_trips_and_gates(
        id in any::<u64>(),
        klen in 0usize..32,
        deadline_ns in any::<u64>(),
        trace_id in any::<u64>(),
        sampled in any::<bool>(),
        routing_epoch in any::<u64>(),
    ) {
        let req = Request::Get { key: vec![0x6A; klen] };
        let trace = TraceContext { id: trace_id, sampled };
        let mut buf = Vec::new();
        proto::encode_request_routed(
            &mut buf, id, &req, deadline_ns, trace, routing_epoch, RESHARD_PROTOCOL_VERSION,
        )
        .expect("small frame encodes");
        match decode_request_ref_versioned(&buf, RESHARD_PROTOCOL_VERSION) {
            Ok(Decoded::Frame(consumed, got_id, (got, got_meta))) => {
                prop_assert_eq!(consumed, buf.len());
                prop_assert_eq!(got_id, id);
                prop_assert_eq!(got.to_owned(), req.clone());
                prop_assert_eq!(got_meta.deadline_ns, deadline_ns);
                prop_assert_eq!(got_meta.trace, trace);
                prop_assert_eq!(got_meta.routing_epoch, routing_epoch);
            }
            other => prop_assert!(false, "v6 frame failed to decode: {other:?}"),
        }
        for cut in 0..buf.len() {
            prop_assert!(
                matches!(
                    decode_request_ref_versioned(&buf[..cut], RESHARD_PROTOCOL_VERSION),
                    Ok(Decoded::Incomplete)
                ),
                "truncated v6 frame at {} must be Incomplete", cut
            );
        }
        prop_assert!(
            matches!(
                decode_request_ref_versioned(&buf, TRACE_PROTOCOL_VERSION),
                Err(WireError::Malformed)
            ),
            "a v6 data frame must not parse at v5"
        );
        // Mirror image: a v5 frame at v6 is missing the epoch trailer.
        let mut old = Vec::new();
        proto::encode_request_traced(&mut old, id, &req, deadline_ns, trace, TRACE_PROTOCOL_VERSION)
            .expect("small frame encodes");
        prop_assert_eq!(
            decode_request_ref_versioned(&old, RESHARD_PROTOCOL_VERSION).map(|_| ()),
            Err(WireError::Malformed),
            "a v5 data frame must not parse at v6"
        );
    }

    /// RESHARD is a control op: its frames are byte-identical at every
    /// version (no data trailers), any (mode, source, target) triple
    /// round-trips, and every truncation stays `Incomplete` — so a v6
    /// control plane can never disturb the pre-v6 data framing.
    #[test]
    fn reshard_requests_round_trip_at_every_version(
        id in any::<u64>(),
        mode in any::<u8>(),
        source in any::<u32>(),
        target in any::<u32>(),
        version in 1u16..=PROTOCOL_VERSION,
    ) {
        let req = Request::Reshard { mode, source, target };
        let mut base = Vec::new();
        proto::encode_request_versioned(&mut base, id, &req, 0, BASE_PROTOCOL_VERSION)
            .expect("small frame encodes");
        let mut at_v = Vec::new();
        proto::encode_request_versioned(&mut at_v, id, &req, u64::MAX, version)
            .expect("small frame encodes");
        prop_assert_eq!(&base, &at_v, "RESHARD frame differs at v{}", version);
        match decode_request_ref_versioned(&at_v, version) {
            Ok(Decoded::Frame(consumed, got_id, (got, got_meta))) => {
                prop_assert_eq!(consumed, at_v.len());
                prop_assert_eq!(got_id, id);
                prop_assert_eq!(got.to_owned(), req.clone());
                prop_assert_eq!(got_meta.deadline_ns, 0, "control ops carry no deadline");
                prop_assert_eq!(got_meta.routing_epoch, 0, "control ops carry no epoch claim");
            }
            other => prop_assert!(false, "RESHARD frame failed to decode: {other:?}"),
        }
        for cut in 0..at_v.len() {
            prop_assert!(
                matches!(
                    decode_request_ref_versioned(&at_v[..cut], version),
                    Ok(Decoded::Incomplete)
                ),
                "truncated RESHARD frame at {} must be Incomplete", cut
            );
        }
    }

    /// The typed `WRONG_SHARD` refusal round-trips at v6 and degrades
    /// below v6 to a plain quarantine error a pre-v6 peer already
    /// understands — never a new opcode an old decoder would reject the
    /// connection over.
    #[test]
    fn wrong_shard_replies_round_trip_and_degrade(
        id in any::<u64>(),
        epoch in any::<u64>(),
        hint in any::<u32>(),
        old_version in 1u16..RESHARD_PROTOCOL_VERSION,
    ) {
        let resp = Response::WrongShard { epoch, hint };
        let mut buf = Vec::new();
        proto::encode_response_versioned(&mut buf, id, &resp, RESHARD_PROTOCOL_VERSION)
            .expect("small frame encodes");
        match decode_response_versioned(&buf, RESHARD_PROTOCOL_VERSION) {
            Ok(Decoded::Frame(consumed, got_id, got)) => {
                prop_assert_eq!(consumed, buf.len());
                prop_assert_eq!(got_id, id);
                prop_assert_eq!(got, resp.clone());
            }
            other => prop_assert!(false, "v6 WRONG_SHARD failed to decode: {other:?}"),
        }
        for cut in 0..buf.len() {
            prop_assert!(
                matches!(
                    decode_response_versioned(&buf[..cut], RESHARD_PROTOCOL_VERSION),
                    Ok(Decoded::Incomplete)
                ),
                "truncated WRONG_SHARD at {} must be Incomplete", cut
            );
        }
        let mut old = Vec::new();
        proto::encode_response_versioned(&mut old, id, &resp, old_version)
            .expect("small frame encodes");
        match decode_response_versioned(&old, old_version) {
            Ok(Decoded::Frame(_, got_id, Response::Error { code, retry_after_ms, .. })) => {
                prop_assert_eq!(got_id, id);
                prop_assert_eq!(code, ErrorCode::ShardQuarantined);
                prop_assert_eq!(retry_after_ms, 0);
            }
            other => prop_assert!(false, "degraded WRONG_SHARD must be a typed error: {other:?}"),
        }
    }

    /// RESHARD replies round-trip any owner table at every version that
    /// can carry them, and every truncation stays `Incomplete`.
    #[test]
    fn reshard_replies_round_trip(
        id in any::<u64>(),
        epoch in any::<u64>(),
        slots in collection::vec(any::<u32>(), 0..80),
        state in any::<u8>(),
        counters in (any::<u64>(), any::<u64>(), any::<u64>()),
    ) {
        let (started, committed, aborted) = counters;
        let resp = Response::Reshard { epoch, slots, state, started, committed, aborted };
        let mut buf = Vec::new();
        proto::encode_response_versioned(&mut buf, id, &resp, RESHARD_PROTOCOL_VERSION)
            .expect("small frame encodes");
        match decode_response_versioned(&buf, RESHARD_PROTOCOL_VERSION) {
            Ok(Decoded::Frame(consumed, got_id, got)) => {
                prop_assert_eq!(consumed, buf.len());
                prop_assert_eq!(got_id, id);
                prop_assert_eq!(got, resp.clone());
            }
            other => prop_assert!(false, "RESHARD reply failed to decode: {other:?}"),
        }
        for cut in 0..buf.len() {
            prop_assert!(
                matches!(
                    decode_response_versioned(&buf[..cut], RESHARD_PROTOCOL_VERSION),
                    Ok(Decoded::Incomplete)
                ),
                "truncated RESHARD reply at {} must be Incomplete", cut
            );
        }
    }

    /// A hostile RESHARD-reply slot count that promises more owners
    /// than the body could hold is `Malformed`, not an allocation.
    #[test]
    fn hostile_reshard_slot_counts_are_malformed(id in any::<u64>(), count in 1_000_000u32..u32::MAX) {
        let reply = Response::Reshard {
            epoch: 1,
            slots: vec![0, 1],
            state: 0,
            started: 0,
            committed: 0,
            aborted: 0,
        };
        let mut buf = Vec::new();
        proto::encode_response_versioned(&mut buf, id, &reply, RESHARD_PROTOCOL_VERSION)
            .expect("small frame encodes");
        // The slot count is a u32 right after the u64 epoch in the body
        // (13-byte frame header, then epoch).
        buf[21..25].copy_from_slice(&count.to_le_bytes());
        prop_assert_eq!(
            decode_response_versioned(&buf, RESHARD_PROTOCOL_VERSION).map(|_| ()),
            Err(WireError::Malformed)
        );
    }

    /// A hostile TRACE cursor count that promises more cursors than the
    /// body could hold is `Malformed`, not an allocation.
    #[test]
    fn hostile_trace_cursor_counts_are_malformed(id in any::<u64>(), count in 4u32..u32::MAX) {
        let mut buf = Vec::new();
        proto::encode_request(
            &mut buf,
            id,
            &Request::Trace { mode: 0, cursors: vec![1, 2] },
        )
        .expect("small frame encodes");
        // Overwrite the cursor count (1 mode byte after the 13-byte
        // frame header) with one the 16-byte cursor area cannot satisfy.
        buf[14..18].copy_from_slice(&count.to_le_bytes());
        prop_assert_eq!(decode_request(&buf).map(|_| ()), Err(WireError::Malformed));
    }
}

/// The 4 MiB cap holds on the encode path too: a response that cannot
/// fit is refused and the output buffer is left exactly as it was.
#[test]
fn encode_cap_refuses_and_rolls_back() {
    let mut buf = Vec::new();
    proto::encode_response(&mut buf, 1, &Response::Pong).expect("pong fits");
    let before = buf.clone();
    let huge = Response::Value(Some(vec![0u8; MAX_FRAME_LEN]));
    let err = proto::encode_response(&mut buf, 2, &huge).expect_err("over-cap must refuse");
    assert!(matches!(err, WireError::FrameTooLarge { .. }));
    assert_eq!(buf, before, "failed encode must not leave partial bytes");

    let mut out = Vec::new();
    let huge_req = Request::Put { key: vec![1u8; 16], value: vec![2u8; MAX_FRAME_LEN] };
    assert!(matches!(
        proto::encode_request(&mut out, 3, &huge_req),
        Err(WireError::FrameTooLarge { .. })
    ));
    assert!(out.is_empty());
}
