//! Server construction: the [`ServerConfig`] builder, the serving
//! [`Engine`] choice, and the typed [`NetConfigError`] the builder
//! returns, matching the `StoreConfig`/`CacheConfig` builder pattern.
//!
//! `ServerConfig` fields are private — every construction goes through
//! [`ServerConfig::builder`] (or [`ServerConfig::default`], which is
//! the builder's output on defaults), so an `AriaServer` can never be
//! started on an unvalidated knob set.

use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

use crate::proto::MAX_FRAME_LEN;

/// Which serving engine [`crate::AriaServer::bind`] starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Epoll-based run-to-completion reactors: connections are pinned
    /// to one of N reactor threads at accept time, frames are parsed
    /// in place out of the per-connection read buffer, and each tick
    /// coalesces every decoded request across the reactor's
    /// connections into one store submission per shard.
    #[default]
    Reactor,
    /// The original thread-per-connection engine: one OS thread per
    /// accepted connection, one store batch per pipeline window.
    Threads,
}

impl Engine {
    /// Parse a CLI-style engine name (`"reactor"` / `"threads"`).
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "reactor" => Some(Engine::Reactor),
            "threads" => Some(Engine::Threads),
            _ => None,
        }
    }

    /// The CLI-style name (`"reactor"` / `"threads"`).
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Reactor => "reactor",
            Engine::Threads => "threads",
        }
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a [`ServerConfigBuilder`] refused to build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetConfigError {
    /// `max_connections` must be at least one.
    ZeroConnections,
    /// `pipeline_window` must be at least one.
    ZeroPipelineWindow,
    /// The write-buffer bound is outside the accepted range: it must
    /// hold at least one minimal frame and must not exceed the frame
    /// cap times 16 (the server may buffer up to one over-bound frame
    /// beyond the limit, so an unbounded limit would unbound memory).
    WriteBufferBound {
        /// The rejected limit.
        limit: usize,
        /// Smallest accepted limit.
        min: usize,
        /// Largest accepted limit.
        max: usize,
    },
    /// A timeout was zero (`write_timeout`, or a `Some(0)` read
    /// timeout / queue-delay budget / sojourn bound / watchdog
    /// window); zero timeouts disconnect or shed everything instantly.
    ZeroTimeout {
        /// Which knob was zero.
        which: &'static str,
    },
    /// The reactor count must be at least one.
    ZeroReactors,
    /// Fewer connections than reactors: at least one reactor could
    /// never be assigned a connection, so the thread count is a
    /// misconfiguration (lower `reactors` or raise `max_connections`).
    ConnectionsBelowReactors {
        /// Configured connection limit.
        max_connections: usize,
        /// Configured reactor count.
        reactors: usize,
    },
}

impl fmt::Display for NetConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetConfigError::ZeroConnections => write!(f, "max_connections must be non-zero"),
            NetConfigError::ZeroPipelineWindow => write!(f, "pipeline_window must be non-zero"),
            NetConfigError::WriteBufferBound { limit, min, max } => {
                write!(f, "write_buffer_limit {limit} outside accepted range [{min}, {max}]")
            }
            NetConfigError::ZeroTimeout { which } => write!(f, "{which} must be non-zero"),
            NetConfigError::ZeroReactors => write!(f, "reactors must be non-zero"),
            NetConfigError::ConnectionsBelowReactors { max_connections, reactors } => write!(
                f,
                "max_connections ({max_connections}) below reactor count ({reactors}): \
                 some reactors could never serve a connection"
            ),
        }
    }
}

impl std::error::Error for NetConfigError {}

/// Smallest accepted `write_buffer_limit`: room for one minimal frame.
pub const MIN_WRITE_BUFFER: usize = 64;

/// Largest accepted `write_buffer_limit`.
pub const MAX_WRITE_BUFFER: usize = MAX_FRAME_LEN * 16;

/// Validated tuning knobs for [`crate::AriaServer`]. Construct with
/// [`ServerConfig::builder`]; read with the accessor methods.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    engine: Engine,
    max_connections: usize,
    pipeline_window: usize,
    write_buffer_limit: usize,
    write_timeout: Duration,
    read_timeout: Option<Duration>,
    reactors: usize,
    queue_delay_budget: Option<Duration>,
    shed_sojourn: Option<Duration>,
    watchdog_window: Option<Duration>,
    flight_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig::builder().build().expect("default server config is valid")
    }
}

impl ServerConfig {
    /// A fallible builder starting from the default configuration.
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            engine: Engine::default(),
            max_connections: 64,
            pipeline_window: 256,
            write_buffer_limit: 256 * 1024,
            write_timeout: Duration::from_secs(5),
            read_timeout: None,
            reactors: default_reactors(),
            queue_delay_budget: None,
            shed_sojourn: None,
            watchdog_window: None,
            flight_dir: None,
        }
    }

    /// The serving engine.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Connections beyond this are rejected with
    /// [`crate::proto::ErrorCode::TooManyConnections`] and closed.
    pub fn max_connections(&self) -> usize {
        self.max_connections
    }

    /// Max requests decoded and dispatched as one store batch per
    /// connection (threads engine) or per connection per tick (reactor).
    pub fn pipeline_window(&self) -> usize {
        self.pipeline_window
    }

    /// Bound on buffered response bytes before a flush is forced (and,
    /// on the reactor engine, before the connection stops being read).
    pub fn write_buffer_limit(&self) -> usize {
        self.write_buffer_limit
    }

    /// A response flush slower than this disconnects the client.
    pub fn write_timeout(&self) -> Duration {
        self.write_timeout
    }

    /// Close a connection with no complete request for this long
    /// (`None`: idle connections are kept forever).
    pub fn read_timeout(&self) -> Option<Duration> {
        self.read_timeout
    }

    /// Number of reactor threads the reactor engine runs.
    pub fn reactors(&self) -> usize {
        self.reactors
    }

    /// Per-shard admission budget: refuse new data ops when a shard's
    /// estimated queue delay exceeds this (`None`: admission off).
    pub fn queue_delay_budget(&self) -> Option<Duration> {
        self.queue_delay_budget
    }

    /// CoDel-style sojourn bound: decoded data ops that waited longer
    /// than this in server-side buffers are shed before store
    /// submission (`None`: sojourn shedding off).
    pub fn shed_sojourn(&self) -> Option<Duration> {
        self.shed_sojourn
    }

    /// Stuck-shard watchdog window: a shard holding queued work but
    /// retiring no batches for this long is quarantined (`None`:
    /// watchdog off).
    pub fn watchdog_window(&self) -> Option<Duration> {
        self.watchdog_window
    }

    /// Directory the flight recorder writes anomaly post-mortem dumps
    /// to (`None`: no watcher thread, dumps only served over the wire).
    pub fn flight_dir(&self) -> Option<&PathBuf> {
        self.flight_dir.as_ref()
    }
}

/// One reactor per available core by default (minimum one).
fn default_reactors() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Fallible builder for [`ServerConfig`].
///
/// ```
/// use aria_net::{Engine, ServerConfig};
/// use std::time::Duration;
///
/// let cfg = ServerConfig::builder()
///     .engine(Engine::Reactor)
///     .max_connections(128)
///     .write_timeout(Duration::from_secs(2))
///     .build()
///     .unwrap();
/// assert_eq!(cfg.max_connections(), 128);
/// ```
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    engine: Engine,
    max_connections: usize,
    pipeline_window: usize,
    write_buffer_limit: usize,
    write_timeout: Duration,
    read_timeout: Option<Duration>,
    reactors: usize,
    queue_delay_budget: Option<Duration>,
    shed_sojourn: Option<Duration>,
    watchdog_window: Option<Duration>,
    flight_dir: Option<PathBuf>,
}

impl ServerConfigBuilder {
    /// Select the serving engine (default [`Engine::Reactor`]).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Set the connection limit (default 64).
    pub fn max_connections(mut self, n: usize) -> Self {
        self.max_connections = n;
        self
    }

    /// Set the pipeline window (default 256).
    pub fn pipeline_window(mut self, n: usize) -> Self {
        self.pipeline_window = n;
        self
    }

    /// Set the write-buffer bound in bytes (default 256 KiB).
    pub fn write_buffer_limit(mut self, bytes: usize) -> Self {
        self.write_buffer_limit = bytes;
        self
    }

    /// Set the flush timeout (default 5 s).
    pub fn write_timeout(mut self, t: Duration) -> Self {
        self.write_timeout = t;
        self
    }

    /// Set (or clear) the idle read timeout (default `None`).
    pub fn read_timeout(mut self, t: Option<Duration>) -> Self {
        self.read_timeout = t;
        self
    }

    /// Set the reactor thread count (default: one per core).
    pub fn reactors(mut self, n: usize) -> Self {
        self.reactors = n;
        self
    }

    /// Set (or clear) the per-shard admission budget (default `None`:
    /// admission control off).
    pub fn queue_delay_budget(mut self, t: Option<Duration>) -> Self {
        self.queue_delay_budget = t;
        self
    }

    /// Set (or clear) the sojourn-shedding bound (default `None`:
    /// sojourn shedding off).
    pub fn shed_sojourn(mut self, t: Option<Duration>) -> Self {
        self.shed_sojourn = t;
        self
    }

    /// Set (or clear) the stuck-shard watchdog window (default `None`:
    /// watchdog off).
    pub fn watchdog_window(mut self, t: Option<Duration>) -> Self {
        self.watchdog_window = t;
        self
    }

    /// Set (or clear) the flight-recorder dump directory (default
    /// `None`: no watcher thread). The directory is created at bind.
    pub fn flight_dir(mut self, dir: Option<PathBuf>) -> Self {
        self.flight_dir = dir;
        self
    }

    /// Validate and build the configuration.
    pub fn build(self) -> Result<ServerConfig, NetConfigError> {
        if self.max_connections == 0 {
            return Err(NetConfigError::ZeroConnections);
        }
        if self.pipeline_window == 0 {
            return Err(NetConfigError::ZeroPipelineWindow);
        }
        if !(MIN_WRITE_BUFFER..=MAX_WRITE_BUFFER).contains(&self.write_buffer_limit) {
            return Err(NetConfigError::WriteBufferBound {
                limit: self.write_buffer_limit,
                min: MIN_WRITE_BUFFER,
                max: MAX_WRITE_BUFFER,
            });
        }
        if self.write_timeout.is_zero() {
            return Err(NetConfigError::ZeroTimeout { which: "write_timeout" });
        }
        if self.read_timeout.is_some_and(|t| t.is_zero()) {
            return Err(NetConfigError::ZeroTimeout { which: "read_timeout" });
        }
        if self.queue_delay_budget.is_some_and(|t| t.is_zero()) {
            return Err(NetConfigError::ZeroTimeout { which: "queue_delay_budget" });
        }
        if self.shed_sojourn.is_some_and(|t| t.is_zero()) {
            return Err(NetConfigError::ZeroTimeout { which: "shed_sojourn" });
        }
        if self.watchdog_window.is_some_and(|t| t.is_zero()) {
            return Err(NetConfigError::ZeroTimeout { which: "watchdog_window" });
        }
        if self.reactors == 0 {
            return Err(NetConfigError::ZeroReactors);
        }
        if self.engine == Engine::Reactor && self.max_connections < self.reactors {
            return Err(NetConfigError::ConnectionsBelowReactors {
                max_connections: self.max_connections,
                reactors: self.reactors,
            });
        }
        Ok(ServerConfig {
            engine: self.engine,
            max_connections: self.max_connections,
            pipeline_window: self.pipeline_window,
            write_buffer_limit: self.write_buffer_limit,
            write_timeout: self.write_timeout,
            read_timeout: self.read_timeout,
            reactors: self.reactors,
            queue_delay_budget: self.queue_delay_budget,
            shed_sojourn: self.shed_sojourn,
            watchdog_window: self.watchdog_window,
            flight_dir: self.flight_dir,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build_and_read_back() {
        let cfg = ServerConfig::default();
        assert_eq!(cfg.engine(), Engine::Reactor);
        assert_eq!(cfg.max_connections(), 64);
        assert_eq!(cfg.pipeline_window(), 256);
        assert_eq!(cfg.write_buffer_limit(), 256 * 1024);
        assert_eq!(cfg.write_timeout(), Duration::from_secs(5));
        assert_eq!(cfg.read_timeout(), None);
        assert!(cfg.reactors() >= 1);
        assert_eq!(cfg.queue_delay_budget(), None);
        assert_eq!(cfg.shed_sojourn(), None);
        assert_eq!(cfg.watchdog_window(), None);
        assert_eq!(cfg.flight_dir(), None);
    }

    #[test]
    fn overload_knobs_build_and_reject_zero() {
        let cfg = ServerConfig::builder()
            .queue_delay_budget(Some(Duration::from_millis(50)))
            .shed_sojourn(Some(Duration::from_millis(20)))
            .watchdog_window(Some(Duration::from_secs(2)))
            .build()
            .unwrap();
        assert_eq!(cfg.queue_delay_budget(), Some(Duration::from_millis(50)));
        assert_eq!(cfg.shed_sojourn(), Some(Duration::from_millis(20)));
        assert_eq!(cfg.watchdog_window(), Some(Duration::from_secs(2)));
        assert_eq!(
            ServerConfig::builder().queue_delay_budget(Some(Duration::ZERO)).build().unwrap_err(),
            NetConfigError::ZeroTimeout { which: "queue_delay_budget" }
        );
        assert_eq!(
            ServerConfig::builder().shed_sojourn(Some(Duration::ZERO)).build().unwrap_err(),
            NetConfigError::ZeroTimeout { which: "shed_sojourn" }
        );
        assert_eq!(
            ServerConfig::builder().watchdog_window(Some(Duration::ZERO)).build().unwrap_err(),
            NetConfigError::ZeroTimeout { which: "watchdog_window" }
        );
    }

    #[test]
    fn validation_rejects_each_bad_knob() {
        assert_eq!(
            ServerConfig::builder().max_connections(0).build().unwrap_err(),
            NetConfigError::ZeroConnections
        );
        assert_eq!(
            ServerConfig::builder().pipeline_window(0).build().unwrap_err(),
            NetConfigError::ZeroPipelineWindow
        );
        assert!(matches!(
            ServerConfig::builder().write_buffer_limit(1).build().unwrap_err(),
            NetConfigError::WriteBufferBound { limit: 1, .. }
        ));
        assert!(matches!(
            ServerConfig::builder().write_buffer_limit(MAX_WRITE_BUFFER + 1).build().unwrap_err(),
            NetConfigError::WriteBufferBound { .. }
        ));
        assert_eq!(
            ServerConfig::builder().write_timeout(Duration::ZERO).build().unwrap_err(),
            NetConfigError::ZeroTimeout { which: "write_timeout" }
        );
        assert_eq!(
            ServerConfig::builder().read_timeout(Some(Duration::ZERO)).build().unwrap_err(),
            NetConfigError::ZeroTimeout { which: "read_timeout" }
        );
        assert_eq!(
            ServerConfig::builder().reactors(0).build().unwrap_err(),
            NetConfigError::ZeroReactors
        );
        assert_eq!(
            ServerConfig::builder().max_connections(2).reactors(4).build().unwrap_err(),
            NetConfigError::ConnectionsBelowReactors { max_connections: 2, reactors: 4 }
        );
        // The same knobs are fine on the threads engine, which ignores
        // the reactor count.
        assert!(ServerConfig::builder()
            .engine(Engine::Threads)
            .max_connections(2)
            .reactors(4)
            .build()
            .is_ok());
    }

    #[test]
    fn engine_names_round_trip() {
        for e in [Engine::Reactor, Engine::Threads] {
            assert_eq!(Engine::parse(e.name()), Some(e));
            assert_eq!(e.to_string(), e.name());
        }
        assert_eq!(Engine::parse("fibers"), None);
    }
}
