//! `AriaClient`: a pipelined, reconnecting TCP client for the Aria
//! protocol.
//!
//! The client is synchronous and single-threaded (one per worker
//! thread). Throughput comes from *pipelining*: [`AriaClient::pipeline`]
//! writes a whole slice of requests before reading any response, keeping
//! the server's pipeline window full. The convenience ops
//! ([`AriaClient::get`], [`AriaClient::put`], …) are depth-1 pipelines.
//!
//! Transport failures are never silently retried for *operations* —
//! a put whose connection died mid-flight may or may not have been
//! applied, and only the caller knows whether re-issuing is safe. What
//! the client does transparently is re-*connect*: every op first ensures
//! a connection, dialing with exponential backoff
//! ([`ClientConfig::reconnect_attempts`] ×
//! [`ClientConfig::reconnect_backoff`]) if the previous one is gone.
//! Each backoff sleep is *jittered* — drawn uniformly from
//! `[backoff/2, backoff]` with a per-client splitmix64 stream — so a
//! fleet of clients dropped by the same server incident redials spread
//! out instead of in synchronized waves.
//! Every response read is bounded by [`ClientConfig::op_timeout`], so a
//! dead or wedged server yields a typed [`NetError`] instead of a hang.
//!
//! One class of *server* error may be retried transparently: shard
//! routing errors ([`ErrorCode::ShardQuarantined`] /
//! [`ErrorCode::ShardUnavailable`]) mean the op was refused before
//! touching any data, so re-issuing is always safe. During a failover
//! the refusal window is the promotion latency, so single-op calls
//! retry these up to [`ClientConfig::retry_budget`] times within a
//! total [`ClientConfig::op_deadline`], with jittered doubling backoff,
//! and surface the *last typed error* when the budget or deadline runs
//! out. Transport errors and every other server error are never
//! retried.
//!
//! Each new connection opens with a versioned `HELLO` handshake
//! ([`ClientConfig::handshake`], on by default): the client offers its
//! protocol version and feature bits, the server answers with the
//! negotiated pair ([`AriaClient::protocol_version`] /
//! [`AriaClient::negotiated_features`]). A pre-HELLO server rejects
//! the opcode and hangs up; the client redials once and speaks the
//! base protocol, so old servers keep working transparently.
//!
//! # Routing cache (v6)
//!
//! When the handshake lands on v6 with the `ROUTING_EPOCH` feature
//! granted, the client keeps a *routing cache*: the server's routing
//! epoch, fetched once per connection (a `RESHARD` mode-0 query right
//! after `HELLO`) and stamped on every data frame as the v6 trailer.
//! A server mid-reshard refuses ops whose claimed epoch predates a
//! slot move with the typed `WRONG_SHARD` reply; the client treats
//! that as a *routing refresh*, not a failure — it adopts the epoch
//! carried in the refusal (single-flight: the refusal itself is the
//! refresh, no extra round-trip) and re-issues immediately. Refresh
//! retries are bounded separately ([`WRONG_SHARD_REFRESH_ROUNDS`])
//! and never consume [`ClientConfig::retry_budget`]; transport errors
//! are never retried by this path either.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use aria_store::sharded::splitmix64;

use crate::proto::{
    self, Decoded, ErrorCode, HealthReply, Request, Response, StatsReply, WireError,
};

/// Tuning knobs for [`AriaClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Bound on waiting for any single response frame.
    pub op_timeout: Duration,
    /// Bound on one TCP connect attempt.
    pub connect_timeout: Duration,
    /// Connect attempts before an op reports the connection error.
    pub reconnect_attempts: u32,
    /// Sleep before the 2nd attempt; doubles each further attempt.
    pub reconnect_backoff: Duration,
    /// Extra attempts (beyond the first) for *safe-to-retry* server
    /// refusals: [`ErrorCode::ShardQuarantined`] and
    /// [`ErrorCode::ShardUnavailable`]. 0 disables op retries.
    pub retry_budget: u32,
    /// Total wall-clock bound across one op's first attempt and all its
    /// retries; the last typed error is surfaced when it expires.
    pub op_deadline: Duration,
    /// Sleep before the first op retry; doubles (with jitter) each
    /// further retry.
    pub retry_backoff: Duration,
    /// Open each connection with a versioned `HELLO` handshake
    /// (protocol version + feature bits). A pre-HELLO server answers
    /// `UnknownOpcode` and hangs up; the client then redials once and
    /// speaks the base protocol — so this is safe to leave on against
    /// servers of any age. `false` skips the handshake entirely.
    pub handshake: bool,
    /// Trace sampling rate: `0` disables tracing; `N` stamps roughly
    /// one in `N` requests with a sampled trace context so the server
    /// captures a per-stage span for it. Only takes effect once the
    /// `HELLO` handshake negotiates v5+ — against older servers the
    /// trailer is never sent and the knob is inert.
    pub trace_sample: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            op_timeout: Duration::from_secs(5),
            connect_timeout: Duration::from_secs(1),
            reconnect_attempts: 5,
            reconnect_backoff: Duration::from_millis(20),
            retry_budget: 0,
            op_deadline: Duration::from_secs(30),
            retry_backoff: Duration::from_millis(5),
            handshake: true,
            trace_sample: 0,
        }
    }
}

/// Errors surfaced by [`AriaClient`] operations.
#[derive(Debug)]
pub enum NetError {
    /// Transport failure (connect, read or write).
    Io(io::Error),
    /// No response within [`ClientConfig::op_timeout`].
    Timeout,
    /// The peer sent bytes that do not decode as protocol frames.
    Wire(WireError),
    /// The server answered with a typed error.
    Server {
        /// Stable protocol error code.
        code: ErrorCode,
        /// Log detail from the server.
        message: String,
        /// Server's cool-down hint for [`ErrorCode::Overloaded`]
        /// refusals (milliseconds; 0 = no hint). The retry loop
        /// honors it instead of its own backoff, still capped by
        /// [`ClientConfig::op_deadline`].
        retry_after_ms: u64,
    },
    /// The server answered with a frame that does not match the request
    /// (protocol bug or desynchronized stream).
    UnexpectedResponse,
}

impl NetError {
    /// The protocol error code, when the server produced one.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            NetError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }

    /// Whether the failure is transport-level (the op may never have
    /// reached the server, and a reconnect might succeed).
    pub fn is_transport(&self) -> bool {
        matches!(self, NetError::Io(_) | NetError::Timeout)
    }

    /// Whether the op was *refused before touching data* and is
    /// therefore always safe to re-issue: the server answered with a
    /// shard routing error (quarantined or unavailable, from failover
    /// and recovery windows) or an admission refusal
    /// ([`ErrorCode::Overloaded`], refused fast before execution).
    /// [`ErrorCode::DeadlineExceeded`] is deliberately NOT here: the
    /// op's own time budget is already spent, so re-issuing it would
    /// only add load that can no longer help the caller. Transport
    /// errors are NOT safe — the op may have been applied.
    pub fn is_safe_to_retry(&self) -> bool {
        matches!(
            self,
            NetError::Server {
                code: ErrorCode::ShardQuarantined
                    | ErrorCode::ShardUnavailable
                    | ErrorCode::Overloaded,
                ..
            }
        )
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport error: {e}"),
            NetError::Timeout => write!(f, "timed out waiting for a response"),
            NetError::Wire(e) => write!(f, "protocol error: {e}"),
            NetError::Server { code, message, .. } => write!(f, "server error {code}: {message}"),
            NetError::UnexpectedResponse => write!(f, "response does not match the request"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut {
            NetError::Timeout
        } else {
            NetError::Io(e)
        }
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

/// Per-key outcome of a [`AriaClient::multi_get`]: the value (if the
/// key exists) or the store's typed error code for that key.
pub type KeyResult = Result<Option<Vec<u8>>, ErrorCode>;

/// How many `WRONG_SHARD` refresh-and-retry rounds a single op may
/// take before the typed error surfaces. Each refused round adopts the
/// server's epoch from the refusal, so one round resolves any single
/// committed move; the headroom covers back-to-back migrations landing
/// while the op is in flight.
pub const WRONG_SHARD_REFRESH_ROUNDS: u32 = 4;

/// The server's resharding status as seen by [`AriaClient::reshard_status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReshardReply {
    /// Current routing epoch.
    pub epoch: u64,
    /// Per-slot owner shard.
    pub slots: Vec<u32>,
    /// Encoded `aria_store::ReshardState` (0 idle, 1 running,
    /// 2 committed, 3 aborted).
    pub state: u8,
    /// Migrations started since the server came up.
    pub started: u64,
    /// Migrations committed.
    pub committed: u64,
    /// Migrations aborted.
    pub aborted: u64,
}

struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    roff: usize,
}

/// A pipelined client connection to an [`crate::AriaServer`].
pub struct AriaClient {
    addr: SocketAddr,
    config: ClientConfig,
    conn: Option<Conn>,
    next_id: u64,
    /// splitmix64 state for backoff jitter (advanced per draw).
    rng: u64,
    /// `(version, features)` from the last completed handshake;
    /// `None` until a handshake has run (or with `handshake: false`).
    negotiated: Option<(u16, u64)>,
    /// Wall-clock bound of the op currently inside [`AriaClient::one`];
    /// v4+ data frames carry the remaining budget as their deadline
    /// trailer. `None` for raw [`AriaClient::pipeline`] calls, which
    /// send "no deadline".
    op_deadline_hint: Option<Instant>,
    /// The peer rejected `HELLO` once: skip the handshake on every
    /// further redial instead of burning a connection each time.
    peer_pre_hello: bool,
    /// Cached routing epoch, stamped on v6 data frames when the
    /// `ROUTING_EPOCH` feature was granted. 0 = no claim (pre-v6 peer,
    /// feature not granted, or not yet fetched).
    routing_epoch: u64,
}

impl AriaClient {
    /// Resolve `addr` and connect (with backoff).
    pub fn connect<A: ToSocketAddrs>(
        addr: A,
        config: ClientConfig,
    ) -> Result<AriaClient, NetError> {
        let addr = addr.to_socket_addrs().map_err(NetError::Io)?.next().ok_or_else(|| {
            NetError::Io(io::Error::new(io::ErrorKind::InvalidInput, "no address"))
        })?;
        // Jitter seed: wall clock mixed with the target address, so
        // simultaneously-started clients still draw distinct streams.
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let rng = splitmix64(now ^ (u64::from(addr.port()) << 32));
        let mut client = AriaClient {
            addr,
            config,
            conn: None,
            next_id: 1,
            rng,
            negotiated: None,
            op_deadline_hint: None,
            peer_pre_hello: false,
            routing_epoch: 0,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// Protocol version negotiated by the `HELLO` handshake: the
    /// server's answer, or [`proto::BASE_PROTOCOL_VERSION`] when the
    /// peer predates `HELLO`. `None` until the first handshake (or
    /// always, with [`ClientConfig::handshake`] off).
    pub fn protocol_version(&self) -> Option<u16> {
        self.negotiated.map(|(v, _)| v)
    }

    /// Feature bits granted by the server in the `HELLO` handshake
    /// (`0` for pre-`HELLO` peers). `None` until the first handshake.
    pub fn negotiated_features(&self) -> Option<u64> {
        self.negotiated.map(|(_, f)| f)
    }

    /// Whether a live connection is currently held (it may still be
    /// found dead by the next op).
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    /// The routing epoch this client currently claims on v6 data
    /// frames (0 = no claim).
    pub fn routing_epoch(&self) -> u64 {
        self.routing_epoch
    }

    /// Whether the connection negotiated routing-epoch exchange (v6+
    /// with the `ROUTING_EPOCH` feature granted).
    fn routing_negotiated(&self) -> bool {
        self.negotiated.is_some_and(|(v, f)| {
            v >= proto::RESHARD_PROTOCOL_VERSION && f & proto::features::ROUTING_EPOCH != 0
        })
    }

    /// The server address this client dials.
    pub fn server_addr(&self) -> SocketAddr {
        self.addr
    }

    fn ensure_connected(&mut self) -> Result<(), NetError> {
        if self.conn.is_some() {
            return Ok(());
        }
        self.dial()?;
        if self.config.handshake && !self.peer_pre_hello {
            match self.try_hello() {
                Ok(Some(negotiated)) => self.negotiated = Some(negotiated),
                Ok(None) => {
                    // Pre-HELLO server: it reported the opcode as a
                    // framing failure and hung up. Redial once and
                    // speak the base protocol from here on.
                    self.peer_pre_hello = true;
                    self.negotiated = Some((proto::BASE_PROTOCOL_VERSION, 0));
                    self.conn = None;
                    self.dial()?;
                }
                Err(e) => {
                    self.conn = None;
                    return Err(e);
                }
            }
            // Prime the routing cache once per connection so data
            // frames claim a live epoch from the first op. A failure
            // here fails the connect — a v6 server that cannot answer
            // a RESHARD query is not healthy.
            if self.routing_negotiated() {
                if let Err(e) = self.fetch_routing_epoch() {
                    self.conn = None;
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// One `RESHARD` mode-0 query on the live connection, adopting the
    /// server's epoch into the routing cache.
    fn fetch_routing_epoch(&mut self) -> Result<(), NetError> {
        let id = self.next_id;
        self.next_id += 1;
        let version = self.negotiated.map(|(v, _)| v).unwrap_or(proto::BASE_PROTOCOL_VERSION);
        let conn = self.conn.as_mut().expect("connection is live");
        let mut out = Vec::new();
        proto::encode_request_versioned(
            &mut out,
            id,
            &Request::Reshard { mode: 0, source: 0, target: 0 },
            0,
            version,
        )?;
        conn.stream.write_all(&out)?;
        match read_response(conn, version)? {
            (rid, Response::Reshard { epoch, .. }) if rid == id => {
                self.routing_epoch = self.routing_epoch.max(epoch);
                Ok(())
            }
            (_, Response::Error { code, message, retry_after_ms }) => {
                Err(NetError::Server { code, message, retry_after_ms })
            }
            _ => Err(NetError::UnexpectedResponse),
        }
    }

    fn dial(&mut self) -> Result<(), NetError> {
        let mut backoff = self.config.reconnect_backoff;
        let attempts = self.config.reconnect_attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(self.jittered(backoff));
                backoff = backoff.saturating_mul(2);
            }
            match TcpStream::connect_timeout(&self.addr, self.config.connect_timeout) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    stream.set_read_timeout(Some(self.config.op_timeout)).map_err(NetError::Io)?;
                    stream.set_write_timeout(Some(self.config.op_timeout)).map_err(NetError::Io)?;
                    self.conn = Some(Conn { stream, rbuf: Vec::new(), roff: 0 });
                    return Ok(());
                }
                Err(e) => last = Some(e),
            }
        }
        Err(NetError::Io(last.expect("at least one connect attempt")))
    }

    /// One `HELLO` exchange on the fresh connection. `Ok(Some(_))` is
    /// the negotiated `(version, features)`; `Ok(None)` means the peer
    /// predates `HELLO` (it answered `UnknownOpcode`).
    fn try_hello(&mut self) -> Result<Option<(u16, u64)>, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        let conn = self.conn.as_mut().expect("dial succeeded");
        let mut out = Vec::new();
        proto::encode_request(
            &mut out,
            id,
            &Request::Hello {
                version: proto::PROTOCOL_VERSION,
                features: proto::features::SUPPORTED,
            },
        )?;
        conn.stream.write_all(&out)?;
        // The ack itself is encoded pre-negotiation: decode at base.
        let (rid, resp) = read_response(conn, proto::BASE_PROTOCOL_VERSION)?;
        match resp {
            Response::HelloAck { version, features } if rid == id => Ok(Some((version, features))),
            Response::Error { code: ErrorCode::UnknownOpcode, .. } => Ok(None),
            Response::Error { code, message, retry_after_ms } => {
                Err(NetError::Server { code, message, retry_after_ms })
            }
            _ => Err(NetError::UnexpectedResponse),
        }
    }

    /// One sampling decision: [`TraceContext::NONE`] when tracing is
    /// off (or the 1-in-N draw misses), otherwise a sampled context
    /// with a fresh nonzero trace id.
    fn draw_trace(&mut self, trace_on: bool) -> proto::TraceContext {
        if !trace_on {
            return proto::TraceContext::NONE;
        }
        self.rng = splitmix64(self.rng);
        if !self.rng.is_multiple_of(u64::from(self.config.trace_sample)) {
            return proto::TraceContext::NONE;
        }
        self.rng = splitmix64(self.rng);
        proto::TraceContext { id: self.rng.max(1), sampled: true }
    }

    /// Uniform draw from `[backoff/2, backoff]`, advancing the client's
    /// splitmix64 stream. Keeps the exponential doubling envelope while
    /// desynchronizing concurrent reconnectors.
    fn jittered(&mut self, backoff: Duration) -> Duration {
        self.rng = splitmix64(self.rng);
        let ns = backoff.as_nanos() as u64;
        let half = ns / 2;
        Duration::from_nanos(half + self.rng % (ns - half + 1))
    }

    /// Send every request back-to-back, then read every response, in
    /// order. One transport failure fails the whole pipeline and drops
    /// the connection (the next op redials).
    pub fn pipeline(&mut self, reqs: &[Request]) -> Result<Vec<Response>, NetError> {
        self.ensure_connected()?;
        let first_id = self.next_id;
        self.next_id += reqs.len() as u64;
        let result = self.pipeline_inner(first_id, reqs);
        if result.is_err() {
            // The stream may hold half a conversation; never reuse it.
            self.conn = None;
        }
        result
    }

    /// [`pipeline`](Self::pipeline), but every data frame in the window
    /// carries the remaining budget until `deadline` (v4 peers only; on
    /// older servers the window is sent without trailers). No retries —
    /// `Overloaded`/`DeadlineExceeded` refusals surface as per-op error
    /// responses for the caller to classify.
    pub fn pipeline_with_deadline(
        &mut self,
        reqs: &[Request],
        deadline: Instant,
    ) -> Result<Vec<Response>, NetError> {
        self.op_deadline_hint = Some(deadline);
        let result = self.pipeline(reqs);
        self.op_deadline_hint = None;
        result
    }

    fn pipeline_inner(
        &mut self,
        first_id: u64,
        reqs: &[Request],
    ) -> Result<Vec<Response>, NetError> {
        // Decode at what HELLO negotiated; without a handshake the
        // server takes this peer for a base-version client and encodes
        // responses (notably STATS) accordingly.
        let version = self.negotiated.map(|(v, _)| v).unwrap_or(proto::BASE_PROTOCOL_VERSION);
        // Deadline trailer (v4+): the remaining budget of the op in
        // flight, clamped to ≥1ns so an about-to-expire deadline is not
        // mistaken for "no deadline" (0).
        let deadline_ns = match self.op_deadline_hint {
            Some(d) if version >= proto::OVERLOAD_PROTOCOL_VERSION => {
                (d.saturating_duration_since(Instant::now()).as_nanos() as u64).max(1)
            }
            _ => 0,
        };
        // Sampling decisions are drawn before the connection borrow;
        // each sampled request gets a fresh splitmix64 trace id.
        let trace_on = self.config.trace_sample > 0 && version >= proto::TRACE_PROTOCOL_VERSION;
        let traces: Vec<proto::TraceContext> =
            (0..reqs.len()).map(|_| self.draw_trace(trace_on)).collect();
        // Routing claim (v6 + feature): the cached epoch rides on every
        // data frame so the server can refuse against stale routing.
        let routing_epoch = if self.routing_negotiated() { self.routing_epoch } else { 0 };
        let conn = self.conn.as_mut().expect("ensure_connected succeeded");
        let mut out = Vec::new();
        for (i, req) in reqs.iter().enumerate() {
            // An over-limit request fails the pipeline before any byte
            // hits the wire; the connection is still clean.
            proto::encode_request_routed(
                &mut out,
                first_id + i as u64,
                req,
                deadline_ns,
                traces[i],
                routing_epoch,
                version,
            )?;
        }
        conn.stream.write_all(&out)?;
        let mut responses = Vec::with_capacity(reqs.len());
        for i in 0..reqs.len() {
            let (id, resp) = read_response(conn, version)?;
            if id == proto::CONTROL_ID {
                // Connection-level server error (e.g. over the limit).
                if let Response::Error { code, message, retry_after_ms } = resp {
                    return Err(NetError::Server { code, message, retry_after_ms });
                }
                return Err(NetError::UnexpectedResponse);
            }
            if id != first_id + i as u64 {
                return Err(NetError::UnexpectedResponse);
            }
            responses.push(resp);
        }
        Ok(responses)
    }

    /// One request/response exchange, retrying safe-to-retry shard
    /// refusals (see [`NetError::is_safe_to_retry`]) within the
    /// configured budget and deadline. Anything else — transport
    /// failures included — fails on the first occurrence.
    fn one(&mut self, req: Request) -> Result<Response, NetError> {
        let deadline = Instant::now() + self.config.op_deadline;
        // Expose the bound so v4+ request frames carry the remaining
        // budget as their deadline trailer; cleared on every exit path.
        self.op_deadline_hint = Some(deadline);
        let result = self.one_with_deadline(req, deadline);
        self.op_deadline_hint = None;
        result
    }

    fn one_with_deadline(&mut self, req: Request, deadline: Instant) -> Result<Response, NetError> {
        let mut backoff = self.config.retry_backoff;
        let mut retries_left = self.config.retry_budget;
        let mut refresh_rounds = 0u32;
        loop {
            // Typed per-op server errors arrive as `Response::Error`
            // frames; fold them into `NetError::Server` here so the
            // retry policy sees them (callers' `fail()` would have done
            // the same conversion anyway).
            let err = match self.one_attempt(&req) {
                Ok(Response::WrongShard { epoch, hint }) => {
                    // A typed routing refusal: the op was refused
                    // before execution because our claimed epoch went
                    // stale. The refusal *carries* the fresh epoch, so
                    // adopting it is the refresh — re-issue right away.
                    // Bounded separately from (and never consuming) the
                    // ordinary retry budget.
                    if refresh_rounds < WRONG_SHARD_REFRESH_ROUNDS && Instant::now() < deadline {
                        refresh_rounds += 1;
                        self.routing_epoch = self.routing_epoch.max(epoch);
                        continue;
                    }
                    return Err(NetError::Server {
                        code: ErrorCode::WrongShard,
                        message: format!(
                            "routing refused after {refresh_rounds} refreshes \
                             (server epoch {epoch}, owner hint {hint})"
                        ),
                        retry_after_ms: 0,
                    });
                }
                Ok(Response::Error { code, message, retry_after_ms }) => {
                    NetError::Server { code, message, retry_after_ms }
                }
                Ok(resp) => return Ok(resp),
                Err(e) => e,
            };
            if !err.is_safe_to_retry() || retries_left == 0 {
                return Err(err);
            }
            let now = Instant::now();
            if now >= deadline {
                // Budget unspent but time is up: surface the last
                // typed error, never a synthetic timeout.
                return Err(err);
            }
            retries_left -= 1;
            // An overload refusal carries the server's cool-down hint;
            // honor it (jittered) instead of our own doubling envelope,
            // still capped by the op deadline.
            let sleep = match &err {
                NetError::Server { code: ErrorCode::Overloaded, retry_after_ms, .. }
                    if *retry_after_ms > 0 =>
                {
                    self.jittered(Duration::from_millis(*retry_after_ms))
                }
                _ => {
                    let s = self.jittered(backoff);
                    backoff = backoff.saturating_mul(2);
                    s
                }
            };
            std::thread::sleep(sleep.min(deadline - now));
        }
    }

    fn one_attempt(&mut self, req: &Request) -> Result<Response, NetError> {
        Ok(self.pipeline(std::slice::from_ref(req))?.pop().expect("one response per request"))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), NetError> {
        match self.one(Request::Ping)? {
            Response::Pong => Ok(()),
            other => fail(other),
        }
    }

    /// Fetch one key.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, NetError> {
        match self.one(Request::Get { key: key.to_vec() })? {
            Response::Value(v) => Ok(v),
            other => fail(other),
        }
    }

    /// Insert or update one key.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), NetError> {
        match self.one(Request::Put { key: key.to_vec(), value: value.to_vec() })? {
            Response::PutOk => Ok(()),
            other => fail(other),
        }
    }

    /// Remove one key; returns whether it existed.
    pub fn delete(&mut self, key: &[u8]) -> Result<bool, NetError> {
        match self.one(Request::Delete { key: key.to_vec() })? {
            Response::Deleted(existed) => Ok(existed),
            other => fail(other),
        }
    }

    /// Fetch several keys in one request; per-key results in order.
    pub fn multi_get(&mut self, keys: &[&[u8]]) -> Result<Vec<KeyResult>, NetError> {
        let keys = keys.iter().map(|k| k.to_vec()).collect();
        match self.one(Request::MultiGet { keys })? {
            Response::Values(items) => Ok(items),
            other => fail(other),
        }
    }

    /// Insert or update several pairs in one request; per-pair results
    /// in order.
    pub fn put_batch(
        &mut self,
        pairs: &[(&[u8], &[u8])],
    ) -> Result<Vec<Result<(), ErrorCode>>, NetError> {
        let pairs = pairs.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        match self.one(Request::PutBatch { pairs })? {
            Response::BatchStatus(items) => Ok(items),
            other => fail(other),
        }
    }

    /// Server/store statistics.
    pub fn stats(&mut self) -> Result<StatsReply, NetError> {
        match self.one(Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => fail(other),
        }
    }

    /// Per-shard health (quarantine state machine) of the server's
    /// store.
    pub fn health(&mut self) -> Result<HealthReply, NetError> {
        match self.one(Request::Health)? {
            Response::Health(h) => Ok(h),
            other => fail(other),
        }
    }

    /// Full telemetry snapshot (metrics + slow-op traces) of the server.
    ///
    /// A decode failure means the peer speaks an incompatible telemetry
    /// codec version and is reported as [`NetError::UnexpectedResponse`].
    pub fn metrics(&mut self) -> Result<aria_telemetry::TelemetrySnapshot, NetError> {
        match self.one(Request::Metrics)? {
            Response::Metrics(bytes) => aria_telemetry::TelemetrySnapshot::decode(&bytes)
                .map_err(|_| NetError::UnexpectedResponse),
            other => fail(other),
        }
    }

    /// Stream the server's sampled spans, resuming from `cursors`
    /// (per-shard-ring positions; empty = everything still buffered).
    /// Returns the spans plus the cursors to pass on the next call.
    pub fn trace_spans(
        &mut self,
        cursors: &[u64],
    ) -> Result<(Vec<aria_telemetry::Span>, Vec<u64>), NetError> {
        match self.one(Request::Trace { mode: 0, cursors: cursors.to_vec() })? {
            Response::Trace(bytes) => {
                aria_telemetry::decode_spans(&bytes).map_err(|_| NetError::UnexpectedResponse)
            }
            other => fail(other),
        }
    }

    /// Request an on-demand flight-recorder post-mortem (JSON: trigger
    /// reason, recent system events, and the buffered sampled spans).
    pub fn flight_dump(&mut self) -> Result<String, NetError> {
        match self.one(Request::Trace { mode: 1, cursors: Vec::new() })? {
            Response::Trace(bytes) => {
                String::from_utf8(bytes).map_err(|_| NetError::UnexpectedResponse)
            }
            other => fail(other),
        }
    }

    /// Query the server's routing/resharding state (RESHARD mode 0),
    /// folding the answered epoch into the routing cache.
    pub fn reshard_status(&mut self) -> Result<ReshardReply, NetError> {
        self.reshard(Request::Reshard { mode: 0, source: 0, target: 0 })
    }

    /// Ask the server to start a shard *split*: move half of `source`'s
    /// routing slots to the inactive group `target`, activating it. The
    /// reply is the accept-time status; poll
    /// [`AriaClient::reshard_status`] for progress.
    pub fn start_split(&mut self, source: u32, target: u32) -> Result<ReshardReply, NetError> {
        self.reshard(Request::Reshard { mode: 1, source, target })
    }

    /// Ask the server to start a shard *merge*: move all of `source`'s
    /// routing slots into the active group `target`, deactivating the
    /// source once drained.
    pub fn start_merge(&mut self, source: u32, target: u32) -> Result<ReshardReply, NetError> {
        self.reshard(Request::Reshard { mode: 2, source, target })
    }

    fn reshard(&mut self, req: Request) -> Result<ReshardReply, NetError> {
        match self.one(req)? {
            Response::Reshard { epoch, slots, state, started, committed, aborted } => {
                self.routing_epoch = self.routing_epoch.max(epoch);
                Ok(ReshardReply { epoch, slots, state, started, committed, aborted })
            }
            other => fail(other),
        }
    }
}

impl std::fmt::Debug for AriaClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AriaClient")
            .field("addr", &self.addr)
            .field("connected", &self.conn.is_some())
            .finish()
    }
}

fn fail<T>(resp: Response) -> Result<T, NetError> {
    match resp {
        Response::Error { code, message, retry_after_ms } => {
            Err(NetError::Server { code, message, retry_after_ms })
        }
        // A WRONG_SHARD that escaped the refresh loop (e.g. raw
        // pipelines) still surfaces as its typed code.
        Response::WrongShard { epoch, hint } => Err(NetError::Server {
            code: ErrorCode::WrongShard,
            message: format!("wrong shard (server epoch {epoch}, owner hint {hint})"),
            retry_after_ms: 0,
        }),
        _ => Err(NetError::UnexpectedResponse),
    }
}

/// Read one response frame, decoding at `version` — what `HELLO`
/// negotiated, or [`proto::BASE_PROTOCOL_VERSION`] when the handshake
/// was skipped (the server then treats this peer as a base-version
/// client and encodes accordingly).
fn read_response(conn: &mut Conn, version: u16) -> Result<(u64, Response), NetError> {
    loop {
        match proto::decode_response_versioned(&conn.rbuf[conn.roff..], version)? {
            Decoded::Frame(consumed, id, resp) => {
                conn.roff += consumed;
                if conn.roff == conn.rbuf.len() {
                    conn.rbuf.clear();
                    conn.roff = 0;
                }
                return Ok((id, resp));
            }
            Decoded::Incomplete => {
                let mut chunk = [0u8; 16 * 1024];
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        return Err(NetError::Io(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server closed the connection",
                        )))
                    }
                    Ok(n) => conn.rbuf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e.into()),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::thread;

    /// A scripted single-connection server: answers each request with
    /// the next canned response, counting requests served. Lets retry
    /// tests control exactly which typed errors the client observes.
    fn scripted_server(
        responses: Vec<Response>,
        repeat_last: bool,
    ) -> (SocketAddr, Arc<AtomicU64>, thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr");
        let served = Arc::new(AtomicU64::new(0));
        let served2 = Arc::clone(&served);
        let handle = thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let mut rbuf = Vec::new();
            let mut next = 0usize;
            let mut chunk = [0u8; 4096];
            // Until HELLO negotiates higher, frames are base-version;
            // after it the client sends v4 deadline trailers and
            // expects v4-encoded responses.
            let mut version = proto::BASE_PROTOCOL_VERSION;
            loop {
                let frame = match proto::decode_request_ref_versioned(&rbuf, version) {
                    Ok(Decoded::Frame(consumed, id, (req, _meta))) => {
                        Some((consumed, id, req.to_owned()))
                    }
                    Ok(Decoded::Incomplete) => None,
                    Err(_) => return,
                };
                match frame {
                    Some((consumed, id, req)) => {
                        rbuf.drain(..consumed);
                        // Answer the connection handshake out-of-band so
                        // scripts stay about the operations under test.
                        if let Request::Hello { version: v, features } = req {
                            let negotiated = v.min(proto::PROTOCOL_VERSION);
                            let mut out = Vec::new();
                            let ack = Response::HelloAck {
                                version: negotiated,
                                features: features & proto::features::SUPPORTED,
                            };
                            // The ack itself is pre-negotiation (base).
                            proto::encode_response(&mut out, id, &ack).expect("encode");
                            if stream.write_all(&out).is_err() {
                                return;
                            }
                            version = negotiated;
                            continue;
                        }
                        // The connect-time routing-cache priming query
                        // is likewise answered out-of-band so scripts
                        // stay about the operations under test.
                        if let Request::Reshard { mode: 0, .. } = req {
                            let reply = Response::Reshard {
                                epoch: 1,
                                slots: Vec::new(),
                                state: 0,
                                started: 0,
                                committed: 0,
                                aborted: 0,
                            };
                            let mut out = Vec::new();
                            proto::encode_response_versioned(&mut out, id, &reply, version)
                                .expect("encode");
                            if stream.write_all(&out).is_err() {
                                return;
                            }
                            continue;
                        }
                        let resp = if next < responses.len() {
                            let r = responses[next].clone();
                            if next + 1 < responses.len() || !repeat_last {
                                next += 1;
                            }
                            r
                        } else {
                            return; // script exhausted: hang up
                        };
                        let mut out = Vec::new();
                        proto::encode_response_versioned(&mut out, id, &resp, version)
                            .expect("encode");
                        // Count before writing: the client may observe
                        // the response (and the test may assert) before
                        // this thread runs again.
                        served2.fetch_add(1, Ordering::SeqCst);
                        if stream.write_all(&out).is_err() {
                            return;
                        }
                    }
                    None => match stream.read(&mut chunk) {
                        Ok(0) | Err(_) => return,
                        Ok(n) => rbuf.extend_from_slice(&chunk[..n]),
                    },
                }
            }
        });
        (addr, served, handle)
    }

    fn quarantined() -> Response {
        Response::Error {
            code: ErrorCode::ShardQuarantined,
            message: "shard 0 quarantined".into(),
            retry_after_ms: 0,
        }
    }

    fn overloaded(retry_after_ms: u64) -> Response {
        Response::Error {
            code: ErrorCode::Overloaded,
            message: "server overloaded; op was not applied".into(),
            retry_after_ms,
        }
    }

    fn fast_retry_config(budget: u32, deadline: Duration) -> ClientConfig {
        ClientConfig {
            retry_budget: budget,
            op_deadline: deadline,
            retry_backoff: Duration::from_millis(1),
            ..ClientConfig::default()
        }
    }

    /// A server that predates `HELLO` reports the opcode as a framing
    /// failure and hangs up; the client must redial, skip the
    /// handshake, and settle on the base protocol version.
    #[test]
    fn pre_hello_server_falls_back_to_base_protocol() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr");
        let handle = thread::spawn(move || {
            // First connection: reject the HELLO the way the old server
            // rejects any unknown opcode — control error, then close.
            let (mut stream, _) = listener.accept().expect("accept");
            let mut chunk = [0u8; 4096];
            let _ = stream.read(&mut chunk).expect("read hello");
            let mut out = Vec::new();
            // An old server encodes at the base version — no v4
            // retry-after bytes on the wire.
            proto::encode_response_versioned(
                &mut out,
                proto::CONTROL_ID,
                &Response::Error {
                    code: ErrorCode::UnknownOpcode,
                    message: "opcode".into(),
                    retry_after_ms: 0,
                },
                proto::BASE_PROTOCOL_VERSION,
            )
            .expect("encode");
            stream.write_all(&out).expect("write rejection");
            drop(stream);
            // Second connection: no handshake arrives; serve one ping.
            let (mut stream, _) = listener.accept().expect("re-accept");
            let mut rbuf = Vec::new();
            loop {
                if let Ok(Decoded::Frame(consumed, id, req)) = proto::decode_request(&rbuf) {
                    rbuf.drain(..consumed);
                    assert!(
                        matches!(req, Request::Ping),
                        "fallback connection must not re-send HELLO"
                    );
                    let mut out = Vec::new();
                    proto::encode_response(&mut out, id, &Response::Pong).expect("encode");
                    stream.write_all(&out).expect("write pong");
                    return;
                }
                match stream.read(&mut chunk) {
                    Ok(0) | Err(_) => return,
                    Ok(n) => rbuf.extend_from_slice(&chunk[..n]),
                }
            }
        });
        let mut client = AriaClient::connect(addr, ClientConfig::default()).unwrap();
        assert_eq!(client.protocol_version(), Some(proto::BASE_PROTOCOL_VERSION));
        assert_eq!(client.negotiated_features(), Some(0));
        client.ping().expect("base-protocol ops must work against the old server");
        drop(client);
        handle.join().unwrap();
    }

    #[test]
    fn retry_budget_rides_out_a_quarantine_window() {
        // Two refusals then success: a budget of 3 must absorb them.
        let (addr, served, handle) =
            scripted_server(vec![quarantined(), quarantined(), Response::PutOk], false);
        let mut client =
            AriaClient::connect(addr, fast_retry_config(3, Duration::from_secs(10))).unwrap();
        client.put(b"k", b"v").expect("retries must ride out the refusals");
        assert_eq!(served.load(Ordering::SeqCst), 3, "two refused attempts plus the success");
        drop(client);
        handle.join().unwrap();
    }

    #[test]
    fn exhausted_budget_surfaces_last_typed_error() {
        let (addr, served, handle) = scripted_server(vec![quarantined()], true);
        let mut client =
            AriaClient::connect(addr, fast_retry_config(2, Duration::from_secs(10))).unwrap();
        let err = client.put(b"k", b"v").expect_err("every attempt is refused");
        assert_eq!(err.code(), Some(ErrorCode::ShardQuarantined), "typed error, not a timeout");
        assert_eq!(served.load(Ordering::SeqCst), 3, "first attempt + budget of 2");
        drop(client);
        handle.join().unwrap();
    }

    #[test]
    fn deadline_caps_retries_and_surfaces_last_typed_error() {
        let (addr, served, handle) = scripted_server(vec![quarantined()], true);
        let mut config = fast_retry_config(u32::MAX, Duration::from_millis(120));
        config.retry_backoff = Duration::from_millis(30);
        let mut client = AriaClient::connect(addr, config).unwrap();
        let start = Instant::now();
        let err = client.put(b"k", b"v").expect_err("server never relents");
        assert_eq!(err.code(), Some(ErrorCode::ShardQuarantined));
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "deadline must stop an unbounded budget (took {:?})",
            start.elapsed()
        );
        assert!(served.load(Ordering::SeqCst) >= 2, "at least one retry happened");
        drop(client);
        handle.join().unwrap();
    }

    #[test]
    fn non_shard_errors_and_transport_failures_are_not_retried() {
        // A non-routing server error must fail on the first attempt.
        let (addr, served, handle) = scripted_server(
            vec![Response::Error {
                code: ErrorCode::KeyTooLong,
                message: "nope".into(),
                retry_after_ms: 0,
            }],
            true,
        );
        let mut client =
            AriaClient::connect(addr, fast_retry_config(5, Duration::from_secs(10))).unwrap();
        let err = client.put(b"k", b"v").expect_err("KeyTooLong is not retryable");
        assert_eq!(err.code(), Some(ErrorCode::KeyTooLong));
        assert!(!err.is_safe_to_retry());
        assert_eq!(served.load(Ordering::SeqCst), 1, "no retry for non-routing errors");
        drop(client);
        handle.join().unwrap();

        // A connection that dies mid-op is a transport failure: the op
        // may have been applied, so the client must not re-issue it.
        let (addr, served, handle) = scripted_server(vec![], false);
        let mut client =
            AriaClient::connect(addr, fast_retry_config(5, Duration::from_secs(10))).unwrap();
        let err = client.put(b"k", b"v").expect_err("server hangs up without answering");
        assert!(err.is_transport(), "got {err:?}");
        assert!(!err.is_safe_to_retry());
        assert_eq!(served.load(Ordering::SeqCst), 0);
        drop(client);
        handle.join().unwrap();
    }

    /// `Overloaded` is an admission refusal — the op never touched
    /// data — so it is retried, and the server's `retry_after_ms` hint
    /// drives the sleep instead of the client's own backoff envelope.
    #[test]
    fn overloaded_retry_honors_retry_after_hint() {
        let (addr, served, handle) = scripted_server(vec![overloaded(60), Response::PutOk], false);
        let mut config = fast_retry_config(3, Duration::from_secs(10));
        // Make the client's own envelope negligible so any measured
        // sleep is attributable to the server's hint.
        config.retry_backoff = Duration::from_micros(1);
        let mut client = AriaClient::connect(addr, config).unwrap();
        let start = Instant::now();
        client.put(b"k", b"v").expect("one refusal, then success");
        // The jittered draw is uniform in [hint/2, hint].
        assert!(
            start.elapsed() >= Duration::from_millis(30),
            "retry must honor the 60ms hint (slept only {:?})",
            start.elapsed()
        );
        assert_eq!(served.load(Ordering::SeqCst), 2, "one refusal plus the success");
        drop(client);
        handle.join().unwrap();
    }

    /// A huge `retry_after_ms` hint must not outlive the op deadline:
    /// the sleep is capped so the typed error surfaces promptly.
    #[test]
    fn overload_hint_is_capped_by_op_deadline() {
        let (addr, served, handle) = scripted_server(vec![overloaded(60_000)], true);
        let mut client =
            AriaClient::connect(addr, fast_retry_config(u32::MAX, Duration::from_millis(150)))
                .unwrap();
        let start = Instant::now();
        let err = client.put(b"k", b"v").expect_err("server never relents");
        assert_eq!(err.code(), Some(ErrorCode::Overloaded));
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "a 60s hint must be capped by the 150ms op deadline (took {:?})",
            start.elapsed()
        );
        assert!(served.load(Ordering::SeqCst) >= 1);
        drop(client);
        handle.join().unwrap();
    }

    fn wrong_shard(epoch: u64) -> Response {
        Response::WrongShard { epoch, hint: 1 }
    }

    /// A WRONG_SHARD storm resolves in one refresh round: the refusal
    /// carries the fresh epoch, the client adopts it and re-issues —
    /// with ZERO ordinary retry budget configured, proving the refresh
    /// path does not consume it.
    #[test]
    fn wrong_shard_resolves_in_one_refresh_round_without_retry_budget() {
        let (addr, served, handle) = scripted_server(vec![wrong_shard(5), Response::PutOk], false);
        let mut client =
            AriaClient::connect(addr, fast_retry_config(0, Duration::from_secs(10))).unwrap();
        assert_eq!(client.routing_epoch(), 1, "connect primes the routing cache");
        client.put(b"k", b"v").expect("one refresh round must resolve the refusal");
        assert_eq!(served.load(Ordering::SeqCst), 2, "refused attempt + refreshed success");
        assert_eq!(client.routing_epoch(), 5, "the refusal's epoch was adopted");
        drop(client);
        handle.join().unwrap();
    }

    /// A server that keeps refusing (epoch racing ahead) is bounded by
    /// the refresh-round cap, and the typed WrongShard error surfaces —
    /// never a timeout, never an unbounded loop.
    #[test]
    fn wrong_shard_refresh_rounds_are_bounded() {
        let (addr, served, handle) = scripted_server(vec![wrong_shard(9)], true);
        let mut client =
            AriaClient::connect(addr, fast_retry_config(0, Duration::from_secs(10))).unwrap();
        let err = client.put(b"k", b"v").expect_err("server never relents");
        assert_eq!(err.code(), Some(ErrorCode::WrongShard));
        assert_eq!(
            served.load(Ordering::SeqCst),
            u64::from(WRONG_SHARD_REFRESH_ROUNDS) + 1,
            "first attempt plus the bounded refresh rounds"
        );
        drop(client);
        handle.join().unwrap();
    }

    /// The refresh path never retries transport errors: a connection
    /// that dies after a WRONG_SHARD refusal surfaces the transport
    /// failure immediately (the re-issued op may have been applied).
    #[test]
    fn wrong_shard_refresh_never_retries_transport_errors() {
        // Script: one refusal, then the script is exhausted — the
        // server hangs up on the re-issued attempt.
        let (addr, served, handle) = scripted_server(vec![wrong_shard(3)], false);
        let mut client =
            AriaClient::connect(addr, fast_retry_config(5, Duration::from_secs(10))).unwrap();
        let err = client.put(b"k", b"v").expect_err("server hangs up after the refusal");
        assert!(err.is_transport(), "transport failure must surface, got {err:?}");
        assert_eq!(served.load(Ordering::SeqCst), 1, "only the refused attempt was served");
        drop(client);
        handle.join().unwrap();
    }

    /// `DeadlineExceeded` means the op's time budget is already spent:
    /// retrying can no longer help the caller, so the client must fail
    /// on the first occurrence even with budget to spare.
    #[test]
    fn deadline_exceeded_is_never_retried() {
        let (addr, served, handle) = scripted_server(
            vec![Response::Error {
                code: ErrorCode::DeadlineExceeded,
                message: "deadline expired before execution; op was not applied".into(),
                retry_after_ms: 0,
            }],
            true,
        );
        let mut client =
            AriaClient::connect(addr, fast_retry_config(5, Duration::from_secs(10))).unwrap();
        let err = client.put(b"k", b"v").expect_err("deadline refusal is terminal");
        assert_eq!(err.code(), Some(ErrorCode::DeadlineExceeded));
        assert!(!err.is_safe_to_retry());
        assert_eq!(served.load(Ordering::SeqCst), 1, "no retry after a deadline refusal");
        drop(client);
        handle.join().unwrap();
    }
}
