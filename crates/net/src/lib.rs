//! # aria-net — the Aria store's TCP service layer
//!
//! Everything needed to serve a [`aria_store::sharded::ShardedStore`]
//! over a real network edge:
//!
//! * [`proto`] — the compact length-prefixed binary wire protocol
//!   (`GET`/`PUT`/`DELETE`/`MULTI_GET`/`PUT_BATCH`/`STATS`/`PING`,
//!   client-chosen request ids, stable typed error codes, and a
//!   versioned `HELLO` handshake with feature negotiation);
//! * [`config`] — the validated [`ServerConfig`] builder and the
//!   serving [`Engine`] choice;
//! * [`server`] — [`AriaServer`], serving with either the epoll
//!   [`reactor`] engine (default: run-to-completion reactors that
//!   batch every connection's requests into one store submission per
//!   shard per tick) or the thread-per-connection engine — both with
//!   request pipelining, bounded write buffers with backpressure, a
//!   connection limit with clean rejection, and graceful
//!   drain-then-join shutdown;
//! * [`client`] — [`AriaClient`], a pipelined synchronous client with
//!   reconnect-with-backoff, per-op timeouts, and automatic `HELLO`
//!   version negotiation (falling back cleanly to pre-HELLO servers).
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use aria_net::{AriaClient, AriaServer, ClientConfig, Engine, ServerConfig};
//! use aria_sim::Enclave;
//! use aria_store::sharded::ShardedStore;
//! use aria_store::{AriaHash, StoreConfig};
//!
//! let store = Arc::new(
//!     ShardedStore::with_shards(2, |_| {
//!         AriaHash::new(StoreConfig::for_keys(1_024), Arc::new(Enclave::with_default_epc()))
//!     })
//!     .unwrap(),
//! );
//! let config = ServerConfig::builder()
//!     .engine(Engine::Reactor) // the default; Engine::Threads also available
//!     .max_connections(128)
//!     .build()
//!     .unwrap();
//! let server = AriaServer::bind("127.0.0.1:0", store, config).unwrap();
//!
//! let mut client = AriaClient::connect(server.local_addr(), ClientConfig::default()).unwrap();
//! client.put(b"user:1", b"alice").unwrap();
//! assert_eq!(client.get(b"user:1").unwrap().unwrap(), b"alice");
//!
//! server.shutdown(); // drains in-flight work, joins every thread
//! ```
//!
//! ## Trust boundary
//!
//! The wire protocol authenticates and encrypts **nothing** — it is
//! untrusted-side plumbing, exactly like the untrusted heap the sealed
//! entries live in. All confidentiality and integrity guarantees come
//! from the enclave layer underneath (sealed entries, counter Merkle
//! trees); see DESIGN.md §10 for the full argument.
//!
//! Unsafe code is denied crate-wide with one audited exception: the
//! raw epoll FFI in [`reactor`]'s `sys` module (Linux only).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod proto;
pub mod reactor;
pub mod server;

mod service;

pub use client::{AriaClient, ClientConfig, KeyResult, NetError, ReshardReply};
pub use config::{Engine, NetConfigError, ServerConfig, ServerConfigBuilder};
pub use proto::{
    features, ErrorCode, HealthReply, Request, RequestRef, Response, ShardHealthInfo, StatsReply,
    WireError, BASE_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
pub use server::AriaServer;
