//! # aria-net — the Aria store's TCP service layer
//!
//! Everything needed to serve a [`aria_store::sharded::ShardedStore`]
//! over a real network edge:
//!
//! * [`proto`] — the compact length-prefixed binary wire protocol
//!   (`GET`/`PUT`/`DELETE`/`MULTI_GET`/`PUT_BATCH`/`STATS`/`PING`,
//!   client-chosen request ids, stable typed error codes);
//! * [`server`] — [`AriaServer`], a thread-per-connection server with
//!   request pipelining (whole windows dispatched as one sharded store
//!   batch), bounded write buffers with backpressure, a connection
//!   limit with clean rejection, and graceful drain-then-join shutdown;
//! * [`client`] — [`AriaClient`], a pipelined synchronous client with
//!   reconnect-with-backoff and per-op timeouts.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use aria_net::{AriaClient, AriaServer, ClientConfig, ServerConfig};
//! use aria_sim::Enclave;
//! use aria_store::sharded::ShardedStore;
//! use aria_store::{AriaHash, StoreConfig};
//!
//! let store = Arc::new(
//!     ShardedStore::with_shards(2, |_| {
//!         AriaHash::new(StoreConfig::for_keys(1_024), Arc::new(Enclave::with_default_epc()))
//!     })
//!     .unwrap(),
//! );
//! let server = AriaServer::bind("127.0.0.1:0", store, ServerConfig::default()).unwrap();
//!
//! let mut client = AriaClient::connect(server.local_addr(), ClientConfig::default()).unwrap();
//! client.put(b"user:1", b"alice").unwrap();
//! assert_eq!(client.get(b"user:1").unwrap().unwrap(), b"alice");
//!
//! server.shutdown(); // drains in-flight work, joins every thread
//! ```
//!
//! ## Trust boundary
//!
//! The wire protocol authenticates and encrypts **nothing** — it is
//! untrusted-side plumbing, exactly like the untrusted heap the sealed
//! entries live in. All confidentiality and integrity guarantees come
//! from the enclave layer underneath (sealed entries, counter Merkle
//! trees); see DESIGN.md §10 for the full argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;

pub use client::{AriaClient, ClientConfig, KeyResult, NetError};
pub use proto::{
    ErrorCode, HealthReply, Request, Response, ShardHealthInfo, StatsReply, WireError,
};
pub use server::{AriaServer, ServerConfig};
