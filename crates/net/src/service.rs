//! Engine-agnostic request service machinery shared by the
//! thread-per-connection engine ([`crate::server`]) and the epoll
//! reactor ([`crate::reactor`]): planning a decoded request into store
//! ops plus a response [`Slot`], assembling the response from store
//! replies, HELLO negotiation, and frame-cap-safe encoding.
//!
//! Both engines follow the same contract: a request is *planned*
//! exactly once (its store ops are appended to some batch, its slot
//! remembers what to take back), the batch runs through the sharded
//! store, and [`build_response`] consumes exactly
//! [`Slot::store_ops`] replies per slot, in plan order.

use aria_store::sharded::{BatchOp, BatchReply, ShardedStore};
use aria_store::{KvStore, ReshardMode, ShardHealth};
use aria_telemetry::{outcome, stage, SpanCell, TelemetryHub};

use crate::proto::{self, ErrorCode, HealthReply, RequestRef, Response, StatsReply};

/// What one request expects back from the flattened store batch.
pub(crate) enum Slot {
    Pong,
    Stats,
    Health,
    Metrics,
    Hello {
        version: u16,
        features: u64,
    },
    Trace {
        mode: u8,
        cursors: Vec<u64>,
    },
    Reshard {
        mode: u8,
        source: u32,
        target: u32,
    },
    /// Refused before planning: the client's claimed routing epoch is
    /// stale for at least one key of the request (its slot moved after
    /// that epoch). No store ops were appended; the reply is the typed
    /// WRONG_SHARD refusal carrying the server's current epoch and the
    /// slot's owner.
    WrongShard {
        epoch: u64,
        hint: u32,
    },
    Get,
    Put,
    Delete,
    MultiGet(usize),
    PutBatch(usize),
    /// Refused before planning (expired deadline or net-layer overload
    /// shedding): no store ops were appended, the reply is a typed
    /// error carrying an optional retry-after hint.
    Shed(ErrorCode, u64),
}

impl Slot {
    /// How many store replies this slot consumes from the batch.
    pub(crate) fn store_ops(&self) -> usize {
        match self {
            Slot::Pong
            | Slot::Stats
            | Slot::Health
            | Slot::Metrics
            | Slot::Hello { .. }
            | Slot::Trace { .. }
            | Slot::Reshard { .. }
            | Slot::WrongShard { .. }
            | Slot::Shed(..) => 0,
            Slot::Get | Slot::Put | Slot::Delete => 1,
            Slot::MultiGet(n) | Slot::PutBatch(n) => *n,
        }
    }

    /// Operations this request counts as in `ops_served`: store ops for
    /// data requests, one for control requests (and sheds) answered
    /// in-line.
    pub(crate) fn served_units(&self) -> u64 {
        match self {
            Slot::Pong
            | Slot::Stats
            | Slot::Health
            | Slot::Metrics
            | Slot::Hello { .. }
            | Slot::Trace { .. }
            | Slot::Reshard { .. }
            | Slot::WrongShard { .. }
            | Slot::Shed(..) => 1,
            _ => self.store_ops() as u64,
        }
    }
}

/// Whether the client's per-op time budget had already elapsed while
/// the request sat in server-side buffers. Control-plane ops never
/// carry a deadline (they bypass admission entirely), and a zero
/// deadline means "no deadline".
pub(crate) fn deadline_expired(deadline_ns: u64, sojourn_ns: u64) -> bool {
    deadline_ns > 0 && sojourn_ns >= deadline_ns
}

/// Per-key stale-routing probe: `Some((owner_hint, current_epoch))`
/// when the key's slot moved after the client's claimed epoch.
pub(crate) type StaleProbe<'a> = &'a dyn Fn(&[u8]) -> Option<(usize, u64)>;

/// Net-layer shedding gate, shared by both engines: a *data* op whose
/// deadline already expired (or that sat in server buffers past the
/// CoDel-style sojourn bound) is refused before any store op is
/// planned. Control-plane ops (PING/STATS/HEALTH/METRICS/HELLO) always
/// pass — observability and failover stay responsive during brownout.
#[allow(clippy::too_many_arguments)] // one per admission input, both engines thread them
pub(crate) fn shed_or_plan(
    req: &RequestRef<'_>,
    deadline_ns: u64,
    sojourn_ns: u64,
    shed_sojourn: Option<std::time::Duration>,
    tele: &TelemetryHub,
    span: Option<&SpanCell>,
    stale: StaleProbe<'_>,
    sink: &mut impl FnMut(BatchOp),
) -> Slot {
    if req.is_data_op() {
        let verdict = if deadline_expired(deadline_ns, sojourn_ns) {
            tele.net.ops_shed_deadline.inc();
            Some(Slot::Shed(ErrorCode::DeadlineExceeded, 0))
        } else {
            shed_sojourn.map(|b| b.as_nanos() as u64).filter(|&bound_ns| sojourn_ns > bound_ns).map(
                |bound_ns| {
                    tele.net.ops_shed_overload.inc();
                    let retry_after_ms = ((sojourn_ns - bound_ns) / 1_000_000).clamp(1, 1_000);
                    Slot::Shed(ErrorCode::Overloaded, retry_after_ms)
                },
            )
        };
        if let Some(cell) = span {
            cell.stamp(stage::ADMIT);
            if verdict.is_some() {
                cell.set_outcome(outcome::SHED);
            }
        }
        if let Some(shed) = verdict {
            return shed;
        }
        // Routing-epoch admission: a v6 client that claimed an epoch is
        // refused (whole request, nothing planned) if any of its keys'
        // slots moved after that epoch — serving it could honor routing
        // the client no longer holds. Claims of 0 never refuse, so v5-
        // and-older peers (who cannot claim) are untouched.
        if let Some((hint, epoch)) = first_stale_key(req, stale) {
            return Slot::WrongShard { epoch, hint: hint as u32 };
        }
    }
    plan_request(req, sink)
}

/// The first key of a data request whose routing claim is stale, if
/// any, as `(owner_hint, current_epoch)`.
fn first_stale_key(req: &RequestRef<'_>, stale: StaleProbe<'_>) -> Option<(usize, u64)> {
    match req {
        RequestRef::Get { key } | RequestRef::Put { key, .. } | RequestRef::Delete { key } => {
            stale(key)
        }
        RequestRef::MultiGet { keys } => keys.iter().find_map(|k| stale(k)),
        RequestRef::PutBatch { pairs } => pairs.iter().find_map(|(k, _)| stale(k)),
        _ => None,
    }
}

/// Plan one decoded request: append its store ops (copied out of the
/// read buffer here — the single copy on the request path) through
/// `sink`, and return the [`Slot`] that will consume the replies.
pub(crate) fn plan_request(req: &RequestRef<'_>, sink: &mut impl FnMut(BatchOp)) -> Slot {
    match req {
        RequestRef::Ping => Slot::Pong,
        RequestRef::Stats => Slot::Stats,
        RequestRef::Health => Slot::Health,
        RequestRef::Metrics => Slot::Metrics,
        RequestRef::Hello { version, features } => {
            Slot::Hello { version: *version, features: *features }
        }
        RequestRef::Trace { mode, cursors } => {
            Slot::Trace { mode: *mode, cursors: cursors.clone() }
        }
        RequestRef::Reshard { mode, source, target } => {
            Slot::Reshard { mode: *mode, source: *source, target: *target }
        }
        RequestRef::Get { key } => {
            sink(BatchOp::Get(key.to_vec()));
            Slot::Get
        }
        RequestRef::Put { key, value } => {
            sink(BatchOp::Put(key.to_vec(), value.to_vec()));
            Slot::Put
        }
        RequestRef::Delete { key } => {
            sink(BatchOp::Delete(key.to_vec()));
            Slot::Delete
        }
        RequestRef::MultiGet { keys } => {
            for key in keys {
                sink(BatchOp::Get(key.to_vec()));
            }
            Slot::MultiGet(keys.len())
        }
        RequestRef::PutBatch { pairs } => {
            for (key, value) in pairs {
                sink(BatchOp::Put(key.to_vec(), value.to_vec()));
            }
            Slot::PutBatch(pairs.len())
        }
    }
}

/// Server-side counters a STATS reply reports; each engine snapshots
/// its own bookkeeping into this.
pub(crate) struct ServerStats {
    pub ops_served: u64,
    pub active_connections: u32,
    pub connections_accepted: u64,
}

/// HELLO negotiation: meet at the lower protocol version (never below
/// the base version every peer speaks) and grant only the feature bits
/// both sides know.
pub(crate) fn negotiate_hello(version: u16, features: u64) -> Response {
    Response::HelloAck {
        version: version.clamp(proto::BASE_PROTOCOL_VERSION, proto::PROTOCOL_VERSION),
        features: features & proto::features::SUPPORTED,
    }
}

/// Assemble the response for one planned slot, consuming exactly
/// [`Slot::store_ops`] replies from `replies`.
pub(crate) fn build_response<S: KvStore + Send + 'static>(
    slot: Slot,
    replies: &mut impl Iterator<Item = BatchReply>,
    store: &ShardedStore<S>,
    tele: &TelemetryHub,
    stats: &ServerStats,
) -> Response {
    match slot {
        Slot::Pong => Response::Pong,
        Slot::Hello { version, features } => negotiate_hello(version, features),
        Slot::Stats => {
            // Size and health come from worker-published atomics, so
            // quarantined/recovering/dead shards are *included* (at
            // their last-known size) instead of silently dropped —
            // `degraded` flags that some of it may be stale.
            let healths = store.healths();
            let degraded = healths.iter().any(|h| h.health != ShardHealth::Healthy);
            let recovering = healths.iter().any(|h| h.health == ShardHealth::Recovering);
            // Tier occupancy comes from the gauges each shard refreshes
            // after batches and maintenance passes — reading them never
            // blocks a worker. Untiered stores leave both at zero.
            let (hot_keys, cold_keys) = store.telemetry().iter().fold((0, 0), |(h, c), t| {
                (h + t.store.hot_entries.get(), c + t.store.cold_entries.get())
            });
            // Overload view: store-side admission refusals plus
            // net-layer sojourn sheds, the worst shard's estimated
            // queue delay, and slow-reader disconnects. A shard over
            // its delay budget counts as degraded even while healthy —
            // brownout is a visible state, not a silent one.
            let ops_shed_overload = store.shed_ops_total() + tele.net.ops_shed_overload.get();
            let ops_shed_deadline = tele.net.ops_shed_deadline.get();
            let queue_delay_ns = store.queue_delay_estimates().into_iter().max().unwrap_or(0);
            let over_budget =
                store.queue_delay_budget().is_some_and(|b| queue_delay_ns > b.as_nanos() as u64);
            Response::Stats(StatsReply {
                shards: store.shards() as u32,
                len: store.len_estimate(),
                ops_served: stats.ops_served,
                active_connections: stats.active_connections,
                connections_accepted: stats.connections_accepted,
                degraded: degraded || over_budget,
                hot_keys,
                cold_keys,
                recovering,
                ops_shed_overload,
                ops_shed_deadline,
                queue_delay_ms: queue_delay_ns / 1_000_000,
                slow_disconnects: tele.net.conns_disconnected_slow.get(),
                health: healths.into_iter().map(Into::into).collect(),
            })
        }
        // HEALTH reports per-replica entries (role + lag) so clients
        // can watch failovers and re-sync progress; STATS stays
        // group-aggregated for capacity accounting.
        Slot::Health => Response::Health(HealthReply {
            shards: store.replica_healths().into_iter().map(Into::into).collect(),
        }),
        Slot::Metrics => Response::Metrics(tele.snapshot().encode()),
        Slot::Trace { mode, cursors } => match mode {
            0 => {
                let (spans, next) = tele.traces.read_since(&cursors);
                Response::Trace(aria_telemetry::encode_spans(&spans, &next))
            }
            1 => {
                // On-request post-mortem: recent events + resident
                // spans, regardless of whether an anomaly fired.
                let (spans, _) = tele.traces.read_since(&[]);
                tele.recorder.note_dump();
                Response::Trace(tele.recorder.render_dump("request", &[], &spans).into_bytes())
            }
            _ => Response::Error {
                code: ErrorCode::BadRequest,
                message: format!("unknown TRACE mode {mode}"),
                retry_after_ms: 0,
            },
        },
        Slot::WrongShard { epoch, hint } => Response::WrongShard { epoch, hint },
        Slot::Reshard { mode, source, target } => match mode {
            0 => reshard_reply(store),
            1 | 2 => {
                let m = ReshardMode::from_u8(mode).expect("modes 1 and 2 decode");
                // Starting is asynchronous: the driver runs in the
                // background and the reply is the accept-time status.
                match store.start_reshard(m, source as usize, target as usize) {
                    Ok(()) => reshard_reply(store),
                    Err(e) => error_response(&e),
                }
            }
            _ => Response::Error {
                code: ErrorCode::BadRequest,
                message: format!("unknown RESHARD mode {mode}"),
                retry_after_ms: 0,
            },
        },
        Slot::Get => match next_get(replies) {
            Ok(v) => Response::Value(v),
            Err(e) => error_response(&e),
        },
        Slot::Put => match next_put(replies) {
            Ok(()) => Response::PutOk,
            Err(e) => error_response(&e),
        },
        Slot::Delete => match next_delete(replies) {
            Ok(existed) => Response::Deleted(existed),
            Err(e) => error_response(&e),
        },
        Slot::MultiGet(n) => Response::Values(
            (0..n)
                .map(|_| next_get(replies).map_err(|e| ErrorCode::from_store_error(&e)))
                .collect(),
        ),
        Slot::PutBatch(n) => Response::BatchStatus(
            (0..n)
                .map(|_| next_put(replies).map_err(|e| ErrorCode::from_store_error(&e)))
                .collect(),
        ),
        Slot::Shed(code, retry_after_ms) => {
            let message = match code {
                ErrorCode::DeadlineExceeded => {
                    "deadline expired before execution; op was not applied".to_string()
                }
                _ => "server overloaded; op was not applied".to_string(),
            };
            Response::Error { code, message, retry_after_ms }
        }
    }
}

/// The RESHARD reply: current routing view + driver status. Also the
/// answer to a successfully accepted start, so the caller immediately
/// learns the epoch it raced against.
fn reshard_reply<S: KvStore + Send + 'static>(store: &ShardedStore<S>) -> Response {
    let status = store.reshard_status();
    Response::Reshard {
        epoch: status.epoch,
        slots: store.routing().owners_snapshot(),
        state: status.state.as_u8(),
        started: status.started,
        committed: status.committed,
        aborted: status.aborted,
    }
}

pub(crate) fn error_response(e: &aria_store::StoreError) -> Response {
    // A stale routing claim gets the typed refusal so v6 clients can
    // refresh-and-retry in one round; the encode layer degrades it to
    // the retryable ShardQuarantined code for pre-v6 peers (who can
    // only see it if something other than their own claim produced it
    // — they never stamp an epoch).
    if let aria_store::StoreError::WrongShard { epoch, hint, .. } = e {
        return Response::WrongShard { epoch: *epoch, hint: *hint as u32 };
    }
    let retry_after_ms = match e {
        aria_store::StoreError::Overloaded { retry_after_ms, .. } => *retry_after_ms,
        _ => 0,
    };
    Response::Error { code: ErrorCode::from_store_error(e), message: e.to_string(), retry_after_ms }
}

/// Encode `resp` for a connection speaking `version` (what `HELLO`
/// negotiated, [`proto::BASE_PROTOCOL_VERSION`] before/without one); if
/// it exceeds the wire frame cap, send a typed error frame under the
/// same request id instead — the client always gets an answer for every
/// id, never a silently dropped response.
pub(crate) fn encode_or_substitute(wbuf: &mut Vec<u8>, id: u64, resp: &Response, version: u16) {
    if let Err(e) = proto::encode_response_versioned(wbuf, id, resp, version) {
        let fallback = Response::Error {
            code: ErrorCode::FrameTooLarge,
            message: e.to_string(),
            retry_after_ms: 0,
        };
        proto::encode_response_versioned(wbuf, id, &fallback, version)
            .expect("error frames are tiny");
    }
}

/// Map a framing failure on the inbound stream to the error frame that
/// is sent (under [`proto::CONTROL_ID`]) before the connection closes.
pub(crate) fn wire_failure_response(e: &proto::WireError) -> Response {
    let code = match e {
        proto::WireError::FrameTooLarge { .. } => ErrorCode::FrameTooLarge,
        proto::WireError::UnknownOpcode(_) => ErrorCode::UnknownOpcode,
        proto::WireError::Malformed => ErrorCode::BadRequest,
    };
    Response::Error { code, message: e.to_string(), retry_after_ms: 0 }
}

/// Record one window/tick worth of per-opcode service latency: the
/// whole window was one store submission, so the amortized per-request
/// figure is the honest number a pipelined client experiences.
pub(crate) fn observe_amortized(tele: &TelemetryHub, elapsed_nanos: u64, op_idxs: &[usize]) {
    let per_req = elapsed_nanos / op_idxs.len().max(1) as u64;
    for &idx in op_idxs {
        tele.net.op_latency[idx].observe(per_req);
    }
}

fn next_get(
    replies: &mut impl Iterator<Item = BatchReply>,
) -> Result<Option<Vec<u8>>, aria_store::StoreError> {
    match replies.next() {
        Some(BatchReply::Get(r)) => r,
        _ => unreachable!("store answered a get slot with a non-get reply"),
    }
}

fn next_put(replies: &mut impl Iterator<Item = BatchReply>) -> Result<(), aria_store::StoreError> {
    match replies.next() {
        Some(BatchReply::Put(r)) => r,
        _ => unreachable!("store answered a put slot with a non-put reply"),
    }
}

fn next_delete(
    replies: &mut impl Iterator<Item = BatchReply>,
) -> Result<bool, aria_store::StoreError> {
    match replies.next() {
        Some(BatchReply::Delete(r)) => r,
        _ => unreachable!("store answered a delete slot with a non-delete reply"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_negotiation_meets_low_and_masks_features() {
        // Newer client: meet at our version, grant no unknown bits.
        match negotiate_hello(9, u64::MAX) {
            Response::HelloAck { version, features } => {
                assert_eq!(version, proto::PROTOCOL_VERSION);
                assert_eq!(features, proto::features::SUPPORTED);
            }
            other => panic!("expected HelloAck, got {other:?}"),
        }
        // Older (or zero) client version never negotiates below base.
        match negotiate_hello(0, 0) {
            Response::HelloAck { version, features } => {
                assert_eq!(version, proto::BASE_PROTOCOL_VERSION);
                assert_eq!(features, 0);
            }
            other => panic!("expected HelloAck, got {other:?}"),
        }
    }

    #[test]
    fn plan_counts_store_ops_and_served_units() {
        let mut ops = Vec::new();
        let slot =
            plan_request(&RequestRef::MultiGet { keys: vec![b"a", b"b", b"c"] }, &mut |op| {
                ops.push(op)
            });
        assert_eq!(slot.store_ops(), 3);
        assert_eq!(slot.served_units(), 3);
        assert_eq!(ops.len(), 3);
        let slot =
            plan_request(&RequestRef::Hello { version: 2, features: 0 }, &mut |op| ops.push(op));
        assert_eq!(slot.store_ops(), 0);
        assert_eq!(slot.served_units(), 1);
        assert_eq!(ops.len(), 3, "control requests push no store ops");
    }
}
