//! Epoll-based run-to-completion reactor engine.
//!
//! N reactor threads (one per core by default) each own a set of
//! connections, pinned at accept time by the acceptor thread
//! (round-robin) and never migrated. A reactor *tick* is:
//!
//! 1. wait on the poller (epoll on Linux, a portable fallback
//!    elsewhere) for socket readiness or an acceptor wake,
//! 2. adopt newly pinned connections and read every ready socket into
//!    its per-connection buffer,
//! 3. decode — in place, borrowing straight out of the read buffer via
//!    [`proto::decode_request_ref`] — up to one pipeline window per
//!    connection, routing every store op into a per-shard-group batch
//!    shared by **all** of the reactor's connections,
//! 4. submit the whole tick as one [`ShardedStore::run_sharded`] call
//!    (one hand-off per shard group, regardless of connection count),
//! 5. assemble responses per connection in request order and flush,
//!    falling back to poller-driven writes when a socket would block.
//!
//! Cross-connection coalescing is what the thread-per-connection
//! engine cannot do: with C connections each sending depth-1 requests,
//! the threads engine pays C store hand-offs per round-trip while the
//! reactor pays at most one per shard group per tick. The
//! `coalesce_ratio` telemetry (ops per store submission) makes the
//! effect observable.
//!
//! # Semantics preserved from the threads engine
//!
//! Responses are written in request order per connection; same-key
//! ordering within a tick follows the [`ShardedStore::run_sharded`]
//! contract (same as `run_batch`). A connection whose write buffer
//! tops [`ServerConfig::write_buffer_limit`] stops being read — and
//! once its flush has made no progress for
//! [`ServerConfig::write_timeout`], is disconnected. Framing failures
//! serve the valid prefix, send one control-id error frame, and close.
//! Graceful shutdown finishes the tick in flight — every response for
//! a decoded request is flushed before sockets close, so no
//! acknowledged write is lost — which is exactly what the PR-3
//! quarantine and PR-5 failover suites assert over this engine.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use aria_store::sharded::{BatchOp, BatchReply, ShardedStore};
use aria_store::KvStore;
use aria_telemetry::{outcome, stage, SpanCell};

use crate::config::ServerConfig;
use crate::proto::{self, Decoded, WireError};
use crate::server::{reject_connection, Shared, POLL_INTERVAL, READ_CHUNK};
use crate::service::{
    build_response, encode_or_substitute, observe_amortized, shed_or_plan, wire_failure_response,
    ServerStats, Slot,
};

/// Poller token reserved for the acceptor's wake channel.
const WAKE_TOKEN: u64 = u64::MAX;

#[cfg(target_os = "linux")]
use sys::Poller;

#[cfg(not(target_os = "linux"))]
use fallback::Poller;

#[cfg(target_os = "linux")]
mod sys {
    //! Raw epoll bindings. `std` already links libc, so declaring the
    //! symbols directly keeps the workspace dependency-free. This is
    //! the only unsafe code in the crate; every call site passes
    //! either the poller's own epoll fd or a fd owned by a live
    //! `TcpStream` in the reactor's connection slab.
    #![allow(unsafe_code)]

    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    /// Matches the kernel ABI: packed on x86-64 (the kernel reads a
    /// 12-byte struct there), naturally aligned everywhere else — the
    /// same split glibc's `__EPOLL_PACKED` makes.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// Level-triggered epoll poller: every registered fd is watched
    /// for readability; write interest is toggled per fd while its
    /// connection has unflushed output.
    pub(super) struct Poller {
        epfd: RawFd,
        events: Vec<EpollEvent>,
    }

    impl Poller {
        pub(super) fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd, events: vec![EpollEvent { events: 0, data: 0 }; 256] })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            let mut ev =
                EpollEvent { events: EPOLLIN | if writable { EPOLLOUT } else { 0 }, data: token };
            if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(super) fn add(&mut self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, writable)
        }

        pub(super) fn modify(&mut self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, writable)
        }

        pub(super) fn remove(&mut self, fd: RawFd, _token: u64) {
            let mut ev = EpollEvent { events: 0, data: 0 };
            let _ = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
        }

        /// Wait up to `timeout` and push the token of every ready fd
        /// into `ready` (cleared first).
        pub(super) fn wait(&mut self, ready: &mut Vec<u64>, timeout: Duration) -> io::Result<()> {
            ready.clear();
            let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
            let n = unsafe {
                epoll_wait(self.epfd, self.events.as_mut_ptr(), self.events.len() as i32, ms)
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for ev in &self.events[..n as usize] {
                // Copy out of the (possibly packed) struct before use.
                let token = ev.data;
                ready.push(token);
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            let _ = unsafe { close(self.epfd) };
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod fallback {
    //! Portable poller: remembers registered tokens and reports all of
    //! them ready after a short sleep. Spurious readiness is safe by
    //! construction — the reactor treats `WouldBlock` as "not now" —
    //! it just burns more wakeups than epoll would.
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    pub(super) struct Poller {
        tokens: Vec<u64>,
    }

    impl Poller {
        pub(super) fn new() -> io::Result<Poller> {
            Ok(Poller { tokens: Vec::new() })
        }

        pub(super) fn add(&mut self, _fd: RawFd, token: u64, _writable: bool) -> io::Result<()> {
            self.tokens.push(token);
            Ok(())
        }

        pub(super) fn modify(&mut self, _fd: RawFd, _token: u64, _w: bool) -> io::Result<()> {
            Ok(())
        }

        pub(super) fn remove(&mut self, _fd: RawFd, token: u64) {
            self.tokens.retain(|&t| t != token);
        }

        pub(super) fn wait(&mut self, ready: &mut Vec<u64>, timeout: Duration) -> io::Result<()> {
            std::thread::sleep(timeout.min(Duration::from_millis(1)));
            ready.clear();
            ready.extend_from_slice(&self.tokens);
            Ok(())
        }
    }
}

/// Hand-off point between the acceptor and one reactor: freshly
/// accepted sockets queue here, and a byte on the wake channel makes
/// the reactor's poller return immediately.
struct Inbox {
    queue: Mutex<Vec<TcpStream>>,
    wake_tx: Mutex<TcpStream>,
}

impl Inbox {
    fn wake(&self) {
        if let Ok(mut tx) = self.wake_tx.lock() {
            let _ = tx.write(&[1]);
        }
    }
}

/// The running reactor engine: the acceptor thread plus its reactors.
pub(crate) struct ReactorEngine {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    reactors: Vec<(Option<JoinHandle<()>>, Arc<Inbox>)>,
}

impl ReactorEngine {
    /// Spawn `cfg.reactors()` reactor threads and the acceptor that
    /// pins connections onto them.
    pub(crate) fn start<S: KvStore + Send + 'static>(
        listener: TcpListener,
        store: Arc<ShardedStore<S>>,
        shared: Arc<Shared>,
        cfg: ServerConfig,
    ) -> io::Result<ReactorEngine> {
        let mut reactors = Vec::with_capacity(cfg.reactors());
        for i in 0..cfg.reactors() {
            let (wake_tx, wake_rx) = wake_pair()?;
            let inbox =
                Arc::new(Inbox { queue: Mutex::new(Vec::new()), wake_tx: Mutex::new(wake_tx) });
            let handle = {
                let inbox = Arc::clone(&inbox);
                let store = Arc::clone(&store);
                let shared = Arc::clone(&shared);
                let cfg = cfg.clone();
                thread::Builder::new()
                    .name(format!("aria-reactor-{i}"))
                    .spawn(move || reactor_loop(wake_rx, inbox, store, shared, cfg))
                    .expect("spawn reactor thread")
            };
            reactors.push((Some(handle), inbox));
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            let inboxes: Vec<Arc<Inbox>> =
                reactors.iter().map(|(_, inbox)| Arc::clone(inbox)).collect();
            thread::Builder::new()
                .name("aria-accept".to_string())
                .spawn(move || accept_loop(listener, inboxes, shared, cfg))
                .expect("spawn acceptor thread")
        };
        Ok(ReactorEngine { shared, acceptor: Some(acceptor), reactors })
    }

    /// Join everything; the caller has already set the shutdown flag.
    pub(crate) fn stop(&mut self) {
        for (_, inbox) in &self.reactors {
            inbox.wake();
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for (handle, inbox) in &mut self.reactors {
            inbox.wake();
            if let Some(h) = handle.take() {
                let _ = h.join();
            }
        }
        // A connection the acceptor pinned after its reactor drained
        // the inbox was never adopted: close it and release its slot.
        for (_, inbox) in &self.reactors {
            if let Ok(mut q) = inbox.queue.lock() {
                for stream in q.drain(..) {
                    let _ = stream.shutdown(Shutdown::Both);
                    self.shared.active.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }
    }
}

/// A loopback socket pair standing in for `eventfd`: the write side
/// lives with the acceptor, the (nonblocking) read side is registered
/// in the reactor's poller under [`WAKE_TOKEN`].
fn wake_pair() -> io::Result<(TcpStream, TcpStream)> {
    let gate = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(gate.local_addr()?)?;
    let (rx, _) = gate.accept()?;
    tx.set_nodelay(true)?;
    rx.set_nonblocking(true)?;
    Ok((tx, rx))
}

fn accept_loop(
    listener: TcpListener,
    inboxes: Vec<Arc<Inbox>>,
    shared: Arc<Shared>,
    cfg: ServerConfig,
) {
    let mut next = 0usize;
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.active.load(Ordering::SeqCst) >= cfg.max_connections() {
                    shared.tele.net.rejected_connections.inc();
                    reject_connection(stream, cfg.write_timeout());
                    continue;
                }
                shared.active.fetch_add(1, Ordering::SeqCst);
                shared.accepted.fetch_add(1, Ordering::SeqCst);
                // Pin round-robin: the connection lives on this
                // reactor until it closes.
                let inbox = &inboxes[next % inboxes.len()];
                next = next.wrapping_add(1);
                if let Ok(mut q) = inbox.queue.lock() {
                    q.push(stream);
                }
                inbox.wake();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Per-connection reactor state. Identified by its slab index, which
/// doubles as the poller token.
struct Conn {
    stream: TcpStream,
    fd: RawFd,
    rbuf: Vec<u8>,
    roff: usize,
    wbuf: Vec<u8>,
    woff: usize,
    /// Poller is currently watching this fd for writability.
    want_write: bool,
    /// Set when a flush makes no progress; overdue means disconnect.
    write_deadline: Option<Instant>,
    last_request: Instant,
    /// Peer closed its write side; serve what is buffered, then close.
    peer_closed: bool,
    /// Framing lost: error frame queued, close after the flush.
    poisoned: bool,
    /// Complete frames may remain beyond the window cap — tick again
    /// without waiting on the poller.
    more_buffered: bool,
    /// When the bytes now buffered arrived: the sojourn lower bound
    /// used by deadline/overload shedding at plan time.
    read_stamp: Instant,
    /// What this peer speaks: the base version until a HELLO negotiates
    /// higher. Responses (notably STATS) are encoded at this version,
    /// and v4+ request frames carry the deadline trailer.
    version: u16,
    /// Sampled-request spans whose responses sit in `wbuf`: FLUSH is
    /// stamped and the span published once the buffer drains (or the
    /// connection closes — a span is never lost to a dead peer).
    unflushed_spans: Vec<Arc<SpanCell>>,
}

impl Conn {
    fn pending_out(&self) -> usize {
        self.wbuf.len() - self.woff
    }

    /// Reclaim consumed read-buffer space without shifting bytes on
    /// every frame.
    fn compact(&mut self) {
        if self.roff == self.rbuf.len() {
            self.rbuf.clear();
            self.roff = 0;
        } else if self.roff > READ_CHUNK {
            self.rbuf.drain(..self.roff);
            self.roff = 0;
        }
    }
}

/// One request planned this tick: which connection, its wire id, the
/// response slot, and where in the per-group batch its replies live.
struct Planned {
    token: usize,
    id: u64,
    slot: Slot,
    /// `(group, index)` of each store op, in op order.
    refs: Vec<(usize, usize)>,
    /// Live trace span when the request carried a sampled context.
    span: Option<Arc<SpanCell>>,
}

/// Yields one connection's replies in plan order by taking them out of
/// the per-group reply table.
struct TakeReplies<'a> {
    table: &'a mut [Vec<Option<BatchReply>>],
    refs: std::slice::Iter<'a, (usize, usize)>,
}

impl Iterator for TakeReplies<'_> {
    type Item = BatchReply;
    fn next(&mut self) -> Option<BatchReply> {
        let &(group, idx) = self.refs.next()?;
        Some(self.table[group][idx].take().expect("each planned reply taken exactly once"))
    }
}

fn reactor_loop<S: KvStore + Send + 'static>(
    mut wake_rx: TcpStream,
    inbox: Arc<Inbox>,
    store: Arc<ShardedStore<S>>,
    shared: Arc<Shared>,
    cfg: ServerConfig,
) {
    let Ok(mut poller) = Poller::new() else { return };
    let _ = poller.add(wake_rx.as_raw_fd(), WAKE_TOKEN, false);

    let groups = store.shards();
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut ready: Vec<u64> = Vec::new();
    let mut chunk = vec![0u8; READ_CHUNK];
    let mut immediate = false;

    loop {
        let timeout = if immediate { Duration::ZERO } else { POLL_INTERVAL };
        if poller.wait(&mut ready, timeout).is_err() {
            break;
        }
        let shutting_down = shared.shutdown.load(Ordering::SeqCst);

        // Drain the wake channel so level-triggered polling settles.
        if ready.contains(&WAKE_TOKEN) {
            let mut sink = [0u8; 64];
            while matches!(wake_rx.read(&mut sink), Ok(n) if n > 0) {}
        }

        // Adopt connections the acceptor pinned to this reactor.
        adopt_new(&inbox, &mut conns, &mut poller, &shared);

        // Read every ready socket. A backpressured connection (write
        // buffer at its bound) is not read: a client that stops
        // draining responses stops being served.
        for &token in &ready {
            if token == WAKE_TOKEN {
                continue;
            }
            let Some(conn) = conns.get_mut(token as usize).and_then(Option::as_mut) else {
                continue;
            };
            if conn.pending_out() < cfg.write_buffer_limit() {
                read_into(conn, &mut chunk, &shared);
            }
        }

        // Decode and plan one window per connection, coalescing every
        // store op across connections into one per-group batch.
        let mut per_group: Vec<Vec<BatchOp>> = (0..groups).map(|_| Vec::new()).collect();
        let mut per_group_spans: Vec<Vec<Arc<SpanCell>>> =
            (0..groups).map(|_| Vec::new()).collect();
        let mut plan: Vec<Planned> = Vec::new();
        let mut op_idxs: Vec<usize> = Vec::new();
        immediate = false;
        for token in 0..conns.len() {
            let Some(conn) = conns.get_mut(token).and_then(Option::as_mut) else { continue };
            if conn.poisoned || conn.pending_out() >= cfg.write_buffer_limit() {
                immediate |= conn.more_buffered;
                continue;
            }
            conn.more_buffered = false;
            // CoDel-style sojourn: how long the decoded-but-unserved
            // window sat in this connection's buffer before the tick
            // got to it.
            let sojourn_ns = conn.read_stamp.elapsed().as_nanos() as u64;
            let mut decoded = 0usize;
            while decoded < cfg.pipeline_window() {
                match proto::decode_request_ref_versioned(&conn.rbuf[conn.roff..], conn.version) {
                    Ok(Decoded::Frame(consumed, id, (req, meta))) => {
                        op_idxs.push(req.op_index());
                        let span = if meta.trace.sampled && aria_telemetry::enabled() {
                            let s = Arc::new(SpanCell::new(meta.trace.id, req.op_index() as u8));
                            s.stamp(stage::DECODE);
                            Some(s)
                        } else {
                            None
                        };
                        let mut refs = Vec::new();
                        let mut route = |op: BatchOp| {
                            let g = store.shard_of(op.key());
                            refs.push((g, per_group[g].len()));
                            per_group[g].push(op);
                        };
                        let slot = shed_or_plan(
                            &req,
                            meta.deadline_ns,
                            sojourn_ns,
                            cfg.shed_sojourn(),
                            &shared.tele,
                            span.as_deref(),
                            &|k| store.stale_claim(k, meta.routing_epoch),
                            &mut route,
                        );
                        if let Some(s) = &span {
                            if let Some(&(first, _)) = refs.first() {
                                s.set_shard(first as u32);
                                s.set_ops(refs.len() as u64);
                                // Hand the cell to every group executing
                                // its ops so queue/execute stamps land.
                                let mut gs: Vec<usize> = refs.iter().map(|r| r.0).collect();
                                gs.sort_unstable();
                                gs.dedup();
                                for g in gs {
                                    per_group_spans[g].push(Arc::clone(s));
                                }
                            }
                        }
                        plan.push(Planned { token, id, slot, refs, span });
                        conn.roff += consumed;
                        decoded += 1;
                    }
                    Ok(Decoded::Incomplete) => break,
                    Err(e) => {
                        poison(conn, &e);
                        break;
                    }
                }
            }
            if decoded > 0 {
                conn.last_request = Instant::now();
            }
            if decoded == cfg.pipeline_window() {
                // More complete frames may already be buffered; tick
                // again immediately instead of sleeping on the poller
                // (which only fires on *new* socket data).
                conn.more_buffered = true;
                immediate = true;
            }
            conn.compact();
        }

        // Submit the whole tick as one hand-off per shard group.
        if !plan.is_empty() {
            let total_ops: usize = per_group.iter().map(Vec::len).sum();
            let submissions = per_group.iter().filter(|g| !g.is_empty()).count();
            let served: u64 = plan.iter().map(|p| p.slot.served_units()).sum();
            let nreq = plan.len() as u64;
            let start = Instant::now();
            shared.tele.net.inflight.add(nreq);
            let replies: Vec<Vec<BatchReply>> = if submissions > 0 {
                store.run_sharded_traced(per_group, per_group_spans)
            } else {
                (0..groups).map(|_| Vec::new()).collect()
            };
            let mut table: Vec<Vec<Option<BatchReply>>> =
                replies.into_iter().map(|g| g.into_iter().map(Some).collect()).collect();

            shared.ops_served.fetch_add(served, Ordering::Relaxed);
            let stats = ServerStats {
                ops_served: shared.ops_served.load(Ordering::Relaxed),
                active_connections: shared.active.load(Ordering::SeqCst) as u32,
                connections_accepted: shared.accepted.load(Ordering::SeqCst),
            };
            for Planned { token, id, slot, refs, span } in plan {
                let was_shed = matches!(slot, Slot::Shed(..));
                let mut replies = TakeReplies { table: &mut table, refs: refs.iter() };
                let resp = build_response(slot, &mut replies, &store, &shared.tele, &stats);
                if let Some(s) = &span {
                    s.stamp(stage::ENCODE);
                    // Shed spans already carry their verdict; anything
                    // else answering an error frame is marked ERROR.
                    if !was_shed && matches!(resp, proto::Response::Error { .. }) {
                        s.set_outcome(outcome::ERROR);
                    }
                }
                match conns.get_mut(token).and_then(Option::as_mut) {
                    Some(conn) => {
                        encode_or_substitute(&mut conn.wbuf, id, &resp, conn.version);
                        // Responses after the HELLO ack (even later in
                        // this tick) use the version the handshake
                        // negotiated.
                        if let proto::Response::HelloAck { version, .. } = resp {
                            conn.version = version;
                        }
                        if let Some(s) = span {
                            conn.unflushed_spans.push(s);
                        }
                    }
                    // Connection already gone: publish what was
                    // captured rather than dropping the span.
                    None => {
                        if let Some(s) = span {
                            shared.tele.traces.publish(&s.to_span());
                        }
                    }
                }
            }
            shared.tele.net.inflight.sub(nreq);
            shared.tele.net.tick_batch_size.observe(total_ops as u64);
            shared.tele.net.reactor_ops.add(total_ops as u64);
            shared.tele.net.reactor_submissions.add(submissions as u64);
            observe_amortized(&shared.tele, start.elapsed().as_nanos() as u64, &op_idxs);
        }

        // Flush phase: push queued bytes, enforce timeouts, and close
        // whatever finished.
        let now = Instant::now();
        for token in 0..conns.len() {
            let Some(conn) = conns.get_mut(token).and_then(Option::as_mut) else { continue };
            let mut close = try_flush(conn, &shared, cfg.write_timeout()).is_err();
            if conn.pending_out() == 0 && !conn.unflushed_spans.is_empty() {
                for s in conn.unflushed_spans.drain(..) {
                    s.stamp(stage::FLUSH);
                    shared.tele.traces.publish(&s.to_span());
                }
            }
            if conn.poisoned && conn.pending_out() == 0 {
                close = true;
            }
            if conn.peer_closed && conn.pending_out() == 0 && !frames_possible(conn) {
                close = true;
            }
            if let Some(deadline) = conn.write_deadline {
                if now >= deadline {
                    // The peer stopped draining responses and the
                    // flush deadline lapsed: a slow-reader disconnect,
                    // observable in STATS rather than a silent drop.
                    shared.tele.net.conns_disconnected_slow.inc();
                    close = true;
                }
            }
            if let Some(limit) = cfg.read_timeout() {
                if conn.pending_out() == 0 && conn.last_request.elapsed() > limit {
                    shared.tele.net.timed_out_connections.inc();
                    close = true;
                }
            }
            // Keep write interest in sync with pending output.
            let want = conn.pending_out() > 0;
            if !close && want != conn.want_write {
                conn.want_write = want;
                let _ = poller.modify(conn.fd, token as u64, want);
            }
            if close {
                close_conn(&mut conns, token, &mut poller, &shared);
            }
        }

        if shutting_down {
            break;
        }
    }

    // Graceful shutdown: every response already encoded is flushed
    // (blocking, bounded by the write timeout) before sockets close —
    // an acked write is never lost. Buffered-but-undecoded requests
    // are abandoned; their clients observe a clean close.
    for token in 0..conns.len() {
        if let Some(conn) = conns.get_mut(token).and_then(Option::as_mut) {
            if conn.pending_out() > 0 {
                let _ = conn.stream.set_nonblocking(false);
                let _ = conn.stream.set_write_timeout(Some(cfg.write_timeout()));
                let pending = conn.pending_out() as u64;
                if conn.stream.write_all(&conn.wbuf[conn.woff..]).is_ok() {
                    shared.tele.net.frame_bytes_out.add(pending);
                }
            }
        }
        close_conn(&mut conns, token, &mut poller, &shared);
    }
    // Anything still queued in the inbox never got served; close it
    // cleanly and release its slot in the connection count.
    if let Ok(mut q) = inbox.queue.lock() {
        for stream in q.drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
            shared.active.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Whether the connection's buffer could still yield a complete frame
/// (or holds a framing error that must be reported).
fn frames_possible(conn: &Conn) -> bool {
    matches!(
        proto::decode_request_ref_versioned(&conn.rbuf[conn.roff..], conn.version),
        Ok(Decoded::Frame(..)) | Err(_)
    )
}

fn adopt_new(inbox: &Inbox, conns: &mut Vec<Option<Conn>>, poller: &mut Poller, shared: &Shared) {
    let fresh: Vec<TcpStream> = match inbox.queue.lock() {
        Ok(mut q) => std::mem::take(&mut *q),
        Err(_) => return,
    };
    for stream in fresh {
        if stream.set_nonblocking(true).is_err() {
            let _ = stream.shutdown(Shutdown::Both);
            shared.active.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        let _ = stream.set_nodelay(true);
        let fd = stream.as_raw_fd();
        let token = conns.iter().position(Option::is_none).unwrap_or_else(|| {
            conns.push(None);
            conns.len() - 1
        });
        if poller.add(fd, token as u64, false).is_err() {
            let _ = stream.shutdown(Shutdown::Both);
            shared.active.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        conns[token] = Some(Conn {
            stream,
            fd,
            rbuf: Vec::new(),
            roff: 0,
            wbuf: Vec::new(),
            woff: 0,
            want_write: false,
            write_deadline: None,
            last_request: Instant::now(),
            peer_closed: false,
            poisoned: false,
            more_buffered: false,
            unflushed_spans: Vec::new(),
            read_stamp: Instant::now(),
            version: proto::BASE_PROTOCOL_VERSION,
        });
        shared.tele.net.reactor_conns.add(1);
    }
}

/// Drain the socket into the connection's read buffer until it would
/// block (or the peer closes / errors).
fn read_into(conn: &mut Conn, chunk: &mut [u8], shared: &Shared) {
    loop {
        match conn.stream.read(chunk) {
            Ok(0) => {
                conn.peer_closed = true;
                return;
            }
            Ok(n) => {
                shared.tele.net.frame_bytes_in.add(n as u64);
                conn.rbuf.extend_from_slice(&chunk[..n]);
                conn.read_stamp = Instant::now();
                if n < chunk.len() {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.peer_closed = true;
                return;
            }
        }
    }
}

/// Framing lost: queue the control-id error frame (the valid prefix of
/// the stream was already planned and will be answered first) and mark
/// the connection to close once everything is flushed.
fn poison(conn: &mut Conn, e: &WireError) {
    conn.poisoned = true;
    encode_or_substitute(
        &mut conn.wbuf,
        proto::CONTROL_ID,
        &wire_failure_response(e),
        conn.version,
    );
}

/// Write as much pending output as the socket accepts. `WouldBlock`
/// with bytes remaining arms the write deadline; any progress (or a
/// full drain) clears it.
fn try_flush(conn: &mut Conn, shared: &Shared, write_timeout: Duration) -> io::Result<()> {
    while conn.pending_out() > 0 {
        match conn.stream.write(&conn.wbuf[conn.woff..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                conn.woff += n;
                shared.tele.net.frame_bytes_out.add(n as u64);
                conn.write_deadline = None;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if conn.write_deadline.is_none() {
                    conn.write_deadline = Some(Instant::now() + write_timeout);
                }
                return Ok(());
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    conn.wbuf.clear();
    conn.woff = 0;
    conn.write_deadline = None;
    Ok(())
}

fn close_conn(conns: &mut [Option<Conn>], token: usize, poller: &mut Poller, shared: &Shared) {
    if let Some(conn) = conns[token].take() {
        poller.remove(conn.fd, token as u64);
        let _ = conn.stream.shutdown(Shutdown::Both);
        shared.active.fetch_sub(1, Ordering::SeqCst);
        shared.tele.net.reactor_conns.sub(1);
        // Spans whose response never drained still describe real work
        // the server did; publish them un-FLUSH-stamped.
        for s in conn.unflushed_spans {
            shared.tele.traces.publish(&s.to_span());
        }
    }
}
