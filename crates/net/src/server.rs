//! `AriaServer`: a thread-per-connection TCP front door over a
//! [`ShardedStore`].
//!
//! Each accepted connection gets a dedicated thread that repeatedly
//! decodes a *pipeline window* — every complete request frame already
//! buffered, up to [`ServerConfig::pipeline_window`] — and dispatches
//! the whole window as **one** [`ShardedStore::run_batch`] call. The
//! sharded layer then partitions the window across shards and coalesces
//! same-kind runs into `multi_get`/`put_batch`, so a deeply pipelined
//! client amortizes per-request fixed costs exactly like an in-process
//! batch caller.
//!
//! # Ordering
//!
//! Responses are written in request order per connection. Requests on
//! the *same key* (same shard) are applied in order even within a
//! window; requests on different shards may interleave — identical to
//! the in-process [`ShardedStore::run_batch`] contract.
//!
//! # Backpressure
//!
//! The per-connection write buffer is bounded by
//! [`ServerConfig::write_buffer_limit`]: once a window's responses are
//! encoded (or the limit is hit mid-window) the buffer is flushed with
//! [`ServerConfig::write_timeout`] before any further request is read.
//! A client that stops draining responses therefore stops being read —
//! and, once its flush times out, is disconnected — instead of growing
//! an unbounded queue inside the server.
//!
//! # Shutdown
//!
//! [`AriaServer::shutdown`] stops the acceptor, lets every connection
//! finish the window it is processing (all its responses are flushed —
//! no acknowledged write is lost), closes the sockets and joins all
//! threads. Requests that were buffered but not yet decoded are
//! abandoned; their clients observe a clean connection close, never a
//! hang.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use aria_store::sharded::{BatchOp, BatchReply, ShardedStore};
use aria_store::{KvStore, ShardHealth};
use aria_telemetry::TelemetryHub;

use crate::proto::{
    self, Decoded, ErrorCode, HealthReply, Request, Response, StatsReply, WireError,
};

/// How often blocked reads and the acceptor wake to check for shutdown.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Read chunk size for connection sockets.
const READ_CHUNK: usize = 64 * 1024;

/// Tuning knobs for [`AriaServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connections beyond this are rejected with
    /// [`ErrorCode::TooManyConnections`] and closed.
    pub max_connections: usize,
    /// Max requests decoded and dispatched as one store batch.
    pub pipeline_window: usize,
    /// Bound on buffered response bytes before a flush is forced.
    pub write_buffer_limit: usize,
    /// A response flush slower than this disconnects the client.
    pub write_timeout: Duration,
    /// Close a connection with no complete request for this long
    /// (`None`: idle connections are kept forever).
    pub read_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            pipeline_window: 256,
            write_buffer_limit: 256 * 1024,
            write_timeout: Duration::from_secs(5),
            read_timeout: None,
        }
    }
}

struct Shared {
    shutdown: AtomicBool,
    active: AtomicUsize,
    accepted: AtomicU64,
    ops_served: AtomicU64,
    conns: Mutex<Vec<JoinHandle<()>>>,
    tele: Arc<TelemetryHub>,
}

/// Lock the connection registry even if a previous holder panicked. A
/// `Vec<JoinHandle>` has no invariant a partial mutation can break, so
/// a poisoned lock is safe to keep using — treating it as fatal would
/// let one crashed connection thread take down the acceptor (and every
/// future connection) with it.
fn lock_conns(shared: &Shared) -> std::sync::MutexGuard<'_, Vec<JoinHandle<()>>> {
    shared.conns.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A running TCP server; dropping (or [`AriaServer::shutdown`]) drains
/// and joins every thread it spawned.
pub struct AriaServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

impl AriaServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start serving `store` with the given configuration.
    pub fn bind<S, A>(
        addr: A,
        store: Arc<ShardedStore<S>>,
        config: ServerConfig,
    ) -> io::Result<AriaServer>
    where
        S: KvStore + Send + 'static,
        A: ToSocketAddrs,
    {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        // The hub shares the store's live recorders and slow-op tracer,
        // so a METRICS snapshot covers every layer below the socket.
        let tele = Arc::new(TelemetryHub::with_parts(
            store.telemetry().to_vec(),
            Arc::clone(store.slow_ops()),
        ));
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            ops_served: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
            tele,
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("aria-accept".to_string())
                .spawn(move || accept_loop(listener, store, shared, config))
                .expect("spawn acceptor thread")
        };
        Ok(AriaServer { addr, shared, acceptor: Some(acceptor) })
    }

    /// The bound address (resolves the ephemeral port of `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Operations served since start (batch items count individually).
    pub fn ops_served(&self) -> u64 {
        self.shared.ops_served.load(Ordering::SeqCst)
    }

    /// The telemetry hub this server snapshots for METRICS requests.
    /// Shares the store's per-shard recorders; the caller can snapshot
    /// or scrape ([`aria_telemetry::render_prometheus`]) at any time.
    pub fn telemetry(&self) -> &Arc<TelemetryHub> {
        &self.shared.tele
    }

    /// Graceful shutdown: stop accepting, finish and flush every
    /// connection's in-flight window, join all threads. Idempotent with
    /// `Drop`; returns once everything is joined.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let conns = std::mem::take(&mut *lock_conns(&self.shared));
        for h in conns {
            let _ = h.join();
        }
    }
}

impl Drop for AriaServer {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for AriaServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AriaServer")
            .field("addr", &self.addr)
            .field("active", &self.active_connections())
            .finish()
    }
}

fn accept_loop<S: KvStore + Send + 'static>(
    listener: TcpListener,
    store: Arc<ShardedStore<S>>,
    shared: Arc<Shared>,
    config: ServerConfig,
) {
    let mut conn_seq = 0u64;
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                reap_finished(&shared);
                if shared.active.load(Ordering::SeqCst) >= config.max_connections {
                    shared.tele.net.rejected_connections.inc();
                    reject_connection(stream, &config);
                    continue;
                }
                shared.active.fetch_add(1, Ordering::SeqCst);
                shared.accepted.fetch_add(1, Ordering::SeqCst);
                conn_seq += 1;
                let store = Arc::clone(&store);
                let conn_shared = Arc::clone(&shared);
                let cfg = config.clone();
                let handle = thread::Builder::new()
                    .name(format!("aria-conn-{conn_seq}"))
                    .spawn(move || {
                        serve_connection(stream, store, &conn_shared, &cfg);
                        conn_shared.active.fetch_sub(1, Ordering::SeqCst);
                    })
                    .expect("spawn connection thread");
                lock_conns(&shared).push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Join connection threads that already returned so the registry does
/// not grow with every connection ever accepted.
fn reap_finished(shared: &Shared) {
    let mut conns = lock_conns(shared);
    let mut keep = Vec::with_capacity(conns.len());
    for handle in conns.drain(..) {
        if handle.is_finished() {
            let _ = handle.join();
        } else {
            keep.push(handle);
        }
    }
    *conns = keep;
}

/// Over the connection limit: tell the client why, then hang up.
fn reject_connection(mut stream: TcpStream, config: &ServerConfig) {
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let mut buf = Vec::new();
    encode_or_substitute(
        &mut buf,
        proto::CONTROL_ID,
        &Response::Error {
            code: ErrorCode::TooManyConnections,
            message: "connection limit reached".to_string(),
        },
    );
    let _ = stream.write_all(&buf);
    let _ = stream.shutdown(Shutdown::Both);
}

/// What one request expects back from the flattened store batch.
enum Slot {
    Pong,
    Stats,
    Health,
    Metrics,
    Get,
    Put,
    Delete,
    MultiGet(usize),
    PutBatch(usize),
}

fn serve_connection<S: KvStore + Send + 'static>(
    mut stream: TcpStream,
    store: Arc<ShardedStore<S>>,
    shared: &Shared,
    cfg: &ServerConfig,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));

    let mut rbuf: Vec<u8> = Vec::new();
    let mut roff = 0usize;
    let mut wbuf: Vec<u8> = Vec::new();
    let mut chunk = vec![0u8; READ_CHUNK];
    let mut last_request = Instant::now();

    'conn: loop {
        // Decode one pipeline window from what is already buffered.
        let mut window: Vec<(u64, Request)> = Vec::new();
        let mut wire_failure: Option<WireError> = None;
        while window.len() < cfg.pipeline_window {
            match proto::decode_request(&rbuf[roff..]) {
                Ok(Decoded::Frame(consumed, id, req)) => {
                    roff += consumed;
                    window.push((id, req));
                }
                Ok(Decoded::Incomplete) => break,
                Err(e) => {
                    wire_failure = Some(e);
                    break;
                }
            }
        }
        if roff == rbuf.len() {
            rbuf.clear();
            roff = 0;
        } else if roff > READ_CHUNK {
            rbuf.drain(..roff);
            roff = 0;
        }

        if !window.is_empty() {
            last_request = Instant::now();
            let inflight = window.len() as u64;
            shared.tele.net.inflight.add(inflight);
            let dispatched = dispatch_window(&store, shared, cfg, &mut stream, &mut wbuf, window);
            shared.tele.net.inflight.sub(inflight);
            if let Err(e) = dispatched {
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) {
                    shared.tele.net.timed_out_connections.inc();
                }
                break 'conn;
            }
        }

        if let Some(e) = wire_failure {
            // The valid prefix was served; report the poisoned stream as
            // a connection-level error and hang up (resynchronization is
            // impossible once framing is lost).
            let code = match e {
                WireError::FrameTooLarge { .. } => ErrorCode::FrameTooLarge,
                WireError::UnknownOpcode(_) => ErrorCode::UnknownOpcode,
                WireError::Malformed => ErrorCode::BadRequest,
            };
            encode_or_substitute(
                &mut wbuf,
                proto::CONTROL_ID,
                &Response::Error { code, message: e.to_string() },
            );
            let _ = flush(&mut stream, &mut wbuf, &shared.tele);
            break 'conn;
        }

        if !window_possible(&rbuf[roff..]) {
            // Fully drained and answered; now is the clean point to stop.
            if shared.shutdown.load(Ordering::SeqCst) {
                break 'conn;
            }
            match stream.read(&mut chunk) {
                Ok(0) => break 'conn, // peer closed
                Ok(n) => {
                    shared.tele.net.frame_bytes_in.add(n as u64);
                    rbuf.extend_from_slice(&chunk[..n]);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if let Some(limit) = cfg.read_timeout {
                        if last_request.elapsed() > limit {
                            break 'conn;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break 'conn,
            }
        }
    }
    let _ = flush(&mut stream, &mut wbuf, &shared.tele);
    let _ = stream.shutdown(Shutdown::Both);
}

/// Whether the buffered bytes could still contain a complete frame.
fn window_possible(buf: &[u8]) -> bool {
    matches!(proto::decode_request(buf), Ok(Decoded::Frame(..)) | Err(_))
}

/// Flatten a window into one store batch, run it, and stream the
/// responses out (flushing whenever the write buffer tops its bound).
fn dispatch_window<S: KvStore + Send + 'static>(
    store: &ShardedStore<S>,
    shared: &Shared,
    cfg: &ServerConfig,
    stream: &mut TcpStream,
    wbuf: &mut Vec<u8>,
    window: Vec<(u64, Request)>,
) -> io::Result<()> {
    let start = Instant::now();
    let mut ops: Vec<BatchOp> = Vec::new();
    let mut plan: Vec<(u64, Slot)> = Vec::with_capacity(window.len());
    let mut op_idxs: Vec<usize> = Vec::with_capacity(window.len());
    let mut control = 0u64; // pings + stats, served without store ops
    for (id, req) in window {
        op_idxs.push(proto::request_op_index(&req));
        match req {
            Request::Ping => {
                control += 1;
                plan.push((id, Slot::Pong));
            }
            Request::Stats => {
                control += 1;
                plan.push((id, Slot::Stats));
            }
            Request::Health => {
                control += 1;
                plan.push((id, Slot::Health));
            }
            Request::Metrics => {
                control += 1;
                plan.push((id, Slot::Metrics));
            }
            Request::Get { key } => {
                ops.push(BatchOp::Get(key));
                plan.push((id, Slot::Get));
            }
            Request::Put { key, value } => {
                ops.push(BatchOp::Put(key, value));
                plan.push((id, Slot::Put));
            }
            Request::Delete { key } => {
                ops.push(BatchOp::Delete(key));
                plan.push((id, Slot::Delete));
            }
            Request::MultiGet { keys } => {
                let n = keys.len();
                ops.extend(keys.into_iter().map(BatchOp::Get));
                plan.push((id, Slot::MultiGet(n)));
            }
            Request::PutBatch { pairs } => {
                let n = pairs.len();
                ops.extend(pairs.into_iter().map(|(k, v)| BatchOp::Put(k, v)));
                plan.push((id, Slot::PutBatch(n)));
            }
        }
    }
    shared.ops_served.fetch_add(ops.len() as u64 + control, Ordering::Relaxed);

    let mut replies = store.run_batch(ops).into_iter();
    for (id, slot) in plan {
        let resp = match slot {
            Slot::Pong => Response::Pong,
            Slot::Stats => {
                // Size and health come from worker-published atomics, so
                // quarantined/recovering/dead shards are *included* (at
                // their last-known size) instead of silently dropped —
                // `degraded` flags that some of it may be stale.
                let healths = store.healths();
                let degraded = healths.iter().any(|h| h.health != ShardHealth::Healthy);
                Response::Stats(StatsReply {
                    shards: store.shards() as u32,
                    len: store.len_estimate(),
                    ops_served: shared.ops_served.load(Ordering::Relaxed),
                    active_connections: shared.active.load(Ordering::SeqCst) as u32,
                    connections_accepted: shared.accepted.load(Ordering::SeqCst),
                    degraded,
                    health: healths.into_iter().map(Into::into).collect(),
                })
            }
            // HEALTH reports per-replica entries (role + lag) so clients
            // can watch failovers and re-sync progress; STATS stays
            // group-aggregated for capacity accounting.
            Slot::Health => Response::Health(HealthReply {
                shards: store.replica_healths().into_iter().map(Into::into).collect(),
            }),
            Slot::Metrics => Response::Metrics(shared.tele.snapshot().encode()),
            Slot::Get => match next_get(&mut replies) {
                Ok(v) => Response::Value(v),
                Err(e) => error_response(&e),
            },
            Slot::Put => match next_put(&mut replies) {
                Ok(()) => Response::PutOk,
                Err(e) => error_response(&e),
            },
            Slot::Delete => match next_delete(&mut replies) {
                Ok(existed) => Response::Deleted(existed),
                Err(e) => error_response(&e),
            },
            Slot::MultiGet(n) => Response::Values(
                (0..n)
                    .map(|_| next_get(&mut replies).map_err(|e| ErrorCode::from_store_error(&e)))
                    .collect(),
            ),
            Slot::PutBatch(n) => Response::BatchStatus(
                (0..n)
                    .map(|_| next_put(&mut replies).map_err(|e| ErrorCode::from_store_error(&e)))
                    .collect(),
            ),
        };
        encode_or_substitute(wbuf, id, &resp);
        if wbuf.len() >= cfg.write_buffer_limit {
            flush(stream, wbuf, &shared.tele)?;
        }
    }
    // Amortized per-request service time, attributed per opcode. The
    // whole window was one store batch, so the per-request figure is the
    // honest number a pipelined client experiences.
    let per_req = start.elapsed().as_nanos() as u64 / op_idxs.len().max(1) as u64;
    for idx in op_idxs {
        shared.tele.net.op_latency[idx].observe(per_req);
    }
    // Every response of the window is acknowledged before more requests
    // are read: the flush is both the backpressure point and what makes
    // graceful shutdown lose nothing that was acked.
    flush(stream, wbuf, &shared.tele)
}

fn error_response(e: &aria_store::StoreError) -> Response {
    Response::Error { code: ErrorCode::from_store_error(e), message: e.to_string() }
}

/// Encode `resp`; if it exceeds the wire frame cap, send a typed error
/// frame under the same request id instead — the client always gets an
/// answer for every id, never a silently dropped response.
fn encode_or_substitute(wbuf: &mut Vec<u8>, id: u64, resp: &Response) {
    if let Err(e) = proto::encode_response(wbuf, id, resp) {
        let fallback = Response::Error { code: ErrorCode::FrameTooLarge, message: e.to_string() };
        proto::encode_response(wbuf, id, &fallback).expect("error frames are tiny");
    }
}

fn next_get(
    replies: &mut impl Iterator<Item = BatchReply>,
) -> Result<Option<Vec<u8>>, aria_store::StoreError> {
    match replies.next() {
        Some(BatchReply::Get(r)) => r,
        _ => unreachable!("store answered a get slot with a non-get reply"),
    }
}

fn next_put(replies: &mut impl Iterator<Item = BatchReply>) -> Result<(), aria_store::StoreError> {
    match replies.next() {
        Some(BatchReply::Put(r)) => r,
        _ => unreachable!("store answered a put slot with a non-put reply"),
    }
}

fn next_delete(
    replies: &mut impl Iterator<Item = BatchReply>,
) -> Result<bool, aria_store::StoreError> {
    match replies.next() {
        Some(BatchReply::Delete(r)) => r,
        _ => unreachable!("store answered a delete slot with a non-delete reply"),
    }
}

fn flush(stream: &mut TcpStream, wbuf: &mut Vec<u8>, tele: &TelemetryHub) -> io::Result<()> {
    if wbuf.is_empty() {
        return Ok(());
    }
    // write_all + a write timeout on the socket: a consumer slower than
    // the timeout is treated as gone.
    stream.write_all(wbuf)?;
    tele.net.frame_bytes_out.add(wbuf.len() as u64);
    wbuf.clear();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aria_sim::Enclave;
    use aria_store::{AriaHash, StoreConfig};

    fn ping_over(addr: SocketAddr) -> bool {
        let Ok(mut stream) = TcpStream::connect(addr) else { return false };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let mut buf = Vec::new();
        proto::encode_request(&mut buf, 1, &Request::Ping).unwrap();
        if stream.write_all(&buf).is_err() {
            return false;
        }
        let mut rbuf = Vec::new();
        let mut chunk = [0u8; 1024];
        loop {
            match proto::decode_response(&rbuf) {
                Ok(Decoded::Frame(_, id, Response::Pong)) => return id == 1,
                Ok(Decoded::Frame(..)) | Err(_) => return false,
                Ok(Decoded::Incomplete) => match stream.read(&mut chunk) {
                    Ok(0) | Err(_) => return false,
                    Ok(n) => rbuf.extend_from_slice(&chunk[..n]),
                },
            }
        }
    }

    /// A connection thread that panics while holding the registry lock
    /// must not take the acceptor (or graceful shutdown) down with it.
    #[test]
    fn poisoned_conn_registry_keeps_accepting_and_shuts_down() {
        let store = Arc::new(
            ShardedStore::with_shards(2, |_| {
                AriaHash::new(StoreConfig::for_keys(1_024), Arc::new(Enclave::with_default_epc()))
            })
            .unwrap(),
        );
        let server = AriaServer::bind("127.0.0.1:0", store, ServerConfig::default()).unwrap();
        let addr = server.local_addr();
        assert!(ping_over(addr), "server must serve before the poisoning");

        // Poison shared.conns exactly the way a panicking thread that
        // holds the lock would.
        let shared = Arc::clone(&server.shared);
        let _ = thread::spawn(move || {
            let _guard = shared.conns.lock().unwrap();
            panic!("injected panic while holding the connection registry");
        })
        .join();
        assert!(server.shared.conns.is_poisoned());

        // New connections are still accepted and served (the acceptor
        // pushes into the poisoned registry without panicking) …
        assert!(ping_over(addr), "listener must keep accepting after the poisoning");
        assert!(ping_over(addr));

        // … and shutdown still drains and joins everything.
        server.shutdown();
    }
}
