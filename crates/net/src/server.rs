//! `AriaServer`: the TCP front door over a [`ShardedStore`], serving
//! with either engine selected by [`ServerConfig::engine`]:
//!
//! - [`Engine::Reactor`] (default) — epoll-based run-to-completion
//!   reactors with cross-connection batching; see [`crate::reactor`].
//! - [`Engine::Threads`] — one OS thread per accepted connection,
//!   implemented in this module.
//!
//! # Threads engine
//!
//! Each accepted connection gets a dedicated thread that repeatedly
//! decodes a *pipeline window* — every complete request frame already
//! buffered, up to [`ServerConfig::pipeline_window`] — and dispatches
//! the whole window as **one** [`ShardedStore::run_batch`] call. The
//! sharded layer then partitions the window across shards and coalesces
//! same-kind runs into `multi_get`/`put_batch`, so a deeply pipelined
//! client amortizes per-request fixed costs exactly like an in-process
//! batch caller.
//!
//! # Ordering (both engines)
//!
//! Responses are written in request order per connection. Requests on
//! the *same key* (same shard) are applied in order even within a
//! window; requests on different shards may interleave — identical to
//! the in-process [`ShardedStore::run_batch`] contract.
//!
//! # Backpressure (both engines)
//!
//! The per-connection write buffer is bounded by
//! [`ServerConfig::write_buffer_limit`]: once a window's responses are
//! encoded (or the limit is hit mid-window) the buffer is flushed with
//! [`ServerConfig::write_timeout`] before any further request is read.
//! A client that stops draining responses therefore stops being read —
//! and, once its flush times out, is disconnected — instead of growing
//! an unbounded queue inside the server.
//!
//! # Shutdown (both engines)
//!
//! [`AriaServer::shutdown`] stops the acceptor, lets every connection
//! finish the window it is processing (all its responses are flushed —
//! no acknowledged write is lost), closes the sockets and joins all
//! threads. Requests that were buffered but not yet decoded are
//! abandoned; their clients observe a clean connection close, never a
//! hang.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use aria_store::sharded::{BatchOp, ShardedStore};
use aria_store::KvStore;
use aria_telemetry::{outcome, stage, SpanCell, TelemetryHub};

use crate::config::{Engine, ServerConfig};
use crate::proto::{self, Decoded, ErrorCode, Response, WireError};
use crate::reactor::ReactorEngine;
use crate::service::{
    build_response, encode_or_substitute, observe_amortized, shed_or_plan, wire_failure_response,
    ServerStats, Slot,
};

/// How often blocked reads and the acceptor wake to check for shutdown.
pub(crate) const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Read chunk size for connection sockets.
pub(crate) const READ_CHUNK: usize = 64 * 1024;

/// State both engines publish through: lifecycle flag, connection and
/// op accounting, and the telemetry hub METRICS snapshots come from.
pub(crate) struct Shared {
    pub(crate) shutdown: AtomicBool,
    pub(crate) active: AtomicUsize,
    pub(crate) accepted: AtomicU64,
    pub(crate) ops_served: AtomicU64,
    pub(crate) conns: Mutex<Vec<JoinHandle<()>>>,
    pub(crate) tele: Arc<TelemetryHub>,
}

/// Lock the connection registry even if a previous holder panicked. A
/// `Vec<JoinHandle>` has no invariant a partial mutation can break, so
/// a poisoned lock is safe to keep using — treating it as fatal would
/// let one crashed connection thread take down the acceptor (and every
/// future connection) with it.
fn lock_conns(shared: &Shared) -> std::sync::MutexGuard<'_, Vec<JoinHandle<()>>> {
    shared.conns.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The engine actually running behind an [`AriaServer`].
enum EngineState {
    Threads { acceptor: Option<JoinHandle<()>> },
    Reactor(ReactorEngine),
}

/// A running TCP server; dropping (or [`AriaServer::shutdown`]) drains
/// and joins every thread it spawned.
pub struct AriaServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    engine: EngineState,
    /// Flight-recorder watcher thread (only when a dump directory is
    /// configured); joined on shutdown like the engines.
    recorder: Option<JoinHandle<()>>,
}

impl AriaServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start serving `store` with the given configuration, using the
    /// engine it selects ([`ServerConfig::engine`]).
    pub fn bind<S, A>(
        addr: A,
        store: Arc<ShardedStore<S>>,
        config: ServerConfig,
    ) -> io::Result<AriaServer>
    where
        S: KvStore + Send + 'static,
        A: ToSocketAddrs,
    {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        // The overload knobs live on the store (admission happens at
        // dispatch, the watchdog on the maintenance ticker); the server
        // config is their single front door.
        store.set_queue_delay_budget(config.queue_delay_budget());
        store.set_watchdog_window(config.watchdog_window());
        if let Some(window) = config.watchdog_window() {
            // The watchdog is sampled by the maintenance ticker; tick a
            // few times per window so a stall is caught promptly. (If
            // the caller already started maintenance this stacks a
            // ticker — harmless for sampling, as quarantine fires only
            // once per unhealthy transition.)
            store.start_maintenance((window / 4).max(Duration::from_millis(10)));
        }
        // The hub shares the store's live recorders and slow-op tracer,
        // so a METRICS snapshot covers every layer below the socket.
        let tele = Arc::new(TelemetryHub::with_parts(
            store.telemetry().to_vec(),
            Arc::clone(store.slow_ops()),
        ));
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            ops_served: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
            tele,
        });
        let recorder = match config.flight_dir() {
            Some(dir) => {
                let dir = dir.clone();
                std::fs::create_dir_all(&dir)?;
                usr1::install();
                // Prime the diff baseline now, before serving begins:
                // the recorder's first observation only stores a
                // baseline, so on a saturated host a starved watcher
                // thread would otherwise swallow every event between
                // bind and its first tick — exactly the window early
                // anomalies land in.
                shared.tele.recorder.observe(&shared.tele.snapshot());
                let shared = Arc::clone(&shared);
                Some(
                    thread::Builder::new()
                        .name("aria-flight".to_string())
                        .spawn(move || recorder_watch(shared, dir))
                        .expect("spawn flight-recorder thread"),
                )
            }
            None => None,
        };
        let engine = match config.engine() {
            Engine::Reactor => EngineState::Reactor(ReactorEngine::start(
                listener,
                store,
                Arc::clone(&shared),
                config,
            )?),
            Engine::Threads => {
                let acceptor = {
                    let shared = Arc::clone(&shared);
                    thread::Builder::new()
                        .name("aria-accept".to_string())
                        .spawn(move || accept_loop(listener, store, shared, config))
                        .expect("spawn acceptor thread")
                };
                EngineState::Threads { acceptor: Some(acceptor) }
            }
        };
        Ok(AriaServer { addr, shared, engine, recorder })
    }

    /// The bound address (resolves the ephemeral port of `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Operations served since start (batch items count individually).
    pub fn ops_served(&self) -> u64 {
        self.shared.ops_served.load(Ordering::SeqCst)
    }

    /// The telemetry hub this server snapshots for METRICS requests.
    /// Shares the store's per-shard recorders; the caller can snapshot
    /// or scrape ([`aria_telemetry::render_prometheus`]) at any time.
    pub fn telemetry(&self) -> &Arc<TelemetryHub> {
        &self.shared.tele
    }

    /// Graceful shutdown: stop accepting, finish and flush every
    /// connection's in-flight window, join all threads. Idempotent with
    /// `Drop`; returns once everything is joined.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.recorder.take() {
            let _ = h.join();
        }
        match &mut self.engine {
            EngineState::Threads { acceptor } => {
                if let Some(h) = acceptor.take() {
                    let _ = h.join();
                }
                let conns = std::mem::take(&mut *lock_conns(&self.shared));
                for h in conns {
                    let _ = h.join();
                }
            }
            EngineState::Reactor(engine) => engine.stop(),
        }
    }
}

impl Drop for AriaServer {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for AriaServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AriaServer")
            .field("addr", &self.addr)
            .field("active", &self.active_connections())
            .finish()
    }
}

fn accept_loop<S: KvStore + Send + 'static>(
    listener: TcpListener,
    store: Arc<ShardedStore<S>>,
    shared: Arc<Shared>,
    config: ServerConfig,
) {
    let mut conn_seq = 0u64;
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                reap_finished(&shared);
                if shared.active.load(Ordering::SeqCst) >= config.max_connections() {
                    shared.tele.net.rejected_connections.inc();
                    reject_connection(stream, config.write_timeout());
                    continue;
                }
                shared.active.fetch_add(1, Ordering::SeqCst);
                shared.accepted.fetch_add(1, Ordering::SeqCst);
                conn_seq += 1;
                let store = Arc::clone(&store);
                let conn_shared = Arc::clone(&shared);
                let cfg = config.clone();
                let handle = thread::Builder::new()
                    .name(format!("aria-conn-{conn_seq}"))
                    .spawn(move || {
                        serve_connection(stream, store, &conn_shared, &cfg);
                        conn_shared.active.fetch_sub(1, Ordering::SeqCst);
                    })
                    .expect("spawn connection thread");
                lock_conns(&shared).push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
}

/// How often the flight-recorder watcher samples the telemetry plane.
const RECORDER_INTERVAL: Duration = Duration::from_millis(100);

/// Flight-recorder watcher: poll the telemetry snapshot, diff it into
/// system events, and serialize a post-mortem dump into `dir` whenever
/// an anomaly trigger fires (rate-limited) or the operator sends
/// `SIGUSR1` (always honored).
fn recorder_watch(shared: Arc<Shared>, dir: std::path::PathBuf) {
    use aria_telemetry::{unix_millis, FlightEvent, FlightEventKind, SHARD_NONE};
    let tele = &shared.tele;
    while !shared.shutdown.load(Ordering::SeqCst) {
        thread::sleep(RECORDER_INTERVAL);
        let snap = tele.snapshot();
        let mut triggers = tele.recorder.observe(&snap);
        let manual = usr1::take();
        let reason = if manual {
            let ev = FlightEvent {
                unix_millis: unix_millis(),
                kind: FlightEventKind::Manual,
                shard: SHARD_NONE,
                count: 1,
            };
            tele.recorder.record(ev);
            triggers.push(ev);
            "sigusr1"
        } else if !triggers.is_empty() {
            // Automatic dumps are rate-limited so a flapping shard
            // cannot flood the dump directory; the events themselves
            // are always recorded above.
            if !tele.recorder.dump_permitted() {
                continue;
            }
            "anomaly"
        } else {
            continue;
        };
        let (spans, _) = tele.traces.read_since(&[]);
        let json = tele.recorder.render_dump(reason, &triggers, &spans);
        let path = dir.join(format!("aria-flight-{}-{}.json", unix_millis(), reason));
        if std::fs::write(&path, json).is_ok() {
            tele.recorder.note_dump();
        }
    }
}

#[cfg(target_os = "linux")]
mod usr1 {
    //! `SIGUSR1` → "dump now" flag. Declaring `signal` directly keeps
    //! the workspace dependency-free (same pattern as the reactor's
    //! epoll bindings); the handler only stores to an atomic, which is
    //! async-signal-safe.
    #![allow(unsafe_code)]

    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    const SIGUSR1: i32 = 10;

    extern "C" fn on_usr1(_sig: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Install the handler (idempotent; last install wins, which is
    /// fine — every server process shares the one flag).
    pub(super) fn install() {
        #[allow(unsafe_code)]
        unsafe {
            signal(SIGUSR1, on_usr1)
        };
    }

    /// Consume a pending dump request.
    pub(super) fn take() -> bool {
        REQUESTED.swap(false, Ordering::SeqCst)
    }
}

#[cfg(not(target_os = "linux"))]
mod usr1 {
    //! No signal plumbing off Linux: dumps still flow via the `TRACE`
    //! wire opcode and anomaly triggers.
    pub(super) fn install() {}

    pub(super) fn take() -> bool {
        false
    }
}

/// Join connection threads that already returned so the registry does
/// not grow with every connection ever accepted.
fn reap_finished(shared: &Shared) {
    let mut conns = lock_conns(shared);
    let mut keep = Vec::with_capacity(conns.len());
    for handle in conns.drain(..) {
        if handle.is_finished() {
            let _ = handle.join();
        } else {
            keep.push(handle);
        }
    }
    *conns = keep;
}

/// Over the connection limit: tell the client why, then hang up.
pub(crate) fn reject_connection(mut stream: TcpStream, write_timeout: Duration) {
    let _ = stream.set_write_timeout(Some(write_timeout));
    let mut buf = Vec::new();
    encode_or_substitute(
        &mut buf,
        proto::CONTROL_ID,
        &Response::Error {
            code: ErrorCode::TooManyConnections,
            message: "connection limit reached".to_string(),
            retry_after_ms: 0,
        },
        proto::BASE_PROTOCOL_VERSION,
    );
    let _ = stream.write_all(&buf);
    let _ = stream.shutdown(Shutdown::Both);
}

fn serve_connection<S: KvStore + Send + 'static>(
    mut stream: TcpStream,
    store: Arc<ShardedStore<S>>,
    shared: &Shared,
    cfg: &ServerConfig,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(cfg.write_timeout()));

    let mut rbuf: Vec<u8> = Vec::new();
    let mut roff = 0usize;
    let mut wbuf: Vec<u8> = Vec::new();
    let mut chunk = vec![0u8; READ_CHUNK];
    let mut last_request = Instant::now();
    // When the bytes now buffered arrived: the sojourn lower bound used
    // by deadline/overload shedding at plan time.
    let mut read_stamp = Instant::now();
    // What this peer speaks: the base version until a HELLO negotiates
    // higher. Responses (notably STATS) are encoded at this version,
    // and v4+ request frames carry the deadline trailer.
    let mut version = proto::BASE_PROTOCOL_VERSION;

    'conn: loop {
        // Decode and plan one pipeline window from what is already
        // buffered: store ops are copied out of the read buffer here
        // (the single copy on the request path), everything else is
        // parsed in place.
        let mut ops: Vec<BatchOp> = Vec::new();
        let mut plan: Vec<(u64, Slot, Option<Arc<SpanCell>>)> = Vec::new();
        let mut op_spans: Vec<(std::ops::Range<usize>, Arc<SpanCell>)> = Vec::new();
        let mut op_idxs: Vec<usize> = Vec::new();
        let mut wire_failure: Option<WireError> = None;
        let sojourn_ns = read_stamp.elapsed().as_nanos() as u64;
        while plan.len() < cfg.pipeline_window() {
            match proto::decode_request_ref_versioned(&rbuf[roff..], version) {
                Ok(Decoded::Frame(consumed, id, (req, meta))) => {
                    op_idxs.push(req.op_index());
                    let span = if meta.trace.sampled && aria_telemetry::enabled() {
                        let s = Arc::new(SpanCell::new(meta.trace.id, req.op_index() as u8));
                        s.stamp(stage::DECODE);
                        Some(s)
                    } else {
                        None
                    };
                    let op_start = ops.len();
                    let slot = shed_or_plan(
                        &req,
                        meta.deadline_ns,
                        sojourn_ns,
                        cfg.shed_sojourn(),
                        &shared.tele,
                        span.as_deref(),
                        &|k| store.stale_claim(k, meta.routing_epoch),
                        &mut |op| ops.push(op),
                    );
                    if let Some(s) = &span {
                        if ops.len() > op_start {
                            op_spans.push((op_start..ops.len(), Arc::clone(s)));
                        }
                    }
                    plan.push((id, slot, span));
                    roff += consumed;
                }
                Ok(Decoded::Incomplete) => break,
                Err(e) => {
                    wire_failure = Some(e);
                    break;
                }
            }
        }
        if roff == rbuf.len() {
            rbuf.clear();
            roff = 0;
        } else if roff > READ_CHUNK {
            rbuf.drain(..roff);
            roff = 0;
        }

        if !plan.is_empty() {
            last_request = Instant::now();
            let inflight = plan.len() as u64;
            shared.tele.net.inflight.add(inflight);
            let dispatched = dispatch_window(
                &store,
                shared,
                cfg,
                &mut stream,
                &mut wbuf,
                ops,
                plan,
                op_spans,
                &op_idxs,
                &mut version,
            );
            shared.tele.net.inflight.sub(inflight);
            if let Err(e) = dispatched {
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) {
                    // The peer stopped draining responses and the flush
                    // timed out: a slow-reader disconnect, observable
                    // in STATS rather than a silent drop.
                    shared.tele.net.conns_disconnected_slow.inc();
                }
                break 'conn;
            }
        }

        if let Some(e) = wire_failure {
            // The valid prefix was served; report the poisoned stream as
            // a connection-level error and hang up (resynchronization is
            // impossible once framing is lost).
            encode_or_substitute(&mut wbuf, proto::CONTROL_ID, &wire_failure_response(&e), version);
            let _ = flush(&mut stream, &mut wbuf, &shared.tele);
            break 'conn;
        }

        if !window_possible(&rbuf[roff..], version) {
            // Fully drained and answered; now is the clean point to stop.
            if shared.shutdown.load(Ordering::SeqCst) {
                break 'conn;
            }
            match stream.read(&mut chunk) {
                Ok(0) => break 'conn, // peer closed
                Ok(n) => {
                    shared.tele.net.frame_bytes_in.add(n as u64);
                    rbuf.extend_from_slice(&chunk[..n]);
                    read_stamp = Instant::now();
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if let Some(limit) = cfg.read_timeout() {
                        if last_request.elapsed() > limit {
                            shared.tele.net.timed_out_connections.inc();
                            break 'conn;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break 'conn,
            }
        }
    }
    let _ = flush(&mut stream, &mut wbuf, &shared.tele);
    let _ = stream.shutdown(Shutdown::Both);
}

/// Whether the buffered bytes could still contain a complete frame.
fn window_possible(buf: &[u8], version: u16) -> bool {
    matches!(proto::decode_request_ref_versioned(buf, version), Ok(Decoded::Frame(..)) | Err(_))
}

/// Run a planned window as one store batch and stream the responses
/// out (flushing whenever the write buffer tops its bound).
#[allow(clippy::too_many_arguments)]
fn dispatch_window<S: KvStore + Send + 'static>(
    store: &ShardedStore<S>,
    shared: &Shared,
    cfg: &ServerConfig,
    stream: &mut TcpStream,
    wbuf: &mut Vec<u8>,
    ops: Vec<BatchOp>,
    plan: Vec<(u64, Slot, Option<Arc<SpanCell>>)>,
    op_spans: Vec<(std::ops::Range<usize>, Arc<SpanCell>)>,
    op_idxs: &[usize],
    version: &mut u16,
) -> io::Result<()> {
    let start = Instant::now();
    let served: u64 = plan.iter().map(|(_, slot, _)| slot.served_units()).sum();
    shared.ops_served.fetch_add(served, Ordering::Relaxed);

    let mut replies = store.run_batch_traced(ops, op_spans).into_iter();
    let stats = ServerStats {
        ops_served: shared.ops_served.load(Ordering::Relaxed),
        active_connections: shared.active.load(Ordering::SeqCst) as u32,
        connections_accepted: shared.accepted.load(Ordering::SeqCst),
    };
    let mut window_spans: Vec<Arc<SpanCell>> = Vec::new();
    for (id, slot, span) in plan {
        let was_shed = matches!(slot, Slot::Shed(..));
        let resp = build_response(slot, &mut replies, store, &shared.tele, &stats);
        if let Some(s) = span {
            s.stamp(stage::ENCODE);
            // Shed spans already carry their verdict; anything else
            // answering an error frame is marked ERROR.
            if !was_shed && matches!(resp, Response::Error { .. }) {
                s.set_outcome(outcome::ERROR);
            }
            window_spans.push(s);
        }
        encode_or_substitute(wbuf, id, &resp, *version);
        // Responses after the HELLO ack (even later in this window) are
        // encoded at the version the handshake just negotiated.
        if let Response::HelloAck { version: negotiated, .. } = resp {
            *version = negotiated;
        }
        if wbuf.len() >= cfg.write_buffer_limit() {
            flush(stream, wbuf, &shared.tele)?;
        }
    }
    observe_amortized(&shared.tele, start.elapsed().as_nanos() as u64, op_idxs);
    // Every response of the window is acknowledged before more requests
    // are read: the flush is both the backpressure point and what makes
    // graceful shutdown lose nothing that was acked.
    let flushed = flush(stream, wbuf, &shared.tele);
    for s in window_spans {
        // A span describes work the server really did even when the
        // peer vanished before the flush; only the FLUSH stamp is
        // conditional on the bytes reaching the socket.
        if flushed.is_ok() {
            s.stamp(stage::FLUSH);
        }
        shared.tele.traces.publish(&s.to_span());
    }
    flushed
}

fn flush(stream: &mut TcpStream, wbuf: &mut Vec<u8>, tele: &TelemetryHub) -> io::Result<()> {
    if wbuf.is_empty() {
        return Ok(());
    }
    // write_all + a write timeout on the socket: a consumer slower than
    // the timeout is treated as gone.
    stream.write_all(wbuf)?;
    tele.net.frame_bytes_out.add(wbuf.len() as u64);
    wbuf.clear();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Request;
    use aria_sim::Enclave;
    use aria_store::{AriaHash, StoreConfig};

    fn ping_over(addr: SocketAddr) -> bool {
        let Ok(mut stream) = TcpStream::connect(addr) else { return false };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let mut buf = Vec::new();
        proto::encode_request(&mut buf, 1, &Request::Ping).unwrap();
        if stream.write_all(&buf).is_err() {
            return false;
        }
        let mut rbuf = Vec::new();
        let mut chunk = [0u8; 1024];
        loop {
            match proto::decode_response(&rbuf) {
                Ok(Decoded::Frame(_, id, Response::Pong)) => return id == 1,
                Ok(Decoded::Frame(..)) | Err(_) => return false,
                Ok(Decoded::Incomplete) => match stream.read(&mut chunk) {
                    Ok(0) | Err(_) => return false,
                    Ok(n) => rbuf.extend_from_slice(&chunk[..n]),
                },
            }
        }
    }

    /// A connection thread that panics while holding the registry lock
    /// must not take the acceptor (or graceful shutdown) down with it.
    /// Threads-engine specific: the reactor has no connection registry.
    #[test]
    fn poisoned_conn_registry_keeps_accepting_and_shuts_down() {
        let store = Arc::new(
            ShardedStore::with_shards(2, |_| {
                AriaHash::new(StoreConfig::for_keys(1_024), Arc::new(Enclave::with_default_epc()))
            })
            .unwrap(),
        );
        let config = ServerConfig::builder().engine(Engine::Threads).build().unwrap();
        let server = AriaServer::bind("127.0.0.1:0", store, config).unwrap();
        let addr = server.local_addr();
        assert!(ping_over(addr), "server must serve before the poisoning");

        // Poison shared.conns exactly the way a panicking thread that
        // holds the lock would.
        let shared = Arc::clone(&server.shared);
        let _ = thread::spawn(move || {
            let _guard = shared.conns.lock().unwrap();
            panic!("injected panic while holding the connection registry");
        })
        .join();
        assert!(server.shared.conns.is_poisoned());

        // New connections are still accepted and served (the acceptor
        // pushes into the poisoned registry without panicking) …
        assert!(ping_over(addr), "listener must keep accepting after the poisoning");
        assert!(ping_over(addr));

        // … and shutdown still drains and joins everything.
        server.shutdown();
    }

    /// The reactor engine serves the same wire protocol: a HELLO-less
    /// PING round-trips, and shutdown joins cleanly.
    #[test]
    fn reactor_engine_serves_and_shuts_down() {
        let store = Arc::new(
            ShardedStore::with_shards(2, |_| {
                AriaHash::new(StoreConfig::for_keys(1_024), Arc::new(Enclave::with_default_epc()))
            })
            .unwrap(),
        );
        let config = ServerConfig::builder().engine(Engine::Reactor).reactors(2).build().unwrap();
        let server = AriaServer::bind("127.0.0.1:0", store, config).unwrap();
        let addr = server.local_addr();
        assert!(ping_over(addr));
        assert!(ping_over(addr));
        server.shutdown();
    }
}
