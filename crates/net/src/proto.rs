//! The Aria wire protocol: compact length-prefixed binary frames.
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! [u32 frame_len][u8 opcode][u64 request_id][body...]
//! ```
//!
//! `frame_len` counts everything after itself (opcode + id + body), all
//! integers are little-endian, and bodies nest `[u32 len][bytes]` items.
//! Request ids are chosen by the client and echoed verbatim by the
//! server, which is what makes pipelining safe: a client may have any
//! number of requests in flight and match responses by id (the server
//! additionally answers in request order per connection).
//!
//! Store failures travel as stable [`ErrorCode`]s, not strings, so
//! clients can react to e.g. an integrity violation without parsing
//! log text. Code values are part of the protocol and must never be
//! renumbered.

use aria_store::{ShardHealth, StoreError, Violation};

/// Frames larger than this are rejected as malformed — a defense against
/// garbage (or hostile) length prefixes allocating unbounded memory.
pub const MAX_FRAME_LEN: usize = 4 << 20;

/// Fixed bytes before the body: opcode (1) + request id (8).
pub const FRAME_HEADER_LEN: usize = 9;

/// The request id the server uses for unsolicited, connection-level
/// errors (e.g. rejecting a connection over the limit).
pub const CONTROL_ID: u64 = 0;

/// The protocol version this build speaks. Version 1 is the pre-`HELLO`
/// wire format; version 2 adds the `HELLO` handshake itself; version 3
/// adds the tiering fields (`hot_keys`, `cold_keys`, `recovering`) to
/// the `STATS` reply; version 4 adds the overload control plane: a
/// per-op deadline trailer on data requests (see
/// [`encode_request_versioned`]), a retry-after hint on `ERROR`
/// replies, and the shed/queue-delay fields on `STATS`; version 5 adds
/// the trace-context trailer on data requests (`u64 trace_id` plus a
/// flags byte, see [`encode_request_traced`]) and the `TRACE` opcode
/// for streaming sampled spans and flight-recorder dumps; version 6
/// adds elastic resharding: a `u64 routing_epoch` trailer on data
/// requests (the client's claimed routing view, see
/// [`encode_request_routed`]), the `RESHARD` control opcode for
/// starting and observing shard migrations, and the typed
/// `WRONG_SHARD` refusal that carries the server's current epoch so
/// clients refresh routing instead of blind-retrying. A peer that
/// never sends `HELLO` is treated as speaking
/// [`BASE_PROTOCOL_VERSION`], which keeps every pre-handshake client
/// working unchanged: the server emits version-gated fields only on
/// connections whose negotiated version carries them (see
/// [`encode_response_versioned`]), so older decoders never see them.
pub const PROTOCOL_VERSION: u16 = 6;

/// The first protocol version that carries the overload fields: the
/// per-op deadline trailer on data requests, `retry_after_ms` on
/// `ERROR` replies, and the shed counters on `STATS`.
pub const OVERLOAD_PROTOCOL_VERSION: u16 = 4;

/// The first protocol version that carries the trace-context trailer
/// on data requests. (The `TRACE` opcode itself is not version-gated:
/// it is a new opcode, so an old peer simply never sends it.)
pub const TRACE_PROTOCOL_VERSION: u16 = 5;

/// The first protocol version that carries the routing-epoch trailer
/// on data requests and the typed `WRONG_SHARD` refusal. (The
/// `RESHARD` opcode itself is not version-gated: it is a new opcode,
/// so an old peer simply never sends it.)
pub const RESHARD_PROTOCOL_VERSION: u16 = 6;

/// The version assumed for clients that skip the `HELLO` handshake.
pub const BASE_PROTOCOL_VERSION: u16 = 1;

/// Feature bits a client may request in `HELLO`. The server answers
/// with the intersection of what was asked and what it supports, so
/// unknown bits degrade to "off" instead of failing the handshake.
/// Bits are protocol surface: never renumber them.
pub mod features {
    /// Placeholder bit reserved for the planned `SCAN` opcode
    /// (ROADMAP item 2). No released server sets it yet.
    pub const SCAN: u64 = 1 << 0;
    /// Routing-epoch exchange: the server publishes its routing epoch
    /// via `RESHARD` mode 0 and honors the client's claimed epoch on
    /// v6 data ops, answering stale claims with `WRONG_SHARD` instead
    /// of an opaque retryable error.
    pub const ROUTING_EPOCH: u64 = 1 << 1;
    /// Every feature bit this build understands.
    pub const SUPPORTED: u64 = ROUTING_EPOCH;
}

// Request opcodes.
const OP_PING: u8 = 0x01;
const OP_GET: u8 = 0x02;
const OP_PUT: u8 = 0x03;
const OP_DELETE: u8 = 0x04;
const OP_MULTI_GET: u8 = 0x05;
const OP_PUT_BATCH: u8 = 0x06;
const OP_STATS: u8 = 0x07;
const OP_HEALTH: u8 = 0x08;
const OP_METRICS: u8 = 0x09;
const OP_HELLO: u8 = 0x0A;
const OP_TRACE: u8 = 0x0B;
const OP_RESHARD: u8 = 0x0C;

// Response opcodes (high bit set).
const OP_PONG: u8 = 0x81;
const OP_VALUE: u8 = 0x82;
const OP_PUT_OK: u8 = 0x83;
const OP_DELETED: u8 = 0x84;
const OP_VALUES: u8 = 0x85;
const OP_BATCH_STATUS: u8 = 0x86;
const OP_STATS_REPLY: u8 = 0x87;
const OP_HEALTH_REPLY: u8 = 0x88;
const OP_METRICS_REPLY: u8 = 0x89;
const OP_HELLO_REPLY: u8 = 0x8A;
const OP_TRACE_REPLY: u8 = 0x8B;
const OP_RESHARD_REPLY: u8 = 0x8C;
const OP_WRONG_SHARD: u8 = 0x8D;
const OP_ERROR: u8 = 0xFF;

/// Number of request opcodes (`0x01..=0x0C`), for per-opcode telemetry
/// tables. Matches `aria_telemetry::NET_OPS`.
pub const REQUEST_OPCODES: usize = 12;

/// Telemetry table index of a request, `0..REQUEST_OPCODES`.
pub fn request_op_index(req: &Request) -> usize {
    match req {
        Request::Ping => 0,
        Request::Get { .. } => 1,
        Request::Put { .. } => 2,
        Request::Delete { .. } => 3,
        Request::MultiGet { .. } => 4,
        Request::PutBatch { .. } => 5,
        Request::Stats => 6,
        Request::Health => 7,
        Request::Metrics => 8,
        Request::Hello { .. } => 9,
        Request::Trace { .. } => 10,
        Request::Reshard { .. } => 11,
    }
}

/// Trace context carried in the v5 data-request trailer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceContext {
    /// Client-chosen trace id (nonzero for sampled requests).
    pub id: u64,
    /// Whether the client sampled this request for span capture.
    pub sampled: bool,
}

impl TraceContext {
    /// The unsampled context — what every pre-v5 peer implicitly sends.
    pub const NONE: TraceContext = TraceContext { id: 0, sampled: false };
}

/// Per-request metadata decoded from the version-gated data-op
/// trailers: the v4 deadline and the v5 trace context. Control ops —
/// and data ops from peers below the gating version — decode to the
/// zero values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequestMeta {
    /// The client's remaining time budget in nanoseconds (0 = none).
    pub deadline_ns: u64,
    /// The v5 trace context ([`TraceContext::NONE`] when absent).
    pub trace: TraceContext,
    /// The routing epoch the client believes current (v6 trailer;
    /// 0 = no claim, the server routes without a staleness check).
    pub routing_epoch: u64,
}

/// Stable numeric error codes carried on the wire.
///
/// Groups: `1..=15` integrity violations (detected attacks), `16..=31`
/// resource/validation failures, `32..=47` protocol/transport faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum ErrorCode {
    /// Merkle node verification failed (counter tamper/replay).
    MerkleMismatch = 1,
    /// Entry MAC mismatch (value tamper or replay).
    EntryMacMismatch = 2,
    /// Counter-reuse attack detected.
    CounterReuse = 3,
    /// Unauthorized deletion detected.
    UnauthorizedDeletion = 4,
    /// Untrusted allocator metadata inconsistent.
    AllocatorMetadata = 5,
    /// Corrupt untrusted pointer.
    CorruptPointer = 6,
    /// The key's data was destroyed by a contained attack; reads fail
    /// closed instead of answering "not found".
    DataDestroyed = 7,
    /// Enclave EPC exhausted.
    EpcExhausted = 16,
    /// Counter area exhausted.
    CountersExhausted = 17,
    /// Untrusted heap failure.
    Heap = 18,
    /// Key exceeds the on-wire limit.
    KeyTooLong = 19,
    /// Value exceeds the on-wire limit.
    ValueTooLong = 20,
    /// A shard worker is gone; the op could not be served.
    ShardUnavailable = 21,
    /// The shard is quarantined after a detected violation; retry once
    /// recovery re-admits it.
    ShardQuarantined = 22,
    /// Anti-entropy re-sync found mismatching content roots; the
    /// rejoining replica was refused re-admission.
    ReplicaDiverged = 23,
    /// The store cannot stream verified contents for re-sync.
    ExportUnsupported = 24,
    /// Verified crash recovery refused to serve: the replayed log does
    /// not reproduce the sealed checkpoint (corruption, tampering, or
    /// rollback below the attested epoch floor).
    RecoveryDiverged = 25,
    /// The durability log failed at the I/O layer (disk error, not a
    /// detected attack).
    LogIo = 26,
    /// The shard's estimated queue delay exceeds its admission budget;
    /// the op was refused *before* execution (nothing was applied).
    /// The `ERROR` reply carries a retry-after hint on v4 connections.
    Overloaded = 27,
    /// The op's propagated deadline had already expired when the server
    /// would have admitted it; it was refused *before* execution
    /// (nothing was applied). Retrying is pointless — the caller
    /// already gave up.
    DeadlineExceeded = 28,
    /// The key's slot moved to another shard after the routing epoch
    /// the client claimed: refresh routing and retry. v6 connections
    /// receive the typed `WRONG_SHARD` reply (epoch + owner hint)
    /// instead of this bare code; pre-v6 peers see
    /// [`ErrorCode::ShardQuarantined`] so their retry loops keep
    /// working byte-identically.
    WrongShard = 29,
    /// The request frame could not be decoded.
    BadRequest = 32,
    /// Unknown request opcode.
    UnknownOpcode = 33,
    /// Frame exceeded [`MAX_FRAME_LEN`].
    FrameTooLarge = 34,
    /// The server is shutting down and no longer accepts requests.
    ShuttingDown = 35,
    /// The connection limit is reached; try again later.
    TooManyConnections = 36,
}

impl ErrorCode {
    /// Decode a wire value.
    pub fn from_u16(v: u16) -> Option<ErrorCode> {
        use ErrorCode::*;
        Some(match v {
            1 => MerkleMismatch,
            2 => EntryMacMismatch,
            3 => CounterReuse,
            4 => UnauthorizedDeletion,
            5 => AllocatorMetadata,
            6 => CorruptPointer,
            7 => DataDestroyed,
            16 => EpcExhausted,
            17 => CountersExhausted,
            18 => Heap,
            19 => KeyTooLong,
            20 => ValueTooLong,
            21 => ShardUnavailable,
            22 => ShardQuarantined,
            23 => ReplicaDiverged,
            24 => ExportUnsupported,
            25 => RecoveryDiverged,
            26 => LogIo,
            27 => Overloaded,
            28 => DeadlineExceeded,
            29 => WrongShard,
            32 => BadRequest,
            33 => UnknownOpcode,
            34 => FrameTooLarge,
            35 => ShuttingDown,
            36 => TooManyConnections,
            _ => return None,
        })
    }

    /// The stable protocol code of a [`StoreError`].
    pub fn from_store_error(e: &StoreError) -> ErrorCode {
        match e {
            StoreError::Integrity(v) => match v {
                Violation::MerkleMismatch { .. } => ErrorCode::MerkleMismatch,
                Violation::EntryMacMismatch => ErrorCode::EntryMacMismatch,
                Violation::CounterReuse { .. } => ErrorCode::CounterReuse,
                Violation::UnauthorizedDeletion => ErrorCode::UnauthorizedDeletion,
                Violation::AllocatorMetadata => ErrorCode::AllocatorMetadata,
                Violation::CorruptPointer => ErrorCode::CorruptPointer,
                Violation::DataDestroyed => ErrorCode::DataDestroyed,
            },
            StoreError::EpcExhausted => ErrorCode::EpcExhausted,
            StoreError::CountersExhausted => ErrorCode::CountersExhausted,
            StoreError::Heap(_) => ErrorCode::Heap,
            StoreError::KeyTooLong { .. } => ErrorCode::KeyTooLong,
            StoreError::ValueTooLong { .. } => ErrorCode::ValueTooLong,
            StoreError::ShardUnavailable { .. } => ErrorCode::ShardUnavailable,
            StoreError::ShardQuarantined { .. } => ErrorCode::ShardQuarantined,
            StoreError::ReplicaDiverged { .. } => ErrorCode::ReplicaDiverged,
            StoreError::ExportUnsupported => ErrorCode::ExportUnsupported,
            StoreError::RecoveryDiverged { .. } => ErrorCode::RecoveryDiverged,
            StoreError::Log { .. } => ErrorCode::LogIo,
            StoreError::Overloaded { .. } => ErrorCode::Overloaded,
            StoreError::WrongShard { .. } => ErrorCode::WrongShard,
        }
    }

    /// Whether this code reports a detected attack on store integrity.
    pub fn is_integrity_violation(&self) -> bool {
        (*self as u16) < 16
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?} ({})", *self as u16)
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Fetch one key.
    Get {
        /// The key.
        key: Vec<u8>,
    },
    /// Insert or update one key.
    Put {
        /// The key.
        key: Vec<u8>,
        /// The value.
        value: Vec<u8>,
    },
    /// Remove one key.
    Delete {
        /// The key.
        key: Vec<u8>,
    },
    /// Fetch several keys in one request.
    MultiGet {
        /// The keys, answered in order.
        keys: Vec<Vec<u8>>,
    },
    /// Insert or update several pairs in one request.
    PutBatch {
        /// The pairs, applied in order.
        pairs: Vec<(Vec<u8>, Vec<u8>)>,
    },
    /// Server/store statistics.
    Stats,
    /// Per-shard health (quarantine state machine).
    Health,
    /// Full telemetry snapshot (metrics + slow-op traces).
    Metrics,
    /// Versioned handshake: the client's protocol version and the
    /// feature bits it would like enabled. Optional — a client that
    /// never sends it is served at [`BASE_PROTOCOL_VERSION`].
    Hello {
        /// The highest protocol version the client speaks.
        version: u16,
        /// Feature bits the client requests (see [`features`]).
        features: u64,
    },
    /// Fetch tracing data. Mode 0 streams sampled spans newer than the
    /// supplied per-ring cursors (the reply carries new cursors to
    /// resume from); mode 1 requests a flight-recorder post-mortem
    /// dump. Control-plane: answerable while shedding, never carries
    /// the data-op trailers.
    Trace {
        /// 0 = stream spans, 1 = flight-recorder dump. Unknown modes
        /// are answered with [`ErrorCode::BadRequest`].
        mode: u8,
        /// Per-ring resume cursors for mode 0 (empty = from the
        /// oldest resident span); ignored for mode 1.
        cursors: Vec<u64>,
    },
    /// Observe or drive elastic resharding. Mode 0 queries the routing
    /// state (current epoch, per-slot owners, migration status); mode
    /// 1 starts a shard *split* (move half of `source`'s slots to
    /// `target`); mode 2 starts a *merge* (move all of `source`'s
    /// slots into `target`). Starting is asynchronous — the reply is
    /// the status at accept time; poll mode 0 for progress.
    /// Control-plane: answerable while shedding, never carries the
    /// data-op trailers.
    Reshard {
        /// 0 = query, 1 = split, 2 = merge. Unknown modes are answered
        /// with [`ErrorCode::BadRequest`].
        mode: u8,
        /// Source shard for modes 1/2 (ignored for mode 0).
        source: u32,
        /// Target shard for modes 1/2 (ignored for mode 0).
        target: u32,
    },
}

/// One replica's health on the wire (see [`aria_store::ShardHealth`]).
/// With replication off there is exactly one entry per shard and
/// `role`/`lag` are 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardHealthInfo {
    /// Encoded [`ShardHealth`] (unknown values decode as `Dead`).
    pub state: u8,
    /// Encoded [`aria_store::ReplicaRole`] (0 primary, 1 backup;
    /// unknown values decode as backup).
    pub role: u8,
    /// Replication lag in keys (0 when in sync or unreplicated).
    pub lag: u64,
    /// Quarantine-triggering violations observed on the replica.
    pub violations: u64,
    /// Completed quarantine → recovery → re-admission cycles.
    pub recoveries: u64,
}

impl ShardHealthInfo {
    /// The decoded lifecycle state.
    pub fn health(&self) -> ShardHealth {
        ShardHealth::from_u8(self.state)
    }

    /// The decoded replica role.
    pub fn replica_role(&self) -> aria_store::ReplicaRole {
        aria_store::ReplicaRole::from_u8(self.role)
    }
}

impl From<aria_store::ShardHealthSnapshot> for ShardHealthInfo {
    fn from(s: aria_store::ShardHealthSnapshot) -> Self {
        ShardHealthInfo {
            state: s.health.as_u8(),
            role: 0,
            lag: 0,
            violations: s.violations,
            recoveries: s.recoveries,
        }
    }
}

impl From<aria_store::ReplicaHealthSnapshot> for ShardHealthInfo {
    fn from(s: aria_store::ReplicaHealthSnapshot) -> Self {
        ShardHealthInfo {
            state: s.health.as_u8(),
            role: s.role.as_u8(),
            lag: s.lag,
            violations: s.violations,
            recoveries: s.recoveries,
        }
    }
}

/// Answer to [`Request::Health`]: one entry per replica, group-major
/// (`group * replicas + replica`); with replication off, one entry per
/// shard in shard order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HealthReply {
    /// Per-replica health.
    pub shards: Vec<ShardHealthInfo>,
}

/// Server statistics returned by [`Request::Stats`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsReply {
    /// Number of store shards.
    pub shards: u32,
    /// Live keys across all shards.
    pub len: u64,
    /// Operations served since the server started (batch items count
    /// individually).
    pub ops_served: u64,
    /// Connections currently open.
    pub active_connections: u32,
    /// Connections accepted since start.
    pub connections_accepted: u64,
    /// Whether any shard is currently not `Healthy` — the `len` figure
    /// then includes last-known (possibly stale) counts for the
    /// unhealthy shards instead of silently excluding them.
    pub degraded: bool,
    /// Live keys resident in the hot (DRAM) tier across all shards
    /// (equals `len` when tiering is off).
    pub hot_keys: u64,
    /// Live keys resident only in the cold segment log across all
    /// shards (0 when tiering is off).
    pub cold_keys: u64,
    /// Whether any shard is currently replaying / verifying its log
    /// (crash recovery or anti-entropy re-sync in flight).
    pub recovering: bool,
    /// Data ops refused with [`ErrorCode::Overloaded`] since start
    /// (admission refusals + sojourn sheds). v4+; 0 on older peers.
    pub ops_shed_overload: u64,
    /// Data ops refused with [`ErrorCode::DeadlineExceeded`] since
    /// start. v4+; 0 on older peers.
    pub ops_shed_deadline: u64,
    /// Worst current per-shard estimated queue delay, in milliseconds.
    /// v4+; 0 on older peers.
    pub queue_delay_ms: u64,
    /// Connections dropped because the client read too slowly for the
    /// write timeout. v4+; 0 on older peers.
    pub slow_disconnects: u64,
    /// Per-shard health, index = shard.
    pub health: Vec<ShardHealthInfo>,
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Get`].
    Value(Option<Vec<u8>>),
    /// Answer to a successful [`Request::Put`].
    PutOk,
    /// Answer to [`Request::Delete`]; `true` if the key existed.
    Deleted(bool),
    /// Answer to [`Request::MultiGet`], one entry per key in order.
    Values(Vec<Result<Option<Vec<u8>>, ErrorCode>>),
    /// Answer to [`Request::PutBatch`], one entry per pair in order.
    BatchStatus(Vec<Result<(), ErrorCode>>),
    /// Answer to [`Request::Stats`].
    Stats(StatsReply),
    /// Answer to [`Request::Health`].
    Health(HealthReply),
    /// Answer to [`Request::Metrics`]: an `aria-telemetry` snapshot in
    /// its own versioned encoding (see
    /// [`aria_telemetry::TelemetrySnapshot::decode`]), kept opaque here
    /// so the snapshot layout can evolve without renumbering opcodes.
    Metrics(Vec<u8>),
    /// Answer to [`Request::Trace`]: for mode 0, an encoded span stream
    /// (see [`aria_telemetry::decode_spans`]); for mode 1, a
    /// flight-recorder dump as UTF-8 JSON. Kept opaque here — like
    /// [`Response::Metrics`] — so the span layout can evolve without
    /// renumbering opcodes.
    Trace(Vec<u8>),
    /// Answer to [`Request::Hello`]: the version the connection will
    /// speak (`min(client, server)`) and the negotiated feature bits
    /// (the intersection of requested and supported).
    HelloAck {
        /// Negotiated protocol version for this connection.
        version: u16,
        /// Negotiated feature bits (see [`features`]).
        features: u64,
    },
    /// Answer to [`Request::Reshard`]: the routing table's current
    /// view. For modes 1/2 this is the state right after the start was
    /// accepted (the migration itself runs in the background).
    Reshard {
        /// Current routing epoch (bumped once per committed move).
        epoch: u64,
        /// Per-slot owner shard, one entry per routing slot.
        slots: Vec<u32>,
        /// Encoded migration state (`aria_store::ReshardState` as u8:
        /// 0 idle, 1 running, 2 committed, 3 aborted).
        state: u8,
        /// Migrations started since the server came up.
        started: u64,
        /// Migrations committed since the server came up.
        committed: u64,
        /// Migrations aborted since the server came up.
        aborted: u64,
    },
    /// Typed refusal (v6 only): the key's slot moved after the routing
    /// epoch the client claimed. Carries the server's current epoch —
    /// at or above it the client's refreshed routing cannot be refused
    /// again for the same move — plus the slot's owner as a hint.
    /// Never sent on pre-v6 connections: those get
    /// [`ErrorCode::ShardQuarantined`], which their retry loops
    /// already handle.
    WrongShard {
        /// The server's current routing epoch.
        epoch: u64,
        /// The shard that owns the refused key's slot now.
        hint: u32,
    },
    /// The request (or, with id [`CONTROL_ID`], the connection) failed.
    Error {
        /// Stable error code.
        code: ErrorCode,
        /// Human-readable detail for logs; never required for handling.
        message: String,
        /// Server hint: wait this many milliseconds before retrying
        /// (0 = no hint). Carried on the wire from v4; older peers
        /// decode it as 0. Only [`ErrorCode::Overloaded`] replies set
        /// it today.
        retry_after_ms: u64,
    },
}

/// Why a frame could not be decoded (or encoded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame declared a length over [`MAX_FRAME_LEN`] — on decode,
    /// a hostile/garbage prefix; on encode, a message too large to ever
    /// be accepted by a peer.
    FrameTooLarge {
        /// Declared length.
        len: usize,
    },
    /// The frame body did not parse as its opcode's layout.
    Malformed,
    /// The opcode is not part of the protocol (version mismatch?).
    UnknownOpcode(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::FrameTooLarge { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME_LEN} byte limit")
            }
            WireError::Malformed => write!(f, "malformed frame body"),
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------- encode

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn put_health(out: &mut Vec<u8>, shards: &[ShardHealthInfo]) {
    put_u32(out, shards.len() as u32);
    for s in shards {
        out.push(s.state);
        out.push(s.role);
        put_u64(out, s.lag);
        put_u64(out, s.violations);
        put_u64(out, s.recoveries);
    }
}

/// Append one framed message; `body` writes everything after the id.
///
/// The [`MAX_FRAME_LEN`] cap is enforced on *encode* too: a message
/// that would exceed it is rolled back (no partial bytes reach `out`,
/// which may already hold earlier pipelined frames) and reported, since
/// any conforming peer would reject it anyway.
fn frame(
    out: &mut Vec<u8>,
    opcode: u8,
    id: u64,
    body: impl FnOnce(&mut Vec<u8>),
) -> Result<(), WireError> {
    let len_at = out.len();
    put_u32(out, 0); // patched below
    out.push(opcode);
    put_u64(out, id);
    body(out);
    let frame_len = out.len() - len_at - 4;
    if frame_len > MAX_FRAME_LEN {
        out.truncate(len_at);
        return Err(WireError::FrameTooLarge { len: frame_len });
    }
    out[len_at..len_at + 4].copy_from_slice(&(frame_len as u32).to_le_bytes());
    Ok(())
}

/// Whether a request is a data op (GET/PUT/DELETE/MULTI_GET/PUT_BATCH)
/// as opposed to a control-plane op. Only data ops carry the v4
/// deadline and v5 trace trailers, and only data ops are subject to
/// admission control — PING/STATS/HEALTH/METRICS/HELLO/TRACE must stay
/// answerable while a server is shedding load.
pub fn is_data_request(req: &Request) -> bool {
    matches!(
        req,
        Request::Get { .. }
            | Request::Put { .. }
            | Request::Delete { .. }
            | Request::MultiGet { .. }
            | Request::PutBatch { .. }
    )
}

/// Append `req` as one frame to `out`, encoded at
/// [`BASE_PROTOCOL_VERSION`] (no deadline trailer). On
/// [`WireError::FrameTooLarge`], `out` is left exactly as it was.
pub fn encode_request(out: &mut Vec<u8>, id: u64, req: &Request) -> Result<(), WireError> {
    encode_request_versioned(out, id, req, 0, BASE_PROTOCOL_VERSION)
}

/// Append `req` as one frame to `out`, encoded for a peer speaking
/// `version`, unsampled (the v5 trace trailer, when the version carries
/// it, says "not sampled"). See [`encode_request_traced`].
pub fn encode_request_versioned(
    out: &mut Vec<u8>,
    id: u64,
    req: &Request,
    deadline_ns: u64,
    version: u16,
) -> Result<(), WireError> {
    encode_request_traced(out, id, req, deadline_ns, TraceContext::NONE, version)
}

/// Append `req` as one frame to `out`, encoded for a peer speaking
/// `version`. From v4, data-op bodies end with a `u64 deadline_ns`
/// trailer: the client's remaining time budget for the op in
/// nanoseconds (relative, so no clock synchronization is assumed;
/// 0 = no deadline). From v5 the deadline is followed by the trace
/// context: `u64 trace_id` plus a flags byte (bit 0 = sampled, all
/// other bits reserved and rejected on decode). Control ops never
/// carry either trailer. The v6 routing-epoch trailer encodes as 0
/// (no claim) — see [`encode_request_routed`] for stamping a claim.
/// On [`WireError::FrameTooLarge`], `out` is left exactly as it was.
pub fn encode_request_traced(
    out: &mut Vec<u8>,
    id: u64,
    req: &Request,
    deadline_ns: u64,
    trace: TraceContext,
    version: u16,
) -> Result<(), WireError> {
    encode_request_routed(out, id, req, deadline_ns, trace, 0, version)
}

/// Append `req` as one frame to `out`, encoded for a peer speaking
/// `version`, stamping the client's claimed routing epoch. From v6,
/// data-op bodies end with a `u64 routing_epoch` trailer after the v5
/// trace context: the epoch of the routing table the client used to
/// pick this connection (0 = no claim). A server whose table moved the
/// key's slot *after* that epoch refuses the op with
/// [`Response::WrongShard`] instead of serving it from the wrong
/// shard. Control ops never carry the trailer. On
/// [`WireError::FrameTooLarge`], `out` is left exactly as it was.
pub fn encode_request_routed(
    out: &mut Vec<u8>,
    id: u64,
    req: &Request,
    deadline_ns: u64,
    trace: TraceContext,
    routing_epoch: u64,
    version: u16,
) -> Result<(), WireError> {
    let tail = |b: &mut Vec<u8>| {
        if version >= OVERLOAD_PROTOCOL_VERSION {
            put_u64(b, deadline_ns);
        }
        if version >= TRACE_PROTOCOL_VERSION {
            put_u64(b, trace.id);
            b.push(trace.sampled as u8);
        }
        if version >= RESHARD_PROTOCOL_VERSION {
            put_u64(b, routing_epoch);
        }
    };
    match req {
        Request::Ping => frame(out, OP_PING, id, |_| {}),
        Request::Get { key } => frame(out, OP_GET, id, |b| {
            put_bytes(b, key);
            tail(b);
        }),
        Request::Put { key, value } => frame(out, OP_PUT, id, |b| {
            put_bytes(b, key);
            put_bytes(b, value);
            tail(b);
        }),
        Request::Delete { key } => frame(out, OP_DELETE, id, |b| {
            put_bytes(b, key);
            tail(b);
        }),
        Request::MultiGet { keys } => frame(out, OP_MULTI_GET, id, |b| {
            put_u32(b, keys.len() as u32);
            for key in keys {
                put_bytes(b, key);
            }
            tail(b);
        }),
        Request::PutBatch { pairs } => frame(out, OP_PUT_BATCH, id, |b| {
            put_u32(b, pairs.len() as u32);
            for (key, value) in pairs {
                put_bytes(b, key);
                put_bytes(b, value);
            }
            tail(b);
        }),
        Request::Stats => frame(out, OP_STATS, id, |_| {}),
        Request::Health => frame(out, OP_HEALTH, id, |_| {}),
        Request::Metrics => frame(out, OP_METRICS, id, |_| {}),
        Request::Hello { version, features } => frame(out, OP_HELLO, id, |b| {
            put_u16(b, *version);
            put_u64(b, *features);
        }),
        Request::Trace { mode, cursors } => frame(out, OP_TRACE, id, |b| {
            b.push(*mode);
            put_u32(b, cursors.len() as u32);
            for &cur in cursors {
                put_u64(b, cur);
            }
        }),
        Request::Reshard { mode, source, target } => frame(out, OP_RESHARD, id, |b| {
            b.push(*mode);
            put_u32(b, *source);
            put_u32(b, *target);
        }),
    }
}

/// Append `resp` as one frame to `out`, encoded at [`PROTOCOL_VERSION`].
/// On [`WireError::FrameTooLarge`], `out` is left exactly as it was.
pub fn encode_response(out: &mut Vec<u8>, id: u64, resp: &Response) -> Result<(), WireError> {
    encode_response_versioned(out, id, resp, PROTOCOL_VERSION)
}

/// Append `resp` as one frame to `out`, encoded for a peer speaking
/// `version` (the connection's negotiated version, or
/// [`BASE_PROTOCOL_VERSION`] before/without a `HELLO`). Fields that a
/// given version does not know — today the v3 tiering fields of the
/// `STATS` reply — are omitted so older decoders keep working. On
/// [`WireError::FrameTooLarge`], `out` is left exactly as it was.
pub fn encode_response_versioned(
    out: &mut Vec<u8>,
    id: u64,
    resp: &Response,
    version: u16,
) -> Result<(), WireError> {
    match resp {
        Response::Pong => frame(out, OP_PONG, id, |_| {}),
        Response::Value(v) => frame(out, OP_VALUE, id, |b| match v {
            Some(v) => {
                b.push(1);
                put_bytes(b, v);
            }
            None => b.push(0),
        }),
        Response::PutOk => frame(out, OP_PUT_OK, id, |_| {}),
        Response::Deleted(existed) => frame(out, OP_DELETED, id, |b| b.push(*existed as u8)),
        Response::Values(items) => frame(out, OP_VALUES, id, |b| {
            put_u32(b, items.len() as u32);
            for item in items {
                match item {
                    Ok(None) => b.push(0),
                    Ok(Some(v)) => {
                        b.push(1);
                        put_bytes(b, v);
                    }
                    Err(code) => {
                        b.push(2);
                        put_u16(b, *code as u16);
                    }
                }
            }
        }),
        Response::BatchStatus(items) => frame(out, OP_BATCH_STATUS, id, |b| {
            put_u32(b, items.len() as u32);
            for item in items {
                put_u16(b, item.as_ref().err().map(|c| *c as u16).unwrap_or(0));
            }
        }),
        Response::Stats(s) => frame(out, OP_STATS_REPLY, id, |b| {
            put_u32(b, s.shards);
            put_u64(b, s.len);
            put_u64(b, s.ops_served);
            put_u32(b, s.active_connections);
            put_u64(b, s.connections_accepted);
            b.push(s.degraded as u8);
            if version >= 3 {
                put_u64(b, s.hot_keys);
                put_u64(b, s.cold_keys);
                b.push(s.recovering as u8);
            }
            if version >= OVERLOAD_PROTOCOL_VERSION {
                put_u64(b, s.ops_shed_overload);
                put_u64(b, s.ops_shed_deadline);
                put_u64(b, s.queue_delay_ms);
                put_u64(b, s.slow_disconnects);
            }
            put_health(b, &s.health);
        }),
        Response::Health(h) => frame(out, OP_HEALTH_REPLY, id, |b| put_health(b, &h.shards)),
        Response::Metrics(snapshot) => frame(out, OP_METRICS_REPLY, id, |b| put_bytes(b, snapshot)),
        Response::Trace(payload) => frame(out, OP_TRACE_REPLY, id, |b| put_bytes(b, payload)),
        Response::HelloAck { version, features } => frame(out, OP_HELLO_REPLY, id, |b| {
            put_u16(b, *version);
            put_u64(b, *features);
        }),
        Response::Reshard { epoch, slots, state, started, committed, aborted } => {
            frame(out, OP_RESHARD_REPLY, id, |b| {
                put_u64(b, *epoch);
                put_u32(b, slots.len() as u32);
                for &s in slots {
                    put_u32(b, s);
                }
                b.push(*state);
                put_u64(b, *started);
                put_u64(b, *committed);
                put_u64(b, *aborted);
            })
        }
        // Pre-v6 peers never negotiated the typed refusal: degrade to
        // the retryable error code their loops already understand, so
        // the bytes on an old connection stay exactly what a pre-v6
        // server would have sent.
        Response::WrongShard { epoch, hint } => {
            if version >= RESHARD_PROTOCOL_VERSION {
                frame(out, OP_WRONG_SHARD, id, |b| {
                    put_u64(b, *epoch);
                    put_u32(b, *hint);
                })
            } else {
                encode_response_versioned(
                    out,
                    id,
                    &Response::Error {
                        code: ErrorCode::ShardQuarantined,
                        message: format!("wrong shard (moved; owner hint {hint})"),
                        retry_after_ms: 0,
                    },
                    version,
                )
            }
        }
        Response::Error { code, message, retry_after_ms } => frame(out, OP_ERROR, id, |b| {
            put_u16(b, *code as u16);
            put_bytes(b, message.as_bytes());
            if version >= OVERLOAD_PROTOCOL_VERSION {
                put_u64(b, *retry_after_ms);
            }
        }),
    }
}

// ---------------------------------------------------------------- decode

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Malformed);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes_ref(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        Ok(self.bytes_ref()?.to_vec())
    }

    fn finished(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed)
        }
    }

    fn health_list(&mut self) -> Result<Vec<ShardHealthInfo>, WireError> {
        let n = self.u32()? as usize;
        if n > self.buf.len() {
            return Err(WireError::Malformed);
        }
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            shards.push(ShardHealthInfo {
                state: self.u8()?,
                role: self.u8()?,
                lag: self.u64()?,
                violations: self.u64()?,
                recoveries: self.u64()?,
            });
        }
        Ok(shards)
    }
}

/// Result of trying to peel one frame off a byte buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum Decoded<T> {
    /// A complete frame: (bytes consumed, request id, message).
    Frame(usize, u64, T),
    /// Not enough bytes buffered for a complete frame yet.
    Incomplete,
}

/// (bytes consumed, opcode, request id, body).
type RawFrame<'a> = (usize, u8, u64, &'a [u8]);

fn split_frame(buf: &[u8]) -> Result<Option<RawFrame<'_>>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let frame_len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    if frame_len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge { len: frame_len });
    }
    if frame_len < FRAME_HEADER_LEN {
        return Err(WireError::Malformed);
    }
    if buf.len() < 4 + frame_len {
        return Ok(None);
    }
    let opcode = buf[4];
    let id = u64::from_le_bytes(buf[5..13].try_into().unwrap());
    Ok(Some((4 + frame_len, opcode, id, &buf[13..4 + frame_len])))
}

/// A request decoded *in place*: key and value fields borrow straight
/// out of the connection's read buffer instead of copying into owned
/// `Vec`s. This is the reactor's hot-path decode — bytes are copied at
/// most once, when an op is handed to the store — while
/// [`decode_request`] remains the owned convenience form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestRef<'a> {
    /// Liveness probe.
    Ping,
    /// Fetch one key.
    Get {
        /// The key, borrowed from the frame.
        key: &'a [u8],
    },
    /// Insert or update one key.
    Put {
        /// The key, borrowed from the frame.
        key: &'a [u8],
        /// The value, borrowed from the frame.
        value: &'a [u8],
    },
    /// Remove one key.
    Delete {
        /// The key, borrowed from the frame.
        key: &'a [u8],
    },
    /// Fetch several keys in one request.
    MultiGet {
        /// The keys, borrowed from the frame, answered in order.
        keys: Vec<&'a [u8]>,
    },
    /// Insert or update several pairs in one request.
    PutBatch {
        /// The pairs, borrowed from the frame, applied in order.
        pairs: Vec<(&'a [u8], &'a [u8])>,
    },
    /// Server/store statistics.
    Stats,
    /// Per-shard health.
    Health,
    /// Full telemetry snapshot.
    Metrics,
    /// Versioned handshake (see [`Request::Hello`]).
    Hello {
        /// The highest protocol version the client speaks.
        version: u16,
        /// Feature bits the client requests.
        features: u64,
    },
    /// Fetch tracing data (see [`Request::Trace`]).
    Trace {
        /// 0 = stream spans, 1 = flight-recorder dump.
        mode: u8,
        /// Per-ring resume cursors for mode 0.
        cursors: Vec<u64>,
    },
    /// Observe or drive elastic resharding (see [`Request::Reshard`]).
    Reshard {
        /// 0 = query, 1 = split, 2 = merge.
        mode: u8,
        /// Source shard for modes 1/2.
        source: u32,
        /// Target shard for modes 1/2.
        target: u32,
    },
}

impl RequestRef<'_> {
    /// Telemetry table index, `0..REQUEST_OPCODES`; matches
    /// [`request_op_index`] on the owned form.
    pub fn op_index(&self) -> usize {
        match self {
            RequestRef::Ping => 0,
            RequestRef::Get { .. } => 1,
            RequestRef::Put { .. } => 2,
            RequestRef::Delete { .. } => 3,
            RequestRef::MultiGet { .. } => 4,
            RequestRef::PutBatch { .. } => 5,
            RequestRef::Stats => 6,
            RequestRef::Health => 7,
            RequestRef::Metrics => 8,
            RequestRef::Hello { .. } => 9,
            RequestRef::Trace { .. } => 10,
            RequestRef::Reshard { .. } => 11,
        }
    }

    /// Whether this is a data op (see [`is_data_request`]): subject to
    /// admission control and, from v4, followed by the deadline
    /// trailer on the wire.
    pub fn is_data_op(&self) -> bool {
        matches!(
            self,
            RequestRef::Get { .. }
                | RequestRef::Put { .. }
                | RequestRef::Delete { .. }
                | RequestRef::MultiGet { .. }
                | RequestRef::PutBatch { .. }
        )
    }

    /// Copy the borrowed fields into an owned [`Request`].
    pub fn to_owned(&self) -> Request {
        match self {
            RequestRef::Ping => Request::Ping,
            RequestRef::Get { key } => Request::Get { key: key.to_vec() },
            RequestRef::Put { key, value } => {
                Request::Put { key: key.to_vec(), value: value.to_vec() }
            }
            RequestRef::Delete { key } => Request::Delete { key: key.to_vec() },
            RequestRef::MultiGet { keys } => {
                Request::MultiGet { keys: keys.iter().map(|k| k.to_vec()).collect() }
            }
            RequestRef::PutBatch { pairs } => Request::PutBatch {
                pairs: pairs.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect(),
            },
            RequestRef::Stats => Request::Stats,
            RequestRef::Health => Request::Health,
            RequestRef::Metrics => Request::Metrics,
            RequestRef::Hello { version, features } => {
                Request::Hello { version: *version, features: *features }
            }
            RequestRef::Trace { mode, cursors } => {
                Request::Trace { mode: *mode, cursors: cursors.clone() }
            }
            RequestRef::Reshard { mode, source, target } => {
                Request::Reshard { mode: *mode, source: *source, target: *target }
            }
        }
    }
}

/// Decode one request frame from the front of `buf` without copying
/// key/value bytes — they borrow from `buf` for the lifetime of the
/// returned [`RequestRef`]. Decodes at [`BASE_PROTOCOL_VERSION`]
/// (no deadline trailer); frames carrying the v4 trailer must go
/// through [`decode_request_ref_versioned`].
pub fn decode_request_ref(buf: &[u8]) -> Result<Decoded<RequestRef<'_>>, WireError> {
    Ok(match decode_request_ref_versioned(buf, BASE_PROTOCOL_VERSION)? {
        Decoded::Frame(consumed, id, (req, _meta)) => Decoded::Frame(consumed, id, req),
        Decoded::Incomplete => Decoded::Incomplete,
    })
}

/// Decode one request frame from the front of `buf` without copying,
/// honoring the connection's negotiated `version`. From v4, data ops
/// carry a trailing `u64 deadline_ns` (the client's remaining time
/// budget, 0 = none), and from v5 additionally the trace context
/// (`u64 trace_id` + flags byte); both are returned alongside the
/// request as a [`RequestMeta`]. At older versions — and for control
/// ops at any version — the meta decodes to its zero values. A trace
/// flags byte with any bit other than bit 0 set is rejected as
/// [`WireError::Malformed`] (reserved bits).
pub fn decode_request_ref_versioned(
    buf: &[u8],
    version: u16,
) -> Result<Decoded<(RequestRef<'_>, RequestMeta)>, WireError> {
    let Some((consumed, opcode, id, body)) = split_frame(buf)? else {
        return Ok(Decoded::Incomplete);
    };
    let mut c = Cursor { buf: body, pos: 0 };
    let req = match opcode {
        OP_PING => RequestRef::Ping,
        OP_GET => RequestRef::Get { key: c.bytes_ref()? },
        OP_PUT => RequestRef::Put { key: c.bytes_ref()?, value: c.bytes_ref()? },
        OP_DELETE => RequestRef::Delete { key: c.bytes_ref()? },
        OP_MULTI_GET => {
            let n = c.u32()? as usize;
            // A count can't promise more items than bytes remain.
            if n > body.len() {
                return Err(WireError::Malformed);
            }
            let mut keys = Vec::with_capacity(n);
            for _ in 0..n {
                keys.push(c.bytes_ref()?);
            }
            RequestRef::MultiGet { keys }
        }
        OP_PUT_BATCH => {
            let n = c.u32()? as usize;
            if n > body.len() {
                return Err(WireError::Malformed);
            }
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                pairs.push((c.bytes_ref()?, c.bytes_ref()?));
            }
            RequestRef::PutBatch { pairs }
        }
        OP_STATS => RequestRef::Stats,
        OP_HEALTH => RequestRef::Health,
        OP_METRICS => RequestRef::Metrics,
        OP_HELLO => RequestRef::Hello { version: c.u16()?, features: c.u64()? },
        OP_TRACE => {
            let mode = c.u8()?;
            let n = c.u32()? as usize;
            if n * 8 > body.len() {
                return Err(WireError::Malformed);
            }
            let mut cursors = Vec::with_capacity(n);
            for _ in 0..n {
                cursors.push(c.u64()?);
            }
            RequestRef::Trace { mode, cursors }
        }
        OP_RESHARD => RequestRef::Reshard { mode: c.u8()?, source: c.u32()?, target: c.u32()? },
        other => return Err(WireError::UnknownOpcode(other)),
    };
    let mut meta = RequestMeta::default();
    if req.is_data_op() {
        if version >= OVERLOAD_PROTOCOL_VERSION {
            meta.deadline_ns = c.u64()?;
        }
        if version >= TRACE_PROTOCOL_VERSION {
            let id = c.u64()?;
            let flags = c.u8()?;
            if flags & !1 != 0 {
                return Err(WireError::Malformed);
            }
            meta.trace = TraceContext { id, sampled: flags & 1 != 0 };
        }
        if version >= RESHARD_PROTOCOL_VERSION {
            meta.routing_epoch = c.u64()?;
        }
    }
    c.finished()?;
    Ok(Decoded::Frame(consumed, id, (req, meta)))
}

/// Decode one request frame from the front of `buf`.
pub fn decode_request(buf: &[u8]) -> Result<Decoded<Request>, WireError> {
    Ok(match decode_request_ref(buf)? {
        Decoded::Frame(consumed, id, req) => Decoded::Frame(consumed, id, req.to_owned()),
        Decoded::Incomplete => Decoded::Incomplete,
    })
}

/// Decode one response frame from the front of `buf`, assuming the
/// peer encoded it at [`PROTOCOL_VERSION`].
pub fn decode_response(buf: &[u8]) -> Result<Decoded<Response>, WireError> {
    decode_response_versioned(buf, PROTOCOL_VERSION)
}

/// Decode one response frame from the front of `buf`, assuming the
/// peer encoded it for a connection speaking `version` (what `HELLO`
/// negotiated, or [`BASE_PROTOCOL_VERSION`] without a handshake).
/// Fields a given version does not carry — today the v3 tiering fields
/// of the `STATS` reply — decode to their zero values.
pub fn decode_response_versioned(buf: &[u8], version: u16) -> Result<Decoded<Response>, WireError> {
    let Some((consumed, opcode, id, body)) = split_frame(buf)? else {
        return Ok(Decoded::Incomplete);
    };
    let mut c = Cursor { buf: body, pos: 0 };
    let resp = match opcode {
        OP_PONG => Response::Pong,
        OP_VALUE => match c.u8()? {
            0 => Response::Value(None),
            1 => Response::Value(Some(c.bytes()?)),
            _ => return Err(WireError::Malformed),
        },
        OP_PUT_OK => Response::PutOk,
        OP_DELETED => Response::Deleted(c.u8()? != 0),
        OP_VALUES => {
            let n = c.u32()? as usize;
            if n > body.len() {
                return Err(WireError::Malformed);
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(match c.u8()? {
                    0 => Ok(None),
                    1 => Ok(Some(c.bytes()?)),
                    2 => Err(ErrorCode::from_u16(c.u16()?).ok_or(WireError::Malformed)?),
                    _ => return Err(WireError::Malformed),
                });
            }
            Response::Values(items)
        }
        OP_BATCH_STATUS => {
            let n = c.u32()? as usize;
            if n > body.len() {
                return Err(WireError::Malformed);
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(match c.u16()? {
                    0 => Ok(()),
                    code => Err(ErrorCode::from_u16(code).ok_or(WireError::Malformed)?),
                });
            }
            Response::BatchStatus(items)
        }
        OP_STATS_REPLY => {
            let shards = c.u32()?;
            let len = c.u64()?;
            let ops_served = c.u64()?;
            let active_connections = c.u32()?;
            let connections_accepted = c.u64()?;
            let degraded = c.u8()? != 0;
            let (hot_keys, cold_keys, recovering) =
                if version >= 3 { (c.u64()?, c.u64()?, c.u8()? != 0) } else { (0, 0, false) };
            let (ops_shed_overload, ops_shed_deadline, queue_delay_ms, slow_disconnects) =
                if version >= OVERLOAD_PROTOCOL_VERSION {
                    (c.u64()?, c.u64()?, c.u64()?, c.u64()?)
                } else {
                    (0, 0, 0, 0)
                };
            Response::Stats(StatsReply {
                shards,
                len,
                ops_served,
                active_connections,
                connections_accepted,
                degraded,
                hot_keys,
                cold_keys,
                recovering,
                ops_shed_overload,
                ops_shed_deadline,
                queue_delay_ms,
                slow_disconnects,
                health: c.health_list()?,
            })
        }
        OP_HEALTH_REPLY => Response::Health(HealthReply { shards: c.health_list()? }),
        OP_METRICS_REPLY => Response::Metrics(c.bytes()?),
        OP_TRACE_REPLY => Response::Trace(c.bytes()?),
        OP_HELLO_REPLY => Response::HelloAck { version: c.u16()?, features: c.u64()? },
        OP_RESHARD_REPLY => {
            let epoch = c.u64()?;
            let n = c.u32()? as usize;
            if n * 4 > body.len() {
                return Err(WireError::Malformed);
            }
            let mut slots = Vec::with_capacity(n);
            for _ in 0..n {
                slots.push(c.u32()?);
            }
            Response::Reshard {
                epoch,
                slots,
                state: c.u8()?,
                started: c.u64()?,
                committed: c.u64()?,
                aborted: c.u64()?,
            }
        }
        OP_WRONG_SHARD => Response::WrongShard { epoch: c.u64()?, hint: c.u32()? },
        OP_ERROR => Response::Error {
            code: ErrorCode::from_u16(c.u16()?).ok_or(WireError::Malformed)?,
            message: String::from_utf8_lossy(&c.bytes()?).into_owned(),
            retry_after_ms: if version >= OVERLOAD_PROTOCOL_VERSION { c.u64()? } else { 0 },
        },
        other => return Err(WireError::UnknownOpcode(other)),
    };
    c.finished()?;
    Ok(Decoded::Frame(consumed, id, resp))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let mut buf = Vec::new();
        encode_request(&mut buf, 7, &req).unwrap();
        match decode_request(&buf).unwrap() {
            Decoded::Frame(consumed, id, got) => {
                assert_eq!(consumed, buf.len());
                assert_eq!(id, 7);
                assert_eq!(got, req);
            }
            Decoded::Incomplete => panic!("complete frame decoded as incomplete"),
        }
    }

    fn round_trip_response(resp: Response) {
        let mut buf = Vec::new();
        encode_response(&mut buf, 99, &resp).unwrap();
        match decode_response(&buf).unwrap() {
            Decoded::Frame(consumed, id, got) => {
                assert_eq!(consumed, buf.len());
                assert_eq!(id, 99);
                assert_eq!(got, resp);
            }
            Decoded::Incomplete => panic!("complete frame decoded as incomplete"),
        }
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Ping);
        round_trip_request(Request::Get { key: b"k".to_vec() });
        round_trip_request(Request::Put { key: b"k".to_vec(), value: b"v".to_vec() });
        round_trip_request(Request::Delete { key: vec![] });
        round_trip_request(Request::MultiGet { keys: vec![b"a".to_vec(), vec![], b"c".to_vec()] });
        round_trip_request(Request::PutBatch {
            pairs: vec![(b"a".to_vec(), b"1".to_vec()), (b"b".to_vec(), vec![0u8; 300])],
        });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Health);
        round_trip_request(Request::Metrics);
        round_trip_request(Request::Hello { version: PROTOCOL_VERSION, features: 0b101 });
        round_trip_request(Request::Reshard { mode: 0, source: 0, target: 0 });
        round_trip_request(Request::Reshard { mode: 1, source: 2, target: 6 });
    }

    #[test]
    fn ref_decode_matches_owned_and_borrows_in_place() {
        let reqs = vec![
            Request::Ping,
            Request::Get { key: b"k".to_vec() },
            Request::Put { key: b"key".to_vec(), value: vec![9u8; 64] },
            Request::Delete { key: b"gone".to_vec() },
            Request::MultiGet { keys: vec![b"a".to_vec(), vec![], b"c".to_vec()] },
            Request::PutBatch { pairs: vec![(b"a".to_vec(), b"1".to_vec())] },
            Request::Stats,
            Request::Health,
            Request::Metrics,
            Request::Hello { version: 2, features: 3 },
        ];
        let mut buf = Vec::new();
        for (i, req) in reqs.iter().enumerate() {
            encode_request(&mut buf, i as u64 + 1, req).unwrap();
        }
        let mut offset = 0;
        for (i, want) in reqs.iter().enumerate() {
            match decode_request_ref(&buf[offset..]).unwrap() {
                Decoded::Frame(consumed, id, got) => {
                    assert_eq!(id, i as u64 + 1);
                    assert_eq!(&got.to_owned(), want, "ref decode diverged for {want:?}");
                    assert_eq!(got.op_index(), request_op_index(want));
                    // The borrowed form must point into the frame buffer,
                    // not at a copy.
                    if let RequestRef::Put { key, .. } = got {
                        let buf_range = buf.as_ptr() as usize..buf.as_ptr() as usize + buf.len();
                        assert!(buf_range.contains(&(key.as_ptr() as usize)));
                    }
                    offset += consumed;
                }
                Decoded::Incomplete => panic!("complete frame decoded as incomplete"),
            }
        }
        assert_eq!(offset, buf.len());
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Pong);
        round_trip_response(Response::Value(None));
        round_trip_response(Response::Value(Some(b"v".to_vec())));
        round_trip_response(Response::PutOk);
        round_trip_response(Response::Deleted(true));
        round_trip_response(Response::Values(vec![
            Ok(None),
            Ok(Some(b"x".to_vec())),
            Err(ErrorCode::EntryMacMismatch),
        ]));
        round_trip_response(Response::BatchStatus(vec![Ok(()), Err(ErrorCode::ShardUnavailable)]));
        round_trip_response(Response::Stats(StatsReply {
            shards: 4,
            len: 123,
            ops_served: 456,
            active_connections: 2,
            connections_accepted: 9,
            degraded: true,
            hot_keys: 100,
            cold_keys: 23,
            recovering: true,
            ops_shed_overload: 12,
            ops_shed_deadline: 5,
            queue_delay_ms: 80,
            slow_disconnects: 2,
            health: vec![
                ShardHealthInfo { state: 0, role: 0, lag: 0, violations: 0, recoveries: 0 },
                ShardHealthInfo { state: 1, role: 1, lag: 42, violations: 3, recoveries: 1 },
            ],
        }));
        round_trip_response(Response::Health(HealthReply {
            shards: vec![ShardHealthInfo {
                state: 2,
                role: 1,
                lag: 9,
                violations: 7,
                recoveries: 2,
            }],
        }));
        round_trip_response(Response::Metrics(vec![1, 2, 3, 4, 5]));
        round_trip_response(Response::HelloAck { version: 2, features: 0 });
        round_trip_response(Response::Reshard {
            epoch: 3,
            slots: (0..64u32).map(|s| s % 4).collect(),
            state: 2,
            started: 4,
            committed: 2,
            aborted: 1,
        });
        round_trip_response(Response::WrongShard { epoch: 9, hint: 5 });
        round_trip_response(Response::Error {
            code: ErrorCode::TooManyConnections,
            message: "busy".to_string(),
            retry_after_ms: 0,
        });
        round_trip_response(Response::Error {
            code: ErrorCode::Overloaded,
            message: "shard 3 overloaded".to_string(),
            retry_after_ms: 125,
        });
    }

    /// The v3 tiering fields of the STATS reply must stay invisible to
    /// v1/v2 peers: encoded at an old version, the frame decodes
    /// cleanly at that same version (with the tier fields zeroed and
    /// the health list intact), and the old frame is a strict prefix
    /// layout — no bytes an old decoder would misread as the
    /// health-list length.
    #[test]
    fn stats_tier_fields_are_gated_on_version() {
        let stats = Response::Stats(StatsReply {
            shards: 2,
            len: 10,
            ops_served: 55,
            active_connections: 1,
            connections_accepted: 4,
            degraded: false,
            hot_keys: 7,
            cold_keys: 3,
            recovering: true,
            ops_shed_overload: 9,
            ops_shed_deadline: 4,
            queue_delay_ms: 30,
            slow_disconnects: 1,
            health: vec![ShardHealthInfo {
                state: 0,
                role: 0,
                lag: 0,
                violations: 0,
                recoveries: 0,
            }],
        });
        for old in [1u16, 2] {
            let mut buf = Vec::new();
            encode_response_versioned(&mut buf, 5, &stats, old).unwrap();
            match decode_response_versioned(&buf, old).unwrap() {
                Decoded::Frame(consumed, id, Response::Stats(got)) => {
                    assert_eq!(consumed, buf.len());
                    assert_eq!(id, 5);
                    assert_eq!(got.shards, 2);
                    assert_eq!(got.ops_served, 55);
                    assert_eq!((got.hot_keys, got.cold_keys, got.recovering), (0, 0, false));
                    assert_eq!(got.health.len(), 1, "health list survives the omitted fields");
                }
                other => panic!("expected a STATS frame, got {other:?}"),
            }
        }
        // The old-version frame is exactly 17 bytes (8 + 8 + 1) shorter.
        let (mut v1, mut v3) = (Vec::new(), Vec::new());
        encode_response_versioned(&mut v1, 5, &stats, 1).unwrap();
        encode_response_versioned(&mut v3, 5, &stats, 3).unwrap();
        assert_eq!(v3.len(), v1.len() + 17);
        // Mixing versions across the wire is detected, not misread: a
        // v1 frame is short for a v3 decoder.
        assert!(matches!(decode_response_versioned(&v1, 3), Err(WireError::Malformed)));
    }

    /// The v4 overload fields of the STATS reply must stay invisible to
    /// v1–v3 peers — same contract as the v3 tiering fields above.
    #[test]
    fn stats_overload_fields_are_gated_on_version() {
        let stats = Response::Stats(StatsReply {
            shards: 2,
            len: 10,
            ops_served: 55,
            active_connections: 1,
            connections_accepted: 4,
            degraded: true,
            hot_keys: 7,
            cold_keys: 3,
            recovering: false,
            ops_shed_overload: 900,
            ops_shed_deadline: 41,
            queue_delay_ms: 75,
            slow_disconnects: 6,
            health: vec![ShardHealthInfo::default()],
        });
        for old in [1u16, 2, 3] {
            let mut buf = Vec::new();
            encode_response_versioned(&mut buf, 5, &stats, old).unwrap();
            match decode_response_versioned(&buf, old).unwrap() {
                Decoded::Frame(consumed, id, Response::Stats(got)) => {
                    assert_eq!(consumed, buf.len());
                    assert_eq!(id, 5);
                    assert_eq!(got.ops_served, 55);
                    assert_eq!(
                        (
                            got.ops_shed_overload,
                            got.ops_shed_deadline,
                            got.queue_delay_ms,
                            got.slow_disconnects
                        ),
                        (0, 0, 0, 0),
                        "v{old} decode must zero the overload fields"
                    );
                    assert_eq!(got.health.len(), 1, "health list survives the omitted fields");
                }
                other => panic!("expected a STATS frame, got {other:?}"),
            }
        }
        // The v3 frame is exactly the four u64s (32 bytes) shorter.
        let (mut v3, mut v4) = (Vec::new(), Vec::new());
        encode_response_versioned(&mut v3, 5, &stats, 3).unwrap();
        encode_response_versioned(&mut v4, 5, &stats, 4).unwrap();
        assert_eq!(v4.len(), v3.len() + 32);
        // A v3 frame is short for a v4 decoder — detected, not misread.
        assert!(matches!(decode_response_versioned(&v3, 4), Err(WireError::Malformed)));
    }

    /// The v4 retry-after hint on ERROR replies is gated the same way.
    #[test]
    fn error_retry_after_is_gated_on_version() {
        let err = Response::Error {
            code: ErrorCode::Overloaded,
            message: "shard 1 overloaded".to_string(),
            retry_after_ms: 250,
        };
        for old in [1u16, 2, 3] {
            let mut buf = Vec::new();
            encode_response_versioned(&mut buf, 9, &err, old).unwrap();
            match decode_response_versioned(&buf, old).unwrap() {
                Decoded::Frame(consumed, id, Response::Error { code, retry_after_ms, .. }) => {
                    assert_eq!(consumed, buf.len());
                    assert_eq!(id, 9);
                    assert_eq!(code, ErrorCode::Overloaded);
                    assert_eq!(retry_after_ms, 0, "v{old} decode must zero the hint");
                }
                other => panic!("expected an ERROR frame, got {other:?}"),
            }
        }
        let (mut v3, mut v4) = (Vec::new(), Vec::new());
        encode_response_versioned(&mut v3, 9, &err, 3).unwrap();
        encode_response_versioned(&mut v4, 9, &err, 4).unwrap();
        assert_eq!(v4.len(), v3.len() + 8);
        assert!(matches!(decode_response_versioned(&v3, 4), Err(WireError::Malformed)));
        match decode_response_versioned(&v4, 4).unwrap() {
            Decoded::Frame(_, _, Response::Error { retry_after_ms, .. }) => {
                assert_eq!(retry_after_ms, 250);
            }
            other => panic!("expected an ERROR frame, got {other:?}"),
        }
    }

    /// The v4 deadline trailer on data requests: carried and returned
    /// at v4, absent at v1–v3, never attached to control ops.
    #[test]
    fn request_deadline_trailer_is_gated_on_version() {
        let data_ops = [
            Request::Get { key: b"k".to_vec() },
            Request::Put { key: b"k".to_vec(), value: b"v".to_vec() },
            Request::Delete { key: b"k".to_vec() },
            Request::MultiGet { keys: vec![b"a".to_vec(), b"b".to_vec()] },
            Request::PutBatch { pairs: vec![(b"a".to_vec(), b"1".to_vec())] },
        ];
        for req in &data_ops {
            assert!(is_data_request(req));
            let (mut v1, mut v4) = (Vec::new(), Vec::new());
            encode_request_versioned(&mut v1, 7, req, 5_000_000, 1).unwrap();
            encode_request_versioned(&mut v4, 7, req, 5_000_000, 4).unwrap();
            assert_eq!(v4.len(), v1.len() + 8, "v4 adds exactly the u64 trailer for {req:?}");
            match decode_request_ref_versioned(&v4, 4).unwrap() {
                Decoded::Frame(consumed, id, (got, meta)) => {
                    assert_eq!(consumed, v4.len());
                    assert_eq!(id, 7);
                    assert_eq!(&got.to_owned(), req);
                    assert!(got.is_data_op());
                    assert_eq!(meta.deadline_ns, 5_000_000);
                    assert_eq!(meta.trace, TraceContext::NONE);
                }
                other => panic!("expected a frame, got {other:?}"),
            }
            // The v1 frame has no trailer and decodes cleanly at v1...
            match decode_request_ref_versioned(&v1, 1).unwrap() {
                Decoded::Frame(_, _, (got, meta)) => {
                    assert_eq!(&got.to_owned(), req);
                    assert_eq!(meta.deadline_ns, 0);
                }
                other => panic!("expected a frame, got {other:?}"),
            }
            // ...while mixing versions is detected, not misread.
            assert_eq!(decode_request_ref_versioned(&v1, 4).map(|_| ()), Err(WireError::Malformed));
            assert_eq!(decode_request_ref_versioned(&v4, 1).map(|_| ()), Err(WireError::Malformed));
        }
        // Control ops never carry the trailer, at any version.
        for req in [Request::Ping, Request::Stats, Request::Health, Request::Metrics] {
            assert!(!is_data_request(&req));
            let (mut v1, mut v4) = (Vec::new(), Vec::new());
            encode_request_versioned(&mut v1, 7, &req, 5_000_000, 1).unwrap();
            encode_request_versioned(&mut v4, 7, &req, 5_000_000, 4).unwrap();
            assert_eq!(v1, v4, "control frames are version-invariant for {req:?}");
            match decode_request_ref_versioned(&v4, 4).unwrap() {
                Decoded::Frame(_, _, (got, meta)) => {
                    assert!(!got.is_data_op());
                    assert_eq!(&got.to_owned(), &req);
                    assert_eq!(meta.deadline_ns, 0);
                }
                other => panic!("expected a frame, got {other:?}"),
            }
        }
    }

    /// The v5 trace trailer on data requests: carried and returned at
    /// v5, absent at v4, never attached to control ops, and reserved
    /// flag bits are rejected.
    #[test]
    fn request_trace_trailer_is_gated_on_version() {
        let req = Request::Get { key: b"k".to_vec() };
        let trace = TraceContext { id: 0xDEAD_BEEF_F00D_CAFE, sampled: true };
        let (mut v4, mut v5) = (Vec::new(), Vec::new());
        encode_request_traced(&mut v4, 9, &req, 77, trace, 4).unwrap();
        encode_request_traced(&mut v5, 9, &req, 77, trace, 5).unwrap();
        assert_eq!(v5.len(), v4.len() + 9, "v5 adds exactly u64 id + flags byte");
        match decode_request_ref_versioned(&v5, 5).unwrap() {
            Decoded::Frame(consumed, id, (got, meta)) => {
                assert_eq!(consumed, v5.len());
                assert_eq!(id, 9);
                assert_eq!(got.to_owned(), req);
                assert_eq!(meta.deadline_ns, 77);
                assert_eq!(meta.trace, trace);
            }
            other => panic!("expected a frame, got {other:?}"),
        }
        // Mixing v4 and v5 is detected, not misread.
        assert_eq!(decode_request_ref_versioned(&v4, 5).map(|_| ()), Err(WireError::Malformed));
        assert_eq!(decode_request_ref_versioned(&v5, 4).map(|_| ()), Err(WireError::Malformed));
        // Unsampled requests still carry the trailer at v5 (fixed-size
        // tail keeps the framing version-deterministic), decoding NONE.
        let mut plain = Vec::new();
        encode_request_versioned(&mut plain, 9, &req, 0, 5).unwrap();
        match decode_request_ref_versioned(&plain, 5).unwrap() {
            Decoded::Frame(_, _, (_, meta)) => assert_eq!(meta.trace, TraceContext::NONE),
            other => panic!("expected a frame, got {other:?}"),
        }
        // Reserved flag bits fail closed.
        *v5.last_mut().unwrap() = 0b10;
        assert_eq!(decode_request_ref_versioned(&v5, 5).map(|_| ()), Err(WireError::Malformed));
        // Control ops never carry the trailer, even when a trace is given.
        let (mut c4, mut c5) = (Vec::new(), Vec::new());
        encode_request_traced(&mut c4, 9, &Request::Stats, 77, trace, 4).unwrap();
        encode_request_traced(&mut c5, 9, &Request::Stats, 77, trace, 5).unwrap();
        assert_eq!(c4, c5, "control frames are version-invariant");
    }

    /// The v6 routing-epoch trailer on data requests: carried and
    /// returned at v6, absent at v5, never attached to control ops.
    #[test]
    fn request_routing_epoch_trailer_is_gated_on_version() {
        let req = Request::Put { key: b"k".to_vec(), value: b"v".to_vec() };
        let (mut v5, mut v6) = (Vec::new(), Vec::new());
        encode_request_routed(&mut v5, 9, &req, 77, TraceContext::NONE, 42, 5).unwrap();
        encode_request_routed(&mut v6, 9, &req, 77, TraceContext::NONE, 42, 6).unwrap();
        assert_eq!(v6.len(), v5.len() + 8, "v6 adds exactly the u64 epoch trailer");
        match decode_request_ref_versioned(&v6, 6).unwrap() {
            Decoded::Frame(consumed, id, (got, meta)) => {
                assert_eq!(consumed, v6.len());
                assert_eq!(id, 9);
                assert_eq!(got.to_owned(), req);
                assert_eq!(meta.deadline_ns, 77);
                assert_eq!(meta.routing_epoch, 42);
            }
            other => panic!("expected a frame, got {other:?}"),
        }
        // A v5 peer's frame decodes at v5 with no claim...
        match decode_request_ref_versioned(&v5, 5).unwrap() {
            Decoded::Frame(_, _, (_, meta)) => assert_eq!(meta.routing_epoch, 0),
            other => panic!("expected a frame, got {other:?}"),
        }
        // ...and mixing versions is detected, not misread.
        assert_eq!(decode_request_ref_versioned(&v5, 6).map(|_| ()), Err(WireError::Malformed));
        assert_eq!(decode_request_ref_versioned(&v6, 5).map(|_| ()), Err(WireError::Malformed));
        // encode_request_traced is the epoch-0 (no claim) form.
        let mut traced = Vec::new();
        encode_request_traced(&mut traced, 9, &req, 77, TraceContext::NONE, 6).unwrap();
        match decode_request_ref_versioned(&traced, 6).unwrap() {
            Decoded::Frame(_, _, (_, meta)) => assert_eq!(meta.routing_epoch, 0),
            other => panic!("expected a frame, got {other:?}"),
        }
        // Control ops never carry the trailer, even with a claim set.
        for req in [
            Request::Stats,
            Request::Trace { mode: 0, cursors: vec![] },
            Request::Reshard { mode: 0, source: 0, target: 0 },
        ] {
            assert!(!is_data_request(&req));
            let (mut c5, mut c6) = (Vec::new(), Vec::new());
            encode_request_routed(&mut c5, 9, &req, 77, TraceContext::NONE, 42, 5).unwrap();
            encode_request_routed(&mut c6, 9, &req, 77, TraceContext::NONE, 42, 6).unwrap();
            assert_eq!(c5, c6, "control frames are version-invariant for {req:?}");
        }
    }

    /// A typed WRONG_SHARD refusal must never reach a pre-v6 decoder:
    /// encoded for an old connection it degrades to the retryable
    /// ShardQuarantined error those peers already handle, byte-layout
    /// identical to what a pre-v6 server would send.
    #[test]
    fn wrong_shard_degrades_below_v6() {
        let ws = Response::WrongShard { epoch: 9, hint: 5 };
        for old in [1u16, 2, 3, 4, 5] {
            let mut buf = Vec::new();
            encode_response_versioned(&mut buf, 21, &ws, old).unwrap();
            assert_eq!(buf[4], OP_ERROR, "v{old} peers see a plain ERROR frame");
            match decode_response_versioned(&buf, old).unwrap() {
                Decoded::Frame(consumed, id, Response::Error { code, retry_after_ms, .. }) => {
                    assert_eq!(consumed, buf.len());
                    assert_eq!(id, 21);
                    assert_eq!(code, ErrorCode::ShardQuarantined);
                    if old < OVERLOAD_PROTOCOL_VERSION {
                        assert_eq!(retry_after_ms, 0);
                    }
                }
                other => panic!("expected an ERROR frame at v{old}, got {other:?}"),
            }
        }
        // At v6 the typed form goes out and comes back intact.
        let mut buf = Vec::new();
        encode_response_versioned(&mut buf, 21, &ws, 6).unwrap();
        assert_eq!(buf[4], OP_WRONG_SHARD);
        match decode_response_versioned(&buf, 6).unwrap() {
            Decoded::Frame(_, _, got) => assert_eq!(got, ws),
            other => panic!("expected a WRONG_SHARD frame, got {other:?}"),
        }
    }

    /// The TRACE opcode round-trips its mode and cursor list, and the
    /// TRACE_REPLY payload comes back byte-identical.
    #[test]
    fn trace_request_and_reply_round_trip() {
        let req = Request::Trace { mode: 0, cursors: vec![3, 0, u64::MAX] };
        let mut buf = Vec::new();
        encode_request(&mut buf, 11, &req).unwrap();
        match decode_request(&buf).unwrap() {
            Decoded::Frame(consumed, id, got) => {
                assert_eq!(consumed, buf.len());
                assert_eq!(id, 11);
                assert_eq!(got, req);
            }
            other => panic!("expected a frame, got {other:?}"),
        }
        let resp = Response::Trace(vec![0xA5; 32]);
        let mut out = Vec::new();
        encode_response(&mut out, 11, &resp).unwrap();
        match decode_response(&out).unwrap() {
            Decoded::Frame(_, _, got) => assert_eq!(got, resp),
            other => panic!("expected a frame, got {other:?}"),
        }
    }

    #[test]
    fn shard_health_info_decodes_states() {
        use aria_store::{ReplicaRole, ShardHealth};
        let info = ShardHealthInfo { state: 1, ..Default::default() };
        assert_eq!(info.health(), ShardHealth::Quarantined);
        assert_eq!(info.replica_role(), ReplicaRole::Primary);
        // Unknown states fail closed to Dead; unknown roles to Backup.
        let junk = ShardHealthInfo { state: 200, role: 77, ..Default::default() };
        assert_eq!(junk.health(), ShardHealth::Dead);
        assert_eq!(junk.replica_role(), ReplicaRole::Backup);
    }

    #[test]
    fn oversized_encode_is_refused_and_rolled_back() {
        let mut buf = Vec::new();
        encode_request(&mut buf, 1, &Request::Ping).unwrap();
        let before = buf.clone();
        // One frame over 4 MiB of aggregate key bytes.
        let keys = vec![vec![0u8; 1 << 20]; 5];
        assert!(matches!(
            encode_request(&mut buf, 2, &Request::MultiGet { keys }),
            Err(WireError::FrameTooLarge { .. })
        ));
        // Earlier pipelined bytes are intact, nothing partial appended.
        assert_eq!(buf, before);

        let mut buf = Vec::new();
        assert!(matches!(
            encode_response(&mut buf, 3, &Response::Value(Some(vec![0u8; MAX_FRAME_LEN]))),
            Err(WireError::FrameTooLarge { .. })
        ));
        assert!(buf.is_empty());
    }

    #[test]
    fn partial_frames_are_incomplete_not_errors() {
        let mut buf = Vec::new();
        encode_request(&mut buf, 1, &Request::Put { key: b"key".to_vec(), value: b"val".to_vec() })
            .unwrap();
        for cut in 0..buf.len() {
            assert_eq!(decode_request(&buf[..cut]).unwrap(), Decoded::Incomplete, "cut at {cut}");
        }
    }

    #[test]
    fn pipelined_frames_decode_in_sequence() {
        let mut buf = Vec::new();
        for id in 1..=5u64 {
            encode_request(&mut buf, id, &Request::Get { key: vec![id as u8] }).unwrap();
        }
        let mut offset = 0;
        for want in 1..=5u64 {
            match decode_request(&buf[offset..]).unwrap() {
                Decoded::Frame(consumed, id, Request::Get { key }) => {
                    assert_eq!(id, want);
                    assert_eq!(key, vec![want as u8]);
                    offset += consumed;
                }
                other => panic!("unexpected decode {other:?}"),
            }
        }
        assert_eq!(offset, buf.len());
    }

    #[test]
    fn oversized_and_garbage_frames_are_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, (MAX_FRAME_LEN + 1) as u32);
        assert!(matches!(decode_request(&buf), Err(WireError::FrameTooLarge { .. })));

        let mut buf = Vec::new();
        frame(&mut buf, 0x6F, 3, |_| {}).unwrap();
        assert_eq!(decode_request(&buf), Err(WireError::UnknownOpcode(0x6F)));

        // A truncated body inside a complete frame is malformed.
        let mut buf = Vec::new();
        frame(&mut buf, OP_GET, 3, |b| put_u32(b, 100)).unwrap();
        assert_eq!(decode_request(&buf), Err(WireError::Malformed));

        // Trailing junk after a valid body is malformed too.
        let mut buf = Vec::new();
        frame(&mut buf, OP_PING, 3, |b| b.push(0)).unwrap();
        assert_eq!(decode_request(&buf), Err(WireError::Malformed));
    }

    #[test]
    fn error_codes_are_stable_and_reversible() {
        for code in [
            ErrorCode::MerkleMismatch,
            ErrorCode::EntryMacMismatch,
            ErrorCode::CounterReuse,
            ErrorCode::UnauthorizedDeletion,
            ErrorCode::AllocatorMetadata,
            ErrorCode::CorruptPointer,
            ErrorCode::EpcExhausted,
            ErrorCode::CountersExhausted,
            ErrorCode::Heap,
            ErrorCode::KeyTooLong,
            ErrorCode::ValueTooLong,
            ErrorCode::ShardUnavailable,
            ErrorCode::ShardQuarantined,
            ErrorCode::ReplicaDiverged,
            ErrorCode::ExportUnsupported,
            ErrorCode::RecoveryDiverged,
            ErrorCode::LogIo,
            ErrorCode::Overloaded,
            ErrorCode::DeadlineExceeded,
            ErrorCode::DataDestroyed,
            ErrorCode::BadRequest,
            ErrorCode::UnknownOpcode,
            ErrorCode::FrameTooLarge,
            ErrorCode::ShuttingDown,
            ErrorCode::TooManyConnections,
        ] {
            assert_eq!(ErrorCode::from_u16(code as u16), Some(code));
        }
        assert_eq!(ErrorCode::from_u16(0), None);
        assert_eq!(ErrorCode::from_u16(9999), None);
    }

    #[test]
    fn store_errors_map_to_codes() {
        assert_eq!(
            ErrorCode::from_store_error(&StoreError::Integrity(Violation::EntryMacMismatch)),
            ErrorCode::EntryMacMismatch
        );
        assert!(ErrorCode::from_store_error(&StoreError::Integrity(Violation::CounterReuse {
            counter: 9
        }))
        .is_integrity_violation());
        let shard = StoreError::ShardUnavailable { shard: 3 };
        assert_eq!(ErrorCode::from_store_error(&shard), ErrorCode::ShardUnavailable);
        assert!(!ErrorCode::from_store_error(&shard).is_integrity_violation());
        assert_eq!(
            ErrorCode::from_store_error(&StoreError::ShardQuarantined { shard: 1 }),
            ErrorCode::ShardQuarantined
        );
        assert_eq!(
            ErrorCode::from_store_error(&StoreError::Integrity(Violation::DataDestroyed)),
            ErrorCode::DataDestroyed
        );
        assert_eq!(
            ErrorCode::from_store_error(&StoreError::ReplicaDiverged { shard: 2 }),
            ErrorCode::ReplicaDiverged
        );
        assert_eq!(
            ErrorCode::from_store_error(&StoreError::ExportUnsupported),
            ErrorCode::ExportUnsupported
        );
        let overload = StoreError::Overloaded { shard: 2, retry_after_ms: 40 };
        assert_eq!(ErrorCode::from_store_error(&overload), ErrorCode::Overloaded);
        assert!(!ErrorCode::from_store_error(&overload).is_integrity_violation());
    }
}
