//! Secure Cache — the core contribution of the Aria paper (§IV).
//!
//! A software-managed EPC cache of Merkle-tree nodes at *node*
//! granularity, replacing SGX's 4 KB hardware secure paging for security
//! metadata. See [`SecureCache`] for the mechanism and
//! [`CacheConfig`] for the knobs (replacement policy, level pinning,
//! stop-swap, semantic-aware swap optimizations) that the paper's
//! Figure 12/14/15 experiments sweep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod secure_cache;

pub use config::{
    CacheConfig, CacheConfigBuilder, CacheConfigError, EvictionPolicy, SwapMode, ENTRY_META_BYTES,
};
pub use secure_cache::{CacheError, CacheStats, IntegrityViolation, SecureCache};

#[cfg(test)]
mod tests {
    use super::*;
    use aria_crypto::RealSuite;
    use aria_merkle::{MerkleTree, NodeId};
    use aria_sim::{CostModel, Enclave};
    use std::sync::Arc;

    fn suite() -> Arc<RealSuite> {
        Arc::new(RealSuite::from_master(&[9u8; 16]))
    }

    fn setup(counters: u64, arity: usize, cfg: CacheConfig) -> SecureCache {
        let enclave = Arc::new(Enclave::new(CostModel::default(), 256 << 20));
        let tree = MerkleTree::new(counters, arity, suite(), 11);
        SecureCache::new(tree, enclave, cfg).expect("cache construction")
    }

    fn small_cfg(capacity: usize) -> CacheConfig {
        CacheConfig { capacity_bytes: capacity, pinned_levels: 1, ..CacheConfig::default() }
    }

    #[test]
    fn construction_pins_top_levels() {
        let cache = setup(10_000, 8, CacheConfig { pinned_levels: 3, ..CacheConfig::default() });
        let h = cache.tree().height();
        assert_eq!(cache.pinned_floor(), h - 3);
        assert!(cache.cached_entries() > 0);
    }

    #[test]
    fn get_returns_initial_counters() {
        let mut cache = setup(1000, 4, CacheConfig::default());
        for idx in [0u64, 1, 500, 999] {
            let expected = cache.tree().counter_bytes(idx);
            assert_eq!(cache.get_counter(idx).unwrap(), expected);
        }
    }

    #[test]
    fn second_access_is_a_hit() {
        let mut cache = setup(10_000, 8, CacheConfig::default());
        cache.get_counter(42).unwrap();
        assert_eq!(cache.stats().misses, 1);
        cache.get_counter(42).unwrap();
        assert_eq!(cache.stats().hits, 1);
        // Neighbouring counter in the same leaf node: also a hit.
        cache.get_counter(43).unwrap();
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn update_then_get_roundtrips() {
        let mut cache = setup(1000, 4, CacheConfig::default());
        cache.update_counter(7, &[0x77; 16]).unwrap();
        assert_eq!(cache.get_counter(7).unwrap(), [0x77; 16]);
    }

    #[test]
    fn bump_increments_by_one() {
        let mut cache = setup(1000, 4, CacheConfig::default());
        let before = cache.get_counter(3).unwrap();
        let after = cache.bump_counter(3).unwrap();
        let mut expected = before;
        aria_crypto::increment_counter(&mut expected);
        assert_eq!(after, expected);
        assert_eq!(cache.get_counter(3).unwrap(), expected);
    }

    #[test]
    fn eviction_preserves_values() {
        // Capacity for only a handful of leaf entries: heavy eviction.
        let node = 4 * 16 + ENTRY_META_BYTES;
        let mut cache = setup(4096, 4, small_cfg(8 * node));
        for idx in 0..256u64 {
            cache.update_counter(idx, &[idx as u8; 16]).unwrap();
        }
        assert!(cache.stats().evictions > 0, "expected evictions");
        for idx in 0..256u64 {
            assert_eq!(cache.get_counter(idx).unwrap(), [idx as u8; 16], "idx {idx}");
        }
        assert!(cache.used_bytes() <= cache.capacity_bytes());
    }

    #[test]
    fn flush_leaves_untrusted_tree_consistent() {
        let node = 4 * 16 + ENTRY_META_BYTES;
        let mut cache = setup(1024, 4, small_cfg(16 * node));
        for idx in 0..512u64 {
            cache.update_counter(idx, &[(idx % 251) as u8; 16]).unwrap();
        }
        cache.flush();
        for idx in (0..512u64).step_by(37) {
            let (leaf, _) = cache.tree().locate_counter(idx);
            assert_eq!(
                cache.tree().verify_path_plain(leaf),
                aria_merkle::Verification::Ok,
                "leaf of {idx}"
            );
            assert_eq!(cache.tree().counter_bytes(idx), [(idx % 251) as u8; 16]);
        }
    }

    #[test]
    fn tampering_uncached_leaf_detected() {
        let mut cache = setup(4096, 8, CacheConfig::default());
        cache.flush();
        let (leaf, _) = cache.tree().locate_counter(100);
        cache.tree_mut_raw().node_mut_raw(leaf)[3] ^= 1;
        assert!(cache.get_counter(100).is_err());
    }

    #[test]
    fn tampering_untrusted_copy_of_cached_leaf_is_harmless() {
        let mut cache = setup(4096, 8, CacheConfig::default());
        let good = cache.get_counter(100).unwrap(); // now cached
        let (leaf, _) = cache.tree().locate_counter(100);
        cache.tree_mut_raw().node_mut_raw(leaf)[3] ^= 1;
        // Served from the EPC copy: still the good value.
        assert_eq!(cache.get_counter(100).unwrap(), good);
    }

    #[test]
    fn replay_of_old_counter_detected_after_eviction() {
        let node = 4 * 16 + ENTRY_META_BYTES;
        let mut cache = setup(1024, 4, small_cfg(4 * node));
        let (leaf, _) = cache.tree().locate_counter(5);
        let old_bytes = cache.tree().node(leaf).to_vec();
        cache.update_counter(5, &[0xee; 16]).unwrap();
        cache.flush();
        // Attacker restores the pre-update leaf bytes.
        cache.tree_mut_raw().write_node(leaf, &old_bytes);
        assert!(cache.get_counter(5).is_err(), "replay went undetected");
    }

    #[test]
    fn clean_victims_discarded_without_writeback() {
        let node = 4 * 16 + ENTRY_META_BYTES;
        let mut cache = setup(4096, 4, small_cfg(4 * node));
        for idx in (0..1024u64).step_by(4) {
            cache.get_counter(idx).unwrap(); // read-only: entries stay clean
        }
        assert!(cache.stats().clean_discards > 0);
        assert_eq!(cache.stats().writebacks, 0);
    }

    #[test]
    fn disabled_clean_discard_pays_writebacks() {
        let node = 4 * 16 + ENTRY_META_BYTES;
        let cfg = CacheConfig {
            capacity_bytes: 4 * node,
            pinned_levels: 1,
            skip_clean_writeback: false,
            swap_without_encryption: false,
            ..CacheConfig::default()
        };
        let mut cache = setup(4096, 4, cfg);
        let crypted_before = cache.enclave().snapshot().bytes_crypted;
        for idx in (0..1024u64).step_by(4) {
            cache.get_counter(idx).unwrap();
        }
        assert_eq!(cache.stats().clean_discards, 0);
        assert!(cache.stats().writebacks > 0);
        // Swap-out encryption was charged.
        assert!(cache.enclave().snapshot().bytes_crypted > crypted_before);
    }

    #[test]
    fn fifo_evicts_insertion_order() {
        let node = 4 * 16 + ENTRY_META_BYTES;
        // Room for exactly 2 swappable leaf entries.
        let cfg = CacheConfig {
            capacity_bytes: 2 * node + node / 2,
            pinned_levels: 0,
            policy: EvictionPolicy::Fifo,
            swap_mode: SwapMode::Always,
            ..CacheConfig::default()
        };
        let mut cache = setup(64, 4, cfg);
        cache.get_counter(0).unwrap(); // leaf 0 in
        cache.get_counter(4).unwrap(); // leaf 1 in
        cache.get_counter(0).unwrap(); // hit, FIFO order unchanged
        cache.get_counter(8).unwrap(); // leaf 2 in -> evicts leaf 0
        let before = cache.stats().hits;
        cache.get_counter(4).unwrap(); // leaf 1 still cached
        assert_eq!(cache.stats().hits, before + 1);
        let misses_before = cache.stats().misses;
        cache.get_counter(0).unwrap(); // leaf 0 was evicted
        assert_eq!(cache.stats().misses, misses_before + 1);
    }

    #[test]
    fn lru_protects_recently_used() {
        let node = 4 * 16 + ENTRY_META_BYTES;
        let cfg = CacheConfig {
            capacity_bytes: 2 * node + node / 2,
            pinned_levels: 0,
            policy: EvictionPolicy::Lru,
            swap_mode: SwapMode::Always,
            ..CacheConfig::default()
        };
        let mut cache = setup(64, 4, cfg);
        cache.get_counter(0).unwrap(); // leaf 0
        cache.get_counter(4).unwrap(); // leaf 1
        cache.get_counter(0).unwrap(); // refresh leaf 0
        cache.get_counter(8).unwrap(); // evicts leaf 1 (LRU)
        let hits = cache.stats().hits;
        cache.get_counter(0).unwrap(); // leaf 0 survived
        assert_eq!(cache.stats().hits, hits + 1);
    }

    #[test]
    fn lru_hits_cost_more_than_fifo_hits() {
        let run = |policy| {
            let cfg = CacheConfig { policy, ..CacheConfig::default() };
            let mut cache = setup(4096, 8, cfg);
            cache.get_counter(1).unwrap();
            let start = cache.enclave().cycles();
            for _ in 0..1000 {
                cache.get_counter(1).unwrap();
            }
            cache.enclave().cycles() - start
        };
        let fifo = run(EvictionPolicy::Fifo);
        let lru = run(EvictionPolicy::Lru);
        assert!(lru > fifo, "LRU hit path should cost more: lru={lru} fifo={fifo}");
    }

    #[test]
    fn stop_swap_triggers_on_low_hit_ratio() {
        let node = 8 * 16 + ENTRY_META_BYTES;
        let cfg = CacheConfig {
            capacity_bytes: 64 * node,
            pinned_levels: 1,
            swap_mode: SwapMode::Auto,
            stop_swap_threshold: 0.7,
            stop_swap_window: 500,
            ..CacheConfig::default()
        };
        let mut cache = setup(100_000, 8, cfg);
        assert!(cache.swapping());
        // Uniform scan: hit ratio ~0.
        for idx in 0..2000u64 {
            cache.get_counter((idx * 49) % 100_000).unwrap();
        }
        assert!(!cache.swapping(), "stop-swap did not trigger");
        // Pinning extended downward.
        assert!(cache.pinned_floor() < cache.tree().height());
        // Counters still correct afterwards.
        let expected = cache.tree().counter_bytes(12345);
        assert_eq!(cache.get_counter(12345).unwrap(), expected);
    }

    #[test]
    fn never_mode_updates_work_without_caching() {
        let cfg = CacheConfig { swap_mode: SwapMode::Never, ..CacheConfig::default() };
        let mut cache = setup(10_000, 8, cfg);
        assert!(!cache.swapping());
        let inserts_before = cache.stats().inserts;
        cache.update_counter(77, &[0xab; 16]).unwrap();
        assert_eq!(cache.get_counter(77).unwrap(), [0xab; 16]);
        assert_eq!(cache.stats().inserts, inserts_before);
        // Untrusted tree must remain verifiable (updates propagate).
        let (leaf, _) = cache.tree().locate_counter(77);
        // The anchor may be a pinned dirty node; flush and verify fully.
        cache.flush();
        assert_eq!(cache.tree().verify_path_plain(leaf), aria_merkle::Verification::Ok);
    }

    #[test]
    fn pinned_level_hit_avoids_verification() {
        // With everything but L0 pinned (Never mode + ample capacity), a
        // counter fetch walks exactly one level.
        let cfg = CacheConfig {
            swap_mode: SwapMode::Never,
            capacity_bytes: 64 << 20,
            ..CacheConfig::default()
        };
        let mut cache = setup(10_000, 8, cfg);
        assert_eq!(cache.pinned_floor(), 1);
        cache.get_counter(9999).unwrap();
        assert_eq!(cache.stats().verify_levels, 1);
    }

    #[test]
    fn capacity_too_small_rejected() {
        let enclave = Arc::new(Enclave::new(CostModel::default(), 256 << 20));
        let tree = MerkleTree::new(100, 4, suite(), 1);
        let cfg = CacheConfig { capacity_bytes: 16, ..CacheConfig::default() };
        assert!(matches!(
            SecureCache::new(tree, enclave, cfg),
            Err(CacheError::CapacityTooSmall { .. })
        ));
    }

    #[test]
    fn epc_budget_respected() {
        let enclave = Arc::new(Enclave::new(CostModel::default(), 1 << 20));
        let tree = MerkleTree::new(100, 4, suite(), 1);
        let cfg = CacheConfig { capacity_bytes: 2 << 20, ..CacheConfig::default() };
        assert!(matches!(
            SecureCache::new(tree, enclave, cfg),
            Err(CacheError::EpcExhausted { .. })
        ));
    }

    #[test]
    fn drop_releases_epc() {
        let enclave = Arc::new(Enclave::new(CostModel::default(), 64 << 20));
        {
            let tree = MerkleTree::new(100, 4, suite(), 1);
            let cfg = CacheConfig { capacity_bytes: 1 << 20, ..CacheConfig::default() };
            let _cache = SecureCache::new(tree, Arc::clone(&enclave), cfg).unwrap();
            assert_eq!(enclave.epc_used(), 1 << 20);
        }
        assert_eq!(enclave.epc_used(), 0);
    }

    #[test]
    fn recovery_drain_dumps_cached_truth_and_empties_cache() {
        let mut cache = setup(4096, 8, CacheConfig { pinned_levels: 2, ..CacheConfig::default() });
        cache.update_counter(100, &[0xcd; 16]).unwrap(); // dirty cached leaf
        let (leaf, _) = cache.tree().locate_counter(100);
        // Attacker scribbles over the untrusted copy of the cached leaf
        // *and* an unrelated uncached leaf.
        cache.tree_mut_raw().node_mut_raw(leaf)[0] ^= 0xff;
        let (other, _) = cache.tree().locate_counter(4000);
        cache.tree_mut_raw().node_mut_raw(other)[0] ^= 0xff;

        let trusted: std::collections::HashSet<NodeId> =
            cache.recovery_drain().into_iter().collect();
        assert_eq!(cache.cached_entries(), 0);
        assert_eq!(cache.used_bytes(), 0);
        assert!(trusted.contains(&leaf), "dirty cached leaf must be in the trusted set");
        // The drain restored the cached leaf's bytes in untrusted memory.
        assert_eq!(cache.tree().counter_bytes(100), [0xcd; 16]);

        // Audit from the root + trusted set: the drained leaf survives,
        // the scribbled uncached leaf is condemned.
        let condemned = cache.tree().audit_leaves(&trusted);
        assert!(!condemned.contains(&leaf));
        assert!(condemned.contains(&other));
    }

    #[test]
    fn recovery_repin_restores_pinning_after_rebuild() {
        let mut cache =
            setup(10_000, 8, CacheConfig { pinned_levels: 3, ..CacheConfig::default() });
        let floor_before = cache.pinned_floor();
        cache.recovery_drain();
        assert_eq!(cache.pinned_floor(), cache.tree().height());
        cache.tree_mut_raw().rebuild();
        cache.recovery_repin();
        assert_eq!(cache.pinned_floor(), floor_before);
        // Cache serves correct counters again.
        let expected = cache.tree().counter_bytes(1234);
        assert_eq!(cache.get_counter(1234).unwrap(), expected);
    }

    #[test]
    fn tampering_inner_node_detected_on_cold_path() {
        let mut cache =
            setup(100_000, 8, CacheConfig { pinned_levels: 1, ..CacheConfig::default() });
        cache.flush();
        // Corrupt an uncached inner node.
        let inner = NodeId { level: 1, index: 7 };
        cache.tree_mut_raw().node_mut_raw(inner)[0] ^= 0xff;
        // A counter whose path crosses that node must fail.
        let idx = 7 * 8 * 8; // leaf index 7*8, counter under it
        assert!(cache.get_counter(idx as u64).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use aria_crypto::RealSuite;
    use aria_merkle::MerkleTree;
    use aria_sim::{CostModel, Enclave};
    use proptest::prelude::*;
    use std::collections::HashMap;
    use std::sync::Arc;

    #[derive(Debug, Clone)]
    enum Op {
        Get(u64),
        Update(u64, u8),
        Bump(u64),
        Flush,
    }

    fn op_strategy(counters: u64) -> impl Strategy<Value = Op> {
        prop_oneof![
            4 => (0..counters).prop_map(Op::Get),
            4 => (0..counters, any::<u8>()).prop_map(|(i, v)| Op::Update(i, v)),
            2 => (0..counters).prop_map(Op::Bump),
            1 => Just(Op::Flush),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The Secure Cache behaves exactly like a plain map of counters
        /// under any op sequence, for both policies and tight capacities,
        /// and the untrusted tree verifies after a final flush.
        #[test]
        fn cache_linearizes_against_model(
            ops in proptest::collection::vec(op_strategy(600), 1..250),
            fifo in any::<bool>(),
            cap_entries in 2usize..20,
        ) {
            let arity = 4usize;
            let node = arity * 16 + ENTRY_META_BYTES;
            let cfg = CacheConfig {
                capacity_bytes: cap_entries * node,
                pinned_levels: 1,
                policy: if fifo { EvictionPolicy::Fifo } else { EvictionPolicy::Lru },
                swap_mode: SwapMode::Always,
                ..CacheConfig::default()
            };
            let enclave = Arc::new(Enclave::new(CostModel::default(), 256 << 20));
            let tree = MerkleTree::new(600, arity, Arc::new(RealSuite::from_master(&[5u8; 16])), 3);
            let mut model: HashMap<u64, [u8; 16]> =
                (0..600).map(|i| (i, tree.counter_bytes(i))).collect();
            let mut cache = SecureCache::new(tree, enclave, cfg).unwrap();

            for op in ops {
                match op {
                    Op::Get(i) => {
                        prop_assert_eq!(cache.get_counter(i).unwrap(), model[&i]);
                    }
                    Op::Update(i, v) => {
                        cache.update_counter(i, &[v; 16]).unwrap();
                        model.insert(i, [v; 16]);
                    }
                    Op::Bump(i) => {
                        let mut expect = model[&i];
                        aria_crypto::increment_counter(&mut expect);
                        prop_assert_eq!(cache.bump_counter(i).unwrap(), expect);
                        model.insert(i, expect);
                    }
                    Op::Flush => cache.flush(),
                }
                prop_assert!(cache.used_bytes() <= cache.capacity_bytes());
            }

            cache.flush();
            for (i, v) in &model {
                prop_assert_eq!(&cache.tree().counter_bytes(*i), v);
                let (leaf, _) = cache.tree().locate_counter(*i);
                prop_assert_eq!(cache.tree().verify_path_plain(leaf), aria_merkle::Verification::Ok);
            }
        }
    }
}
