//! The Secure Cache (paper §IV): a software-managed, fine-grained EPC
//! cache of Merkle-tree nodes.
//!
//! Instead of letting SGX hardware page 4 KB mixtures of hot and cold
//! metadata, Secure Cache tracks *individual Merkle-tree nodes*:
//!
//! * a **hit** on a leaf node yields the trusted counter with no Merkle
//!   verification at all — KV-pair-granularity protection;
//! * a **miss** verifies the node bottom-up, stopping at the *first cached
//!   ancestor* (cached nodes are protected by SGX and act as roots of
//!   sub-trees), then caches the requested node;
//! * **eviction** of a dirty node writes its bytes back to untrusted
//!   memory and publishes its fresh MAC into the first cached (or
//!   untrusted, en route) ancestor so that the newest state of every leaf
//!   is always anchored in the EPC;
//! * the top-K levels are **pinned** (§IV-E), bounding worst-case
//!   verification depth at `h - k - 1`;
//! * when the observed hit ratio drops below a threshold the cache
//!   **stops swapping** (§IV-E) and falls back to pinned-levels-only
//!   verification, avoiding miss-penalty thrash under uniform workloads.
//!
//! Every operation charges simulated cycles to the shared [`Enclave`]:
//! node verification pays an untrusted read, a copy into the EPC and a
//! CMAC per level walked; hits pay a map lookup plus (for LRU only) the
//! recency-update tax; write-backs pay untrusted writes — plus a CTR
//! encryption when the "swap out without encryption" optimization is
//! disabled, modelling what hardware EWB paging would force.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use aria_merkle::{MerkleTree, NodeId, SLOT};
use aria_sim::Enclave;
use aria_telemetry::{CacheTelemetry, MerkleTelemetry};

use crate::config::{CacheConfig, EvictionPolicy, SwapMode, ENTRY_META_BYTES};

/// Integrity violation surfaced during verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityViolation {
    /// The node whose MAC failed to verify.
    pub node: NodeId,
}

impl std::fmt::Display for IntegrityViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Merkle integrity violation at level {} index {}",
            self.node.level, self.node.index
        )
    }
}

impl std::error::Error for IntegrityViolation {}

/// Errors constructing a Secure Cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// The enclave could not reserve the requested capacity.
    EpcExhausted {
        /// Requested capacity in bytes.
        requested: usize,
        /// EPC bytes still available.
        available: usize,
    },
    /// Capacity cannot hold even one swappable entry.
    CapacityTooSmall {
        /// Requested capacity in bytes.
        capacity: usize,
        /// Minimum required for this tree geometry.
        required: usize,
    },
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::EpcExhausted { requested, available } => {
                write!(f, "EPC exhausted: secure cache wants {requested} bytes, {available} free")
            }
            CacheError::CapacityTooSmall { capacity, required } => {
                write!(f, "secure cache capacity {capacity} below minimum {required}")
            }
        }
    }
}

impl std::error::Error for CacheError {}

/// Monotonic Secure Cache statistics.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses served from a cached node.
    pub hits: u64,
    /// Accesses that required verification.
    pub misses: u64,
    /// Swappable entries inserted.
    pub inserts: u64,
    /// Victims evicted.
    pub evictions: u64,
    /// Victim write-backs to untrusted memory.
    pub writebacks: u64,
    /// Clean victims discarded without write-back (§IV-C).
    pub clean_discards: u64,
    /// Total Merkle levels walked during verifications.
    pub verify_levels: u64,
    /// MAC propagations performed on eviction/update paths.
    pub propagations: u64,
}

impl CacheStats {
    /// Lifetime hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    data: Box<[u8]>,
    dirty: bool,
    pinned: bool,
    stamp: u64,
}

/// The Secure Cache over one Merkle tree.
pub struct SecureCache {
    tree: MerkleTree,
    enclave: Arc<Enclave>,
    cfg: CacheConfig,
    entries: HashMap<NodeId, Entry>,
    queue: VecDeque<(NodeId, u64)>,
    tick: u64,
    /// EPC bytes consumed (node data + per-entry metadata, pinned included).
    used_bytes: usize,
    entry_bytes: usize,
    /// Lowest pinned level (h = nothing pinned besides the enclave root).
    pinned_floor: u32,
    swapping: bool,
    window_hits: u64,
    window_accesses: u64,
    /// Consecutive windows below the stop-swap threshold.
    low_windows: u32,
    stats: CacheStats,
    /// Optional telemetry sinks (untrusted state; observability only).
    tele: Option<Arc<CacheTelemetry>>,
    tele_merkle: Option<Arc<MerkleTelemetry>>,
}

impl SecureCache {
    /// Build a Secure Cache over `tree`, reserving `cfg.capacity_bytes` of
    /// EPC from `enclave` and pinning the configured top levels.
    pub fn new(
        tree: MerkleTree,
        enclave: Arc<Enclave>,
        cfg: CacheConfig,
    ) -> Result<Self, CacheError> {
        let entry_bytes = tree.node_size() + ENTRY_META_BYTES;
        let min_capacity = entry_bytes * 2;
        if cfg.capacity_bytes < min_capacity {
            return Err(CacheError::CapacityTooSmall {
                capacity: cfg.capacity_bytes,
                required: min_capacity,
            });
        }
        enclave.epc_alloc(cfg.capacity_bytes).map_err(|e| CacheError::EpcExhausted {
            requested: cfg.capacity_bytes,
            available: e.available,
        })?;

        let mut cache = SecureCache {
            pinned_floor: tree.height(),
            swapping: !matches!(cfg.swap_mode, SwapMode::Never),
            tree,
            enclave,
            entries: HashMap::new(),
            queue: VecDeque::new(),
            tick: 0,
            used_bytes: 0,
            entry_bytes,
            window_hits: 0,
            window_accesses: 0,
            low_windows: 0,
            stats: CacheStats::default(),
            tele: None,
            tele_merkle: None,
            cfg,
        };

        // Pin the requested top levels, highest first, clamped to what
        // fits: pinning must leave room for at least one swappable entry.
        let want = cache.cfg.pinned_levels.min(cache.tree.height().saturating_sub(1));
        for k in 0..want {
            let level = cache.tree.height() - 1 - k;
            if !cache.try_pin_level(level) {
                break;
            }
        }

        // In Never mode, immediately extend pinning as far as capacity
        // allows (the stop-swap configuration).
        if matches!(cache.cfg.swap_mode, SwapMode::Never) {
            cache.extend_pinning();
        }
        Ok(cache)
    }

    /// Attach telemetry sinks: `cache` records this cache's activity and
    /// `merkle` is threaded through to the underlying tree (hash ops) and
    /// the verification walk (verified nodes). Records a swap-on
    /// transition if swapping is currently enabled, so the transition
    /// counters reflect the state the observer started from.
    pub fn set_telemetry(&mut self, cache: Arc<CacheTelemetry>, merkle: Arc<MerkleTelemetry>) {
        if self.swapping {
            cache.swap_starts.inc();
        }
        self.tree.set_telemetry(Arc::clone(&merkle));
        self.tele = Some(cache);
        self.tele_merkle = Some(merkle);
    }

    fn level_pin_cost(&self, level: u32) -> usize {
        self.tree.nodes_in_level(level) as usize * self.entry_bytes
    }

    /// Pin an entire level if it fits (leaving one swappable slot). The
    /// tree is trusted at pin time: levels are pinned either at secure
    /// initialization or after verifying each node during stop-swap.
    fn try_pin_level(&mut self, level: u32) -> bool {
        if level < self.pinned_floor && level + 1 != self.pinned_floor {
            // Pin strictly contiguously from the top.
            return false;
        }
        if level >= self.pinned_floor {
            return true; // already pinned
        }
        let cost = self.level_pin_cost(level);
        if self.used_bytes + cost + self.entry_bytes > self.cfg.capacity_bytes {
            return false;
        }
        for index in 0..self.tree.nodes_in_level(level) {
            let id = NodeId { level, index };
            let data: Box<[u8]> = self.tree.node(id).into();
            self.entries.insert(id, Entry { data, dirty: false, pinned: true, stamp: 0 });
        }
        self.used_bytes += cost;
        self.pinned_floor = level;
        true
    }

    /// Extend pinning downward (never into the leaf level) as far as the
    /// capacity allows; used when swapping stops.
    fn extend_pinning(&mut self) {
        while self.pinned_floor > 1 {
            let next = self.pinned_floor - 1;
            // Verify the level against the already-anchored upper levels
            // before trusting it into the EPC.
            let cost = self.level_pin_cost(next);
            if self.used_bytes + cost + self.entry_bytes > self.cfg.capacity_bytes {
                break;
            }
            let nodes = self.tree.nodes_in_level(next);
            let mut ok = true;
            for index in 0..nodes {
                let id = NodeId { level: next, index };
                self.enclave.access_untrusted(self.tree.node_size());
                self.enclave.charge_mac(self.tree.node_size());
                if self.verify_against_parent(id, &self.tree.mac_of(id)).is_err() {
                    ok = false;
                    break;
                }
            }
            if !ok {
                break;
            }
            if !self.try_pin_level(next) {
                break;
            }
        }
    }

    /// Compare a node's MAC against its authoritative parent slot (cached
    /// copy if cached, untrusted bytes otherwise; enclave root for the top
    /// node).
    fn verify_against_parent(
        &self,
        id: NodeId,
        mac: &[u8; 16],
    ) -> Result<bool, IntegrityViolation> {
        // Returns Ok(true) if the anchor was *trusted* (cached parent or
        // root), Ok(false) if it matched an untrusted parent (caller must
        // keep walking).
        match self.tree.parent(id) {
            None => {
                if *mac != self.tree.root() {
                    return Err(IntegrityViolation { node: id });
                }
                Ok(true)
            }
            Some(parent) => {
                let slot = self.tree.slot_in_parent(id);
                if let Some(entry) = self.entries.get(&parent) {
                    self.enclave.access_epc(SLOT);
                    let stored = &entry.data[slot * SLOT..(slot + 1) * SLOT];
                    if stored != mac {
                        return Err(IntegrityViolation { node: id });
                    }
                    Ok(true)
                } else {
                    let stored = self.tree.stored_child_mac(parent, slot);
                    if stored != *mac {
                        return Err(IntegrityViolation { node: id });
                    }
                    Ok(false)
                }
            }
        }
    }

    /// Verify the chain from `id` up to the first trusted anchor and
    /// return `id`'s untrusted bytes. Charges one untrusted read, one EPC
    /// copy and one CMAC per level walked.
    fn verify_and_fetch(&mut self, id: NodeId) -> Result<Box<[u8]>, IntegrityViolation> {
        let mut result: Option<Box<[u8]>> = None;
        let mut cur = id;
        let mut depth = 0u64;
        loop {
            self.stats.verify_levels += 1;
            depth += 1;
            let node_size = self.tree.node_size();
            // Read from untrusted memory, copy into the enclave, MAC it.
            self.enclave.access_untrusted(node_size);
            self.enclave.access_epc(node_size);
            self.enclave.charge_mac(node_size);
            let mac = self.tree.mac_of(cur);
            if result.is_none() {
                result = Some(self.tree.node(cur).into());
            }
            let anchored = self.verify_against_parent(cur, &mac)?;
            if let Some(t) = &self.tele_merkle {
                t.verified_nodes.inc();
            }
            if anchored {
                if let Some(t) = &self.tele {
                    t.verify_depth.observe(depth);
                }
                return Ok(result.unwrap());
            }
            cur = self.tree.parent(cur).expect("untrusted anchor implies a parent");
        }
    }

    /// Publish `mac` as the stored child-MAC of `node`, walking up through
    /// untrusted ancestors until a cached ancestor (or the root) absorbs
    /// the change. Keeps the invariant that the newest state of every leaf
    /// is anchored in the EPC.
    fn propagate_mac_up(&mut self, mut node: NodeId, mut mac: [u8; 16]) {
        loop {
            self.stats.propagations += 1;
            match self.tree.parent(node) {
                None => {
                    self.tree.set_root(mac);
                    return;
                }
                Some(parent) => {
                    let slot = self.tree.slot_in_parent(node);
                    if let Some(entry) = self.entries.get_mut(&parent) {
                        self.enclave.access_epc(SLOT);
                        entry.data[slot * SLOT..(slot + 1) * SLOT].copy_from_slice(&mac);
                        entry.dirty = true;
                        return;
                    }
                    // Parent uncached: update its untrusted bytes and keep
                    // climbing. (The paper swaps the parent into the cache
                    // instead; the MAC-computation count per level is
                    // identical and this variant cannot recurse into
                    // further evictions.)
                    self.enclave.access_untrusted(SLOT);
                    let node_size = self.tree.node_size();
                    let mut bytes = self.tree.node(parent).to_vec();
                    bytes[slot * SLOT..(slot + 1) * SLOT].copy_from_slice(&mac);
                    self.tree.write_node(parent, &bytes);
                    self.enclave.access_untrusted(node_size);
                    self.enclave.charge_mac(node_size);
                    mac = self.tree.mac_of(parent);
                    node = parent;
                }
            }
        }
    }

    fn evict_one(&mut self) -> bool {
        while let Some((id, stamp)) = self.queue.pop_front() {
            let stale = match self.entries.get(&id) {
                Some(e) => e.pinned || e.stamp != stamp,
                None => true,
            };
            if stale {
                continue;
            }
            let entry = self.entries.remove(&id).expect("checked above");
            self.used_bytes -= self.entry_bytes;
            self.stats.evictions += 1;
            if let Some(t) = &self.tele {
                t.evictions.inc();
            }
            let node_size = self.tree.node_size();
            if entry.dirty {
                // Write back (plaintext unless the semantic optimization
                // is disabled, in which case pay the encryption the
                // hardware path would force) and publish the fresh MAC.
                if !self.cfg.swap_without_encryption {
                    self.enclave.charge_crypt(node_size);
                }
                self.enclave.access_untrusted(node_size);
                self.tree.write_node(id, &entry.data);
                self.stats.writebacks += 1;
                if let Some(t) = &self.tele {
                    t.writebacks.inc();
                    t.swap_bytes_out.add(node_size as u64);
                }
                self.enclave.charge_mac(node_size);
                let mac = self.tree.mac_of_bytes(&entry.data);
                self.propagate_mac_up(id, mac);
            } else if self.cfg.skip_clean_writeback {
                // Clean: untrusted copy already matches; discard.
                self.stats.clean_discards += 1;
                if let Some(t) = &self.tele {
                    t.clean_discards.inc();
                }
            } else {
                // Model EWB-style forced write-back of clean pages.
                if !self.cfg.swap_without_encryption {
                    self.enclave.charge_crypt(node_size);
                }
                self.enclave.access_untrusted(node_size);
                self.tree.write_node(id, &entry.data);
                self.stats.writebacks += 1;
                if let Some(t) = &self.tele {
                    t.writebacks.inc();
                    t.swap_bytes_out.add(node_size as u64);
                }
            }
            return true;
        }
        false
    }

    fn insert_entry(&mut self, id: NodeId, data: Box<[u8]>, dirty: bool) {
        while self.used_bytes + self.entry_bytes > self.cfg.capacity_bytes {
            if !self.evict_one() {
                return; // nothing evictable; serve uncached
            }
        }
        self.tick += 1;
        let stamp = self.tick;
        self.enclave.access_epc(self.tree.node_size());
        self.entries.insert(id, Entry { data, dirty, pinned: false, stamp });
        self.queue.push_back((id, stamp));
        self.used_bytes += self.entry_bytes;
        self.stats.inserts += 1;
        if let Some(t) = &self.tele {
            t.inserts.inc();
            t.swap_bytes_in.add(self.tree.node_size() as u64);
        }
    }

    fn record_access(&mut self, hit: bool) {
        self.window_accesses += 1;
        if hit {
            self.window_hits += 1;
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        if let Some(t) = &self.tele {
            if hit {
                t.hits.inc();
            } else {
                t.misses.inc();
            }
        }
        if matches!(self.cfg.swap_mode, SwapMode::Auto)
            && self.swapping
            && self.window_accesses >= self.cfg.stop_swap_window
        {
            let ratio = self.window_hits as f64 / self.window_accesses as f64;
            if ratio < self.cfg.stop_swap_threshold {
                // One cold window is normal after a working-set shift;
                // only a sustained low hit ratio (a genuinely uniform
                // access pattern) disables swapping.
                self.low_windows += 1;
                if self.low_windows >= 3 {
                    self.stop_swapping();
                }
            } else {
                self.low_windows = 0;
            }
            self.window_hits = 0;
            self.window_accesses = 0;
        }
    }

    /// Stop swapping: flush swappable entries and extend level pinning as
    /// far as capacity allows (§IV-E "Stopping Swap").
    fn stop_swapping(&mut self) {
        self.swapping = false;
        if let Some(t) = &self.tele {
            t.swap_stops.inc();
        }
        // Evict everything swappable (dirty state is propagated).
        while self.evict_one() {}
        self.queue.clear();
        self.extend_pinning();
    }

    fn touch_policy(&mut self, id: NodeId) {
        if self.cfg.policy == EvictionPolicy::Lru {
            // The recency update is real work in EPC memory — the "hit
            // penalty" Figure 12 measures.
            self.enclave.charge(self.enclave.cost().lru_hit_update);
            if let Some(entry) = self.entries.get_mut(&id) {
                if !entry.pinned {
                    self.tick += 1;
                    entry.stamp = self.tick;
                    self.queue.push_back((id, self.tick));
                }
            }
        }
    }

    // --- public API --------------------------------------------------------

    /// Fetch the trusted value of counter `idx`, verifying as needed.
    pub fn get_counter(&mut self, idx: u64) -> Result<[u8; SLOT], IntegrityViolation> {
        let (leaf, slot) = self.tree.locate_counter(idx);
        self.enclave.charge(self.enclave.cost().cache_lookup);
        if let Some(entry) = self.entries.get(&leaf) {
            self.enclave.access_epc(SLOT);
            let mut ctr = [0u8; SLOT];
            ctr.copy_from_slice(&entry.data[slot * SLOT..(slot + 1) * SLOT]);
            self.touch_policy(leaf);
            self.record_access(true);
            return Ok(ctr);
        }
        let bytes = match self.verify_and_fetch(leaf) {
            Ok(b) => b,
            Err(e) => {
                self.record_access(false);
                return Err(e);
            }
        };
        let mut ctr = [0u8; SLOT];
        ctr.copy_from_slice(&bytes[slot * SLOT..(slot + 1) * SLOT]);
        if self.swapping {
            self.insert_entry(leaf, bytes, false);
        }
        self.record_access(false);
        Ok(ctr)
    }

    /// Overwrite counter `idx` with `value`, maintaining the EPC anchor
    /// invariant.
    pub fn update_counter(
        &mut self,
        idx: u64,
        value: &[u8; SLOT],
    ) -> Result<(), IntegrityViolation> {
        let (leaf, slot) = self.tree.locate_counter(idx);
        self.enclave.charge(self.enclave.cost().cache_lookup);
        if self.entries.contains_key(&leaf) {
            self.enclave.access_epc(SLOT);
            let entry = self.entries.get_mut(&leaf).expect("checked");
            entry.data[slot * SLOT..(slot + 1) * SLOT].copy_from_slice(value);
            entry.dirty = true;
            // A pinned dirty node is never evicted; it *is* the EPC anchor.
            self.touch_policy(leaf);
            self.record_access(true);
            return Ok(());
        }
        let bytes = match self.verify_and_fetch(leaf) {
            Ok(b) => b,
            Err(e) => {
                self.record_access(false);
                return Err(e);
            }
        };
        if self.swapping {
            let mut data = bytes;
            data[slot * SLOT..(slot + 1) * SLOT].copy_from_slice(value);
            self.insert_entry(leaf, data, true);
            self.record_access(false);
            return Ok(());
        }
        // No swapping: update untrusted leaf in place and propagate the
        // MAC up to the pinned anchor.
        self.enclave.access_untrusted(SLOT);
        let mut data = bytes.to_vec();
        data[slot * SLOT..(slot + 1) * SLOT].copy_from_slice(value);
        self.tree.write_node(leaf, &data);
        self.enclave.charge_mac(self.tree.node_size());
        let mac = self.tree.mac_of_bytes(&data);
        self.propagate_mac_up(leaf, mac);
        self.record_access(false);
        Ok(())
    }

    /// Read-increment-write a counter, returning the **new** value. This
    /// is the Put-path primitive: the counter is bumped before every
    /// re-encryption so the CTR keystream never repeats.
    pub fn bump_counter(&mut self, idx: u64) -> Result<[u8; SLOT], IntegrityViolation> {
        let mut ctr = self.get_counter(idx)?;
        aria_crypto::increment_counter(&mut ctr);
        // The leaf is cached after get_counter when swapping; the update
        // below is then a pure cache write. Do not double-count the access
        // in the hit-ratio window: account only the get above.
        let (leaf, slot) = self.tree.locate_counter(idx);
        if self.entries.contains_key(&leaf) {
            self.enclave.access_epc(SLOT);
            let entry = self.entries.get_mut(&leaf).expect("checked");
            entry.data[slot * SLOT..(slot + 1) * SLOT].copy_from_slice(&ctr);
            entry.dirty = true;
        } else {
            // Stop-swap path: write untrusted and propagate.
            self.enclave.access_untrusted(SLOT);
            let mut data = self.tree.node(leaf).to_vec();
            data[slot * SLOT..(slot + 1) * SLOT].copy_from_slice(&ctr);
            self.tree.write_node(leaf, &data);
            self.enclave.charge_mac(self.tree.node_size());
            let mac = self.tree.mac_of_bytes(&data);
            self.propagate_mac_up(leaf, mac);
        }
        Ok(ctr)
    }

    /// Flush every swappable entry (write-backs + propagation), leaving
    /// only pinned levels cached. After a flush the untrusted tree plus
    /// root is fully self-consistent except under pinned dirty nodes.
    pub fn flush(&mut self) {
        while self.evict_one() {}
        self.queue.clear();
        // Also publish pinned dirty nodes so the untrusted tree + root is
        // globally consistent (used by tests and by tenant shutdown).
        let mut pinned_dirty: Vec<NodeId> =
            self.entries.iter().filter(|(_, e)| e.pinned && e.dirty).map(|(id, _)| *id).collect();
        // Lowest levels first so parents absorb child MACs before being
        // written back themselves.
        pinned_dirty.sort();
        for id in pinned_dirty {
            let data = {
                let entry = self.entries.get_mut(&id).expect("pinned entry");
                entry.dirty = false;
                entry.data.clone()
            };
            self.enclave.access_untrusted(self.tree.node_size());
            self.tree.write_node(id, &data);
            self.enclave.charge_mac(self.tree.node_size());
            let mac = self.tree.mac_of_bytes(&data);
            // Propagation may re-dirty an upper pinned level; the sort
            // guarantees we visit it afterwards and clean it again.
            self.propagate_mac_up(id, mac);
            if let Some(e) = self.entries.get_mut(&id) {
                e.dirty = false;
            }
        }
        // Clear any re-dirtied flags bottom-up one more time.
        let redirty: Vec<NodeId> =
            self.entries.iter().filter(|(_, e)| e.pinned && e.dirty).map(|(id, _)| *id).collect();
        if !redirty.is_empty() {
            self.flush();
        }
    }

    // --- recovery -----------------------------------------------------------

    /// Dump every cached node's EPC bytes into untrusted memory **without**
    /// verification or MAC propagation, empty the cache, and return the
    /// ids of the dumped nodes.
    ///
    /// This is the first step of shard recovery after an integrity
    /// violation: the untrusted tree may be arbitrarily corrupt and
    /// possibly MAC-inconsistent with the enclave root, so normal
    /// flush/propagation (which verifies uncached ancestors) could fail.
    /// The returned set is exactly the nodes whose untrusted bytes now
    /// come from EPC-protected copies — ground truth the subsequent
    /// [`aria_merkle::MerkleTree::audit_leaves`] pass may trust besides
    /// the root itself. After the audit repairs and rebuilds the tree,
    /// call [`SecureCache::recovery_repin`] to restore level pinning.
    pub fn recovery_drain(&mut self) -> Vec<NodeId> {
        let node_size = self.tree.node_size();
        let entries = std::mem::take(&mut self.entries);
        let mut trusted: Vec<NodeId> = Vec::with_capacity(entries.len());
        for (id, entry) in entries {
            self.enclave.access_untrusted(node_size);
            self.tree.write_node(id, &entry.data);
            trusted.push(id);
        }
        self.queue.clear();
        self.used_bytes = 0;
        self.pinned_floor = self.tree.height();
        self.window_hits = 0;
        self.window_accesses = 0;
        self.low_windows = 0;
        trusted
    }

    /// Re-pin the configured top levels from the untrusted tree after a
    /// recovery rebuild. Only call this once the tree is globally
    /// self-consistent (the recovery pass just recomputed every inner
    /// node and the enclave root from the repaired leaves), because
    /// pinning copies untrusted bytes into the EPC trusting them.
    pub fn recovery_repin(&mut self) {
        let want = self.cfg.pinned_levels.min(self.tree.height().saturating_sub(1));
        for k in 0..want {
            let level = self.tree.height() - 1 - k;
            if !self.try_pin_level(level) {
                break;
            }
        }
        if !self.swapping {
            self.extend_pinning();
        }
    }

    // --- introspection ------------------------------------------------------

    /// Lifetime statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Whether the cache is currently swapping nodes.
    pub fn swapping(&self) -> bool {
        self.swapping
    }

    /// The lowest pinned level (`height()` if nothing is pinned).
    pub fn pinned_floor(&self) -> u32 {
        self.pinned_floor
    }

    /// EPC bytes currently used by entries and metadata.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Configured capacity.
    pub fn capacity_bytes(&self) -> usize {
        self.cfg.capacity_bytes
    }

    /// The underlying Merkle tree (untrusted state).
    pub fn tree(&self) -> &MerkleTree {
        &self.tree
    }

    /// Attacker-side mutable access to the untrusted tree.
    pub fn tree_mut_raw(&mut self) -> &mut MerkleTree {
        &mut self.tree
    }

    /// The enclave costs are charged to.
    pub fn enclave(&self) -> &Arc<Enclave> {
        &self.enclave
    }

    /// Number of cached entries (pinned + swappable).
    pub fn cached_entries(&self) -> usize {
        self.entries.len()
    }
}

impl Drop for SecureCache {
    fn drop(&mut self) {
        self.enclave.epc_free(self.cfg.capacity_bytes);
    }
}
