//! Configuration for the Secure Cache.

/// Replacement policy for swappable cache entries (§IV-E).
///
/// The paper finds FIFO superior for a large in-EPC cache: LRU's hit-path
/// recency update is itself a set of EPC memory operations (the "tax of
/// hits"), while FIFO touches no metadata on a hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// First-in first-out; no hit-path metadata update.
    Fifo,
    /// Least-recently-used; each hit pays a metadata-update charge.
    Lru,
}

/// When the cache swaps nodes in and out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapMode {
    /// Swap normally; disable swapping automatically when the measured hit
    /// ratio over a window falls below `stop_swap_threshold` (§IV-E
    /// "Stopping Swap").
    Auto,
    /// Always swap, never auto-stop.
    Always,
    /// Never swap: level-pinning only (the configuration Aria converges to
    /// under uniform workloads).
    Never,
}

/// Per-entry cache metadata overhead in EPC bytes (map slot, queue stamp,
/// dirty bit, node id). Small nodes make this overhead proportionally
/// larger — the space-utilization effect behind Figure 15.
pub const ENTRY_META_BYTES: usize = 48;

/// All Secure Cache tunables.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Total EPC bytes for Secure Cache contents, *including* pinned
    /// levels and per-entry metadata.
    pub capacity_bytes: usize,
    /// Replacement policy for swappable entries.
    pub policy: EvictionPolicy,
    /// Number of Merkle-tree levels, counted from the top (root end), to
    /// pin permanently in the EPC. The top node is always effectively
    /// anchored by the enclave root MAC; `pinned_levels = k` additionally
    /// pins levels `h-1 .. h-k`.
    pub pinned_levels: u32,
    /// Swap behaviour.
    pub swap_mode: SwapMode,
    /// Hit-ratio threshold below which `SwapMode::Auto` stops swapping
    /// (the paper uses 70%).
    pub stop_swap_threshold: f64,
    /// Number of accesses per hit-ratio evaluation window.
    pub stop_swap_window: u64,
    /// Semantic-aware optimization (§IV-C): swap out *without*
    /// encrypting the node (metadata needs integrity, not secrecy). When
    /// `false`, each write-back additionally pays the CTR cost the SGX
    /// hardware path (EWB) would.
    pub swap_without_encryption: bool,
    /// Semantic-aware optimization (§IV-C): discard clean victims without
    /// writing them back (hardware EWB cannot do this).
    pub skip_clean_writeback: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity_bytes: 64 << 20,
            policy: EvictionPolicy::Fifo,
            pinned_levels: 3,
            swap_mode: SwapMode::Auto,
            stop_swap_threshold: 0.70,
            stop_swap_window: 50_000,
            swap_without_encryption: true,
            skip_clean_writeback: true,
        }
    }
}

impl CacheConfig {
    /// The paper's full-optimization configuration with a given capacity.
    pub fn with_capacity(capacity_bytes: usize) -> Self {
        CacheConfig { capacity_bytes, ..CacheConfig::default() }
    }

    /// The `AriaBase`-style cache: LRU, no pinning, no semantic
    /// optimizations (Figure 12 ablation starting point).
    pub fn base(capacity_bytes: usize) -> Self {
        CacheConfig {
            capacity_bytes,
            policy: EvictionPolicy::Lru,
            pinned_levels: 0,
            swap_mode: SwapMode::Always,
            stop_swap_threshold: 0.0,
            stop_swap_window: u64::MAX,
            swap_without_encryption: false,
            skip_clean_writeback: false,
        }
    }
}
