//! Configuration for the Secure Cache.

use std::fmt;

/// Replacement policy for swappable cache entries (§IV-E).
///
/// The paper finds FIFO superior for a large in-EPC cache: LRU's hit-path
/// recency update is itself a set of EPC memory operations (the "tax of
/// hits"), while FIFO touches no metadata on a hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// First-in first-out; no hit-path metadata update.
    Fifo,
    /// Least-recently-used; each hit pays a metadata-update charge.
    Lru,
}

/// When the cache swaps nodes in and out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapMode {
    /// Swap normally; disable swapping automatically when the measured hit
    /// ratio over a window falls below `stop_swap_threshold` (§IV-E
    /// "Stopping Swap").
    Auto,
    /// Always swap, never auto-stop.
    Always,
    /// Never swap: level-pinning only (the configuration Aria converges to
    /// under uniform workloads).
    Never,
}

/// Per-entry cache metadata overhead in EPC bytes (map slot, queue stamp,
/// dirty bit, node id). Small nodes make this overhead proportionally
/// larger — the space-utilization effect behind Figure 15.
pub const ENTRY_META_BYTES: usize = 48;

/// All Secure Cache tunables.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Total EPC bytes for Secure Cache contents, *including* pinned
    /// levels and per-entry metadata.
    pub capacity_bytes: usize,
    /// Replacement policy for swappable entries.
    pub policy: EvictionPolicy,
    /// Number of Merkle-tree levels, counted from the top (root end), to
    /// pin permanently in the EPC. The top node is always effectively
    /// anchored by the enclave root MAC; `pinned_levels = k` additionally
    /// pins levels `h-1 .. h-k`.
    pub pinned_levels: u32,
    /// Swap behaviour.
    pub swap_mode: SwapMode,
    /// Hit-ratio threshold below which `SwapMode::Auto` stops swapping
    /// (the paper uses 70%).
    pub stop_swap_threshold: f64,
    /// Number of accesses per hit-ratio evaluation window.
    pub stop_swap_window: u64,
    /// Semantic-aware optimization (§IV-C): swap out *without*
    /// encrypting the node (metadata needs integrity, not secrecy). When
    /// `false`, each write-back additionally pays the CTR cost the SGX
    /// hardware path (EWB) would.
    pub swap_without_encryption: bool,
    /// Semantic-aware optimization (§IV-C): discard clean victims without
    /// writing them back (hardware EWB cannot do this).
    pub skip_clean_writeback: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity_bytes: 64 << 20,
            policy: EvictionPolicy::Fifo,
            pinned_levels: 3,
            swap_mode: SwapMode::Auto,
            stop_swap_threshold: 0.70,
            stop_swap_window: 50_000,
            swap_without_encryption: true,
            skip_clean_writeback: true,
        }
    }
}

/// Why a [`CacheConfigBuilder`] refused to produce a configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheConfigError {
    /// `capacity_bytes` was zero; the cache needs room for at least the
    /// pinned levels and one swappable entry.
    ZeroCapacity,
    /// `stop_swap_threshold` was outside `[0, 1]` (or not finite); it is
    /// compared against a hit *ratio*.
    ThresholdOutOfRange {
        /// The rejected value.
        threshold: f64,
    },
    /// `stop_swap_window` was zero; the hit ratio is evaluated once per
    /// window of accesses, so an empty window never triggers.
    ZeroWindow,
}

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheConfigError::ZeroCapacity => {
                write!(f, "cache capacity_bytes must be non-zero")
            }
            CacheConfigError::ThresholdOutOfRange { threshold } => {
                write!(f, "stop_swap_threshold {threshold} is not a ratio in [0, 1]")
            }
            CacheConfigError::ZeroWindow => {
                write!(f, "stop_swap_window must be non-zero")
            }
        }
    }
}

impl std::error::Error for CacheConfigError {}

/// Fallible builder for [`CacheConfig`].
///
/// Starts from [`CacheConfig::default`]; each setter overrides one field
/// and [`build`](CacheConfigBuilder::build) validates the combination.
/// Invariants that need tree or enclave context (pinned levels vs. tree
/// height, capacity vs. EPC budget) are checked by the store-level
/// builder, which knows the geometry.
#[derive(Debug, Clone)]
pub struct CacheConfigBuilder {
    cfg: CacheConfig,
}

impl CacheConfigBuilder {
    /// Set the total EPC byte budget of the cache.
    pub fn capacity_bytes(mut self, capacity_bytes: usize) -> Self {
        self.cfg.capacity_bytes = capacity_bytes;
        self
    }

    /// Set the replacement policy.
    pub fn policy(mut self, policy: EvictionPolicy) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Set how many top Merkle levels to pin in the EPC.
    pub fn pinned_levels(mut self, pinned_levels: u32) -> Self {
        self.cfg.pinned_levels = pinned_levels;
        self
    }

    /// Set the swap behaviour.
    pub fn swap_mode(mut self, swap_mode: SwapMode) -> Self {
        self.cfg.swap_mode = swap_mode;
        self
    }

    /// Set the auto-stop hit-ratio threshold.
    pub fn stop_swap_threshold(mut self, threshold: f64) -> Self {
        self.cfg.stop_swap_threshold = threshold;
        self
    }

    /// Set the accesses per hit-ratio evaluation window.
    pub fn stop_swap_window(mut self, window: u64) -> Self {
        self.cfg.stop_swap_window = window;
        self
    }

    /// Toggle the swap-without-encryption optimization.
    pub fn swap_without_encryption(mut self, enabled: bool) -> Self {
        self.cfg.swap_without_encryption = enabled;
        self
    }

    /// Toggle the skip-clean-writeback optimization.
    pub fn skip_clean_writeback(mut self, enabled: bool) -> Self {
        self.cfg.skip_clean_writeback = enabled;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<CacheConfig, CacheConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

impl CacheConfig {
    /// A fallible builder starting from the default configuration.
    pub fn builder() -> CacheConfigBuilder {
        CacheConfigBuilder { cfg: CacheConfig::default() }
    }

    /// Check the invariants the builder enforces. Exposed so store-level
    /// validation can re-check a hand-constructed `CacheConfig` too.
    pub fn validate(&self) -> Result<(), CacheConfigError> {
        if self.capacity_bytes == 0 {
            return Err(CacheConfigError::ZeroCapacity);
        }
        if !self.stop_swap_threshold.is_finite() || !(0.0..=1.0).contains(&self.stop_swap_threshold)
        {
            return Err(CacheConfigError::ThresholdOutOfRange {
                threshold: self.stop_swap_threshold,
            });
        }
        if self.stop_swap_window == 0 {
            return Err(CacheConfigError::ZeroWindow);
        }
        Ok(())
    }

    /// The paper's full-optimization configuration with a given capacity.
    pub fn with_capacity(capacity_bytes: usize) -> Self {
        CacheConfig { capacity_bytes, ..CacheConfig::default() }
    }

    /// The `AriaBase`-style cache: LRU, no pinning, no semantic
    /// optimizations (Figure 12 ablation starting point).
    pub fn base(capacity_bytes: usize) -> Self {
        CacheConfig {
            capacity_bytes,
            policy: EvictionPolicy::Lru,
            pinned_levels: 0,
            swap_mode: SwapMode::Always,
            stop_swap_threshold: 0.0,
            stop_swap_window: u64::MAX,
            swap_without_encryption: false,
            skip_clean_writeback: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accepts_defaults() {
        let cfg = CacheConfig::builder().build().unwrap();
        assert_eq!(cfg.capacity_bytes, CacheConfig::default().capacity_bytes);
    }

    #[test]
    fn builder_applies_overrides() {
        let cfg = CacheConfig::builder()
            .capacity_bytes(1 << 20)
            .policy(EvictionPolicy::Lru)
            .pinned_levels(1)
            .swap_mode(SwapMode::Never)
            .stop_swap_threshold(0.5)
            .stop_swap_window(100)
            .swap_without_encryption(false)
            .skip_clean_writeback(false)
            .build()
            .unwrap();
        assert_eq!(cfg.capacity_bytes, 1 << 20);
        assert_eq!(cfg.policy, EvictionPolicy::Lru);
        assert_eq!(cfg.pinned_levels, 1);
        assert_eq!(cfg.swap_mode, SwapMode::Never);
        assert!(!cfg.swap_without_encryption);
    }

    #[test]
    fn builder_rejects_zero_capacity() {
        let err = CacheConfig::builder().capacity_bytes(0).build().unwrap_err();
        assert_eq!(err, CacheConfigError::ZeroCapacity);
    }

    #[test]
    fn builder_rejects_bad_threshold() {
        for t in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let err = CacheConfig::builder().stop_swap_threshold(t).build().unwrap_err();
            assert!(matches!(err, CacheConfigError::ThresholdOutOfRange { .. }), "{t}");
        }
    }

    #[test]
    fn builder_rejects_zero_window() {
        let err = CacheConfig::builder().stop_swap_window(0).build().unwrap_err();
        assert_eq!(err, CacheConfigError::ZeroWindow);
    }

    #[test]
    fn presets_still_validate() {
        CacheConfig::default().validate().unwrap();
        CacheConfig::with_capacity(8 << 20).validate().unwrap();
        CacheConfig::base(8 << 20).validate().unwrap();
    }
}
