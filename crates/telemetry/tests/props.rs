//! Property tests for the metrics core: histograms observed from many
//! threads must merge losslessly, and snapshot/delta must be exact
//! inverses (`earlier.merge(later.delta(earlier)) == later`).
//!
//! Every assertion is gated on [`aria_telemetry::enabled`] so the suite
//! also passes under `--features telemetry-off`, where recorders are
//! no-ops and every snapshot is empty.

use std::sync::Arc;
use std::thread;

use aria_telemetry::{bucket_of, HistSnapshot, Histogram, BUCKETS};
use proptest::prelude::*;

// Values stay ≤ 2^40 so no 256-element multiset can wrap the u64 sum:
// the histogram records durations/sizes, not arbitrary integers, and
// its sum wraps (relaxed fetch_add) rather than saturating.

/// The snapshot a sequence of observations must produce.
fn expected(values: &[u64]) -> HistSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.observe(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// N threads hammering one shared histogram lose nothing: the final
    /// snapshot has exactly the per-bucket counts and sum of the whole
    /// multiset, regardless of interleaving.
    #[test]
    fn concurrent_observes_merge_losslessly(
        values in collection::vec(0u64..1 << 40, 1..256),
        threads in 2usize..6,
    ) {
        let hist = Arc::new(Histogram::new());
        let chunks: Vec<Vec<u64>> = (0..threads)
            .map(|t| values.iter().copied().skip(t).step_by(threads).collect())
            .collect();
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let hist = Arc::clone(&hist);
                thread::spawn(move || {
                    for v in chunk {
                        hist.observe(v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("observer thread");
        }

        if aria_telemetry::enabled() {
            let snap = hist.snapshot();
            let want = expected(&values);
            prop_assert_eq!(&snap.buckets[..], &want.buckets[..]);
            prop_assert_eq!(snap.sum, want.sum);
            prop_assert_eq!(snap.count(), values.len() as u64);
            // Sanity: the bucket function we asserted against is the
            // one the histogram uses.
            for &v in &values {
                prop_assert!(bucket_of(v) < BUCKETS);
            }
        } else {
            prop_assert_eq!(hist.snapshot().count(), 0);
        }
    }

    /// Snapshots are monotone (later ⊇ earlier bucket-wise) and
    /// `delta` is exact: it equals the histogram of the second batch
    /// alone, and merging it back onto the earlier snapshot
    /// reconstructs the later one.
    #[test]
    fn snapshot_delta_is_monotone_and_exact(
        first in collection::vec(0u64..1 << 40, 0..128),
        second in collection::vec(0u64..1 << 40, 0..128),
    ) {
        let hist = Histogram::new();
        for &v in &first {
            hist.observe(v);
        }
        let s1 = hist.snapshot();
        for &v in &second {
            hist.observe(v);
        }
        let s2 = hist.snapshot();

        for (a, b) in s1.buckets.iter().zip(&s2.buckets) {
            prop_assert!(b >= a, "bucket count regressed: {b} < {a}");
        }
        prop_assert!(s2.sum >= s1.sum);
        prop_assert!(s2.count() >= s1.count());

        let d = s2.delta(&s1);
        if aria_telemetry::enabled() {
            let want = expected(&second);
            prop_assert_eq!(&d.buckets[..], &want.buckets[..]);
            prop_assert_eq!(d.sum, want.sum);
        }
        let mut rebuilt = s1.clone();
        rebuilt.merge(&d);
        prop_assert_eq!(&rebuilt.buckets[..], &s2.buckets[..]);
        prop_assert_eq!(rebuilt.sum, s2.sum);
    }
}
