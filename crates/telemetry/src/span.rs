//! End-to-end request spans: per-stage monotonic timestamps recorded
//! into per-shard lock-free ring buffers.
//!
//! A request that carries a *sampled* trace context (the v5 wire
//! trailer) gets one [`SpanCell`] allocated at decode time. Every stage
//! the request passes — decode, admission verdict, shard-queue
//! enqueue/dequeue, execute, encode, flush — is one relaxed atomic
//! store of [`clock_nanos`] into the cell; unsampled requests never
//! allocate a cell, so their cost is a branch on an empty `Option`.
//! When the response is flushed the net layer folds the cell into a
//! plain [`Span`] and publishes it into the owning shard's
//! [`TraceRing`], a fixed-capacity multi-writer ring readable without
//! consuming (cursors are reader-side), so the `TRACE` opcode, the
//! flight recorder, and `ariatrace` can all stream the same spans.
//!
//! Like every other telemetry structure, spans are **untrusted state**:
//! they live in ordinary host memory, are not MAC-protected, and are
//! never consulted by verification or admission logic (DESIGN.md §17).

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::metrics::{Counter, Histogram};

/// Nanoseconds on the process-wide monotonic clock (anchored at the
/// first call). All span stamps share this clock, so cross-thread stage
/// deltas are directly comparable; 0 is reserved for "not stamped".
pub fn clock_nanos() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    let anchor = *ANCHOR.get_or_init(Instant::now);
    (Instant::now().duration_since(anchor).as_nanos() as u64).max(1)
}

/// Span stage indexes, in causal order along the request path.
pub mod stage {
    /// Frame fully decoded off the connection's read buffer.
    pub const DECODE: usize = 0;
    /// Admission verdict reached (admit or shed).
    pub const ADMIT: usize = 1;
    /// Ops handed to the shard worker's queue.
    pub const ENQUEUE: usize = 2;
    /// Shard worker picked the batch up off its queue.
    pub const DEQUEUE: usize = 3;
    /// Store execution started.
    pub const EXEC_START: usize = 4;
    /// Store execution finished (replies produced).
    pub const EXEC_END: usize = 5;
    /// Response frame encoded into the write buffer.
    pub const ENCODE: usize = 6;
    /// Response bytes flushed to the socket.
    pub const FLUSH: usize = 7;
    /// Number of stages.
    pub const COUNT: usize = 8;
}

/// Stable display names for the stages, index = stage constant.
pub const STAGE_NAMES: [&str; stage::COUNT] =
    ["decode", "admit", "enqueue", "dequeue", "exec_start", "exec_end", "encode", "flush"];

/// Span outcomes (stable `u8` encoding).
pub mod outcome {
    /// Served normally.
    pub const OK: u8 = 0;
    /// Refused by admission control / sojourn shedding.
    pub const SHED: u8 = 1;
    /// Answered with a typed error.
    pub const ERROR: u8 = 2;
}

/// Live stamp target for one sampled in-flight request. The net layer
/// owns the `Arc`; the shard worker holds a clone just long enough to
/// stamp the store-side stages. Store-side stamps use `fetch_max` so a
/// replicated batch racing across workers keeps the *latest* stamp and
/// per-span monotonicity is preserved.
#[derive(Debug)]
pub struct SpanCell {
    /// Wire trace id (client-chosen, nonzero for sampled requests).
    pub trace_id: u64,
    /// Executing shard (set at routing time; first group for
    /// multi-shard batches).
    shard: AtomicU64,
    /// Request op-index (see `aria_net::proto::request_op_index`).
    kind: u8,
    /// Outcome byte (see [`outcome`]).
    outcome: AtomicU64,
    /// Ops covered by this request (1 for point ops, n for batches).
    ops: AtomicU64,
    stages: [AtomicU64; stage::COUNT],
    /// Merkle levels walked during execution (counter delta).
    verify_depth: AtomicU64,
    /// Cold-tier segment reads during execution (counter delta).
    cold_reads: AtomicU64,
    /// Hot-tier cache hits during execution (counter delta).
    hot_hits: AtomicU64,
}

impl SpanCell {
    /// New cell for a sampled request of the given op kind.
    pub fn new(trace_id: u64, kind: u8) -> SpanCell {
        SpanCell {
            trace_id,
            shard: AtomicU64::new(0),
            kind,
            outcome: AtomicU64::new(outcome::OK as u64),
            ops: AtomicU64::new(1),
            stages: std::array::from_fn(|_| AtomicU64::new(0)),
            verify_depth: AtomicU64::new(0),
            cold_reads: AtomicU64::new(0),
            hot_hits: AtomicU64::new(0),
        }
    }

    /// Stamp `stage` with "now". One relaxed `fetch_max`, so concurrent
    /// stampers (replicated shard workers) keep the latest time and a
    /// re-stamp can never move a stage backwards.
    #[inline]
    pub fn stamp(&self, stage: usize) {
        self.stages[stage].fetch_max(clock_nanos(), Ordering::Relaxed);
    }

    /// Record which shard executes this request.
    #[inline]
    pub fn set_shard(&self, shard: u32) {
        self.shard.store(shard as u64, Ordering::Relaxed);
    }

    /// Record the op count this request covers.
    #[inline]
    pub fn set_ops(&self, n: u64) {
        self.ops.store(n, Ordering::Relaxed);
    }

    /// Record the outcome byte (see [`outcome`]).
    #[inline]
    pub fn set_outcome(&self, o: u8) {
        self.outcome.store(o as u64, Ordering::Relaxed);
    }

    /// Add execution attribution deltas (accumulating across the
    /// coalesced runs of one batch).
    #[inline]
    pub fn add_attribution(&self, verify_depth: u64, cold_reads: u64, hot_hits: u64) {
        self.verify_depth.fetch_add(verify_depth, Ordering::Relaxed);
        self.cold_reads.fetch_add(cold_reads, Ordering::Relaxed);
        self.hot_hits.fetch_add(hot_hits, Ordering::Relaxed);
    }

    /// Fold the cell into a plain [`Span`] (relaxed loads).
    pub fn to_span(&self) -> Span {
        Span {
            trace_id: self.trace_id,
            shard: self.shard.load(Ordering::Relaxed) as u32,
            kind: self.kind,
            outcome: self.outcome.load(Ordering::Relaxed) as u8,
            ops: self.ops.load(Ordering::Relaxed) as u32,
            stages: std::array::from_fn(|i| self.stages[i].load(Ordering::Relaxed)),
            verify_depth: self.verify_depth.load(Ordering::Relaxed),
            cold_reads: self.cold_reads.load(Ordering::Relaxed),
            hot_hits: self.hot_hits.load(Ordering::Relaxed),
        }
    }
}

/// One completed request span: plain data, wire-encodable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Wire trace id.
    pub trace_id: u64,
    /// Executing shard.
    pub shard: u32,
    /// Request op-index.
    pub kind: u8,
    /// Outcome byte (see [`outcome`]).
    pub outcome: u8,
    /// Ops covered (1 for point ops).
    pub ops: u32,
    /// [`clock_nanos`] at each stage, index = [`stage`] constant;
    /// 0 = the stage was never reached (e.g. shed before enqueue).
    pub stages: [u64; stage::COUNT],
    /// Merkle levels walked during execution.
    pub verify_depth: u64,
    /// Cold-tier segment reads during execution.
    pub cold_reads: u64,
    /// Hot-tier cache hits during execution.
    pub hot_hits: u64,
}

impl Span {
    /// Whether every stamped stage is in causal order (later stages,
    /// when present, never precede earlier ones). Unstamped stages (0)
    /// are skipped.
    pub fn stages_monotone(&self) -> bool {
        let mut prev = 0u64;
        for &s in &self.stages {
            if s == 0 {
                continue;
            }
            if s < prev {
                return false;
            }
            prev = s;
        }
        true
    }

    /// Nanoseconds spent between `from` and `to` (0 if either stage is
    /// unstamped or out of order).
    pub fn stage_delta(&self, from: usize, to: usize) -> u64 {
        let (a, b) = (self.stages[from], self.stages[to]);
        if a == 0 || b == 0 {
            0
        } else {
            b.saturating_sub(a)
        }
    }

    /// End-to-end nanoseconds (decode → flush; falls back to the last
    /// stamped stage when flush is missing).
    pub fn total_nanos(&self) -> u64 {
        let first = self.stages.iter().copied().find(|&s| s != 0).unwrap_or(0);
        let last = self.stages.iter().copied().filter(|&s| s != 0).max().unwrap_or(0);
        last.saturating_sub(first)
    }

    /// Whether the executing shard read from the cold tier.
    pub fn is_cold(&self) -> bool {
        self.cold_reads > 0
    }
}

/// Words a span packs into inside a ring slot.
const SPAN_WORDS: usize = 2 + stage::COUNT + 3;

fn span_to_words(s: &Span) -> [u64; SPAN_WORDS] {
    let mut w = [0u64; SPAN_WORDS];
    w[0] = s.trace_id;
    w[1] = (s.shard as u64)
        | ((s.kind as u64) << 32)
        | ((s.outcome as u64) << 40)
        | (((s.ops.min(u16::MAX as u32)) as u64) << 48);
    w[2..2 + stage::COUNT].copy_from_slice(&s.stages);
    w[2 + stage::COUNT] = s.verify_depth;
    w[3 + stage::COUNT] = s.cold_reads;
    w[4 + stage::COUNT] = s.hot_hits;
    w
}

fn span_from_words(w: &[u64; SPAN_WORDS]) -> Span {
    Span {
        trace_id: w[0],
        shard: w[1] as u32,
        kind: (w[1] >> 32) as u8,
        outcome: (w[1] >> 40) as u8,
        ops: ((w[1] >> 48) & 0xFFFF) as u32,
        stages: std::array::from_fn(|i| w[2 + i]),
        verify_depth: w[2 + stage::COUNT],
        cold_reads: w[3 + stage::COUNT],
        hot_hits: w[4 + stage::COUNT],
    }
}

struct RingSlot {
    /// Seqlock word: `2*ticket + 1` while the claiming writer is mid
    /// write, `2*ticket + 2` once the payload for `ticket` is complete.
    seq: AtomicU64,
    words: [AtomicU64; SPAN_WORDS],
}

/// Fixed-capacity, multi-writer, non-consuming span ring. Writers claim
/// a ticket with one `fetch_add` and publish under a per-slot seqlock
/// (atomics + fences only — the crate forbids `unsafe`); readers keep
/// their own cursor and tolerate being lapped (overwritten spans are
/// simply skipped). Diagnostics-grade: a reader racing a writer drops
/// the torn span rather than returning it.
pub struct TraceRing {
    head: AtomicU64,
    slots: Vec<RingSlot>,
}

/// Default per-shard span ring capacity.
pub const DEFAULT_TRACE_CAPACITY: usize = 256;

impl TraceRing {
    /// Ring holding the most recent `capacity` spans.
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            head: AtomicU64::new(0),
            slots: (0..capacity.max(1))
                .map(|_| RingSlot {
                    seq: AtomicU64::new(0),
                    words: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
        }
    }

    /// Tickets issued so far (== the cursor just past the newest span).
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Publish one completed span (lock-free; one `fetch_add` plus the
    /// slot stores).
    pub fn publish(&self, span: &Span) {
        let ticket = self.head.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        slot.seq.store(2 * ticket + 1, Ordering::Release);
        fence(Ordering::SeqCst);
        for (w, v) in slot.words.iter().zip(span_to_words(span)) {
            w.store(v, Ordering::Relaxed);
        }
        fence(Ordering::Release);
        slot.seq.store(2 * ticket + 2, Ordering::Release);
    }

    /// Read every span with ticket in `[cursor, head)` still resident
    /// in the ring, oldest first, without consuming. Returns the spans
    /// and the cursor to resume from. Spans overwritten since `cursor`
    /// (reader lapped) or caught mid-write are skipped.
    pub fn read_since(&self, cursor: u64) -> (Vec<Span>, u64) {
        let head = self.head();
        let cap = self.slots.len() as u64;
        let start = cursor.max(head.saturating_sub(cap));
        let mut spans = Vec::with_capacity((head - start) as usize);
        for ticket in start..head {
            let slot = &self.slots[(ticket % cap) as usize];
            let want = 2 * ticket + 2;
            if slot.seq.load(Ordering::Acquire) != want {
                continue;
            }
            let mut w = [0u64; SPAN_WORDS];
            for (dst, src) in w.iter_mut().zip(&slot.words) {
                *dst = src.load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) == want {
                spans.push(span_from_words(&w));
            }
        }
        (spans, head)
    }
}

/// Per-shard span rings plus publish-time aggregates: stage-latency
/// histograms over the *deltas* between consecutive stamped stages, and
/// hot/cold execution counters. Owned by the
/// [`TelemetryHub`](crate::TelemetryHub).
pub struct TraceHub {
    rings: Vec<TraceRing>,
    /// Spans published since start.
    pub spans_recorded: Counter,
    /// Stage-to-stage latency histograms (nanos); index = the *ending*
    /// stage (`stage_nanos[stage::ADMIT]` is decode→admit time, …).
    /// Index [`stage::DECODE`] is unused and stays empty.
    pub stage_nanos: Vec<Histogram>,
    /// Sampled requests that executed with at least one cold read.
    pub cold_spans: Counter,
    /// Sampled requests that executed entirely from the hot tier.
    pub hot_spans: Counter,
}

impl TraceHub {
    /// Hub with one ring of `capacity` spans per shard.
    pub fn new(shards: usize, capacity: usize) -> TraceHub {
        TraceHub {
            rings: (0..shards.max(1)).map(|_| TraceRing::new(capacity)).collect(),
            spans_recorded: Counter::new(),
            stage_nanos: (0..stage::COUNT).map(|_| Histogram::new()).collect(),
            cold_spans: Counter::new(),
            hot_spans: Counter::new(),
        }
    }

    /// Number of rings (== shards).
    pub fn rings(&self) -> usize {
        self.rings.len()
    }

    /// The ring for `shard` (modulo the ring count, so a routing layer
    /// with more groups than rings still lands somewhere).
    pub fn ring(&self, shard: u32) -> &TraceRing {
        &self.rings[shard as usize % self.rings.len()]
    }

    /// Publish a completed span into its shard's ring and fold its
    /// stage deltas into the aggregate histograms. Not a hot path: only
    /// sampled requests reach it.
    pub fn publish(&self, span: &Span) {
        if !crate::enabled() {
            return;
        }
        self.ring(span.shard).publish(span);
        self.spans_recorded.inc();
        let mut prev = 0u64;
        for (i, &s) in span.stages.iter().enumerate() {
            if s == 0 {
                continue;
            }
            if prev != 0 {
                self.stage_nanos[i].observe(s.saturating_sub(prev));
            }
            prev = s;
        }
        if span.stages[stage::EXEC_END] != 0 {
            if span.is_cold() {
                self.cold_spans.inc();
            } else {
                self.hot_spans.inc();
            }
        }
    }

    /// Read every ring since the matching cursor (missing/extra cursors
    /// are treated as 0), returning all spans plus the new cursors.
    pub fn read_since(&self, cursors: &[u64]) -> (Vec<Span>, Vec<u64>) {
        let mut spans = Vec::new();
        let mut next = Vec::with_capacity(self.rings.len());
        for (i, ring) in self.rings.iter().enumerate() {
            let (mut s, n) = ring.read_since(cursors.get(i).copied().unwrap_or(0));
            spans.append(&mut s);
            next.push(n);
        }
        (spans, next)
    }

    /// Plain-data summary for the METRICS snapshot.
    pub fn summary(&self) -> TraceSummary {
        TraceSummary {
            spans_recorded: self.spans_recorded.get(),
            cold_spans: self.cold_spans.get(),
            hot_spans: self.hot_spans.get(),
            stage_nanos: self.stage_nanos.iter().map(|h| h.snapshot()).collect(),
        }
    }
}

/// Plain-data aggregate of the tracing plane, carried in the `traces`
/// section of [`TelemetrySnapshot`](crate::TelemetrySnapshot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Spans published since start.
    pub spans_recorded: u64,
    /// Sampled requests whose execution touched the cold tier.
    pub cold_spans: u64,
    /// Sampled requests served entirely from the hot tier.
    pub hot_spans: u64,
    /// Stage-to-stage latency histograms (nanos), one per stage; the
    /// histogram at index `i` holds the time from the previous stamped
    /// stage to stage `i` (index 0 unused).
    pub stage_nanos: Vec<crate::HistSnapshot>,
}

impl Default for TraceSummary {
    fn default() -> Self {
        TraceSummary {
            spans_recorded: 0,
            cold_spans: 0,
            hot_spans: 0,
            stage_nanos: (0..stage::COUNT).map(|_| crate::HistSnapshot::empty()).collect(),
        }
    }
}

impl TraceSummary {
    /// Spans recorded since `earlier` (saturating field-wise delta).
    pub fn delta(&self, earlier: &TraceSummary) -> TraceSummary {
        TraceSummary {
            spans_recorded: self.spans_recorded.saturating_sub(earlier.spans_recorded),
            cold_spans: self.cold_spans.saturating_sub(earlier.cold_spans),
            hot_spans: self.hot_spans.saturating_sub(earlier.hot_spans),
            stage_nanos: self
                .stage_nanos
                .iter()
                .zip(&earlier.stage_nanos)
                .map(|(a, b)| a.delta(b))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn span(trace_id: u64, shard: u32) -> Span {
        let mut stages = [0u64; stage::COUNT];
        for (i, s) in stages.iter_mut().enumerate() {
            *s = 100 + i as u64 * 10;
        }
        Span {
            trace_id,
            shard,
            kind: 1,
            outcome: outcome::OK,
            ops: 1,
            stages,
            verify_depth: 3,
            cold_reads: 0,
            hot_hits: 1,
        }
    }

    #[test]
    fn clock_is_monotone_and_nonzero() {
        let a = clock_nanos();
        let b = clock_nanos();
        assert!(a >= 1);
        assert!(b >= a);
    }

    #[test]
    fn cell_stamps_are_monotone_and_fold_to_span() {
        let cell = SpanCell::new(42, 1);
        cell.set_shard(3);
        for st in 0..stage::COUNT {
            cell.stamp(st);
        }
        cell.add_attribution(5, 0, 2);
        let s = cell.to_span();
        assert_eq!(s.trace_id, 42);
        assert_eq!(s.shard, 3);
        assert!(s.stages.iter().all(|&v| v != 0));
        assert!(s.stages_monotone(), "{:?}", s.stages);
        assert_eq!(s.verify_depth, 5);
        assert_eq!(s.hot_hits, 2);
        // A racing re-stamp can only move a stage forward.
        let frozen = s.stages[stage::ADMIT];
        cell.stamp(stage::ADMIT);
        assert!(cell.to_span().stages[stage::ADMIT] >= frozen);
    }

    #[test]
    fn ring_round_trips_and_laps() {
        let ring = TraceRing::new(4);
        for i in 0..3 {
            ring.publish(&span(i, 0));
        }
        let (spans, cur) = ring.read_since(0);
        assert_eq!(spans.len(), 3);
        assert_eq!(cur, 3);
        assert_eq!(spans[0], span(0, 0));
        // Nothing new: the cursor holds.
        let (spans, cur2) = ring.read_since(cur);
        assert!(spans.is_empty());
        assert_eq!(cur2, cur);
        // Lap the ring: only the newest `capacity` survive.
        for i in 3..11 {
            ring.publish(&span(i, 0));
        }
        let (spans, cur3) = ring.read_since(cur);
        assert_eq!(cur3, 11);
        assert_eq!(spans.len(), 4, "lapped reader sees only resident spans");
        assert_eq!(spans.last().unwrap().trace_id, 10);
    }

    #[test]
    fn concurrent_publishers_never_yield_torn_spans() {
        let ring = Arc::new(TraceRing::new(8));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        // Every word of a writer's span encodes the
                        // writer id, so a torn mix is detectable.
                        let mut s = span(w * 10_000 + i, w as u32);
                        s.stages = [w * 10_000 + i + 1; stage::COUNT];
                        s.verify_depth = w * 10_000 + i + 1;
                        ring.publish(&s);
                    }
                })
            })
            .collect();
        let mut cursor = 0;
        for _ in 0..200 {
            let (spans, next) = ring.read_since(cursor);
            cursor = next;
            for s in spans {
                assert_eq!(
                    s.stages[0], s.verify_depth,
                    "torn span: stages from one writer, attribution from another"
                );
                assert_eq!(s.trace_id + 1, s.verify_depth, "torn span header");
            }
        }
        for w in writers {
            w.join().unwrap();
        }
    }

    #[test]
    fn hub_publishes_aggregates_and_reads_all_rings() {
        let hub = TraceHub::new(2, 8);
        let mut cold = span(1, 0);
        cold.cold_reads = 2;
        hub.publish(&cold);
        hub.publish(&span(2, 1));
        let (spans, cursors) = hub.read_since(&[]);
        if crate::enabled() {
            assert_eq!(spans.len(), 2);
            assert_eq!(cursors, vec![1, 1]);
            let sum = hub.summary();
            assert_eq!(sum.spans_recorded, 2);
            assert_eq!(sum.cold_spans, 1);
            assert_eq!(sum.hot_spans, 1);
            // Consecutive stamps are 10ns apart in the fixture.
            assert_eq!(sum.stage_nanos[stage::ADMIT].count(), 2);
            assert_eq!(sum.stage_nanos[stage::ADMIT].percentile(0.5), bucket_mid_of(10));
            let d = sum.delta(&sum);
            assert_eq!(d.spans_recorded, 0);
            assert_eq!(d.stage_nanos[stage::ADMIT].count(), 0);
        } else {
            assert!(spans.is_empty());
        }
    }

    fn bucket_mid_of(v: u64) -> u64 {
        crate::bucket_mid(crate::bucket_of(v))
    }

    #[test]
    fn monotonicity_helpers() {
        let mut s = span(1, 0);
        assert!(s.stages_monotone());
        assert_eq!(s.stage_delta(stage::DECODE, stage::FLUSH), 70);
        assert_eq!(s.total_nanos(), 70);
        s.stages[stage::DEQUEUE] = 0; // unstamped stages are skipped
        assert!(s.stages_monotone());
        s.stages[stage::ENCODE] = 5;
        assert!(!s.stages_monotone());
    }
}
