//! Black-box flight recorder: a bounded ring of recent system events
//! (quarantines, failovers, re-syncs, shed spikes, watchdog fires,
//! checkpoints) plus a JSON post-mortem renderer that bundles those
//! events with the most recent sampled spans.
//!
//! The recorder never touches a request hot path. A watcher (the
//! server's recorder thread) polls [`TelemetrySnapshot`]s at a coarse
//! interval and feeds consecutive pairs to [`FlightRecorder::observe`];
//! counter *deltas* between the two snapshots become events, and the
//! anomalous ones become triggers. When a trigger fires (or an operator
//! asks via `SIGUSR1` / the `TRACE` wire opcode), the owner renders a
//! [`FlightRecorder::render_dump`] — the last N seconds of causality as
//! one JSON document — and, for triggers, writes it to the configured
//! dump directory, rate-limited so a flapping shard cannot flood disk.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::hub::{unix_millis, TelemetrySnapshot};
use crate::metrics::Counter;
use crate::span::{Span, STAGE_NAMES};

/// Kinds of system events the recorder tracks. Stable `u8` encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FlightEventKind {
    /// A shard replica entered quarantine (violations detected).
    Quarantine = 0,
    /// A backup was promoted to primary (failover).
    Promotion = 1,
    /// A replica completed a verified anti-entropy re-sync.
    Resync = 2,
    /// Data ops were shed (admission refusals + sojourn sheds).
    Shed = 3,
    /// The stuck-shard watchdog quarantined a shard.
    Watchdog = 4,
    /// A shard checkpointed its cold log.
    Checkpoint = 5,
    /// Operator-requested dump (SIGUSR1 or wire request).
    Manual = 6,
    /// A reshard migration started (routine, never an anomaly).
    ReshardStart = 7,
    /// A reshard migration committed its epoch flip (routine).
    ReshardCommit = 8,
    /// A reshard migration aborted — the old routing epoch keeps
    /// serving; the abort's post-mortem is the dump trigger.
    ReshardAbort = 9,
}

impl FlightEventKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            FlightEventKind::Quarantine => "quarantine",
            FlightEventKind::Promotion => "promotion",
            FlightEventKind::Resync => "resync",
            FlightEventKind::Shed => "shed",
            FlightEventKind::Watchdog => "watchdog",
            FlightEventKind::Checkpoint => "checkpoint",
            FlightEventKind::Manual => "manual",
            FlightEventKind::ReshardStart => "reshard_start",
            FlightEventKind::ReshardCommit => "reshard_commit",
            FlightEventKind::ReshardAbort => "reshard_abort",
        }
    }

    /// Whether this event should trigger an automatic dump.
    pub fn is_anomaly(self) -> bool {
        !matches!(
            self,
            FlightEventKind::Checkpoint
                | FlightEventKind::ReshardStart
                | FlightEventKind::ReshardCommit
        )
    }
}

/// One recorded system event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Wall-clock time of the observation window that caught the event.
    pub unix_millis: u64,
    /// What happened.
    pub kind: FlightEventKind,
    /// Shard it happened on (`u32::MAX` for server-wide events).
    pub shard: u32,
    /// Magnitude: counter delta over the observation window (ops shed,
    /// re-syncs completed, …) or 1 for one-shot transitions.
    pub count: u64,
}

/// Shard index used for server-wide (not per-shard) events.
pub const SHARD_NONE: u32 = u32::MAX;

/// Default bound on remembered events.
pub const DEFAULT_FLIGHT_EVENTS: usize = 256;

/// Default shed-spike trigger: data ops shed within one observation
/// window before the recorder calls it an anomaly. Small drips of
/// shedding are normal near saturation; a spike is the signal.
pub const DEFAULT_SHED_SPIKE: u64 = 32;

/// Default minimum milliseconds between automatic dumps.
pub const DEFAULT_DUMP_INTERVAL_MS: u64 = 5_000;

/// Bounded event ring + anomaly triggers + dump rendering.
pub struct FlightRecorder {
    events: Mutex<VecDeque<FlightEvent>>,
    capacity: usize,
    prev: Mutex<Option<TelemetrySnapshot>>,
    shed_spike: AtomicU64,
    min_dump_interval_ms: AtomicU64,
    last_dump_millis: AtomicU64,
    /// Automatic dumps written by the owner (observer increments via
    /// [`FlightRecorder::note_dump`]).
    pub dumps: Counter,
    /// Events discarded because the ring was full.
    pub events_dropped: Counter,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_FLIGHT_EVENTS)
    }
}

impl FlightRecorder {
    /// Recorder remembering the last `capacity` events.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            events: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            prev: Mutex::new(None),
            shed_spike: AtomicU64::new(DEFAULT_SHED_SPIKE),
            min_dump_interval_ms: AtomicU64::new(DEFAULT_DUMP_INTERVAL_MS),
            last_dump_millis: AtomicU64::new(0),
            dumps: Counter::new(),
            events_dropped: Counter::new(),
        }
    }

    /// Adjust the shed-spike trigger threshold (ops per window).
    pub fn set_shed_spike(&self, ops: u64) {
        self.shed_spike.store(ops.max(1), Ordering::Relaxed);
    }

    /// Adjust the automatic-dump rate limit.
    pub fn set_dump_interval_ms(&self, ms: u64) {
        self.min_dump_interval_ms.store(ms, Ordering::Relaxed);
    }

    /// Append one event (bounded; oldest dropped and counted).
    pub fn record(&self, event: FlightEvent) {
        let mut ring = match self.events.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if ring.len() == self.capacity {
            ring.pop_front();
            self.events_dropped.inc();
        }
        ring.push_back(event);
    }

    /// Copy of the event ring, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        let ring = match self.events.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        ring.iter().copied().collect()
    }

    /// Feed one fresh telemetry snapshot. Counter deltas against the
    /// previous observation become events; the returned list is the
    /// anomalies among them (empty on the very first call — there is no
    /// window to diff yet). The caller decides whether a non-empty
    /// return becomes a dump (see [`FlightRecorder::dump_permitted`]).
    pub fn observe(&self, snap: &TelemetrySnapshot) -> Vec<FlightEvent> {
        let mut prev_guard = match self.prev.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let Some(prev) = prev_guard.as_ref() else {
            *prev_guard = Some(snap.clone());
            return Vec::new();
        };
        let now = unix_millis();
        let mut anomalies = Vec::new();
        let mut emit = |kind: FlightEventKind, shard: u32, count: u64| {
            if count == 0 {
                return;
            }
            let ev = FlightEvent { unix_millis: now, kind, shard, count };
            self.record(ev);
            if kind.is_anomaly() {
                anomalies.push(ev);
            }
        };
        for (i, (cur, old)) in snap.shards.iter().zip(&prev.shards).enumerate() {
            let shard = i as u32;
            let (cur, old) = (&cur.store, &old.store);
            let watchdog = cur.watchdog_quarantines.saturating_sub(old.watchdog_quarantines);
            emit(FlightEventKind::Watchdog, shard, watchdog);
            // Watchdog quarantines also count as health-state
            // quarantines; report the non-watchdog remainder so one
            // incident does not read as two.
            let quarantines: u64 = cur
                .health_events
                .iter()
                .filter(|t| !old.health_events.contains(t) && t.to == 1)
                .count() as u64;
            emit(FlightEventKind::Quarantine, shard, quarantines.saturating_sub(watchdog));
            emit(FlightEventKind::Promotion, shard, cur.failovers.saturating_sub(old.failovers));
            emit(FlightEventKind::Resync, shard, cur.resyncs.saturating_sub(old.resyncs));
            emit(
                FlightEventKind::Checkpoint,
                shard,
                cur.checkpoints.saturating_sub(old.checkpoints),
            );
            emit(
                FlightEventKind::ReshardStart,
                shard,
                cur.reshards_started.saturating_sub(old.reshards_started),
            );
            emit(
                FlightEventKind::ReshardCommit,
                shard,
                cur.reshards_committed.saturating_sub(old.reshards_committed),
            );
            emit(
                FlightEventKind::ReshardAbort,
                shard,
                cur.reshards_aborted.saturating_sub(old.reshards_aborted),
            );
        }
        let shed: u64 = snap
            .shards
            .iter()
            .zip(&prev.shards)
            .map(|(c, o)| c.store.admission_shed.saturating_sub(o.store.admission_shed))
            .sum::<u64>()
            + snap.net.ops_shed_overload.saturating_sub(prev.net.ops_shed_overload)
            + snap.net.ops_shed_deadline.saturating_sub(prev.net.ops_shed_deadline);
        if shed >= self.shed_spike.load(Ordering::Relaxed) {
            emit(FlightEventKind::Shed, SHARD_NONE, shed);
        } else if shed > 0 {
            // Below the spike threshold: remember it, don't trigger.
            let ev = FlightEvent {
                unix_millis: now,
                kind: FlightEventKind::Shed,
                shard: SHARD_NONE,
                count: shed,
            };
            self.record(ev);
        }
        *prev_guard = Some(snap.clone());
        anomalies
    }

    /// Whether an automatic dump is allowed now (rate limit); claims
    /// the slot when it is.
    pub fn dump_permitted(&self) -> bool {
        let now = unix_millis();
        let min = self.min_dump_interval_ms.load(Ordering::Relaxed);
        let last = self.last_dump_millis.load(Ordering::Relaxed);
        if now.saturating_sub(last) < min {
            return false;
        }
        self.last_dump_millis
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }

    /// Count one written dump.
    pub fn note_dump(&self) {
        self.dumps.inc();
    }

    /// Render the post-mortem JSON: the trigger reason, the event ring,
    /// and the supplied recent spans (typically the full contents of
    /// every trace ring). Hand-written JSON, like every exporter in
    /// this crate.
    pub fn render_dump(&self, reason: &str, triggers: &[FlightEvent], spans: &[Span]) -> String {
        let mut o = String::with_capacity(4096 + spans.len() * 256);
        o.push_str(&format!(
            "{{\"kind\":\"aria-flight-dump\",\"unix_millis\":{},\"reason\":{},\"triggers\":[",
            unix_millis(),
            json_escape(reason),
        ));
        for (i, t) in triggers.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            event_json(&mut o, t);
        }
        o.push_str("],\"events\":[");
        for (i, e) in self.events().iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            event_json(&mut o, e);
        }
        o.push_str(&format!(
            "],\"events_dropped\":{},\"stage_names\":[",
            self.events_dropped.get()
        ));
        for (i, n) in STAGE_NAMES.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str(&format!("\"{n}\""));
        }
        o.push_str("],\"spans\":[");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            span_json(&mut o, s);
        }
        o.push_str("]}");
        o
    }
}

fn event_json(o: &mut String, e: &FlightEvent) {
    o.push_str(&format!(
        "{{\"unix_millis\":{},\"kind\":\"{}\",\"shard\":{},\"count\":{}}}",
        e.unix_millis,
        e.kind.name(),
        if e.shard == SHARD_NONE { -1i64 } else { e.shard as i64 },
        e.count
    ));
}

/// One span as JSON (shared with `ariatrace`'s dump renderer).
pub fn span_json(o: &mut String, s: &Span) {
    o.push_str(&format!(
        "{{\"trace_id\":{},\"shard\":{},\"kind\":{},\"outcome\":{},\"ops\":{},\"stages\":[",
        s.trace_id, s.shard, s.kind, s.outcome, s.ops
    ));
    for (i, &v) in s.stages.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str(&v.to_string());
    }
    o.push_str(&format!(
        "],\"monotone\":{},\"total_nanos\":{},\"verify_depth\":{},\"cold_reads\":{},\
         \"hot_hits\":{}}}",
        s.stages_monotone(),
        s.total_nanos(),
        s.verify_depth,
        s.cold_reads,
        s.hot_hits
    ));
}

fn json_escape(s: &str) -> String {
    let mut o = String::with_capacity(s.len() + 2);
    o.push('"');
    for c in s.chars() {
        match c {
            '"' => o.push_str("\\\""),
            '\\' => o.push_str("\\\\"),
            c if (c as u32) < 0x20 => o.push_str(&format!("\\u{:04x}", c as u32)),
            c => o.push(c),
        }
    }
    o.push('"');
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::TelemetryHub;
    use crate::span::{outcome, stage};

    fn sample_span() -> Span {
        let mut stages = [0u64; stage::COUNT];
        for (i, s) in stages.iter_mut().enumerate() {
            *s = 1000 + i as u64;
        }
        Span {
            trace_id: 7,
            shard: 0,
            kind: 1,
            outcome: outcome::OK,
            ops: 1,
            stages,
            verify_depth: 2,
            cold_reads: 1,
            hot_hits: 0,
        }
    }

    #[test]
    fn ring_bounds_and_drop_count() {
        let r = FlightRecorder::new(2);
        for i in 0..4 {
            r.record(FlightEvent {
                unix_millis: i,
                kind: FlightEventKind::Checkpoint,
                shard: 0,
                count: 1,
            });
        }
        let events = r.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].unix_millis, 2);
        if crate::enabled() {
            assert_eq!(r.events_dropped.get(), 2);
        }
    }

    #[test]
    fn observe_diffs_counters_into_events_and_triggers() {
        let hub = TelemetryHub::with_shards(2);
        let r = FlightRecorder::default();
        // First observation just primes the window.
        assert!(r.observe(&hub.snapshot()).is_empty());
        if !crate::enabled() {
            return; // counters are no-ops without the plane
        }
        hub.shards[1].store.watchdog_quarantines.inc();
        hub.shards[0].store.checkpoints.inc();
        hub.net.ops_shed_overload.add(DEFAULT_SHED_SPIKE);
        let anomalies = r.observe(&hub.snapshot());
        let kinds: Vec<_> = anomalies.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&FlightEventKind::Watchdog), "{kinds:?}");
        assert!(kinds.contains(&FlightEventKind::Shed), "{kinds:?}");
        // Checkpoints are events but never anomalies.
        assert!(!kinds.contains(&FlightEventKind::Checkpoint));
        assert!(r.events().iter().any(|e| e.kind == FlightEventKind::Checkpoint));
        // A quiet window triggers nothing.
        assert!(r.observe(&hub.snapshot()).is_empty());
        // Sub-threshold shedding is recorded but does not trigger.
        hub.net.ops_shed_deadline.inc();
        assert!(r.observe(&hub.snapshot()).is_empty());
        assert!(r.events().iter().any(|e| e.kind == FlightEventKind::Shed && e.count == 1));
    }

    #[test]
    fn reshard_events_and_abort_anomaly() {
        let hub = TelemetryHub::with_shards(2);
        let r = FlightRecorder::default();
        assert!(r.observe(&hub.snapshot()).is_empty());
        if !crate::enabled() {
            return;
        }
        // Start + commit are recorded but routine.
        hub.shards[0].store.reshards_started.inc();
        hub.shards[0].store.reshards_committed.inc();
        assert!(r.observe(&hub.snapshot()).is_empty());
        assert!(r.events().iter().any(|e| e.kind == FlightEventKind::ReshardStart));
        assert!(r.events().iter().any(|e| e.kind == FlightEventKind::ReshardCommit));
        // An abort is the post-mortem trigger.
        hub.shards[0].store.reshards_aborted.inc();
        let anomalies = r.observe(&hub.snapshot());
        assert!(anomalies.iter().any(|e| e.kind == FlightEventKind::ReshardAbort));
    }

    #[test]
    fn dump_rate_limit() {
        let r = FlightRecorder::default();
        r.set_dump_interval_ms(1_000_000);
        assert!(r.dump_permitted(), "first dump always allowed");
        assert!(!r.dump_permitted(), "second dump inside the window refused");
        r.set_dump_interval_ms(0);
        assert!(r.dump_permitted(), "zero interval disables the limit");
    }

    #[test]
    fn dump_json_is_balanced_and_complete() {
        let r = FlightRecorder::default();
        let t =
            FlightEvent { unix_millis: 1, kind: FlightEventKind::Quarantine, shard: 1, count: 1 };
        r.record(t);
        let j = r.render_dump("test \"quoted\" reason", &[t], &[sample_span()]);
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "unbalanced: {j}");
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        for needle in [
            "\"kind\":\"aria-flight-dump\"",
            "\"reason\":\"test \\\"quoted\\\" reason\"",
            "\"kind\":\"quarantine\"",
            "\"stage_names\":[\"decode\"",
            "\"trace_id\":7",
            "\"monotone\":true",
            "\"cold_reads\":1",
        ] {
            assert!(j.contains(needle), "missing {needle} in:\n{j}");
        }
    }
}
