//! Versioned binary encoding of [`TelemetrySnapshot`] for the wire
//! (`METRICS` opcode).
//!
//! Layout: little-endian, magic `ATEL`, `u32` version, then the
//! sections in a fixed order. Histograms are encoded with trailing
//! zero buckets trimmed (`u32` count then that many `u64`s, then the
//! `u64` sum). The layout carries no self-describing field tags —
//! [`SNAPSHOT_VERSION`](crate::SNAPSHOT_VERSION) must be bumped on any
//! change, and decoders reject unknown versions.

use crate::hub::{
    CacheSnapshot, ChaosSnapshot, HealthTransition, MemSnapshot, MerkleSnapshot, NetSnapshot,
    ShardSnapshot, StoreSnapshot, TelemetrySnapshot, FAULT_SITES, NET_OPS, SNAPSHOT_VERSION,
    VIOLATION_CLASSES,
};
use crate::metrics::{HistSnapshot, BUCKETS};
use crate::span::{stage, Span, TraceSummary};
use crate::trace::{OpKind, SlowOp};

/// Magic prefix of an encoded snapshot.
pub const MAGIC: [u8; 4] = *b"ATEL";

/// Magic prefix of an encoded span stream (`TRACE` opcode payload).
pub const SPANS_MAGIC: [u8; 4] = *b"ATRC";

/// Version of the span-stream layout.
const SPANS_VERSION: u32 = 1;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the layout did.
    Truncated,
    /// Magic prefix missing.
    BadMagic,
    /// Unknown snapshot version.
    BadVersion(u32),
    /// Bytes left over after the layout ended, or a length field
    /// exceeded sane bounds.
    Malformed,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "telemetry snapshot truncated"),
            CodecError::BadMagic => write!(f, "telemetry snapshot magic mismatch"),
            CodecError::BadVersion(v) => write!(f, "unknown telemetry snapshot version {v}"),
            CodecError::Malformed => write!(f, "malformed telemetry snapshot"),
        }
    }
}

impl std::error::Error for CodecError {}

fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_hist(b: &mut Vec<u8>, h: &HistSnapshot) {
    let n = h.buckets.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
    put_u32(b, n as u32);
    for &c in &h.buckets[..n] {
        put_u64(b, c);
    }
    put_u64(b, h.sum);
}

fn put_counters(b: &mut Vec<u8>, cs: &[u64]) {
    put_u32(b, cs.len() as u32);
    for &c in cs {
        put_u64(b, c);
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.at + n > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn hist(&mut self) -> Result<HistSnapshot, CodecError> {
        let n = self.u32()? as usize;
        if n > BUCKETS {
            return Err(CodecError::Malformed);
        }
        let mut buckets = vec![0u64; BUCKETS];
        for slot in buckets.iter_mut().take(n) {
            *slot = self.u64()?;
        }
        let sum = self.u64()?;
        Ok(HistSnapshot { buckets, sum })
    }

    fn counters(&mut self, expect: usize) -> Result<Vec<u64>, CodecError> {
        let n = self.u32()? as usize;
        if n != expect {
            return Err(CodecError::Malformed);
        }
        (0..n).map(|_| self.u64()).collect()
    }

    fn finished(&self) -> bool {
        self.at == self.buf.len()
    }
}

/// Sanity ceiling on decoded collection lengths (shards, events).
const MAX_LIST: usize = 1 << 20;

impl TelemetrySnapshot {
    /// Encode to the versioned wire form. Debug builds validate the
    /// counter invariants first.
    pub fn encode(&self) -> Vec<u8> {
        self.debug_validate();
        let mut b = Vec::with_capacity(4096);
        b.extend_from_slice(&MAGIC);
        put_u32(&mut b, self.version);
        put_u64(&mut b, self.unix_millis);
        put_u32(&mut b, self.shards.len() as u32);
        for s in &self.shards {
            encode_shard(&mut b, s);
        }
        encode_net(&mut b, &self.net);
        put_counters(&mut b, &self.chaos.injected);
        put_u32(&mut b, self.slow_ops.len() as u32);
        for op in &self.slow_ops {
            encode_slow_op(&mut b, op);
        }
        put_u64(&mut b, self.slow_dropped);
        encode_traces(&mut b, &self.traces);
        b
    }

    /// Decode the versioned wire form.
    pub fn decode(buf: &[u8]) -> Result<TelemetrySnapshot, CodecError> {
        let mut c = Cursor { buf, at: 0 };
        if c.take(4)? != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = c.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(CodecError::BadVersion(version));
        }
        let unix_millis = c.u64()?;
        let nshards = c.u32()? as usize;
        if nshards > MAX_LIST {
            return Err(CodecError::Malformed);
        }
        let shards = (0..nshards).map(|_| decode_shard(&mut c)).collect::<Result<Vec<_>, _>>()?;
        let net = decode_net(&mut c)?;
        let chaos = ChaosSnapshot { injected: c.counters(FAULT_SITES)? };
        let nslow = c.u32()? as usize;
        if nslow > MAX_LIST {
            return Err(CodecError::Malformed);
        }
        let slow_ops = (0..nslow).map(|_| decode_slow_op(&mut c)).collect::<Result<Vec<_>, _>>()?;
        let slow_dropped = c.u64()?;
        let traces = decode_traces(&mut c)?;
        if !c.finished() {
            return Err(CodecError::Malformed);
        }
        Ok(TelemetrySnapshot {
            version,
            unix_millis,
            shards,
            net,
            chaos,
            slow_ops,
            slow_dropped,
            traces,
        })
    }
}

fn encode_traces(b: &mut Vec<u8>, t: &TraceSummary) {
    put_u64(b, t.spans_recorded);
    put_u64(b, t.cold_spans);
    put_u64(b, t.hot_spans);
    put_u32(b, t.stage_nanos.len() as u32);
    for h in &t.stage_nanos {
        put_hist(b, h);
    }
}

fn decode_traces(c: &mut Cursor<'_>) -> Result<TraceSummary, CodecError> {
    let spans_recorded = c.u64()?;
    let cold_spans = c.u64()?;
    let hot_spans = c.u64()?;
    let nstages = c.u32()? as usize;
    if nstages != stage::COUNT {
        return Err(CodecError::Malformed);
    }
    let stage_nanos = (0..nstages).map(|_| c.hist()).collect::<Result<Vec<_>, _>>()?;
    Ok(TraceSummary { spans_recorded, cold_spans, hot_spans, stage_nanos })
}

fn encode_span(b: &mut Vec<u8>, s: &Span) {
    put_u64(b, s.trace_id);
    put_u32(b, s.shard);
    b.push(s.kind);
    b.push(s.outcome);
    put_u32(b, s.ops);
    for &st in &s.stages {
        put_u64(b, st);
    }
    put_u64(b, s.verify_depth);
    put_u64(b, s.cold_reads);
    put_u64(b, s.hot_hits);
}

fn decode_span(c: &mut Cursor<'_>) -> Result<Span, CodecError> {
    let trace_id = c.u64()?;
    let shard = c.u32()?;
    let kind = c.u8()?;
    let outcome = c.u8()?;
    let ops = c.u32()?;
    let mut stages = [0u64; stage::COUNT];
    for st in stages.iter_mut() {
        *st = c.u64()?;
    }
    Ok(Span {
        trace_id,
        shard,
        kind,
        outcome,
        ops,
        stages,
        verify_depth: c.u64()?,
        cold_reads: c.u64()?,
        hot_hits: c.u64()?,
    })
}

/// Encode a span stream plus the per-ring resume cursors (the `TRACE`
/// opcode's mode-0 payload).
pub fn encode_spans(spans: &[Span], cursors: &[u64]) -> Vec<u8> {
    let mut b = Vec::with_capacity(16 + spans.len() * 128);
    b.extend_from_slice(&SPANS_MAGIC);
    put_u32(&mut b, SPANS_VERSION);
    put_u32(&mut b, cursors.len() as u32);
    for &cur in cursors {
        put_u64(&mut b, cur);
    }
    put_u32(&mut b, spans.len() as u32);
    for s in spans {
        encode_span(&mut b, s);
    }
    b
}

/// Decode a span stream: the spans and the per-ring resume cursors.
pub fn decode_spans(buf: &[u8]) -> Result<(Vec<Span>, Vec<u64>), CodecError> {
    let mut c = Cursor { buf, at: 0 };
    if c.take(4)? != SPANS_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = c.u32()?;
    if version != SPANS_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let ncur = c.u32()? as usize;
    if ncur > MAX_LIST {
        return Err(CodecError::Malformed);
    }
    let cursors = (0..ncur).map(|_| c.u64()).collect::<Result<Vec<_>, _>>()?;
    let nspans = c.u32()? as usize;
    if nspans > MAX_LIST {
        return Err(CodecError::Malformed);
    }
    let spans = (0..nspans).map(|_| decode_span(&mut c)).collect::<Result<Vec<_>, _>>()?;
    if !c.finished() {
        return Err(CodecError::Malformed);
    }
    Ok((spans, cursors))
}

fn encode_shard(b: &mut Vec<u8>, s: &ShardSnapshot) {
    let c = &s.cache;
    for v in [
        c.hits,
        c.misses,
        c.inserts,
        c.evictions,
        c.writebacks,
        c.clean_discards,
        c.swap_bytes_in,
        c.swap_bytes_out,
        c.swap_stops,
        c.swap_starts,
    ] {
        put_u64(b, v);
    }
    put_hist(b, &c.verify_depth);
    put_u64(b, s.merkle.hash_ops);
    put_u64(b, s.merkle.verified_nodes);
    let m = &s.mem;
    for v in [m.allocs, m.frees, m.alloc_bytes, m.freed_bytes, m.live_bytes, m.free_buffer_bytes] {
        put_u64(b, v);
    }
    let st = &s.store;
    put_hist(b, &st.get_latency);
    put_hist(b, &st.put_latency);
    put_hist(b, &st.delete_latency);
    put_hist(b, &st.batch_size);
    for v in [st.index_probes, st.keys_live, st.counter_live, st.counter_capacity, st.health_state]
    {
        put_u64(b, v);
    }
    put_counters(b, &st.violations);
    put_u64(b, st.failovers);
    put_u64(b, st.resyncs);
    put_hist(b, &st.resync_bytes);
    put_u64(b, st.replica_role);
    put_u64(b, st.replica_lag);
    put_u64(b, st.hot_entries);
    put_u64(b, st.cold_entries);
    put_u64(b, st.migrations);
    put_u64(b, st.compactions);
    put_u64(b, st.checkpoints);
    put_hist(b, &st.cold_read_latency);
    put_u64(b, st.admission_shed);
    put_u64(b, st.watchdog_quarantines);
    put_u64(b, st.queue_delay_ns);
    put_u64(b, st.routing_epoch);
    put_u64(b, st.migration_state);
    put_u64(b, st.reshards_started);
    put_u64(b, st.reshards_committed);
    put_u64(b, st.reshards_aborted);
    put_u32(b, st.health_events.len() as u32);
    for e in &st.health_events {
        put_u64(b, e.seq);
        put_u64(b, e.unix_millis);
        b.push(e.from);
        b.push(e.to);
    }
}

fn decode_shard(c: &mut Cursor<'_>) -> Result<ShardSnapshot, CodecError> {
    let cache = CacheSnapshot {
        hits: c.u64()?,
        misses: c.u64()?,
        inserts: c.u64()?,
        evictions: c.u64()?,
        writebacks: c.u64()?,
        clean_discards: c.u64()?,
        swap_bytes_in: c.u64()?,
        swap_bytes_out: c.u64()?,
        swap_stops: c.u64()?,
        swap_starts: c.u64()?,
        verify_depth: c.hist()?,
    };
    let merkle = MerkleSnapshot { hash_ops: c.u64()?, verified_nodes: c.u64()? };
    let mem = MemSnapshot {
        allocs: c.u64()?,
        frees: c.u64()?,
        alloc_bytes: c.u64()?,
        freed_bytes: c.u64()?,
        live_bytes: c.u64()?,
        free_buffer_bytes: c.u64()?,
    };
    let get_latency = c.hist()?;
    let put_latency = c.hist()?;
    let delete_latency = c.hist()?;
    let batch_size = c.hist()?;
    let index_probes = c.u64()?;
    let keys_live = c.u64()?;
    let counter_live = c.u64()?;
    let counter_capacity = c.u64()?;
    let health_state = c.u64()?;
    let violations = c.counters(VIOLATION_CLASSES)?;
    let failovers = c.u64()?;
    let resyncs = c.u64()?;
    let resync_bytes = c.hist()?;
    let replica_role = c.u64()?;
    let replica_lag = c.u64()?;
    let hot_entries = c.u64()?;
    let cold_entries = c.u64()?;
    let migrations = c.u64()?;
    let compactions = c.u64()?;
    let checkpoints = c.u64()?;
    let cold_read_latency = c.hist()?;
    let admission_shed = c.u64()?;
    let watchdog_quarantines = c.u64()?;
    let queue_delay_ns = c.u64()?;
    let routing_epoch = c.u64()?;
    let migration_state = c.u64()?;
    let reshards_started = c.u64()?;
    let reshards_committed = c.u64()?;
    let reshards_aborted = c.u64()?;
    let nev = c.u32()? as usize;
    if nev > MAX_LIST {
        return Err(CodecError::Malformed);
    }
    let mut health_events = Vec::with_capacity(nev);
    for _ in 0..nev {
        health_events.push(HealthTransition {
            seq: c.u64()?,
            unix_millis: c.u64()?,
            from: c.u8()?,
            to: c.u8()?,
        });
    }
    Ok(ShardSnapshot {
        cache,
        merkle,
        mem,
        store: StoreSnapshot {
            get_latency,
            put_latency,
            delete_latency,
            batch_size,
            index_probes,
            keys_live,
            counter_live,
            counter_capacity,
            health_state,
            violations,
            failovers,
            resyncs,
            resync_bytes,
            replica_role,
            replica_lag,
            hot_entries,
            cold_entries,
            migrations,
            compactions,
            checkpoints,
            cold_read_latency,
            admission_shed,
            watchdog_quarantines,
            queue_delay_ns,
            routing_epoch,
            migration_state,
            reshards_started,
            reshards_committed,
            reshards_aborted,
            health_events,
        },
    })
}

fn encode_net(b: &mut Vec<u8>, n: &NetSnapshot) {
    put_u32(b, n.op_latency.len() as u32);
    for h in &n.op_latency {
        put_hist(b, h);
    }
    for v in [
        n.inflight,
        n.frame_bytes_in,
        n.frame_bytes_out,
        n.rejected_connections,
        n.timed_out_connections,
        n.reactor_conns,
    ] {
        put_u64(b, v);
    }
    put_hist(b, &n.tick_batch_size);
    put_u64(b, n.reactor_ops);
    put_u64(b, n.reactor_submissions);
    put_u64(b, n.conns_disconnected_slow);
    put_u64(b, n.ops_shed_deadline);
    put_u64(b, n.ops_shed_overload);
}

fn decode_net(c: &mut Cursor<'_>) -> Result<NetSnapshot, CodecError> {
    let nops = c.u32()? as usize;
    if nops != NET_OPS {
        return Err(CodecError::Malformed);
    }
    let op_latency = (0..nops).map(|_| c.hist()).collect::<Result<Vec<_>, _>>()?;
    Ok(NetSnapshot {
        op_latency,
        inflight: c.u64()?,
        frame_bytes_in: c.u64()?,
        frame_bytes_out: c.u64()?,
        rejected_connections: c.u64()?,
        timed_out_connections: c.u64()?,
        reactor_conns: c.u64()?,
        tick_batch_size: c.hist()?,
        reactor_ops: c.u64()?,
        reactor_submissions: c.u64()?,
        conns_disconnected_slow: c.u64()?,
        ops_shed_deadline: c.u64()?,
        ops_shed_overload: c.u64()?,
    })
}

fn encode_slow_op(b: &mut Vec<u8>, op: &SlowOp) {
    put_u64(b, op.seq);
    put_u32(b, op.shard);
    b.push(op.kind as u8);
    put_u64(b, op.key_hash);
    put_u32(b, op.batch);
    for v in [
        op.total_nanos,
        op.index_probes,
        op.counter_fetches,
        op.verify_depth,
        op.cache_admit_evict,
        op.crypt_bytes,
    ] {
        put_u64(b, v);
    }
}

fn decode_slow_op(c: &mut Cursor<'_>) -> Result<SlowOp, CodecError> {
    Ok(SlowOp {
        seq: c.u64()?,
        shard: c.u32()?,
        kind: OpKind::from_u8(c.u8()?),
        key_hash: c.u64()?,
        batch: c.u32()?,
        total_nanos: c.u64()?,
        index_probes: c.u64()?,
        counter_fetches: c.u64()?,
        verify_depth: c.u64()?,
        cache_admit_evict: c.u64()?,
        crypt_bytes: c.u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::TelemetryHub;

    fn busy_snapshot() -> TelemetrySnapshot {
        let hub = TelemetryHub::with_shards(2);
        hub.shards[0].cache.hits.add(100);
        hub.shards[0].cache.misses.add(7);
        hub.shards[0].cache.verify_depth.observe(3);
        hub.shards[0].cache.verify_depth.observe(5);
        hub.shards[1].store.get_latency.observe(1234);
        hub.shards[1].store.record_health_transition(0, 1);
        hub.shards[1].store.record_violation(2);
        hub.shards[1].store.failovers.inc();
        hub.shards[1].store.resyncs.inc();
        hub.shards[1].store.resync_bytes.observe(8192);
        hub.shards[1].store.replica_role.set(1);
        hub.shards[1].store.replica_lag.set(12);
        hub.shards[1].store.hot_entries.set(100);
        hub.shards[1].store.cold_entries.set(900);
        hub.shards[1].store.migrations.add(40);
        hub.shards[1].store.compactions.inc();
        hub.shards[1].store.checkpoints.add(3);
        hub.shards[1].store.cold_read_latency.observe(45_000);
        hub.shards[1].store.admission_shed.add(23);
        hub.shards[1].store.watchdog_quarantines.inc();
        hub.shards[1].store.queue_delay_ns.set(2_500_000);
        hub.shards[1].store.routing_epoch.set(3);
        hub.shards[1].store.migration_state.set(1);
        hub.shards[1].store.reshards_started.add(2);
        hub.shards[1].store.reshards_committed.inc();
        hub.shards[1].store.reshards_aborted.inc();
        hub.net.op_latency[1].observe(999);
        hub.net.frame_bytes_in.add(4096);
        hub.net.reactor_conns.set(3);
        hub.net.tick_batch_size.observe(17);
        hub.net.reactor_ops.add(17);
        hub.net.reactor_submissions.add(2);
        hub.net.conns_disconnected_slow.inc();
        hub.net.ops_shed_deadline.add(4);
        hub.net.ops_shed_overload.add(9);
        hub.chaos.record_injection(3);
        hub.chaos.record_injection(7);
        hub.slow_ops.record(crate::trace::SlowOp {
            seq: 0,
            shard: 1,
            kind: OpKind::Put,
            key_hash: 42,
            batch: 4,
            total_nanos: 500_000,
            index_probes: 9,
            counter_fetches: 4,
            verify_depth: 6,
            cache_admit_evict: 2,
            crypt_bytes: 256,
        });
        hub.traces.publish(&sample_span(7, 1));
        hub.snapshot()
    }

    fn sample_span(trace_id: u64, shard: u32) -> Span {
        let mut stages = [0u64; stage::COUNT];
        for (i, s) in stages.iter_mut().enumerate() {
            *s = 1_000 + i as u64 * 250;
        }
        Span {
            trace_id,
            shard,
            kind: 2,
            outcome: 0,
            ops: 3,
            stages,
            verify_depth: 9,
            cold_reads: 1,
            hot_hits: 2,
        }
    }

    #[test]
    fn round_trip() {
        let s = busy_snapshot();
        let bytes = s.encode();
        let back = TelemetrySnapshot::decode(&bytes).expect("decode");
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(TelemetrySnapshot::decode(b"nope").unwrap_err(), CodecError::BadMagic);
        let s = busy_snapshot();
        let mut bytes = s.encode();
        bytes[4] = 99; // version
        assert!(matches!(
            TelemetrySnapshot::decode(&bytes).unwrap_err(),
            CodecError::BadVersion(_)
        ));
        let mut truncated = s.encode();
        truncated.truncate(truncated.len() - 3);
        assert_eq!(TelemetrySnapshot::decode(&truncated).unwrap_err(), CodecError::Truncated);
        let mut trailing = s.encode();
        trailing.push(0);
        assert_eq!(TelemetrySnapshot::decode(&trailing).unwrap_err(), CodecError::Malformed);
    }

    #[test]
    fn spans_round_trip() {
        let spans: Vec<Span> = (0..5).map(|i| sample_span(i, i as u32 % 2)).collect();
        let cursors = vec![3u64, 2];
        let bytes = encode_spans(&spans, &cursors);
        let (back, cur) = decode_spans(&bytes).expect("decode");
        assert_eq!(back, spans);
        assert_eq!(cur, cursors);
        // Empty stream round-trips too.
        let (back, cur) = decode_spans(&encode_spans(&[], &[])).expect("decode empty");
        assert!(back.is_empty());
        assert!(cur.is_empty());
    }

    #[test]
    fn spans_reject_garbage() {
        assert_eq!(decode_spans(b"nope").unwrap_err(), CodecError::BadMagic);
        let bytes = encode_spans(&[sample_span(1, 0)], &[1]);
        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        assert!(matches!(decode_spans(&bad_version).unwrap_err(), CodecError::BadVersion(_)));
        let mut truncated = bytes.clone();
        truncated.truncate(truncated.len() - 1);
        assert_eq!(decode_spans(&truncated).unwrap_err(), CodecError::Truncated);
        let mut trailing = bytes;
        trailing.push(0);
        assert_eq!(decode_spans(&trailing).unwrap_err(), CodecError::Malformed);
    }
}
