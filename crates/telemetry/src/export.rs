//! Text exports of a [`TelemetrySnapshot`]: Prometheus-style
//! exposition and hand-written JSON (the workspace deliberately avoids
//! serde).

use std::fmt::Write as _;

use std::collections::HashSet;

use crate::hub::{
    ShardSnapshot, TelemetrySnapshot, FAULT_SITE_NAMES, NET_OP_NAMES, VIOLATION_NAMES,
};
use crate::metrics::{bucket_bound, HistSnapshot};
use crate::span::STAGE_NAMES;

fn prom_hist<'a>(
    out: &mut String,
    typed: &mut HashSet<&'a str>,
    name: &'a str,
    labels: &str,
    h: &HistSnapshot,
) {
    if typed.insert(name) {
        let _ = writeln!(out, "# TYPE {name} histogram");
    }
    let last = h.buckets.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
    let mut cum = 0u64;
    let sep = if labels.is_empty() { "" } else { "," };
    for (i, &c) in h.buckets[..last].iter().enumerate() {
        cum += c;
        let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"{}\"}} {cum}", bucket_bound(i));
    }
    let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}", h.count());
    if labels.is_empty() {
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count());
    } else {
        let _ = writeln!(out, "{name}_sum{{{labels}}} {}", h.sum);
        let _ = writeln!(out, "{name}_count{{{labels}}} {}", h.count());
    }
}

fn prom_line(out: &mut String, name: &str, labels: &str, v: u64) {
    if labels.is_empty() {
        let _ = writeln!(out, "{name} {v}");
    } else {
        let _ = writeln!(out, "{name}{{{labels}}} {v}");
    }
}

impl TelemetrySnapshot {
    /// Prometheus-style text exposition of the whole snapshot. Debug
    /// builds validate the counter invariants first.
    pub fn render_prometheus(&self) -> String {
        self.debug_validate();
        let mut o = String::with_capacity(8192);
        let mut typed: HashSet<&str> = HashSet::new();
        let _ = writeln!(o, "# aria telemetry snapshot v{} t={}ms", self.version, self.unix_millis);
        for (i, s) in self.shards.iter().enumerate() {
            let sh = format!("shard=\"{i}\"");
            let c = &s.cache;
            prom_line(&mut o, "aria_cache_hits_total", &sh, c.hits);
            prom_line(&mut o, "aria_cache_misses_total", &sh, c.misses);
            prom_line(&mut o, "aria_cache_inserts_total", &sh, c.inserts);
            prom_line(&mut o, "aria_cache_evictions_total", &sh, c.evictions);
            prom_line(&mut o, "aria_cache_writebacks_total", &sh, c.writebacks);
            prom_line(&mut o, "aria_cache_clean_discards_total", &sh, c.clean_discards);
            prom_line(&mut o, "aria_cache_swap_bytes_in_total", &sh, c.swap_bytes_in);
            prom_line(&mut o, "aria_cache_swap_bytes_out_total", &sh, c.swap_bytes_out);
            prom_line(&mut o, "aria_cache_swap_stops_total", &sh, c.swap_stops);
            prom_line(&mut o, "aria_cache_swap_starts_total", &sh, c.swap_starts);
            prom_hist(&mut o, &mut typed, "aria_cache_verify_depth_levels", &sh, &c.verify_depth);
            prom_line(&mut o, "aria_merkle_hash_ops_total", &sh, s.merkle.hash_ops);
            prom_line(&mut o, "aria_merkle_verified_nodes_total", &sh, s.merkle.verified_nodes);
            let m = &s.mem;
            prom_line(&mut o, "aria_mem_allocs_total", &sh, m.allocs);
            prom_line(&mut o, "aria_mem_frees_total", &sh, m.frees);
            prom_line(&mut o, "aria_mem_alloc_bytes_total", &sh, m.alloc_bytes);
            prom_line(&mut o, "aria_mem_freed_bytes_total", &sh, m.freed_bytes);
            prom_line(&mut o, "aria_mem_live_bytes", &sh, m.live_bytes);
            prom_line(&mut o, "aria_mem_free_buffer_bytes", &sh, m.free_buffer_bytes);
            let st = &s.store;
            prom_hist(&mut o, &mut typed, "aria_store_get_latency_nanos", &sh, &st.get_latency);
            prom_hist(&mut o, &mut typed, "aria_store_put_latency_nanos", &sh, &st.put_latency);
            prom_hist(
                &mut o,
                &mut typed,
                "aria_store_delete_latency_nanos",
                &sh,
                &st.delete_latency,
            );
            prom_hist(&mut o, &mut typed, "aria_store_batch_size_ops", &sh, &st.batch_size);
            prom_line(&mut o, "aria_store_index_probes_total", &sh, st.index_probes);
            prom_line(&mut o, "aria_store_keys_live", &sh, st.keys_live);
            prom_line(&mut o, "aria_store_counter_live", &sh, st.counter_live);
            prom_line(&mut o, "aria_store_counter_capacity", &sh, st.counter_capacity);
            prom_line(&mut o, "aria_store_health_state", &sh, st.health_state);
            prom_line(&mut o, "aria_store_failovers_total", &sh, st.failovers);
            prom_line(&mut o, "aria_store_resyncs_total", &sh, st.resyncs);
            prom_hist(&mut o, &mut typed, "aria_store_resync_bytes", &sh, &st.resync_bytes);
            prom_line(&mut o, "aria_store_replica_role", &sh, st.replica_role);
            prom_line(&mut o, "aria_store_replica_lag_keys", &sh, st.replica_lag);
            prom_line(&mut o, "aria_store_hot_entries", &sh, st.hot_entries);
            prom_line(&mut o, "aria_store_cold_entries", &sh, st.cold_entries);
            prom_line(&mut o, "aria_store_migrations_total", &sh, st.migrations);
            prom_line(&mut o, "aria_store_compactions_total", &sh, st.compactions);
            prom_line(&mut o, "aria_store_checkpoints_total", &sh, st.checkpoints);
            prom_hist(
                &mut o,
                &mut typed,
                "aria_store_cold_read_latency_nanos",
                &sh,
                &st.cold_read_latency,
            );
            prom_line(&mut o, "aria_store_admission_shed_total", &sh, st.admission_shed);
            prom_line(
                &mut o,
                "aria_store_watchdog_quarantines_total",
                &sh,
                st.watchdog_quarantines,
            );
            prom_line(&mut o, "aria_store_queue_delay_nanos", &sh, st.queue_delay_ns);
            prom_line(&mut o, "aria_store_routing_epoch", &sh, st.routing_epoch);
            prom_line(&mut o, "aria_store_migration_state", &sh, st.migration_state);
            prom_line(&mut o, "aria_store_reshards_started_total", &sh, st.reshards_started);
            prom_line(&mut o, "aria_store_reshards_committed_total", &sh, st.reshards_committed);
            prom_line(&mut o, "aria_store_reshards_aborted_total", &sh, st.reshards_aborted);
            for (ci, &v) in st.violations.iter().enumerate() {
                let name = VIOLATION_NAMES.get(ci).copied().unwrap_or("unknown");
                prom_line(
                    &mut o,
                    "aria_store_violations_total",
                    &format!("{sh},class=\"{name}\""),
                    v,
                );
            }
        }
        for (i, h) in self.net.op_latency.iter().enumerate() {
            let name = NET_OP_NAMES.get(i).copied().unwrap_or("unknown");
            prom_hist(
                &mut o,
                &mut typed,
                "aria_net_op_latency_nanos",
                &format!("op=\"{name}\""),
                h,
            );
        }
        prom_line(&mut o, "aria_net_inflight", "", self.net.inflight);
        prom_line(&mut o, "aria_net_frame_bytes_in_total", "", self.net.frame_bytes_in);
        prom_line(&mut o, "aria_net_frame_bytes_out_total", "", self.net.frame_bytes_out);
        prom_line(&mut o, "aria_net_rejected_connections_total", "", self.net.rejected_connections);
        prom_line(
            &mut o,
            "aria_net_timed_out_connections_total",
            "",
            self.net.timed_out_connections,
        );
        prom_line(&mut o, "aria_net_reactor_conns", "", self.net.reactor_conns);
        prom_hist(
            &mut o,
            &mut typed,
            "aria_net_tick_batch_size_ops",
            "",
            &self.net.tick_batch_size,
        );
        prom_line(&mut o, "aria_net_reactor_ops_total", "", self.net.reactor_ops);
        prom_line(&mut o, "aria_net_reactor_submissions_total", "", self.net.reactor_submissions);
        prom_line(
            &mut o,
            "aria_net_conns_disconnected_slow_total",
            "",
            self.net.conns_disconnected_slow,
        );
        prom_line(&mut o, "aria_net_ops_shed_deadline_total", "", self.net.ops_shed_deadline);
        prom_line(&mut o, "aria_net_ops_shed_overload_total", "", self.net.ops_shed_overload);
        let _ = writeln!(o, "aria_net_coalesce_ratio {:.3}", self.net.coalesce_ratio());
        for (i, &v) in self.chaos.injected.iter().enumerate() {
            let name = FAULT_SITE_NAMES.get(i).copied().unwrap_or("unknown");
            prom_line(&mut o, "aria_chaos_injected_total", &format!("site=\"{name}\""), v);
        }
        prom_line(&mut o, "aria_slow_ops", "", self.slow_ops.len() as u64);
        prom_line(&mut o, "aria_slow_ops_dropped_total", "", self.slow_dropped);
        let t = &self.traces;
        prom_line(&mut o, "aria_trace_spans_recorded_total", "", t.spans_recorded);
        prom_line(&mut o, "aria_trace_cold_spans_total", "", t.cold_spans);
        prom_line(&mut o, "aria_trace_hot_spans_total", "", t.hot_spans);
        // Index 0 (decode) has no preceding stage and stays empty.
        for (i, h) in t.stage_nanos.iter().enumerate().skip(1) {
            let name = STAGE_NAMES.get(i).copied().unwrap_or("unknown");
            prom_hist(
                &mut o,
                &mut typed,
                "aria_trace_stage_nanos",
                &format!("stage=\"{name}\""),
                h,
            );
        }
        o
    }

    /// Hand-written JSON of the whole snapshot (histograms as trimmed
    /// bucket arrays), for embedding in bench result rows.
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(8192);
        o.push_str(&format!(
            "{{\"version\":{},\"unix_millis\":{},\"shards\":[",
            self.version, self.unix_millis
        ));
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            shard_json(&mut o, s);
        }
        o.push_str("],\"net\":{\"op_latency\":{");
        let mut first = true;
        for (i, h) in self.net.op_latency.iter().enumerate() {
            if h.count() == 0 {
                continue;
            }
            if !first {
                o.push(',');
            }
            first = false;
            let name = NET_OP_NAMES.get(i).copied().unwrap_or("unknown");
            o.push_str(&format!("\"{name}\":"));
            hist_json(&mut o, h);
        }
        o.push_str(&format!(
            "}},\"inflight\":{},\"frame_bytes_in\":{},\"frame_bytes_out\":{},\
             \"rejected_connections\":{},\"timed_out_connections\":{},\
             \"reactor_conns\":{},\"tick_batch_size\":",
            self.net.inflight,
            self.net.frame_bytes_in,
            self.net.frame_bytes_out,
            self.net.rejected_connections,
            self.net.timed_out_connections,
            self.net.reactor_conns
        ));
        hist_json(&mut o, &self.net.tick_batch_size);
        o.push_str(&format!(
            ",\"reactor_ops\":{},\"reactor_submissions\":{},\"coalesce_ratio\":{:.3},\
             \"conns_disconnected_slow\":{},\"ops_shed_deadline\":{},\"ops_shed_overload\":{}}}",
            self.net.reactor_ops,
            self.net.reactor_submissions,
            self.net.coalesce_ratio(),
            self.net.conns_disconnected_slow,
            self.net.ops_shed_deadline,
            self.net.ops_shed_overload
        ));
        o.push_str(",\"chaos\":{");
        for (i, &v) in self.chaos.injected.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let name = FAULT_SITE_NAMES.get(i).copied().unwrap_or("unknown");
            o.push_str(&format!("\"{name}\":{v}"));
        }
        o.push_str(&format!(
            "}},\"slow_ops\":{},\"slow_ops_dropped\":{}",
            self.slow_ops.len(),
            self.slow_dropped
        ));
        let t = &self.traces;
        o.push_str(&format!(
            ",\"traces\":{{\"spans_recorded\":{},\"cold_spans\":{},\"hot_spans\":{},\
             \"stage_nanos\":{{",
            t.spans_recorded, t.cold_spans, t.hot_spans
        ));
        let mut first = true;
        for (i, h) in t.stage_nanos.iter().enumerate() {
            if h.count() == 0 {
                continue;
            }
            if !first {
                o.push(',');
            }
            first = false;
            let name = STAGE_NAMES.get(i).copied().unwrap_or("unknown");
            o.push_str(&format!("\"{name}\":"));
            hist_json(&mut o, h);
        }
        o.push_str("}}}");
        o
    }
}

fn hist_json(o: &mut String, h: &HistSnapshot) {
    let last = h.buckets.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
    o.push_str("{\"buckets\":[");
    for (i, &c) in h.buckets[..last].iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str(&c.to_string());
    }
    o.push_str(&format!(
        "],\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
        h.count(),
        h.sum,
        h.percentile(0.50),
        h.percentile(0.95),
        h.percentile(0.99)
    ));
}

fn shard_json(o: &mut String, s: &ShardSnapshot) {
    let c = &s.cache;
    o.push_str(&format!(
        "{{\"cache\":{{\"hits\":{},\"misses\":{},\"inserts\":{},\"evictions\":{},\
         \"writebacks\":{},\"clean_discards\":{},\"swap_bytes_in\":{},\"swap_bytes_out\":{},\
         \"swap_stops\":{},\"swap_starts\":{},\"verify_depth\":",
        c.hits,
        c.misses,
        c.inserts,
        c.evictions,
        c.writebacks,
        c.clean_discards,
        c.swap_bytes_in,
        c.swap_bytes_out,
        c.swap_stops,
        c.swap_starts
    ));
    hist_json(o, &c.verify_depth);
    o.push_str(&format!(
        "}},\"merkle\":{{\"hash_ops\":{},\"verified_nodes\":{}}}",
        s.merkle.hash_ops, s.merkle.verified_nodes
    ));
    let m = &s.mem;
    o.push_str(&format!(
        ",\"mem\":{{\"allocs\":{},\"frees\":{},\"alloc_bytes\":{},\"freed_bytes\":{},\
         \"live_bytes\":{},\"free_buffer_bytes\":{}}}",
        m.allocs, m.frees, m.alloc_bytes, m.freed_bytes, m.live_bytes, m.free_buffer_bytes
    ));
    let st = &s.store;
    o.push_str(",\"store\":{\"get_latency\":");
    hist_json(o, &st.get_latency);
    o.push_str(",\"put_latency\":");
    hist_json(o, &st.put_latency);
    o.push_str(",\"batch_size\":");
    hist_json(o, &st.batch_size);
    o.push_str(&format!(
        ",\"index_probes\":{},\"keys_live\":{},\"counter_live\":{},\"counter_capacity\":{},\
         \"health_state\":{},\"failovers\":{},\"resyncs\":{},\"replica_role\":{},\
         \"replica_lag\":{},\"hot_entries\":{},\"cold_entries\":{},\"migrations\":{},\
         \"compactions\":{},\"checkpoints\":{},\"admission_shed\":{},\
         \"watchdog_quarantines\":{},\"queue_delay_ns\":{},\"routing_epoch\":{},\
         \"migration_state\":{},\"reshards_started\":{},\"reshards_committed\":{},\
         \"reshards_aborted\":{},\"violations\":{{",
        st.index_probes,
        st.keys_live,
        st.counter_live,
        st.counter_capacity,
        st.health_state,
        st.failovers,
        st.resyncs,
        st.replica_role,
        st.replica_lag,
        st.hot_entries,
        st.cold_entries,
        st.migrations,
        st.compactions,
        st.checkpoints,
        st.admission_shed,
        st.watchdog_quarantines,
        st.queue_delay_ns,
        st.routing_epoch,
        st.migration_state,
        st.reshards_started,
        st.reshards_committed,
        st.reshards_aborted
    ));
    let mut first = true;
    for (ci, &v) in st.violations.iter().enumerate() {
        if v == 0 {
            continue;
        }
        if !first {
            o.push(',');
        }
        first = false;
        let name = VIOLATION_NAMES.get(ci).copied().unwrap_or("unknown");
        o.push_str(&format!("\"{name}\":{v}"));
    }
    o.push_str(&format!("}},\"health_events\":{}}}}}", st.health_events.len()));
}

#[cfg(test)]
mod tests {
    use crate::hub::TelemetryHub;
    use crate::span::{stage, Span};

    fn traced_hub() -> TelemetryHub {
        let hub = TelemetryHub::with_shards(1);
        let mut stages = [0u64; stage::COUNT];
        for (i, s) in stages.iter_mut().enumerate() {
            *s = 50 + i as u64 * 25;
        }
        hub.traces.publish(&Span {
            trace_id: 99,
            shard: 0,
            kind: 1,
            outcome: 0,
            ops: 1,
            stages,
            verify_depth: 2,
            cold_reads: 0,
            hot_hits: 1,
        });
        hub
    }

    #[test]
    fn exposition_mentions_core_series() {
        let hub = traced_hub();
        hub.shards[0].cache.hits.inc();
        hub.shards[0].cache.misses.inc();
        hub.shards[0].cache.verify_depth.observe(4);
        hub.net.op_latency[1].observe(2048);
        let text = hub.snapshot().render_prometheus();
        for needle in [
            "aria_cache_hits_total{shard=\"0\"}",
            "aria_cache_verify_depth_levels_bucket",
            "aria_net_op_latency_nanos_sum{op=\"get\"}",
            "aria_chaos_injected_total{site=\"entry_flip\"}",
            "aria_net_inflight",
            "aria_net_reactor_conns",
            "aria_net_coalesce_ratio",
            "aria_net_conns_disconnected_slow_total",
            "aria_net_ops_shed_deadline_total",
            "aria_store_admission_shed_total{shard=\"0\"}",
            "aria_store_queue_delay_nanos{shard=\"0\"}",
            "aria_chaos_injected_total{site=\"shard_stall\"}",
            "aria_slow_ops_dropped_total",
            "aria_trace_spans_recorded_total",
            "aria_trace_hot_spans_total",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        if crate::enabled() {
            assert!(
                text.contains("aria_trace_stage_nanos_bucket{stage=\"admit\",le="),
                "missing trace stage histogram in:\n{text}"
            );
        }
    }

    #[test]
    fn histogram_families_carry_type_metadata_once() {
        let hub = traced_hub();
        hub.shards[0].cache.hits.inc();
        hub.shards[0].cache.verify_depth.observe(4);
        hub.net.op_latency[1].observe(2048);
        hub.net.op_latency[2].observe(4096);
        let text = hub.snapshot().render_prometheus();
        // Every emitted bucket family is declared, exactly once, before
        // its first sample.
        let mut families: Vec<&str> = text
            .lines()
            .filter_map(|l| l.split("_bucket{").next().filter(|_| l.contains("_bucket{")))
            .collect();
        families.sort_unstable();
        families.dedup();
        assert!(!families.is_empty());
        for fam in families {
            let ty = format!("# TYPE {fam} histogram");
            assert_eq!(text.matches(&ty).count(), 1, "family {fam} not declared once:\n{text}");
            let decl = text.find(&ty).unwrap();
            let first_sample = text.find(&format!("{fam}_bucket{{")).unwrap();
            assert!(decl < first_sample, "TYPE for {fam} appears after its first sample");
        }
        // The per-op net histogram is declared once even though it is
        // emitted for several labels.
        assert_eq!(text.matches("# TYPE aria_net_op_latency_nanos histogram").count(), 1);
    }

    #[test]
    fn json_is_balanced() {
        let hub = traced_hub();
        hub.shards[0].store.get_latency.observe(777);
        hub.shards[0].store.record_violation(1);
        let j = hub.snapshot().to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "unbalanced braces: {j}");
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"shards\":["));
        assert!(j.contains("\"traces\":{\"spans_recorded\":"));
        if crate::enabled() {
            assert!(j.contains("\"admit\":{\"buckets\":"));
        }
    }
}
