//! Bounded ring-buffer tracer for slow operations.
//!
//! The fast path touches the tracer exactly once: a relaxed load of the
//! threshold to decide whether an op was slow. Only slow ops (by
//! construction rare) take the ring's mutex. The per-stage breakdown is
//! attributed from per-shard metric deltas taken around the op — index
//! probes walked, counters fetched, Merkle levels verified, cache
//! admissions/evictions, and bytes decrypted — which keeps the hot path
//! free of per-stage clock reads.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::metrics::Counter;

/// Operation kinds recorded in a [`SlowOp`]. Stable `u8` encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpKind {
    /// Point lookup (or a coalesced run of lookups).
    Get = 0,
    /// Insert/update (or a coalesced run of them).
    Put = 1,
    /// Deletion.
    Delete = 2,
    /// Anything else (recovery, audits).
    Other = 3,
}

impl OpKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Get => "get",
            OpKind::Put => "put",
            OpKind::Delete => "delete",
            OpKind::Other => "other",
        }
    }

    /// Decode from the wire byte.
    pub fn from_u8(v: u8) -> OpKind {
        match v {
            0 => OpKind::Get,
            1 => OpKind::Put,
            2 => OpKind::Delete,
            _ => OpKind::Other,
        }
    }
}

/// One traced slow operation with its per-stage breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowOp {
    /// Monotonic sequence number (tracer-global), for delta filtering.
    pub seq: u64,
    /// Shard the op ran on.
    pub shard: u32,
    /// Operation kind.
    pub kind: OpKind,
    /// Hash of the (first) key involved — never the key itself.
    pub key_hash: u64,
    /// Number of ops in the coalesced run this span covers (>= 1).
    pub batch: u32,
    /// Wall time for the run, nanoseconds.
    pub total_nanos: u64,
    /// Index cells (bucket heads / chain `next` pointers) probed.
    pub index_probes: u64,
    /// Counter-cache fetches (hits + misses) performed.
    pub counter_fetches: u64,
    /// Merkle levels walked before verification stopped.
    pub verify_depth: u64,
    /// Cache admissions plus evictions triggered.
    pub cache_admit_evict: u64,
    /// Bytes run through the cipher (seal + open).
    pub crypt_bytes: u64,
}

/// Bounded ring of [`SlowOp`]s. `record` drops the oldest entry once
/// `capacity` is reached and counts the drop.
pub struct SlowOpTracer {
    threshold_nanos: AtomicU64,
    capacity: usize,
    seq: AtomicU64,
    dropped: Counter,
    ring: Mutex<VecDeque<SlowOp>>,
}

/// Default slow-op threshold: 200µs of wall time per (amortized) op.
pub const DEFAULT_SLOW_OP_NANOS: u64 = 200_000;

/// Default ring capacity.
pub const DEFAULT_SLOW_OP_CAPACITY: usize = 256;

impl Default for SlowOpTracer {
    fn default() -> Self {
        Self::new(DEFAULT_SLOW_OP_NANOS, DEFAULT_SLOW_OP_CAPACITY)
    }
}

impl SlowOpTracer {
    /// Tracer keeping the last `capacity` ops slower than
    /// `threshold_nanos`.
    pub fn new(threshold_nanos: u64, capacity: usize) -> Self {
        SlowOpTracer {
            threshold_nanos: AtomicU64::new(threshold_nanos),
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            dropped: Counter::new(),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Threshold in nanoseconds; ops at or above it should be
    /// [`SlowOpTracer::record`]ed. Returns `u64::MAX` under
    /// `telemetry-off` so the comparison is never true.
    #[inline]
    pub fn threshold_nanos(&self) -> u64 {
        if crate::enabled() {
            self.threshold_nanos.load(Ordering::Relaxed)
        } else {
            u64::MAX
        }
    }

    /// Adjust the threshold at runtime.
    pub fn set_threshold_nanos(&self, nanos: u64) {
        self.threshold_nanos.store(nanos, Ordering::Relaxed);
    }

    /// Append a slow op (slow path only). Never blocks a shard worker:
    /// if another thread holds the ring mutex the op is dropped and
    /// counted, rather than stalling execution on a diagnostics buffer.
    pub fn record(&self, mut op: SlowOp) {
        if !crate::enabled() {
            return;
        }
        op.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut ring = match self.ring.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                self.dropped.inc();
                return;
            }
        };
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.inc();
        }
        ring.push_back(op);
    }

    /// Copy of the ring, oldest first, plus the drop count.
    pub fn snapshot(&self) -> (Vec<SlowOp>, u64) {
        let ring = match self.ring.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        (ring.iter().cloned().collect(), self.dropped.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(nanos: u64) -> SlowOp {
        SlowOp {
            seq: 0,
            shard: 0,
            kind: OpKind::Get,
            key_hash: 7,
            batch: 1,
            total_nanos: nanos,
            index_probes: 2,
            counter_fetches: 1,
            verify_depth: 3,
            cache_admit_evict: 1,
            crypt_bytes: 64,
        }
    }

    #[test]
    fn ring_bounds_and_seq() {
        let t = SlowOpTracer::new(100, 3);
        for i in 0..5 {
            t.record(op(1000 + i));
        }
        let (ops, dropped) = t.snapshot();
        if crate::enabled() {
            assert_eq!(ops.len(), 3);
            assert_eq!(dropped, 2);
            assert!(ops.windows(2).all(|w| w[0].seq < w[1].seq));
            assert_eq!(ops.last().unwrap().total_nanos, 1004);
        } else {
            assert!(ops.is_empty());
            assert_eq!(t.threshold_nanos(), u64::MAX);
        }
    }

    #[test]
    fn contended_record_drops_and_counts_instead_of_blocking() {
        if !crate::enabled() {
            return;
        }
        let t = SlowOpTracer::new(100, 8);
        t.record(op(1000));
        // Hold the ring mutex from this thread; a record from another
        // thread must return promptly (drop) rather than deadlock.
        let guard = t.ring.lock().unwrap();
        std::thread::scope(|s| {
            s.spawn(|| t.record(op(2000))).join().unwrap();
        });
        drop(guard);
        let (ops, dropped) = t.snapshot();
        assert_eq!(ops.len(), 1, "contended record must not enqueue");
        assert_eq!(dropped, 1, "contended record must be counted as dropped");
        // Seq still advanced for the dropped op, so later entries sort after it.
        t.record(op(3000));
        let (ops, _) = t.snapshot();
        assert_eq!(ops.last().unwrap().seq, 2);
    }
}
