//! Lock-free metric primitives: counters, gauges, and log2-bucketed
//! histograms.
//!
//! Every recorder is a relaxed atomic operation — the hot path of a
//! [`Counter::inc`] is exactly one `fetch_add(1, Relaxed)`. With the
//! `telemetry-off` feature the structs are zero-sized and every method
//! compiles to nothing, which is what the overhead guardrail bench
//! compares against.

#[cfg(not(feature = "telemetry-off"))]
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: bucket 0 holds the value `0`, bucket
/// `i` (1..=64) holds values whose bit length is `i`, i.e. the range
/// `[2^(i-1), 2^i)`.
pub const BUCKETS: usize = 65;

/// Bucket index for a value: its bit length (0 for 0).
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`0` for bucket 0).
pub fn bucket_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// Representative (midpoint) value for bucket `i`, used when reading
/// percentiles back out of a snapshot.
pub fn bucket_mid(i: usize) -> u64 {
    match i {
        0 => 0,
        1 => 1,
        64 => (1u64 << 63) + ((u64::MAX - (1u64 << 63)) >> 1),
        _ => {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            lo + (hi - lo) / 2
        }
    }
}

/// Monotonically increasing event counter.
#[derive(Default)]
pub struct Counter {
    #[cfg(not(feature = "telemetry-off"))]
    v: AtomicU64,
}

impl Counter {
    /// New counter at zero.
    pub const fn new() -> Self {
        Counter {
            #[cfg(not(feature = "telemetry-off"))]
            v: AtomicU64::new(0),
        }
    }

    /// Add one. One relaxed atomic add.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`. One relaxed atomic add.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        self.v.fetch_add(n, Ordering::Relaxed);
        #[cfg(feature = "telemetry-off")]
        let _ = n;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        #[cfg(not(feature = "telemetry-off"))]
        return self.v.load(Ordering::Relaxed);
        #[cfg(feature = "telemetry-off")]
        0
    }
}

/// Last-value gauge (occupancies, depths). `add`/`sub` saturate at the
/// u64 boundaries so an unbalanced update can never wrap to a bogus
/// astronomically large reading.
#[derive(Default)]
pub struct Gauge {
    #[cfg(not(feature = "telemetry-off"))]
    v: AtomicU64,
}

impl Gauge {
    /// New gauge at zero.
    pub const fn new() -> Self {
        Gauge {
            #[cfg(not(feature = "telemetry-off"))]
            v: AtomicU64::new(0),
        }
    }

    /// Overwrite the reading.
    #[inline]
    pub fn set(&self, n: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        self.v.store(n, Ordering::Relaxed);
        #[cfg(feature = "telemetry-off")]
        let _ = n;
    }

    /// Raise the reading by `n` (saturating).
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        let _ = self
            .v
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_add(n)));
        #[cfg(feature = "telemetry-off")]
        let _ = n;
    }

    /// Lower the reading by `n` (saturating at zero).
    #[inline]
    pub fn sub(&self, n: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        let _ = self
            .v
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(n)));
        #[cfg(feature = "telemetry-off")]
        let _ = n;
    }

    /// Current reading.
    #[inline]
    pub fn get(&self) -> u64 {
        #[cfg(not(feature = "telemetry-off"))]
        return self.v.load(Ordering::Relaxed);
        #[cfg(feature = "telemetry-off")]
        0
    }
}

/// Log2-bucketed histogram of `u64` samples (latencies in nanoseconds,
/// sizes in bytes or ops). An `observe` is two relaxed atomic adds:
/// the bucket count and the running sum.
pub struct Histogram {
    #[cfg(not(feature = "telemetry-off"))]
    buckets: [AtomicU64; BUCKETS],
    #[cfg(not(feature = "telemetry-off"))]
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Histogram {
            #[cfg(not(feature = "telemetry-off"))]
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            #[cfg(not(feature = "telemetry-off"))]
            sum: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn observe(&self, v: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        {
            self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
        }
        #[cfg(feature = "telemetry-off")]
        let _ = v;
    }

    /// Record the same sample `n` times (amortized ops in a coalesced
    /// run) in two atomic adds, same as a single [`Histogram::observe`].
    #[inline]
    pub fn observe_n(&self, v: u64, n: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        {
            if n == 0 {
                return;
            }
            self.buckets[bucket_of(v)].fetch_add(n, Ordering::Relaxed);
            self.sum.fetch_add(v.saturating_mul(n), Ordering::Relaxed);
        }
        #[cfg(feature = "telemetry-off")]
        let _ = (v, n);
    }

    /// Running sum of all observed samples (cheap; one relaxed load).
    #[inline]
    pub fn sum(&self) -> u64 {
        #[cfg(not(feature = "telemetry-off"))]
        {
            self.sum.load(Ordering::Relaxed)
        }
        #[cfg(feature = "telemetry-off")]
        0
    }

    /// Total number of observed samples (sums the bucket counters; 65
    /// relaxed loads — cheap enough for per-batch attribution deltas).
    #[inline]
    pub fn count(&self) -> u64 {
        #[cfg(not(feature = "telemetry-off"))]
        {
            self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
        }
        #[cfg(feature = "telemetry-off")]
        0
    }

    /// Point-in-time copy of the buckets and sum. Readers racing
    /// writers may observe a sum slightly out of step with the bucket
    /// counts; a quiesced snapshot is exact.
    pub fn snapshot(&self) -> HistSnapshot {
        #[cfg(not(feature = "telemetry-off"))]
        {
            let buckets: Vec<u64> =
                self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
            HistSnapshot { buckets, sum: self.sum.load(Ordering::Relaxed) }
        }
        #[cfg(feature = "telemetry-off")]
        HistSnapshot::empty()
    }
}

/// Plain-data copy of a [`Histogram`]: mergeable, subtractable, and
/// wire-encodable. `buckets` always has [`BUCKETS`] entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket sample counts (see [`bucket_of`]).
    pub buckets: Vec<u64>,
    /// Sum of all observed samples.
    pub sum: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistSnapshot {
    /// All-zero snapshot.
    pub fn empty() -> Self {
        HistSnapshot { buckets: vec![0; BUCKETS], sum: 0 }
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`) using bucket midpoints;
    /// resolution is one power of two. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_mid(i);
            }
        }
        bucket_mid(BUCKETS - 1)
    }

    /// Fold `other` into `self` (bucketwise add). Merging per-thread
    /// snapshots equals one snapshot of all their observations.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.sum += other.sum;
    }

    /// Samples observed since `earlier` (bucketwise saturating sub).
    pub fn delta(&self, earlier: &HistSnapshot) -> HistSnapshot {
        let buckets =
            self.buckets.iter().zip(&earlier.buckets).map(|(a, b)| a.saturating_sub(*b)).collect();
        HistSnapshot { buckets, sum: self.sum.saturating_sub(earlier.sum) }
    }

    /// Bucket-implied bounds on `sum`: every sample in bucket `i` lies
    /// in `[2^(i-1), 2^i)`, so a quiesced snapshot's `sum` must fall in
    /// the returned inclusive range. Used by debug validation.
    pub fn sum_bounds(&self) -> (u64, u64) {
        let mut lo = 0u64;
        let mut hi = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if i == 0 || c == 0 {
                continue;
            }
            let blo = 1u64 << (i - 1);
            lo = lo.saturating_add(c.saturating_mul(blo));
            hi = hi.saturating_add(c.saturating_mul(bucket_bound(i)));
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..BUCKETS {
            let m = bucket_mid(i);
            assert_eq!(bucket_of(m), i, "midpoint of bucket {i} maps back");
            assert!(m <= bucket_bound(i));
        }
    }

    #[test]
    fn observe_and_percentile() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.observe(v);
        }
        let s = h.snapshot();
        if crate::enabled() {
            assert_eq!(s.count(), 5);
            assert_eq!(s.sum, 1106);
            assert!(s.percentile(1.0) >= 512);
            assert!(s.percentile(0.0) >= 1);
            let (lo, hi) = s.sum_bounds();
            assert!(lo <= s.sum && s.sum <= hi);
        } else {
            assert_eq!(s.count(), 0);
        }
    }

    #[test]
    fn merge_equals_sum() {
        let mut a = HistSnapshot::empty();
        let mut b = HistSnapshot::empty();
        a.buckets[3] = 4;
        a.sum = 20;
        b.buckets[3] = 1;
        b.buckets[10] = 2;
        b.sum = 1030;
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count(), 7);
        assert_eq!(m.sum, 1050);
        let d = m.delta(&a);
        assert_eq!(d, b);
    }
}
