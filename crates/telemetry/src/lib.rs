//! # aria-telemetry
//!
//! Low-overhead observability plane for the Aria store: lock-free
//! counters/gauges and log2-bucketed histograms with mergeable
//! snapshot-and-delta semantics, a bounded slow-op tracer, and three
//! exports — a versioned binary snapshot (for the `METRICS` wire
//! opcode), a Prometheus-style text exposition, and hand-written JSON
//! for bench result rows.
//!
//! Design rules:
//!
//! * **The hot path is one relaxed atomic add.** Recording a counter
//!   never locks, allocates, or fences; histograms are two relaxed
//!   adds. Slow paths (slow-op spans, health transitions, snapshots)
//!   may take a mutex.
//! * **Telemetry is untrusted state.** Nothing here is security
//!   metadata: counters live in ordinary host memory, are not
//!   MAC-protected, and are never consulted by verification logic. A
//!   tampered metric can mislead an operator but cannot forge a value
//!   or hide an integrity violation (see DESIGN.md §12).
//! * **`telemetry-off` compiles the plane away.** With the feature
//!   enabled every recorder is a zero-sized no-op; the overhead
//!   guardrail bench diffs the two builds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod export;
mod hub;
mod metrics;
mod recorder;
mod span;
mod trace;

pub use codec::{decode_spans, encode_spans, CodecError, MAGIC, SPANS_MAGIC};
pub use hub::{
    health_name, unix_millis, CacheSnapshot, CacheTelemetry, ChaosSnapshot, ChaosTelemetry,
    HealthTransition, MemSnapshot, MemTelemetry, MerkleSnapshot, MerkleTelemetry, NetSnapshot,
    NetTelemetry, ShardSnapshot, ShardTelemetry, StoreSnapshot, StoreTelemetry, TelemetryHub,
    TelemetrySnapshot, FAULT_SITES, FAULT_SITE_NAMES, HEALTH_EVENT_CAP, NET_OPS, NET_OP_NAMES,
    SNAPSHOT_VERSION, VIOLATION_CLASSES, VIOLATION_NAMES,
};
pub use metrics::{
    bucket_bound, bucket_mid, bucket_of, Counter, Gauge, HistSnapshot, Histogram, BUCKETS,
};
pub use recorder::{
    span_json, FlightEvent, FlightEventKind, FlightRecorder, DEFAULT_DUMP_INTERVAL_MS,
    DEFAULT_FLIGHT_EVENTS, DEFAULT_SHED_SPIKE, SHARD_NONE,
};
pub use span::{
    clock_nanos, outcome, stage, Span, SpanCell, TraceHub, TraceRing, TraceSummary,
    DEFAULT_TRACE_CAPACITY, STAGE_NAMES,
};
pub use trace::{OpKind, SlowOp, SlowOpTracer, DEFAULT_SLOW_OP_CAPACITY, DEFAULT_SLOW_OP_NANOS};

/// `true` when the telemetry plane is compiled in (the `telemetry-off`
/// feature is **not** active).
pub const fn enabled() -> bool {
    cfg!(not(feature = "telemetry-off"))
}
