//! Per-layer telemetry structs, the per-shard bundle, and the
//! process-wide [`TelemetryHub`] with snapshot/delta semantics.
//!
//! Layout mirrors the store's layers: `cache` / `merkle` / `mem` /
//! `store` per shard, plus process-wide `net` and `chaos` sections.
//! Recorders live in **untrusted memory** by design — telemetry is an
//! observability aid, not security metadata, so nothing here is
//! MAC-protected or charged to the simulated enclave (see DESIGN.md
//! §12).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::metrics::{Counter, Gauge, HistSnapshot, Histogram};
use crate::recorder::FlightRecorder;
use crate::span::{TraceHub, TraceSummary, DEFAULT_TRACE_CAPACITY};
use crate::trace::{SlowOp, SlowOpTracer};

/// Version of the snapshot layout carried on the wire.
///
/// v2 added the replication fields (`failovers`, `resyncs`,
/// `resync_bytes`, `replica_role`, `replica_lag`) to the store section
/// and grew the chaos site table to 8. v3 grew the net opcode table to
/// 10 (`hello`) and added the reactor fields (`reactor_conns`,
/// `tick_batch_size`, `reactor_ops`, `reactor_submissions`). v4 added
/// the tiering fields (`hot_entries`, `cold_entries`, `migrations`,
/// `compactions`, `checkpoints`, `cold_read_latency`) to the store
/// section and grew the chaos site table to 11 (durability log sites).
/// v5 added the overload fields (`admission_shed`,
/// `watchdog_quarantines`, `queue_delay_ns` to the store section;
/// `conns_disconnected_slow`, `ops_shed_deadline`, `ops_shed_overload`
/// to the net section) and grew the chaos site table to 12
/// (`shard_stall`). v6 grew the net opcode table to 11 (`trace`) and
/// added the `traces` section (span counts plus per-stage latency
/// histograms). v7 added the resharding fields (`routing_epoch`,
/// `migration_state`, `reshards_started`, `reshards_committed`,
/// `reshards_aborted` to the store section), grew the chaos site table
/// to 15 (`migration_stream_tamper`, `target_kill`,
/// `stale_epoch_replay`) and the net opcode table to 12 (`reshard`).
pub const SNAPSHOT_VERSION: u32 = 7;

/// Number of integrity-violation classes (mirrors the store's
/// `Violation` variants / wire error codes 1..=7).
pub const VIOLATION_CLASSES: usize = 7;

/// Stable names for the violation classes, indexable by class.
pub const VIOLATION_NAMES: [&str; VIOLATION_CLASSES] = [
    "merkle_mismatch",
    "entry_mac_mismatch",
    "counter_reuse",
    "unauthorized_deletion",
    "allocator_metadata",
    "corrupt_pointer",
    "data_destroyed",
];

/// Number of chaos fault-injection sites (mirrors
/// `aria_chaos::FaultSite` order).
pub const FAULT_SITES: usize = 15;

/// Stable names for the fault sites, indexable by `FaultSite as usize`.
pub const FAULT_SITE_NAMES: [&str; FAULT_SITES] = [
    "entry_flip",
    "torn_write",
    "stale_node_replay",
    "node_flip",
    "index_pointer_swap",
    "free_list_tamper",
    "primary_kill",
    "replica_divergence",
    "log_bit_flip",
    "torn_append",
    "stale_checkpoint_rollback",
    "shard_stall",
    "migration_stream_tamper",
    "target_kill",
    "stale_epoch_replay",
];

/// Number of tracked wire opcodes.
pub const NET_OPS: usize = 12;

/// Stable names for the tracked wire opcodes.
pub const NET_OP_NAMES: [&str; NET_OPS] = [
    "ping",
    "get",
    "put",
    "delete",
    "multi_get",
    "put_batch",
    "stats",
    "health",
    "metrics",
    "hello",
    "trace",
    "reshard",
];

/// Per-shard health-event ring capacity.
pub const HEALTH_EVENT_CAP: usize = 64;

/// Milliseconds since the Unix epoch (0 if the clock is before it).
pub fn unix_millis() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
}

// ---------------------------------------------------------------------------
// cache

/// Secure-cache recorders.
#[derive(Default)]
pub struct CacheTelemetry {
    /// Cache hits.
    pub hits: Counter,
    /// Cache misses.
    pub misses: Counter,
    /// Node admissions into the cache.
    pub inserts: Counter,
    /// Node evictions out of the cache.
    pub evictions: Counter,
    /// Evictions of dirty nodes (re-MAC + swap out).
    pub writebacks: Counter,
    /// Evictions of clean nodes (discarded without write-back).
    pub clean_discards: Counter,
    /// Bytes swapped into the cache from untrusted memory.
    pub swap_bytes_in: Counter,
    /// Bytes swapped out of the cache to untrusted memory.
    pub swap_bytes_out: Counter,
    /// Levels walked per miss before verification stopped.
    pub verify_depth: Histogram,
    /// Hit-ratio fallback engaged (swapping stopped).
    pub swap_stops: Counter,
    /// Swapping (re-)enabled.
    pub swap_starts: Counter,
}

/// Plain-data copy of [`CacheTelemetry`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheSnapshot {
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
    /// Admissions.
    pub inserts: u64,
    /// Evictions.
    pub evictions: u64,
    /// Dirty evictions.
    pub writebacks: u64,
    /// Clean evictions.
    pub clean_discards: u64,
    /// Bytes swapped in.
    pub swap_bytes_in: u64,
    /// Bytes swapped out.
    pub swap_bytes_out: u64,
    /// Verify-stop-depth histogram.
    pub verify_depth: HistSnapshot,
    /// Swapping stopped events.
    pub swap_stops: u64,
    /// Swapping started events.
    pub swap_starts: u64,
}

impl CacheTelemetry {
    /// Point-in-time copy.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.get(),
            misses: self.misses.get(),
            inserts: self.inserts.get(),
            evictions: self.evictions.get(),
            writebacks: self.writebacks.get(),
            clean_discards: self.clean_discards.get(),
            swap_bytes_in: self.swap_bytes_in.get(),
            swap_bytes_out: self.swap_bytes_out.get(),
            verify_depth: self.verify_depth.snapshot(),
            swap_stops: self.swap_stops.get(),
            swap_starts: self.swap_starts.get(),
        }
    }
}

impl CacheSnapshot {
    /// Hit ratio over all accesses (0 when none).
    pub fn hit_ratio(&self) -> f64 {
        let n = self.hits + self.misses;
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }

    /// Fold `other` in (all counters add).
    pub fn merge(&mut self, other: &CacheSnapshot) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.inserts += other.inserts;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.clean_discards += other.clean_discards;
        self.swap_bytes_in += other.swap_bytes_in;
        self.swap_bytes_out += other.swap_bytes_out;
        self.verify_depth.merge(&other.verify_depth);
        self.swap_stops += other.swap_stops;
        self.swap_starts += other.swap_starts;
    }

    /// Activity since `earlier` (saturating).
    pub fn delta(&self, earlier: &CacheSnapshot) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            inserts: self.inserts.saturating_sub(earlier.inserts),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            writebacks: self.writebacks.saturating_sub(earlier.writebacks),
            clean_discards: self.clean_discards.saturating_sub(earlier.clean_discards),
            swap_bytes_in: self.swap_bytes_in.saturating_sub(earlier.swap_bytes_in),
            swap_bytes_out: self.swap_bytes_out.saturating_sub(earlier.swap_bytes_out),
            verify_depth: self.verify_depth.delta(&earlier.verify_depth),
            swap_stops: self.swap_stops.saturating_sub(earlier.swap_stops),
            swap_starts: self.swap_starts.saturating_sub(earlier.swap_starts),
        }
    }
}

// ---------------------------------------------------------------------------
// merkle

/// Merkle-tree recorders.
#[derive(Default)]
pub struct MerkleTelemetry {
    /// MAC/hash computations performed.
    pub hash_ops: Counter,
    /// Nodes that passed verification.
    pub verified_nodes: Counter,
}

/// Plain-data copy of [`MerkleTelemetry`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MerkleSnapshot {
    /// MAC/hash computations.
    pub hash_ops: u64,
    /// Verified nodes.
    pub verified_nodes: u64,
}

impl MerkleTelemetry {
    /// Point-in-time copy.
    pub fn snapshot(&self) -> MerkleSnapshot {
        MerkleSnapshot { hash_ops: self.hash_ops.get(), verified_nodes: self.verified_nodes.get() }
    }
}

impl MerkleSnapshot {
    /// Fold `other` in.
    pub fn merge(&mut self, other: &MerkleSnapshot) {
        self.hash_ops += other.hash_ops;
        self.verified_nodes += other.verified_nodes;
    }

    /// Activity since `earlier`.
    pub fn delta(&self, earlier: &MerkleSnapshot) -> MerkleSnapshot {
        MerkleSnapshot {
            hash_ops: self.hash_ops.saturating_sub(earlier.hash_ops),
            verified_nodes: self.verified_nodes.saturating_sub(earlier.verified_nodes),
        }
    }
}

// ---------------------------------------------------------------------------
// mem

/// Untrusted-heap recorders.
#[derive(Default)]
pub struct MemTelemetry {
    /// Block allocations.
    pub allocs: Counter,
    /// Block frees.
    pub frees: Counter,
    /// Bytes allocated.
    pub alloc_bytes: Counter,
    /// Bytes freed.
    pub freed_bytes: Counter,
    /// Live bytes (gauge).
    pub live_bytes: Gauge,
    /// Free-buffer (free-list) occupancy in bytes (gauge).
    pub free_buffer_bytes: Gauge,
}

/// Plain-data copy of [`MemTelemetry`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MemSnapshot {
    /// Block allocations.
    pub allocs: u64,
    /// Block frees.
    pub frees: u64,
    /// Bytes allocated.
    pub alloc_bytes: u64,
    /// Bytes freed.
    pub freed_bytes: u64,
    /// Live bytes.
    pub live_bytes: u64,
    /// Free-buffer occupancy in bytes.
    pub free_buffer_bytes: u64,
}

impl MemTelemetry {
    /// Point-in-time copy.
    pub fn snapshot(&self) -> MemSnapshot {
        MemSnapshot {
            allocs: self.allocs.get(),
            frees: self.frees.get(),
            alloc_bytes: self.alloc_bytes.get(),
            freed_bytes: self.freed_bytes.get(),
            live_bytes: self.live_bytes.get(),
            free_buffer_bytes: self.free_buffer_bytes.get(),
        }
    }
}

impl MemSnapshot {
    /// Fold `other` in (gauges add: shard occupancies are disjoint).
    pub fn merge(&mut self, other: &MemSnapshot) {
        self.allocs += other.allocs;
        self.frees += other.frees;
        self.alloc_bytes += other.alloc_bytes;
        self.freed_bytes += other.freed_bytes;
        self.live_bytes += other.live_bytes;
        self.free_buffer_bytes += other.free_buffer_bytes;
    }

    /// Activity since `earlier`; gauges keep the current reading.
    pub fn delta(&self, earlier: &MemSnapshot) -> MemSnapshot {
        MemSnapshot {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            frees: self.frees.saturating_sub(earlier.frees),
            alloc_bytes: self.alloc_bytes.saturating_sub(earlier.alloc_bytes),
            freed_bytes: self.freed_bytes.saturating_sub(earlier.freed_bytes),
            live_bytes: self.live_bytes,
            free_buffer_bytes: self.free_buffer_bytes,
        }
    }
}

// ---------------------------------------------------------------------------
// store

/// One health-state transition with a wall-clock timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthTransition {
    /// Per-shard monotonic sequence number.
    pub seq: u64,
    /// Milliseconds since the Unix epoch.
    pub unix_millis: u64,
    /// State left (0 healthy, 1 quarantined, 2 recovering, 3 dead).
    pub from: u8,
    /// State entered.
    pub to: u8,
}

/// Display name for a health-state byte.
pub fn health_name(state: u8) -> &'static str {
    match state {
        0 => "healthy",
        1 => "quarantined",
        2 => "recovering",
        3 => "dead",
        _ => "unknown",
    }
}

/// Store-level (per-shard) recorders.
pub struct StoreTelemetry {
    /// Latency per amortized get, nanoseconds.
    pub get_latency: Histogram,
    /// Latency per amortized put, nanoseconds.
    pub put_latency: Histogram,
    /// Latency per delete, nanoseconds.
    pub delete_latency: Histogram,
    /// Ops per drained batch.
    pub batch_size: Histogram,
    /// Index cells (bucket heads / chain pointers) probed.
    pub index_probes: Counter,
    /// Live keys in the shard (gauge, refreshed per batch).
    pub keys_live: Gauge,
    /// Live encryption counters (gauge).
    pub counter_live: Gauge,
    /// Counter-area capacity (gauge).
    pub counter_capacity: Gauge,
    /// Current health state (gauge; see [`health_name`]).
    pub health_state: Gauge,
    /// Integrity violations by class (see [`VIOLATION_NAMES`]).
    pub violations: [Counter; VIOLATION_CLASSES],
    /// Completed primary promotions that landed on this replica slot.
    pub failovers: Counter,
    /// Completed anti-entropy re-sync re-admissions of this slot.
    pub resyncs: Counter,
    /// Bytes streamed per completed re-sync.
    pub resync_bytes: Histogram,
    /// Current replica role (gauge; 0 primary, 1 backup).
    pub replica_role: Gauge,
    /// Current replication lag in keys (gauge; 0 when in sync).
    pub replica_lag: Gauge,
    /// Entries resident in the hot (DRAM) tier (gauge; equals
    /// `keys_live` on untiered stores).
    pub hot_entries: Gauge,
    /// Entries resident only in the cold segment log (gauge; 0 on
    /// untiered stores).
    pub cold_entries: Gauge,
    /// Hot entries migrated to the cold tier.
    pub migrations: Counter,
    /// Log segments compacted.
    pub compactions: Counter,
    /// Verified checkpoints sealed to disk.
    pub checkpoints: Counter,
    /// Latency per cold-tier read (verified log read + promotion),
    /// nanoseconds.
    pub cold_read_latency: Histogram,
    /// Ops refused by admission control (queue-delay budget exceeded).
    pub admission_shed: Counter,
    /// Quarantines triggered by the stuck-shard watchdog (accepting
    /// work but retiring no batches within the watchdog window).
    pub watchdog_quarantines: Counter,
    /// Estimated queue delay for this shard's acting primary (gauge,
    /// nanoseconds; in-flight depth × EWMA per-op service time).
    pub queue_delay_ns: Gauge,
    /// Current routing epoch (gauge; identical on every slot of a
    /// store, bumps once per committed reshard migration).
    pub routing_epoch: Gauge,
    /// Reshard involvement of this slot's group (gauge; 0 = none,
    /// 1 = migration source, 2 = migration target).
    pub migration_state: Gauge,
    /// Reshard migrations started (counted on the source primary).
    pub reshards_started: Counter,
    /// Reshard migrations committed (epoch flipped).
    pub reshards_committed: Counter,
    /// Reshard migrations aborted (routing left untouched).
    pub reshards_aborted: Counter,
    health_seq: AtomicU64,
    health_events: Mutex<VecDeque<HealthTransition>>,
}

impl Default for StoreTelemetry {
    fn default() -> Self {
        StoreTelemetry {
            get_latency: Histogram::new(),
            put_latency: Histogram::new(),
            delete_latency: Histogram::new(),
            batch_size: Histogram::new(),
            index_probes: Counter::new(),
            keys_live: Gauge::new(),
            counter_live: Gauge::new(),
            counter_capacity: Gauge::new(),
            health_state: Gauge::new(),
            violations: Default::default(),
            failovers: Counter::new(),
            resyncs: Counter::new(),
            resync_bytes: Histogram::new(),
            replica_role: Gauge::new(),
            replica_lag: Gauge::new(),
            hot_entries: Gauge::new(),
            cold_entries: Gauge::new(),
            migrations: Counter::new(),
            compactions: Counter::new(),
            checkpoints: Counter::new(),
            cold_read_latency: Histogram::new(),
            admission_shed: Counter::new(),
            watchdog_quarantines: Counter::new(),
            queue_delay_ns: Gauge::new(),
            routing_epoch: Gauge::new(),
            migration_state: Gauge::new(),
            reshards_started: Counter::new(),
            reshards_committed: Counter::new(),
            reshards_aborted: Counter::new(),
            health_seq: AtomicU64::new(0),
            health_events: Mutex::new(VecDeque::new()),
        }
    }
}

impl StoreTelemetry {
    /// Record a health-state transition (slow path; takes a mutex).
    pub fn record_health_transition(&self, from: u8, to: u8) {
        self.health_state.set(to as u64);
        if !crate::enabled() {
            return;
        }
        let ev = HealthTransition {
            seq: self.health_seq.fetch_add(1, Ordering::Relaxed),
            unix_millis: unix_millis(),
            from,
            to,
        };
        let mut ring = match self.health_events.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if ring.len() == HEALTH_EVENT_CAP {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    /// Bump the violation counter for wire error class `class`
    /// (1..=7); out-of-range classes are ignored.
    pub fn record_violation(&self, class: u16) {
        if (1..=VIOLATION_CLASSES as u16).contains(&class) {
            self.violations[(class - 1) as usize].inc();
        }
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> StoreSnapshot {
        let health_events = {
            let ring = match self.health_events.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            ring.iter().cloned().collect()
        };
        StoreSnapshot {
            get_latency: self.get_latency.snapshot(),
            put_latency: self.put_latency.snapshot(),
            delete_latency: self.delete_latency.snapshot(),
            batch_size: self.batch_size.snapshot(),
            index_probes: self.index_probes.get(),
            keys_live: self.keys_live.get(),
            counter_live: self.counter_live.get(),
            counter_capacity: self.counter_capacity.get(),
            health_state: self.health_state.get(),
            violations: self.violations.iter().map(|c| c.get()).collect(),
            failovers: self.failovers.get(),
            resyncs: self.resyncs.get(),
            resync_bytes: self.resync_bytes.snapshot(),
            replica_role: self.replica_role.get(),
            replica_lag: self.replica_lag.get(),
            hot_entries: self.hot_entries.get(),
            cold_entries: self.cold_entries.get(),
            migrations: self.migrations.get(),
            compactions: self.compactions.get(),
            checkpoints: self.checkpoints.get(),
            cold_read_latency: self.cold_read_latency.snapshot(),
            admission_shed: self.admission_shed.get(),
            watchdog_quarantines: self.watchdog_quarantines.get(),
            queue_delay_ns: self.queue_delay_ns.get(),
            routing_epoch: self.routing_epoch.get(),
            migration_state: self.migration_state.get(),
            reshards_started: self.reshards_started.get(),
            reshards_committed: self.reshards_committed.get(),
            reshards_aborted: self.reshards_aborted.get(),
            health_events,
        }
    }
}

/// Plain-data copy of [`StoreTelemetry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreSnapshot {
    /// Get latency histogram (nanoseconds).
    pub get_latency: HistSnapshot,
    /// Put latency histogram (nanoseconds).
    pub put_latency: HistSnapshot,
    /// Delete latency histogram (nanoseconds).
    pub delete_latency: HistSnapshot,
    /// Batch-size histogram (ops per drain).
    pub batch_size: HistSnapshot,
    /// Index probes.
    pub index_probes: u64,
    /// Live keys.
    pub keys_live: u64,
    /// Live encryption counters.
    pub counter_live: u64,
    /// Counter-area capacity.
    pub counter_capacity: u64,
    /// Current health state.
    pub health_state: u64,
    /// Violations by class (`VIOLATION_CLASSES` entries).
    pub violations: Vec<u64>,
    /// Completed failovers onto this slot.
    pub failovers: u64,
    /// Completed re-sync re-admissions of this slot.
    pub resyncs: u64,
    /// Bytes streamed per completed re-sync.
    pub resync_bytes: HistSnapshot,
    /// Replica role (0 primary, 1 backup).
    pub replica_role: u64,
    /// Replication lag in keys.
    pub replica_lag: u64,
    /// Entries resident in the hot tier.
    pub hot_entries: u64,
    /// Entries resident only in the cold log.
    pub cold_entries: u64,
    /// Hot entries migrated cold.
    pub migrations: u64,
    /// Log segments compacted.
    pub compactions: u64,
    /// Verified checkpoints sealed.
    pub checkpoints: u64,
    /// Cold-read latency histogram (nanoseconds).
    pub cold_read_latency: HistSnapshot,
    /// Ops refused by admission control.
    pub admission_shed: u64,
    /// Watchdog-triggered quarantines.
    pub watchdog_quarantines: u64,
    /// Estimated queue delay, nanoseconds.
    pub queue_delay_ns: u64,
    /// Current routing epoch.
    pub routing_epoch: u64,
    /// Reshard involvement (0 = none, 1 = source, 2 = target).
    pub migration_state: u64,
    /// Reshard migrations started.
    pub reshards_started: u64,
    /// Reshard migrations committed.
    pub reshards_committed: u64,
    /// Reshard migrations aborted.
    pub reshards_aborted: u64,
    /// Recent health transitions, oldest first.
    pub health_events: Vec<HealthTransition>,
}

impl Default for StoreSnapshot {
    fn default() -> Self {
        StoreSnapshot {
            get_latency: HistSnapshot::empty(),
            put_latency: HistSnapshot::empty(),
            delete_latency: HistSnapshot::empty(),
            batch_size: HistSnapshot::empty(),
            index_probes: 0,
            keys_live: 0,
            counter_live: 0,
            counter_capacity: 0,
            health_state: 0,
            violations: vec![0; VIOLATION_CLASSES],
            failovers: 0,
            resyncs: 0,
            resync_bytes: HistSnapshot::empty(),
            replica_role: 0,
            replica_lag: 0,
            hot_entries: 0,
            cold_entries: 0,
            migrations: 0,
            compactions: 0,
            checkpoints: 0,
            cold_read_latency: HistSnapshot::empty(),
            admission_shed: 0,
            watchdog_quarantines: 0,
            queue_delay_ns: 0,
            routing_epoch: 0,
            migration_state: 0,
            reshards_started: 0,
            reshards_committed: 0,
            reshards_aborted: 0,
            health_events: Vec::new(),
        }
    }
}

impl StoreSnapshot {
    /// Fold `other` in (latency histograms merge; gauges add — per-shard
    /// occupancies are disjoint; health events concatenate).
    pub fn merge(&mut self, other: &StoreSnapshot) {
        self.get_latency.merge(&other.get_latency);
        self.put_latency.merge(&other.put_latency);
        self.delete_latency.merge(&other.delete_latency);
        self.batch_size.merge(&other.batch_size);
        self.index_probes += other.index_probes;
        self.keys_live += other.keys_live;
        self.counter_live += other.counter_live;
        self.counter_capacity += other.counter_capacity;
        self.health_state = self.health_state.max(other.health_state);
        for (a, b) in self.violations.iter_mut().zip(&other.violations) {
            *a += *b;
        }
        self.failovers += other.failovers;
        self.resyncs += other.resyncs;
        self.resync_bytes.merge(&other.resync_bytes);
        // Roles/lags aggregate pessimistically: any backup → backup,
        // worst lag wins.
        self.replica_role = self.replica_role.max(other.replica_role);
        self.replica_lag = self.replica_lag.max(other.replica_lag);
        self.hot_entries += other.hot_entries;
        self.cold_entries += other.cold_entries;
        self.migrations += other.migrations;
        self.compactions += other.compactions;
        self.checkpoints += other.checkpoints;
        self.cold_read_latency.merge(&other.cold_read_latency);
        self.admission_shed += other.admission_shed;
        self.watchdog_quarantines += other.watchdog_quarantines;
        // Queue delay aggregates pessimistically: the worst shard's
        // backlog is what callers of the hot key will actually see.
        self.queue_delay_ns = self.queue_delay_ns.max(other.queue_delay_ns);
        // One store publishes the same epoch on every slot; merging by
        // max keeps that reading (and prefers the newest if a snapshot
        // races a flip).
        self.routing_epoch = self.routing_epoch.max(other.routing_epoch);
        self.migration_state = self.migration_state.max(other.migration_state);
        self.reshards_started += other.reshards_started;
        self.reshards_committed += other.reshards_committed;
        self.reshards_aborted += other.reshards_aborted;
        self.health_events.extend(other.health_events.iter().cloned());
    }

    /// Activity since `earlier`; gauges keep the current reading and
    /// health events are filtered to those newer than `earlier`'s.
    pub fn delta(&self, earlier: &StoreSnapshot) -> StoreSnapshot {
        let horizon = earlier.health_events.last().map(|e| e.seq);
        StoreSnapshot {
            get_latency: self.get_latency.delta(&earlier.get_latency),
            put_latency: self.put_latency.delta(&earlier.put_latency),
            delete_latency: self.delete_latency.delta(&earlier.delete_latency),
            batch_size: self.batch_size.delta(&earlier.batch_size),
            index_probes: self.index_probes.saturating_sub(earlier.index_probes),
            keys_live: self.keys_live,
            counter_live: self.counter_live,
            counter_capacity: self.counter_capacity,
            health_state: self.health_state,
            violations: self
                .violations
                .iter()
                .zip(&earlier.violations)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            failovers: self.failovers.saturating_sub(earlier.failovers),
            resyncs: self.resyncs.saturating_sub(earlier.resyncs),
            resync_bytes: self.resync_bytes.delta(&earlier.resync_bytes),
            replica_role: self.replica_role,
            replica_lag: self.replica_lag,
            hot_entries: self.hot_entries,
            cold_entries: self.cold_entries,
            migrations: self.migrations.saturating_sub(earlier.migrations),
            compactions: self.compactions.saturating_sub(earlier.compactions),
            checkpoints: self.checkpoints.saturating_sub(earlier.checkpoints),
            cold_read_latency: self.cold_read_latency.delta(&earlier.cold_read_latency),
            admission_shed: self.admission_shed.saturating_sub(earlier.admission_shed),
            watchdog_quarantines: self
                .watchdog_quarantines
                .saturating_sub(earlier.watchdog_quarantines),
            queue_delay_ns: self.queue_delay_ns,
            routing_epoch: self.routing_epoch,
            migration_state: self.migration_state,
            reshards_started: self.reshards_started.saturating_sub(earlier.reshards_started),
            reshards_committed: self.reshards_committed.saturating_sub(earlier.reshards_committed),
            reshards_aborted: self.reshards_aborted.saturating_sub(earlier.reshards_aborted),
            health_events: self
                .health_events
                .iter()
                .filter(|e| horizon.map_or(true, |h| e.seq > h))
                .cloned()
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// net

/// Network service recorders (process-wide).
pub struct NetTelemetry {
    /// Per-opcode request latency, nanoseconds (see [`NET_OP_NAMES`]).
    pub op_latency: [Histogram; NET_OPS],
    /// Requests decoded but not yet answered.
    pub inflight: Gauge,
    /// Frame bytes read off sockets.
    pub frame_bytes_in: Counter,
    /// Frame bytes written to sockets.
    pub frame_bytes_out: Counter,
    /// Connections rejected at the accept gate.
    pub rejected_connections: Counter,
    /// Connections dropped for idling past the read timeout.
    pub timed_out_connections: Counter,
    /// Connections currently pinned to reactor threads (gauge; 0 on
    /// the thread-per-connection engine).
    pub reactor_conns: Gauge,
    /// Decoded store ops handed off per reactor tick (only ticks that
    /// submitted at least one op are recorded).
    pub tick_batch_size: Histogram,
    /// Store ops served through coalesced reactor tick batches.
    pub reactor_ops: Counter,
    /// Store submissions made by reactors (one per shard with work per
    /// tick). `reactor_ops / reactor_submissions` is the coalesce
    /// ratio: average ops amortized over one store hand-off.
    pub reactor_submissions: Counter,
    /// Connections dropped because the peer read replies too slowly
    /// (write-deadline expiry while flushing).
    pub conns_disconnected_slow: Counter,
    /// Data ops shed because the client's deadline had already expired
    /// when the server looked at them (decode or sojourn check).
    pub ops_shed_deadline: Counter,
    /// Data ops shed by net-layer overload control (CoDel-style
    /// sojourn shedding at the reactor tick). Store-side admission
    /// refusals are counted separately in the store section.
    pub ops_shed_overload: Counter,
}

impl Default for NetTelemetry {
    fn default() -> Self {
        NetTelemetry {
            op_latency: std::array::from_fn(|_| Histogram::new()),
            inflight: Gauge::new(),
            frame_bytes_in: Counter::new(),
            frame_bytes_out: Counter::new(),
            rejected_connections: Counter::new(),
            timed_out_connections: Counter::new(),
            reactor_conns: Gauge::new(),
            tick_batch_size: Histogram::new(),
            reactor_ops: Counter::new(),
            reactor_submissions: Counter::new(),
            conns_disconnected_slow: Counter::new(),
            ops_shed_deadline: Counter::new(),
            ops_shed_overload: Counter::new(),
        }
    }
}

/// Plain-data copy of [`NetTelemetry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetSnapshot {
    /// Per-opcode latency histograms (`NET_OPS` entries).
    pub op_latency: Vec<HistSnapshot>,
    /// In-flight request depth.
    pub inflight: u64,
    /// Frame bytes in.
    pub frame_bytes_in: u64,
    /// Frame bytes out.
    pub frame_bytes_out: u64,
    /// Rejected connections.
    pub rejected_connections: u64,
    /// Timed-out connections.
    pub timed_out_connections: u64,
    /// Connections currently pinned to reactors.
    pub reactor_conns: u64,
    /// Ops handed off per reactor tick.
    pub tick_batch_size: HistSnapshot,
    /// Ops served through reactor tick batches.
    pub reactor_ops: u64,
    /// Store submissions made by reactors.
    pub reactor_submissions: u64,
    /// Connections dropped for reading replies too slowly.
    pub conns_disconnected_slow: u64,
    /// Data ops shed at the net layer for expired deadlines.
    pub ops_shed_deadline: u64,
    /// Data ops shed by net-layer sojourn shedding.
    pub ops_shed_overload: u64,
}

impl Default for NetSnapshot {
    fn default() -> Self {
        NetSnapshot {
            op_latency: vec![HistSnapshot::empty(); NET_OPS],
            inflight: 0,
            frame_bytes_in: 0,
            frame_bytes_out: 0,
            rejected_connections: 0,
            timed_out_connections: 0,
            reactor_conns: 0,
            tick_batch_size: HistSnapshot::empty(),
            reactor_ops: 0,
            reactor_submissions: 0,
            conns_disconnected_slow: 0,
            ops_shed_deadline: 0,
            ops_shed_overload: 0,
        }
    }
}

impl NetTelemetry {
    /// Point-in-time copy.
    pub fn snapshot(&self) -> NetSnapshot {
        NetSnapshot {
            op_latency: self.op_latency.iter().map(|h| h.snapshot()).collect(),
            inflight: self.inflight.get(),
            frame_bytes_in: self.frame_bytes_in.get(),
            frame_bytes_out: self.frame_bytes_out.get(),
            rejected_connections: self.rejected_connections.get(),
            timed_out_connections: self.timed_out_connections.get(),
            reactor_conns: self.reactor_conns.get(),
            tick_batch_size: self.tick_batch_size.snapshot(),
            reactor_ops: self.reactor_ops.get(),
            reactor_submissions: self.reactor_submissions.get(),
            conns_disconnected_slow: self.conns_disconnected_slow.get(),
            ops_shed_deadline: self.ops_shed_deadline.get(),
            ops_shed_overload: self.ops_shed_overload.get(),
        }
    }
}

impl NetSnapshot {
    /// Average decoded ops amortized over one reactor → store
    /// submission (0 when the reactor engine is idle or unused).
    pub fn coalesce_ratio(&self) -> f64 {
        if self.reactor_submissions == 0 {
            0.0
        } else {
            self.reactor_ops as f64 / self.reactor_submissions as f64
        }
    }

    /// Activity since `earlier`; the gauges keep their readings.
    pub fn delta(&self, earlier: &NetSnapshot) -> NetSnapshot {
        NetSnapshot {
            op_latency: self
                .op_latency
                .iter()
                .zip(&earlier.op_latency)
                .map(|(a, b)| a.delta(b))
                .collect(),
            inflight: self.inflight,
            frame_bytes_in: self.frame_bytes_in.saturating_sub(earlier.frame_bytes_in),
            frame_bytes_out: self.frame_bytes_out.saturating_sub(earlier.frame_bytes_out),
            rejected_connections: self
                .rejected_connections
                .saturating_sub(earlier.rejected_connections),
            timed_out_connections: self
                .timed_out_connections
                .saturating_sub(earlier.timed_out_connections),
            reactor_conns: self.reactor_conns,
            tick_batch_size: self.tick_batch_size.delta(&earlier.tick_batch_size),
            reactor_ops: self.reactor_ops.saturating_sub(earlier.reactor_ops),
            reactor_submissions: self
                .reactor_submissions
                .saturating_sub(earlier.reactor_submissions),
            conns_disconnected_slow: self
                .conns_disconnected_slow
                .saturating_sub(earlier.conns_disconnected_slow),
            ops_shed_deadline: self.ops_shed_deadline.saturating_sub(earlier.ops_shed_deadline),
            ops_shed_overload: self.ops_shed_overload.saturating_sub(earlier.ops_shed_overload),
        }
    }
}

// ---------------------------------------------------------------------------
// chaos

/// Chaos-engine recorders (process-wide).
#[derive(Default)]
pub struct ChaosTelemetry {
    /// Faults injected per site (see [`FAULT_SITE_NAMES`]).
    pub injected: [Counter; FAULT_SITES],
}

/// Plain-data copy of [`ChaosTelemetry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSnapshot {
    /// Injected faults per site (`FAULT_SITES` entries).
    pub injected: Vec<u64>,
}

impl Default for ChaosSnapshot {
    fn default() -> Self {
        ChaosSnapshot { injected: vec![0; FAULT_SITES] }
    }
}

impl ChaosTelemetry {
    /// Bump the injected counter for `site` (ignored out of range).
    pub fn record_injection(&self, site: usize) {
        if site < FAULT_SITES {
            self.injected[site].inc();
        }
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> ChaosSnapshot {
        ChaosSnapshot { injected: self.injected.iter().map(|c| c.get()).collect() }
    }
}

impl ChaosSnapshot {
    /// Activity since `earlier`.
    pub fn delta(&self, earlier: &ChaosSnapshot) -> ChaosSnapshot {
        ChaosSnapshot {
            injected: self
                .injected
                .iter()
                .zip(&earlier.injected)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// shard bundle + hub

/// One shard's telemetry: independently `Arc`-shared handles per layer
/// so each layer stores only the piece it records into.
pub struct ShardTelemetry {
    /// Secure-cache section.
    pub cache: Arc<CacheTelemetry>,
    /// Merkle section.
    pub merkle: Arc<MerkleTelemetry>,
    /// Untrusted-heap section.
    pub mem: Arc<MemTelemetry>,
    /// Store section.
    pub store: Arc<StoreTelemetry>,
}

impl Default for ShardTelemetry {
    fn default() -> Self {
        ShardTelemetry {
            cache: Arc::new(CacheTelemetry::default()),
            merkle: Arc::new(MerkleTelemetry::default()),
            mem: Arc::new(MemTelemetry::default()),
            store: Arc::new(StoreTelemetry::default()),
        }
    }
}

impl ShardTelemetry {
    /// Point-in-time copy of all four sections.
    pub fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            cache: self.cache.snapshot(),
            merkle: self.merkle.snapshot(),
            mem: self.mem.snapshot(),
            store: self.store.snapshot(),
        }
    }
}

/// Plain-data copy of one shard's telemetry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardSnapshot {
    /// Secure-cache section.
    pub cache: CacheSnapshot,
    /// Merkle section.
    pub merkle: MerkleSnapshot,
    /// Untrusted-heap section.
    pub mem: MemSnapshot,
    /// Store section.
    pub store: StoreSnapshot,
}

impl ShardSnapshot {
    /// Fold `other` in.
    pub fn merge(&mut self, other: &ShardSnapshot) {
        self.cache.merge(&other.cache);
        self.merkle.merge(&other.merkle);
        self.mem.merge(&other.mem);
        self.store.merge(&other.store);
    }

    /// Activity since `earlier`.
    pub fn delta(&self, earlier: &ShardSnapshot) -> ShardSnapshot {
        ShardSnapshot {
            cache: self.cache.delta(&earlier.cache),
            merkle: self.merkle.delta(&earlier.merkle),
            mem: self.mem.delta(&earlier.mem),
            store: self.store.delta(&earlier.store),
        }
    }
}

/// Process-wide telemetry: per-shard bundles plus the net and chaos
/// sections, the slow-op tracer, the span rings, and the flight
/// recorder.
pub struct TelemetryHub {
    /// Per-shard bundles.
    pub shards: Vec<Arc<ShardTelemetry>>,
    /// Network section.
    pub net: Arc<NetTelemetry>,
    /// Chaos section.
    pub chaos: Arc<ChaosTelemetry>,
    /// Slow-op ring.
    pub slow_ops: Arc<SlowOpTracer>,
    /// Per-shard span rings (end-to-end request tracing).
    pub traces: Arc<TraceHub>,
    /// Black-box event ring + anomaly dump renderer.
    pub recorder: Arc<FlightRecorder>,
}

impl TelemetryHub {
    /// Hub over existing per-shard bundles (e.g. from a running
    /// `ShardedStore`).
    pub fn new(shards: Vec<Arc<ShardTelemetry>>) -> Self {
        let slow_ops = Arc::new(SlowOpTracer::default());
        Self::with_parts(shards, slow_ops)
    }

    /// Hub with `n` freshly created shard bundles.
    pub fn with_shards(n: usize) -> Self {
        Self::new((0..n).map(|_| Arc::new(ShardTelemetry::default())).collect())
    }

    /// Hub over existing shard bundles *and* an existing slow-op tracer
    /// (the one the store's workers already record into).
    pub fn with_parts(shards: Vec<Arc<ShardTelemetry>>, slow_ops: Arc<SlowOpTracer>) -> Self {
        let n = shards.len();
        TelemetryHub {
            shards,
            net: Arc::new(NetTelemetry::default()),
            chaos: Arc::new(ChaosTelemetry::default()),
            slow_ops,
            traces: Arc::new(TraceHub::new(n.max(1), DEFAULT_TRACE_CAPACITY)),
            recorder: Arc::new(FlightRecorder::default()),
        }
    }

    /// Point-in-time copy of everything.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let (slow_ops, slow_dropped) = self.slow_ops.snapshot();
        TelemetrySnapshot {
            version: SNAPSHOT_VERSION,
            unix_millis: unix_millis(),
            shards: self.shards.iter().map(|s| s.snapshot()).collect(),
            net: self.net.snapshot(),
            chaos: self.chaos.snapshot(),
            slow_ops,
            slow_dropped,
            traces: self.traces.summary(),
        }
    }
}

/// Versioned, plain-data, wire-encodable copy of the whole hub.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Snapshot layout version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Capture time, milliseconds since the Unix epoch.
    pub unix_millis: u64,
    /// Per-shard sections.
    pub shards: Vec<ShardSnapshot>,
    /// Network section.
    pub net: NetSnapshot,
    /// Chaos section.
    pub chaos: ChaosSnapshot,
    /// Recent slow ops, oldest first.
    pub slow_ops: Vec<SlowOp>,
    /// Slow ops dropped from the ring.
    pub slow_dropped: u64,
    /// Trace section: sampled-span volume and per-stage latency.
    pub traces: TraceSummary,
}

impl Default for TelemetrySnapshot {
    fn default() -> Self {
        TelemetrySnapshot {
            version: SNAPSHOT_VERSION,
            unix_millis: 0,
            shards: Vec::new(),
            net: NetSnapshot::default(),
            chaos: ChaosSnapshot::default(),
            slow_ops: Vec::new(),
            slow_dropped: 0,
            traces: TraceSummary::default(),
        }
    }
}

impl TelemetrySnapshot {
    /// All shard sections merged into one (for aggregate dashboards).
    pub fn aggregate(&self) -> ShardSnapshot {
        let mut agg = ShardSnapshot::default();
        for s in &self.shards {
            agg.merge(s);
        }
        agg
    }

    /// Activity since `earlier`. Shards are matched by index; shards
    /// missing from `earlier` are reported in full. Slow ops are
    /// filtered to those newer than `earlier`'s latest.
    pub fn delta(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        let empty = ShardSnapshot::default();
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| s.delta(earlier.shards.get(i).unwrap_or(&empty)))
            .collect();
        let horizon = earlier.slow_ops.last().map(|o| o.seq);
        TelemetrySnapshot {
            version: self.version,
            unix_millis: self.unix_millis,
            shards,
            net: self.net.delta(&earlier.net),
            chaos: self.chaos.delta(&earlier.chaos),
            slow_ops: self
                .slow_ops
                .iter()
                .filter(|o| horizon.map_or(true, |h| o.seq > h))
                .cloned()
                .collect(),
            slow_dropped: self.slow_dropped.saturating_sub(earlier.slow_dropped),
            traces: self.traces.delta(&earlier.traces),
        }
    }

    /// Debug-build counter-invariant checks, run on the export paths.
    /// Exact only for quiesced snapshots (exports are scraped after
    /// load in tests and CI), hence `debug_assert` rather than `Err`.
    pub fn debug_validate(&self) {
        if cfg!(not(debug_assertions)) {
            return;
        }
        let mut hists: Vec<(&str, &HistSnapshot)> = Vec::new();
        for (i, s) in self.shards.iter().enumerate() {
            debug_assert!(
                s.mem.frees <= s.mem.allocs,
                "shard {i}: frees ({}) exceed allocs ({})",
                s.mem.frees,
                s.mem.allocs
            );
            debug_assert!(
                s.cache.verify_depth.count() <= s.cache.hits + s.cache.misses,
                "shard {i}: more verify walks than cache accesses"
            );
            debug_assert!(
                s.cache.writebacks + s.cache.clean_discards <= s.cache.evictions,
                "shard {i}: eviction kinds exceed evictions"
            );
            hists.push(("verify_depth", &s.cache.verify_depth));
            hists.push(("get_latency", &s.store.get_latency));
            hists.push(("put_latency", &s.store.put_latency));
            hists.push(("delete_latency", &s.store.delete_latency));
            hists.push(("batch_size", &s.store.batch_size));
        }
        for h in &self.net.op_latency {
            hists.push(("net_op_latency", h));
        }
        hists.push(("tick_batch_size", &self.net.tick_batch_size));
        for h in &self.traces.stage_nanos {
            hists.push(("trace_stage_nanos", h));
        }
        for (name, h) in hists {
            let (lo, hi) = h.sum_bounds();
            debug_assert!(
                lo <= h.sum && h.sum <= hi,
                "histogram {name}: sum {} outside bucket-implied bounds [{lo}, {hi}]",
                h.sum
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_snapshot_shapes() {
        let hub = TelemetryHub::with_shards(3);
        let s = hub.snapshot();
        assert_eq!(s.version, SNAPSHOT_VERSION);
        assert_eq!(s.shards.len(), 3);
        assert_eq!(s.net.op_latency.len(), NET_OPS);
        assert_eq!(s.chaos.injected.len(), FAULT_SITES);
        assert_eq!(s.shards[0].store.violations.len(), VIOLATION_CLASSES);
        s.debug_validate();
    }

    #[test]
    fn health_ring_caps() {
        let t = StoreTelemetry::default();
        for i in 0..(HEALTH_EVENT_CAP as u8) {
            t.record_health_transition(i % 4, (i + 1) % 4);
        }
        t.record_health_transition(0, 3);
        let s = t.snapshot();
        if crate::enabled() {
            assert_eq!(s.health_events.len(), HEALTH_EVENT_CAP);
            assert_eq!(s.health_events.last().unwrap().to, 3);
            assert!(s.health_events.windows(2).all(|w| w[0].seq < w[1].seq));
            assert_eq!(s.health_state, 3);
        }
    }

    #[test]
    fn aggregate_and_delta() {
        let hub = TelemetryHub::with_shards(2);
        hub.shards[0].cache.hits.add(10);
        hub.shards[1].cache.hits.add(5);
        hub.shards[1].cache.misses.add(5);
        let a = hub.snapshot();
        hub.shards[0].cache.hits.add(3);
        let b = hub.snapshot();
        if crate::enabled() {
            assert_eq!(a.aggregate().cache.hits, 15);
            let d = b.delta(&a);
            assert_eq!(d.aggregate().cache.hits, 3);
            assert_eq!(d.aggregate().cache.misses, 0);
        }
    }
}
