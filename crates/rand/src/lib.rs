//! Vendored stand-in for the `rand` crate, covering exactly the API
//! surface this workspace uses (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool, fill}`), so the workspace builds
//! with no network access to a registry.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — the same
//! construction rand's `SmallRng` uses — which passes the statistical
//! checks our workload tests rely on (zipfian skew shares, read-ratio
//! tolerances). It is **not** cryptographically secure; nothing in the
//! workspace asks it to be (all crypto lives in `aria-crypto`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from an `RngCore` ("standard"
/// distribution: full range for integers, `[0, 1)` for floats).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let width = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let width = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % width) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// `RngCore` (including unsized ones, so `&mut R` works generically).
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fill a byte slice with random bytes.
    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(1..=13);
            assert!((1..=13).contains(&y));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_look_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn unsized_rng_usable_through_generics() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..100)
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(draw(&mut rng) < 100);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
