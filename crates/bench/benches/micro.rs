//! Micro-benchmarks for the building blocks: crypto primitives, Merkle
//! verification, Secure Cache hit/miss paths, the user-space allocator,
//! store operations and workload sampling.
//!
//! These measure *wall time* of the implementation (the figure binaries
//! report simulated cycles); they exist to keep the harness fast and to
//! catch performance regressions in the hot paths. The harness is
//! self-contained (median-of-samples timing loop) so the workspace
//! builds offline, without criterion.

use std::sync::Arc;
use std::time::Instant;

use aria_cache::{CacheConfig, SecureCache};
use aria_crypto::{Aes128, CipherSuite, CmacKey, RealSuite};
use aria_mem::{AllocStrategy, UserHeap};
use aria_merkle::MerkleTree;
use aria_shieldstore::ShieldStore;
use aria_sim::{CostModel, Enclave};
use aria_store::{AriaHash, AriaTree, KvStore, StoreConfig};
use aria_workload::{encode_key, value_bytes, ScrambledZipfian};

const SAMPLES: usize = 7;
const MIN_SAMPLE_NANOS: u128 = 20_000_000; // 20 ms per sample

/// Time `f` (which must consume its result, e.g. via `std::hint::black_box`)
/// and print ns/iter as the median over `SAMPLES` batches.
fn bench(name: &str, mut f: impl FnMut()) {
    // Warm up and size the batch so one sample runs ≥ MIN_SAMPLE_NANOS.
    let mut batch = 1u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        let elapsed = t0.elapsed().as_nanos();
        if elapsed >= MIN_SAMPLE_NANOS || batch >= 1 << 30 {
            break;
        }
        batch = if elapsed == 0 { batch * 128 } else { (batch * 2).max(1) };
    }
    let mut per_iter: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..batch {
                f();
            }
            t0.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    println!("{name:<28} {median:>12.1} ns/iter   ({batch} iters/sample)");
}

fn enclave() -> Arc<Enclave> {
    Arc::new(Enclave::new(CostModel::default(), 512 << 20))
}

fn bench_crypto() {
    let aes = Aes128::new(&[7u8; 16]);
    let mut block = [0x42u8; 16];
    bench("aes128_block", || {
        aes.encrypt_block(&mut block);
        std::hint::black_box(block[0]);
    });

    let cmac = CmacKey::new(&[9u8; 16]);
    let msg = vec![0xabu8; 128];
    bench("cmac_128B", || {
        std::hint::black_box(cmac.mac(&msg));
    });

    let suite = RealSuite::from_master(&[3u8; 16]);
    let mut data = vec![0u8; 512];
    bench("ctr_crypt_512B", || {
        suite.crypt(&[1u8; 16], &mut data);
        std::hint::black_box(data[0]);
    });
}

fn bench_merkle() {
    let suite = Arc::new(RealSuite::from_master(&[5u8; 16]));
    let tree = MerkleTree::new(100_000, 8, suite, 1);
    bench("merkle_verify_path", || {
        std::hint::black_box(tree.verify_path_plain(tree.locate_counter(42_424).0));
    });

    let suite = Arc::new(RealSuite::from_master(&[5u8; 16]));
    let mut tree = MerkleTree::new(100_000, 8, suite, 1);
    let mut i = 0u64;
    bench("merkle_update_counter", || {
        i = (i + 7919) % 100_000;
        tree.update_counter_plain(i, &[i as u8; 16]);
    });
}

fn bench_cache() {
    let suite = Arc::new(RealSuite::from_master(&[5u8; 16]));
    let tree = MerkleTree::new(100_000, 8, suite, 1);
    let mut cache = SecureCache::new(tree, enclave(), CacheConfig::with_capacity(8 << 20)).unwrap();
    cache.get_counter(1).unwrap();
    bench("secure_cache_hit", || {
        std::hint::black_box(cache.get_counter(1).unwrap());
    });

    let suite = Arc::new(RealSuite::from_master(&[5u8; 16]));
    let tree = MerkleTree::new(100_000, 8, suite, 1);
    let cfg = CacheConfig { capacity_bytes: 64 * 1024, ..CacheConfig::default() };
    let mut cache = SecureCache::new(tree, enclave(), cfg).unwrap();
    let mut i = 0u64;
    bench("secure_cache_miss_verify", || {
        // Stride large enough to defeat the tiny cache: every access
        // verifies.
        i = (i + 8_111) % 100_000;
        std::hint::black_box(cache.get_counter(i).unwrap());
    });
}

fn bench_alloc() {
    let mut heap = UserHeap::new(enclave(), AllocStrategy::UserSpace);
    bench("user_heap_alloc_free_128B", || {
        let p = heap.alloc(128).unwrap();
        heap.free(p).unwrap();
    });
}

fn bench_stores() {
    let mut cfg = StoreConfig::for_keys(100_000);
    cfg.cache = CacheConfig::with_capacity(16 << 20);
    let mut store = AriaHash::new(cfg, enclave()).unwrap();
    for i in 0..100_000u64 {
        store.put(&encode_key(i), &value_bytes(i, 16)).unwrap();
    }
    let mut i = 0u64;
    bench("aria_hash_get_hot", || {
        i = (i + 1) % 64;
        std::hint::black_box(store.get(&encode_key(i)).unwrap());
    });
    let mut i = 0u64;
    bench("aria_hash_put_16B", || {
        i = (i + 7919) % 100_000;
        store.put(&encode_key(i), &value_bytes(i ^ 1, 16)).unwrap();
    });

    let mut cfg = StoreConfig::for_keys(100_000);
    cfg.cache = CacheConfig::with_capacity(16 << 20);
    cfg.btree_order = 15;
    let mut tree = AriaTree::new(cfg, enclave()).unwrap();
    for i in 0..20_000u64 {
        tree.put(&encode_key(i), &value_bytes(i, 16)).unwrap();
    }
    let mut i = 0u64;
    bench("aria_tree_get", || {
        i = (i + 7919) % 20_000;
        std::hint::black_box(tree.get(&encode_key(i)).unwrap());
    });

    let mut shield = ShieldStore::new(50_000, enclave()).unwrap();
    for i in 0..100_000u64 {
        shield.put(&encode_key(i), &value_bytes(i, 16)).unwrap();
    }
    let mut i = 0u64;
    bench("shieldstore_get", || {
        i = (i + 7919) % 100_000;
        std::hint::black_box(shield.get(&encode_key(i)).unwrap());
    });
}

fn bench_workload() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let zipf = ScrambledZipfian::new(10_000_000, 0.99);
    let mut rng = StdRng::seed_from_u64(7);
    bench("zipf_sample_10M", || {
        let mut acc = 0u64;
        for _ in 0..100 {
            acc ^= zipf.next(&mut rng);
        }
        std::hint::black_box(acc);
    });
}

fn main() {
    println!("{:<28} {:>12}", "benchmark", "median");
    bench_crypto();
    bench_merkle();
    bench_cache();
    bench_alloc();
    bench_stores();
    bench_workload();
}
