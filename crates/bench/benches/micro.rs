//! Criterion micro-benchmarks for the building blocks: crypto
//! primitives, Merkle verification, Secure Cache hit/miss paths, the
//! user-space allocator, store operations and workload sampling.
//!
//! These measure *wall time* of the implementation (the figure binaries
//! report simulated cycles); they exist to keep the harness fast and to
//! catch performance regressions in the hot paths.

use std::rc::Rc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use aria_cache::{CacheConfig, SecureCache};
use aria_crypto::{Aes128, CipherSuite, CmacKey, RealSuite};
use aria_mem::{AllocStrategy, UserHeap};
use aria_merkle::MerkleTree;
use aria_shieldstore::ShieldStore;
use aria_sim::{CostModel, Enclave};
use aria_store::{AriaHash, AriaTree, KvStore, StoreConfig};
use aria_workload::{encode_key, value_bytes, ScrambledZipfian};

fn enclave() -> Rc<Enclave> {
    Rc::new(Enclave::new(CostModel::default(), 512 << 20))
}

fn bench_crypto(c: &mut Criterion) {
    let aes = Aes128::new(&[7u8; 16]);
    c.bench_function("aes128_block", |b| {
        let mut block = [0x42u8; 16];
        b.iter(|| {
            aes.encrypt_block(&mut block);
            block[0]
        })
    });

    let cmac = CmacKey::new(&[9u8; 16]);
    let msg = vec![0xabu8; 128];
    c.bench_function("cmac_128B", |b| b.iter(|| cmac.mac(&msg)));

    let suite = RealSuite::from_master(&[3u8; 16]);
    let mut data = vec![0u8; 512];
    c.bench_function("ctr_crypt_512B", |b| b.iter(|| suite.crypt(&[1u8; 16], &mut data)));
}

fn bench_merkle(c: &mut Criterion) {
    let suite = Rc::new(RealSuite::from_master(&[5u8; 16]));
    let tree = MerkleTree::new(100_000, 8, suite, 1);
    c.bench_function("merkle_verify_path", |b| {
        b.iter(|| tree.verify_path_plain(tree.locate_counter(42_424).0))
    });
    let suite = Rc::new(RealSuite::from_master(&[5u8; 16]));
    let mut tree = MerkleTree::new(100_000, 8, suite, 1);
    let mut i = 0u64;
    c.bench_function("merkle_update_counter", |b| {
        b.iter(|| {
            i = (i + 7919) % 100_000;
            tree.update_counter_plain(i, &[i as u8; 16]);
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    let suite = Rc::new(RealSuite::from_master(&[5u8; 16]));
    let tree = MerkleTree::new(100_000, 8, suite, 1);
    let mut cache =
        SecureCache::new(tree, enclave(), CacheConfig::with_capacity(8 << 20)).unwrap();
    cache.get_counter(1).unwrap();
    c.bench_function("secure_cache_hit", |b| b.iter(|| cache.get_counter(1).unwrap()));

    let suite = Rc::new(RealSuite::from_master(&[5u8; 16]));
    let tree = MerkleTree::new(100_000, 8, suite, 1);
    let cfg = CacheConfig { capacity_bytes: 64 * 1024, ..CacheConfig::default() };
    let mut cache = SecureCache::new(tree, enclave(), cfg).unwrap();
    let mut i = 0u64;
    c.bench_function("secure_cache_miss_verify", |b| {
        b.iter(|| {
            // Stride large enough to defeat the tiny cache: every access
            // verifies.
            i = (i + 8_111) % 100_000;
            cache.get_counter(i).unwrap()
        })
    });
}

fn bench_alloc(c: &mut Criterion) {
    let mut heap = UserHeap::new(enclave(), AllocStrategy::UserSpace);
    c.bench_function("user_heap_alloc_free_128B", |b| {
        b.iter(|| {
            let p = heap.alloc(128).unwrap();
            heap.free(p).unwrap();
        })
    });
}

fn bench_stores(c: &mut Criterion) {
    let mut cfg = StoreConfig::for_keys(100_000);
    cfg.cache = CacheConfig::with_capacity(16 << 20);
    let mut store = AriaHash::new(cfg, enclave()).unwrap();
    for i in 0..100_000u64 {
        store.put(&encode_key(i), &value_bytes(i, 16)).unwrap();
    }
    let mut i = 0u64;
    c.bench_function("aria_hash_get_hot", |b| {
        b.iter(|| {
            i = (i + 1) % 64;
            store.get(&encode_key(i)).unwrap()
        })
    });
    let mut i = 0u64;
    c.bench_function("aria_hash_put_16B", |b| {
        b.iter(|| {
            i = (i + 7919) % 100_000;
            store.put(&encode_key(i), &value_bytes(i ^ 1, 16)).unwrap()
        })
    });

    let mut cfg = StoreConfig::for_keys(100_000);
    cfg.cache = CacheConfig::with_capacity(16 << 20);
    cfg.btree_order = 15;
    let mut tree = AriaTree::new(cfg, enclave()).unwrap();
    for i in 0..20_000u64 {
        tree.put(&encode_key(i), &value_bytes(i, 16)).unwrap();
    }
    let mut i = 0u64;
    c.bench_function("aria_tree_get", |b| {
        b.iter(|| {
            i = (i + 7919) % 20_000;
            tree.get(&encode_key(i)).unwrap()
        })
    });

    let mut shield = ShieldStore::new(50_000, enclave()).unwrap();
    for i in 0..100_000u64 {
        shield.put(&encode_key(i), &value_bytes(i, 16)).unwrap();
    }
    let mut i = 0u64;
    c.bench_function("shieldstore_get", |b| {
        b.iter(|| {
            i = (i + 7919) % 100_000;
            shield.get(&encode_key(i)).unwrap()
        })
    });
}

fn bench_workload(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let zipf = ScrambledZipfian::new(10_000_000, 0.99);
    c.bench_function("zipf_sample_10M", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(7),
            |mut rng| {
                let mut acc = 0u64;
                for _ in 0..100 {
                    acc ^= zipf.next(&mut rng);
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_crypto, bench_merkle, bench_cache, bench_alloc, bench_stores, bench_workload
}
criterion_main!(benches);
