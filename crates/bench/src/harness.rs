//! Shared experiment runner: builds any of the paper's design schemes,
//! loads a keyspace, replays a workload, and reports simulated
//! throughput plus diagnostic counters.

use std::sync::Arc;

use aria_cache::{CacheConfig, EvictionPolicy, SwapMode};
use aria_crypto::{CipherSuite, FastSuite};
use aria_mem::AllocStrategy;
use aria_shieldstore::ShieldStore;
use aria_sim::{CostModel, Enclave, EnclaveSnapshot, DEFAULT_EPC_BYTES};
use aria_store::{
    AriaBPlusTree, AriaHash, AriaTree, BaselineStore, KvStore, Scheme, StoreConfig, StoreError,
};
use aria_workload::{
    encode_key, value_bytes, EtcConfig, EtcWorkload, KeyDistribution, Request, YcsbConfig,
    YcsbWorkload,
};

/// Which design scheme to run (paper §VI "Compared Schemes").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// Full Aria with the hash index.
    AriaHash,
    /// Aria w/o Cache (counters in a hardware-paged EPC array), hash index.
    AriaHashWoCache,
    /// Full Aria with the B-tree index.
    AriaTree,
    /// Aria w/o Cache with the B-tree index.
    AriaTreeWoCache,
    /// The B+-tree extension (paper future work): chained leaves +
    /// separately encrypted routing keys.
    AriaBPlus,
    /// Whole store inside the enclave.
    Baseline,
    /// ShieldStore (bucket-granularity verification).
    Shield,
}

impl StoreKind {
    /// Display label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            StoreKind::AriaHash => "Aria",
            StoreKind::AriaHashWoCache => "Aria w/o Cache",
            StoreKind::AriaTree => "Aria (tree)",
            StoreKind::AriaTreeWoCache => "Aria w/o Cache (tree)",
            StoreKind::AriaBPlus => "Aria (B+-tree)",
            StoreKind::Baseline => "Baseline",
            StoreKind::Shield => "ShieldStore",
        }
    }
}

/// Workload selection.
#[derive(Debug, Clone)]
pub enum Workload {
    /// YCSB grid point.
    Ycsb {
        /// Get fraction.
        read_ratio: f64,
        /// Fixed value bytes.
        value_len: usize,
        /// Key popularity.
        dist: KeyDistribution,
    },
    /// Facebook ETC pool.
    Etc {
        /// Get fraction.
        read_ratio: f64,
        /// Zipf skew over the hot partition.
        theta: f64,
    },
}

/// One experiment configuration point.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Distinct keys loaded before measurement.
    pub keys: u64,
    /// Measured requests.
    pub ops: u64,
    /// Request mix.
    pub workload: Workload,
    /// EPC budget for the enclave.
    pub epc_bytes: usize,
    /// Secure Cache capacity; `None` = "as much EPC as possible".
    pub cache_bytes: Option<usize>,
    /// Merkle arity.
    pub arity: usize,
    /// Aria hash buckets; `None` = keys/2.
    pub aria_buckets: Option<usize>,
    /// ShieldStore buckets; `None` = scaled 4M (64 MB of roots at full
    /// scale).
    pub shield_buckets: Option<usize>,
    /// B-tree order.
    pub btree_order: usize,
    /// Untrusted allocation strategy (Ocall = the `AriaBase` ablation).
    pub alloc: AllocStrategy,
    /// Secure Cache replacement policy.
    pub policy: EvictionPolicy,
    /// Pinned Merkle levels.
    pub pinned_levels: u32,
    /// Secure Cache swap mode.
    pub swap_mode: SwapMode,
    /// Enable the §IV-C semantic swap optimizations.
    pub semantic_opts: bool,
    /// Zero all SGX-specific costs ("Aria w/o SGX").
    pub no_sgx: bool,
    /// Use the fast cipher suite (harness wall-time only).
    pub fast_crypto: bool,
    /// Workload seed.
    pub seed: u64,
    /// Scale divisor actually applied (recorded in results).
    pub scale: f64,
    /// Unmeasured warm-up requests before the measured phase (`None` =
    /// same as `ops`), letting the Secure Cache reach steady state.
    pub warmup: Option<u64>,
}

impl RunConfig {
    /// The paper's default setup at a given scale divisor: 10 M keys,
    /// 91 MB EPC, zipfian 0.99, 95 % reads, 16-byte values.
    pub fn paper_default(scale: f64) -> RunConfig {
        RunConfig {
            keys: (10_000_000f64 / scale) as u64,
            ops: 200_000,
            workload: Workload::Ycsb {
                read_ratio: 0.95,
                value_len: 16,
                dist: KeyDistribution::Zipfian { theta: 0.99 },
            },
            epc_bytes: (DEFAULT_EPC_BYTES as f64 / scale) as usize,
            cache_bytes: None,
            arity: 8,
            aria_buckets: None,
            shield_buckets: None,
            btree_order: 15,
            alloc: AllocStrategy::UserSpace,
            policy: EvictionPolicy::Fifo,
            pinned_levels: 3,
            swap_mode: SwapMode::Auto,
            semantic_opts: true,
            no_sgx: false,
            fast_crypto: false,
            seed: 0x5eed,
            scale,
            warmup: None,
        }
    }

    fn aria_bucket_count(&self) -> usize {
        // Load factor ~2, but bounded so the in-EPC per-bucket counts
        // (1 B each) never exceed a quarter of the EPC budget — the same
        // discipline that fixes ShieldStore's root count. Beyond the cap,
        // chains grow with the keyspace (as in the paper's Figure 13).
        self.aria_buckets.unwrap_or_else(|| {
            let by_keys = ((self.keys / 2).max(64) as usize).next_power_of_two();
            let by_epc = (self.epc_bytes / 4).max(64).next_power_of_two();
            by_keys.min(by_epc)
        })
    }

    fn shield_bucket_count(&self) -> usize {
        // 4 M roots at full scale, scaled down with everything else.
        self.shield_buckets.unwrap_or(((4_000_000f64 / self.scale) as usize).max(64))
    }

    fn value_len_for(&self, id: u64) -> usize {
        match &self.workload {
            Workload::Ycsb { value_len, .. } => *value_len,
            Workload::Etc { .. } => EtcWorkload::value_len_for(self.keys, id),
        }
    }

    /// Estimate the EPC left for the Secure Cache after the other trusted
    /// structures take their share ("the content of Secure Cache is set
    /// as large as possible", §VI).
    pub fn auto_cache_bytes(&self) -> usize {
        let counter_capacity = self.keys + self.keys / 8 + 1024;
        let counter_bitmap = (counter_capacity as usize).div_ceil(64) * 8;
        let buckets = self.aria_bucket_count();
        // Heap bitmap estimate: sealed entries plus B-tree nodes.
        let avg_value = match &self.workload {
            Workload::Ycsb { value_len, .. } => *value_len,
            Workload::Etc { .. } => 64,
        };
        let block = (40 + 16 + avg_value).next_power_of_two().max(32);
        let blocks_per_chunk = (4 << 20) / block;
        let chunks = ((self.keys as usize * block) >> 22) + 2;
        let heap_bitmaps = chunks * blocks_per_chunk.div_ceil(64) * 8;
        let margin = (self.epc_bytes / 16).max(128 * 1024);
        let reserved = buckets + counter_bitmap + heap_bitmaps + margin;
        self.epc_bytes.saturating_sub(reserved).max(64 * 1024)
    }

    fn cache_config(&self) -> CacheConfig {
        CacheConfig {
            capacity_bytes: self.cache_bytes.unwrap_or_else(|| self.auto_cache_bytes()),
            policy: self.policy,
            pinned_levels: self.pinned_levels,
            swap_mode: self.swap_mode,
            stop_swap_threshold: 0.70,
            stop_swap_window: 50_000,
            swap_without_encryption: self.semantic_opts,
            skip_clean_writeback: self.semantic_opts,
        }
    }

    fn store_config(&self, scheme: Scheme) -> StoreConfig {
        StoreConfig {
            scheme,
            counter_capacity: self.keys + self.keys / 8 + 1024,
            arity: self.arity,
            cache: self.cache_config(),
            expansion_cache_bytes: 1 << 20,
            buckets: self.aria_bucket_count(),
            btree_order: self.btree_order,
            alloc: self.alloc,
            master_key: [0x42; 16],
            seed: self.seed,
            hot_budget_bytes: None,
        }
    }

    fn cost_model(&self) -> CostModel {
        if self.no_sgx {
            CostModel::no_sgx()
        } else {
            CostModel::default()
        }
    }

    fn suite(&self) -> Option<Arc<dyn CipherSuite>> {
        if self.fast_crypto {
            Some(Arc::new(FastSuite::from_master(&[0x42; 16])))
        } else {
            None
        }
    }
}

/// Result of one configuration point.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Scheme label.
    pub kind: &'static str,
    /// Simulated ops/s over the measured phase.
    pub throughput: f64,
    /// Simulated cycles spent in the measured phase.
    pub cycles: u64,
    /// Measured requests.
    pub ops: u64,
    /// Enclave counters over the measured phase.
    pub snapshot: EnclaveSnapshot,
    /// Secure Cache statistics (cached schemes only), over the whole run.
    pub cache: Option<aria_store::CacheStats>,
    /// Page faults during the measured phase.
    pub page_faults: u64,
    /// EPC bytes in use at the end of the run.
    pub epc_used: usize,
}

impl RunResult {
    /// Secure Cache lifetime hit ratio, if the scheme runs one.
    pub fn cache_hit_ratio(&self) -> Option<f64> {
        self.cache.map(|c| c.hit_ratio())
    }

    /// Whether the Secure Cache was still swapping at the end.
    pub fn cache_swapping(&self) -> Option<bool> {
        self.cache.map(|c| c.swapping)
    }
}

/// ShieldStore adapter so every scheme drives through [`KvStore`].
pub struct ShieldAdapter(pub ShieldStore);

impl KvStore for ShieldAdapter {
    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.0
            .put(key, value)
            .map_err(|_| StoreError::Integrity(aria_store::Violation::EntryMacMismatch))
    }

    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        self.0.get(key).map_err(|_| StoreError::Integrity(aria_store::Violation::EntryMacMismatch))
    }

    fn delete(&mut self, key: &[u8]) -> Result<bool, StoreError> {
        self.0
            .delete(key)
            .map_err(|_| StoreError::Integrity(aria_store::Violation::EntryMacMismatch))
    }

    fn len(&self) -> u64 {
        self.0.len()
    }

    fn enclave(&self) -> &Arc<Enclave> {
        self.0.enclave()
    }
}

fn build(kind: StoreKind, cfg: &RunConfig, enclave: Arc<Enclave>) -> Box<dyn KvStore> {
    match kind {
        StoreKind::AriaHash => Box::new(
            AriaHash::with_suite(cfg.store_config(Scheme::Aria), enclave, cfg.suite())
                .expect("aria-hash construction"),
        ),
        StoreKind::AriaHashWoCache => Box::new(
            AriaHash::with_suite(cfg.store_config(Scheme::AriaWithoutCache), enclave, cfg.suite())
                .expect("aria-hash w/o cache construction"),
        ),
        StoreKind::AriaTree => Box::new(
            AriaTree::with_suite(cfg.store_config(Scheme::Aria), enclave, cfg.suite())
                .expect("aria-tree construction"),
        ),
        StoreKind::AriaTreeWoCache => Box::new(
            AriaTree::with_suite(cfg.store_config(Scheme::AriaWithoutCache), enclave, cfg.suite())
                .expect("aria-tree w/o cache construction"),
        ),
        StoreKind::AriaBPlus => Box::new(
            AriaBPlusTree::with_suite(cfg.store_config(Scheme::Aria), enclave, cfg.suite())
                .expect("aria-b+tree construction"),
        ),
        StoreKind::Baseline => {
            let avg_value = match &cfg.workload {
                Workload::Ycsb { value_len, .. } => *value_len,
                Workload::Etc { .. } => 64,
            };
            let expected = cfg.keys as usize * (16 + avg_value + 48);
            Box::new(BaselineStore::new(enclave, expected))
        }
        StoreKind::Shield => Box::new(ShieldAdapter(
            ShieldStore::with_suite(cfg.shield_bucket_count(), enclave, cfg.suite())
                .expect("shieldstore construction"),
        )),
    }
}

/// Load the keyspace, replay the workload, report simulated throughput.
pub fn run(kind: StoreKind, cfg: &RunConfig) -> RunResult {
    let enclave = Arc::new(Enclave::new(cfg.cost_model(), cfg.epc_bytes));
    let mut store = build(kind, cfg, Arc::clone(&enclave));

    // Load phase (not measured).
    for id in 0..cfg.keys {
        let key = encode_key(id);
        let value = value_bytes(id, cfg.value_len_for(id));
        store.put(&key, &value).expect("load put");
    }
    enclave.reset_metrics();

    // Warm-up (unmeasured) + measured phase over one generator stream.
    let warmup = cfg.warmup.unwrap_or(cfg.ops);
    let start_cycles;
    match &cfg.workload {
        Workload::Ycsb { read_ratio, value_len, dist } => {
            let mut wl = YcsbWorkload::new(YcsbConfig {
                keyspace: cfg.keys,
                read_ratio: *read_ratio,
                value_len: *value_len,
                distribution: dist.clone(),
                seed: cfg.seed,
            });
            for _ in 0..warmup {
                dispatch(store.as_mut(), wl.next_request());
            }
            enclave.reset_metrics();
            start_cycles = enclave.cycles();
            for _ in 0..cfg.ops {
                dispatch(store.as_mut(), wl.next_request());
            }
        }
        Workload::Etc { read_ratio, theta } => {
            let mut wl = EtcWorkload::new(EtcConfig {
                keyspace: cfg.keys,
                read_ratio: *read_ratio,
                theta: *theta,
                seed: cfg.seed,
            });
            for _ in 0..warmup {
                dispatch(store.as_mut(), wl.next_request());
            }
            enclave.reset_metrics();
            start_cycles = enclave.cycles();
            for _ in 0..cfg.ops {
                dispatch(store.as_mut(), wl.next_request());
            }
        }
    }

    let cycles = enclave.cycles() - start_cycles;
    let snapshot = enclave.snapshot();
    RunResult {
        kind: kind.label(),
        throughput: enclave.cost().throughput(cfg.ops, cycles),
        cycles,
        ops: cfg.ops,
        snapshot: snapshot.clone(),
        cache: store.cache_stats(),
        page_faults: snapshot.page_faults,
        epc_used: enclave.epc_used() + enclave.resident_paged_bytes(),
    }
}

fn dispatch(store: &mut dyn KvStore, req: Request) {
    match req {
        Request::Get { id } => {
            let got = store.get(&encode_key(id)).expect("get");
            debug_assert!(got.is_some(), "loaded key {id} missing");
        }
        Request::Put { id, value_len } => {
            store.put(&encode_key(id), &value_bytes(id ^ 0xfeed, value_len)).expect("put");
        }
    }
}

/// Convenience: percentage improvement of `a` over `b`.
pub fn improvement(a: f64, b: f64) -> f64 {
    (a / b - 1.0) * 100.0
}
