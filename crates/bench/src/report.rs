//! Result reporting: aligned console tables plus machine-readable JSONL
//! rows that EXPERIMENTS.md is regenerated from.

use std::fs;
use std::io::Write;
use std::path::Path;

use serde::Serialize;

use crate::harness::RunResult;

/// One emitted result row.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Experiment id (e.g. "fig9").
    pub experiment: String,
    /// Series label (e.g. "Aria", "ShieldStore").
    pub series: String,
    /// X-axis point (e.g. "RD_95/16B/skew").
    pub x: String,
    /// Simulated ops/s.
    pub throughput: f64,
    /// Simulated cycles in the measured phase.
    pub cycles: u64,
    /// Measured requests.
    pub ops: u64,
    /// Page faults during measurement.
    pub page_faults: u64,
    /// MACs computed during measurement.
    pub macs: u64,
    /// EPC bytes in use.
    pub epc_used: usize,
}

impl Row {
    /// Build a row from a run result.
    pub fn new(experiment: &str, series: &str, x: &str, r: &RunResult) -> Row {
        Row {
            experiment: experiment.to_string(),
            series: series.to_string(),
            x: x.to_string(),
            throughput: r.throughput,
            cycles: r.cycles,
            ops: r.ops,
            page_faults: r.page_faults,
            macs: r.snapshot.macs_computed,
            epc_used: r.epc_used,
        }
    }
}

/// Append rows to `<out>/<experiment>.jsonl`.
pub fn write_jsonl(out_dir: &str, experiment: &str, rows: &[Row]) {
    let dir = Path::new(out_dir);
    if fs::create_dir_all(dir).is_err() {
        eprintln!("warning: cannot create {out_dir}; results not persisted");
        return;
    }
    let path = dir.join(format!("{experiment}.jsonl"));
    let mut file = match fs::OpenOptions::new().create(true).append(true).open(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("warning: cannot open {path:?}: {e}");
            return;
        }
    };
    for row in rows {
        let line = serde_json::to_string(row).expect("serializable row");
        let _ = writeln!(file, "{line}");
    }
    println!("\nresults appended to {}", path.display());
}

/// Human-readable ops/s (e.g. "1.23M", "456k").
pub fn fmt_tput(t: f64) -> String {
    if t >= 1e6 {
        format!("{:.2}M", t / 1e6)
    } else if t >= 1e3 {
        format!("{:.0}k", t / 1e3)
    } else {
        format!("{t:.0}")
    }
}

/// Print an aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", cell, w = widths.get(i).copied().unwrap_or(8)));
        }
        s.trim_end().to_string()
    };
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", line(&head));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + widths.len() * 2));
    for row in rows {
        println!("{}", line(row));
    }
}
