//! Result reporting: aligned console tables plus machine-readable JSONL
//! rows that EXPERIMENTS.md is regenerated from.

use std::fs;
use std::io::Write;
use std::path::Path;

use crate::harness::RunResult;

/// One emitted result row.
#[derive(Debug)]
pub struct Row {
    /// Experiment id (e.g. "fig9").
    pub experiment: String,
    /// Series label (e.g. "Aria", "ShieldStore").
    pub series: String,
    /// X-axis point (e.g. "RD_95/16B/skew").
    pub x: String,
    /// Simulated ops/s.
    pub throughput: f64,
    /// Simulated cycles in the measured phase.
    pub cycles: u64,
    /// Measured requests.
    pub ops: u64,
    /// Page faults during measurement.
    pub page_faults: u64,
    /// MACs computed during measurement.
    pub macs: u64,
    /// EPC bytes in use.
    pub epc_used: usize,
}

impl Row {
    /// Build a row from a run result.
    pub fn new(experiment: &str, series: &str, x: &str, r: &RunResult) -> Row {
        Row {
            experiment: experiment.to_string(),
            series: series.to_string(),
            x: x.to_string(),
            throughput: r.throughput,
            cycles: r.cycles,
            ops: r.ops,
            page_faults: r.page_faults,
            macs: r.snapshot.macs_computed,
            epc_used: r.epc_used,
        }
    }

    /// The row as one JSON object (hand-written: the workspace builds
    /// offline, without serde).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"experiment\":{},\"series\":{},\"x\":{},\"throughput\":{},\"cycles\":{},\
             \"ops\":{},\"page_faults\":{},\"macs\":{},\"epc_used\":{}}}",
            json_str(&self.experiment),
            json_str(&self.series),
            json_str(&self.x),
            json_f64(self.throughput),
            self.cycles,
            self.ops,
            self.page_faults,
            self.macs,
            self.epc_used,
        )
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no NaN/Infinity; null keeps rows parseable.
        "null".to_string()
    }
}

/// Append rows to `<out>/<experiment>.jsonl`.
pub fn write_jsonl(out_dir: &str, experiment: &str, rows: &[Row]) {
    let dir = Path::new(out_dir);
    if fs::create_dir_all(dir).is_err() {
        eprintln!("warning: cannot create {out_dir}; results not persisted");
        return;
    }
    let path = dir.join(format!("{experiment}.jsonl"));
    let mut file = match fs::OpenOptions::new().create(true).append(true).open(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("warning: cannot open {path:?}: {e}");
            return;
        }
    };
    for row in rows {
        let _ = writeln!(file, "{}", row.to_json());
    }
    println!("\nresults appended to {}", path.display());
}

/// Human-readable ops/s (e.g. "1.23M", "456k").
pub fn fmt_tput(t: f64) -> String {
    if t >= 1e6 {
        format!("{:.2}M", t / 1e6)
    } else if t >= 1e3 {
        format!("{:.0}k", t / 1e3)
    } else {
        format!("{t:.0}")
    }
}

/// Print an aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", cell, w = widths.get(i).copied().unwrap_or(8)));
        }
        s.trim_end().to_string()
    };
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", line(&head));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + widths.len() * 2));
    for row in rows {
        println!("{}", line(row));
    }
}
