//! Result reporting: aligned console tables plus machine-readable JSONL
//! rows that EXPERIMENTS.md is regenerated from.

use std::fs;
use std::io::Write;
use std::path::Path;
use std::sync::OnceLock;

use crate::harness::RunResult;

/// Version of the emitted JSON row layout. Bump when a field changes
/// meaning or is removed (adding fields is backward compatible):
///
/// * 1 — the unversioned PR-1 layout (implicit).
/// * 2 — added `schema_version` and `git_rev` to every row.
/// * 3 — netbench points and the chaosbench document embed a
///   `telemetry` snapshot (counters + trimmed histogram bucket arrays,
///   see `aria_telemetry::TelemetrySnapshot::to_json`).
pub const SCHEMA_VERSION: u32 = 3;

/// The git revision results are stamped with, so `results/*.json*` and
/// committed `BENCH_*` snapshots stay comparable across PRs. Resolution
/// order: `ARIA_GIT_REV` env override, `git rev-parse --short HEAD`,
/// else `"unknown"` (results must still be writable from a tarball).
pub fn git_rev() -> &'static str {
    static REV: OnceLock<String> = OnceLock::new();
    REV.get_or_init(|| {
        if let Ok(rev) = std::env::var("ARIA_GIT_REV") {
            if !rev.is_empty() {
                return rev;
            }
        }
        std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string())
    })
}

/// One emitted result row.
#[derive(Debug)]
pub struct Row {
    /// Experiment id (e.g. "fig9").
    pub experiment: String,
    /// Series label (e.g. "Aria", "ShieldStore").
    pub series: String,
    /// X-axis point (e.g. "RD_95/16B/skew").
    pub x: String,
    /// Simulated ops/s.
    pub throughput: f64,
    /// Simulated cycles in the measured phase.
    pub cycles: u64,
    /// Measured requests.
    pub ops: u64,
    /// Page faults during measurement.
    pub page_faults: u64,
    /// MACs computed during measurement.
    pub macs: u64,
    /// EPC bytes in use.
    pub epc_used: usize,
}

impl Row {
    /// Build a row from a run result.
    pub fn new(experiment: &str, series: &str, x: &str, r: &RunResult) -> Row {
        Row {
            experiment: experiment.to_string(),
            series: series.to_string(),
            x: x.to_string(),
            throughput: r.throughput,
            cycles: r.cycles,
            ops: r.ops,
            page_faults: r.page_faults,
            macs: r.snapshot.macs_computed,
            epc_used: r.epc_used,
        }
    }

    /// The row as one JSON object (hand-written: the workspace builds
    /// offline, without serde).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema_version\":{SCHEMA_VERSION},\"git_rev\":{},\"experiment\":{},\
             \"series\":{},\"x\":{},\"throughput\":{},\"cycles\":{},\
             \"ops\":{},\"page_faults\":{},\"macs\":{},\"epc_used\":{}}}",
            json_str(git_rev()),
            json_str(&self.experiment),
            json_str(&self.series),
            json_str(&self.x),
            json_f64(self.throughput),
            self.cycles,
            self.ops,
            self.page_faults,
            self.macs,
            self.epc_used,
        )
    }
}

/// Quote + escape a string for hand-written JSON (the workspace builds
/// offline, without serde).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a float for JSON (`null` for NaN/Infinity, which JSON lacks).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no NaN/Infinity; null keeps rows parseable.
        "null".to_string()
    }
}

/// Append rows to `<out>/<experiment>.jsonl`.
pub fn write_jsonl(out_dir: &str, experiment: &str, rows: &[Row]) {
    let dir = Path::new(out_dir);
    if fs::create_dir_all(dir).is_err() {
        eprintln!("warning: cannot create {out_dir}; results not persisted");
        return;
    }
    let path = dir.join(format!("{experiment}.jsonl"));
    let mut file = match fs::OpenOptions::new().create(true).append(true).open(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("warning: cannot open {path:?}: {e}");
            return;
        }
    };
    for row in rows {
        let _ = writeln!(file, "{}", row.to_json());
    }
    println!("\nresults appended to {}", path.display());
}

/// Count the `aria-flight-*.json` post-mortems under `dir` and read
/// the newest one (filenames embed the unix-millis stamp, so the
/// lexicographically last is the newest). `None` when the directory
/// is missing or holds no dumps.
pub fn newest_flight_dump(dir: &std::path::Path) -> Option<(usize, std::path::PathBuf, String)> {
    let mut dumps: Vec<std::path::PathBuf> = fs::read_dir(dir)
        .ok()?
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("aria-flight-") && n.ends_with(".json"))
        })
        .collect();
    dumps.sort();
    let newest = dumps.last()?.clone();
    let body = fs::read_to_string(&newest).ok()?;
    Some((dumps.len(), newest, body))
}

/// Human-readable ops/s (e.g. "1.23M", "456k").
pub fn fmt_tput(t: f64) -> String {
    if t >= 1e6 {
        format!("{:.2}M", t / 1e6)
    } else if t >= 1e3 {
        format!("{:.0}k", t / 1e3)
    } else {
        format!("{t:.0}")
    }
}

/// Print an aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", cell, w = widths.get(i).copied().unwrap_or(8)));
        }
        s.trim_end().to_string()
    };
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", line(&head));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + widths.len() * 2));
    for row in rows {
        println!("{}", line(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_carry_schema_version_and_git_rev() {
        let row = Row {
            experiment: "exp".to_string(),
            series: "s".to_string(),
            x: "x".to_string(),
            throughput: 1.5,
            cycles: 2,
            ops: 3,
            page_faults: 4,
            macs: 5,
            epc_used: 6,
        };
        let json = row.to_json();
        assert!(json.starts_with(&format!("{{\"schema_version\":{SCHEMA_VERSION},")), "{json}");
        assert!(json.contains("\"git_rev\":\""), "{json}");
        assert!(json.contains("\"experiment\":\"exp\""), "{json}");
        assert!(!git_rev().is_empty());
    }
}
