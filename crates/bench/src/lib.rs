//! Benchmark harness regenerating every table and figure of the Aria
//! paper's evaluation (§VI). Each figure has a dedicated binary under
//! `src/bin/`; shared machinery lives here:
//!
//! * [`harness`] — build any compared scheme, load a keyspace, replay a
//!   workload, report simulated throughput.
//! * [`args`] — the common `--scale/--ops/--fast/--out` CLI.
//! * [`report`] — aligned tables + JSONL rows for EXPERIMENTS.md.
//!
//! Run e.g. `cargo run --release -p aria-bench --bin fig9` (add
//! `--full` for the paper's exact sizes; the default `--scale 16`
//! shrinks keyspace, EPC and ShieldStore roots by the same factor, which
//! preserves every ratio the figures depend on).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod harness;
pub mod report;

pub use args::Args;
pub use harness::{improvement, run, RunConfig, RunResult, StoreKind, Workload};
pub use report::{
    fmt_tput, git_rev, json_f64, json_str, newest_flight_dump, print_table, write_jsonl, Row,
    SCHEMA_VERSION,
};
