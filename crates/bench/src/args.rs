//! Minimal command-line parsing for the figure binaries.
//!
//! Every binary accepts:
//!
//! * `--scale <f>` — divide the paper's keyspace/EPC/roots by `f`
//!   (default 16, sized for a laptop; `--full` is `--scale 1`).
//! * `--ops <n>` — measured requests per configuration point.
//! * `--fast` — use the harness-only fast cipher suite (identical code
//!   paths; reported throughput is unaffected because costs come from
//!   the cycle model).
//! * `--out <dir>` — where JSONL result rows are written
//!   (default `results/`).
//! * `--seed <n>` — workload RNG seed.

use std::collections::HashMap;

/// Parsed arguments.
#[derive(Debug, Clone)]
pub struct Args {
    kv: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse `std::env::args()`.
    pub fn parse() -> Args {
        Args::from_vec(std::env::args().skip(1).collect())
    }

    /// Parse an explicit argument vector.
    pub fn from_vec(argv: Vec<String>) -> Args {
        let mut kv = HashMap::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    kv.insert(name.to_string(), argv[i + 1].clone());
                    i += 2;
                } else {
                    flags.push(name.to_string());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Args { kv, flags }
    }

    /// Boolean flag present?
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Typed value with default.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.kv.get(name).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// String value with default.
    pub fn get_str(&self, name: &str, default: &str) -> String {
        self.kv.get(name).cloned().unwrap_or_else(|| default.to_string())
    }

    /// The scale divisor: `--full` = 1, else `--scale` (default 16).
    pub fn scale(&self) -> f64 {
        if self.flag("full") {
            1.0
        } else {
            self.get("scale", 16.0f64).max(1.0)
        }
    }

    /// Measured operations per point (default 200k, `--ops`).
    pub fn ops(&self) -> u64 {
        self.get("ops", 200_000u64)
    }

    /// Whether to use the fast cipher suite.
    pub fn fast(&self) -> bool {
        self.flag("fast")
    }

    /// Output directory for JSONL rows.
    pub fn out_dir(&self) -> String {
        self.get_str("out", "results")
    }

    /// Workload seed.
    pub fn seed(&self) -> u64 {
        self.get("seed", 0x5eed_u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from(argv: &[&str]) -> Args {
        Args::from_vec(argv.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn values_flags_and_defaults() {
        let a = from(&["--scale", "8", "--fast", "--ops", "5000"]);
        assert_eq!(a.scale(), 8.0);
        assert!(a.fast());
        assert_eq!(a.ops(), 5000);
        assert_eq!(a.out_dir(), "results");
        assert!(!a.flag("full"));
    }

    #[test]
    fn full_overrides_scale() {
        let a = from(&["--full", "--scale", "8"]);
        assert_eq!(a.scale(), 1.0);
    }

    #[test]
    fn defaults_when_empty() {
        let a = from(&[]);
        assert_eq!(a.scale(), 16.0);
        assert_eq!(a.ops(), 200_000);
        assert!(!a.fast());
    }

    #[test]
    fn unparsable_value_falls_back() {
        let a = from(&["--ops", "not-a-number"]);
        assert_eq!(a.ops(), 200_000);
    }
}
