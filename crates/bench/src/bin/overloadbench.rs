//! Overload sweep for the admission control plane: offers load from
//! 0.5x to 8x of measured capacity under zipf-0.99 skew and checks the
//! four contracts of the overload design:
//!
//! 1. **Goodput holds** — acknowledged throughput at the highest
//!    multiplier stays within 70% of the 1x plateau (refusing fast
//!    instead of queueing means overload does not collapse service).
//! 2. **Admitted latency is bounded** — the p99 round trip of fully
//!    admitted windows stays near the configured queue-delay budget
//!    instead of growing with offered load.
//! 3. **Refused is not acknowledged** — every write the server acked is
//!    readable afterwards with the acked value; no refused write is
//!    ever observed (zero acked-then-lost, zero acked-then-wrong).
//! 4. **The control plane stays up** — a prober issues PING/HEALTH/
//!    STATS throughout every load point; any probe failure is fatal.
//!
//! Violations of (3) and (4) always exit non-zero; (1) and (2) are
//! additionally enforced in full (non-`--smoke`) runs, where the
//! sweep is long enough for the plateau to be meaningful.
//!
//! ```sh
//! cargo run --release -p aria-bench --bin overloadbench -- \
//!     [--engine reactor|threads] [--conns 8] [--depth 8] \
//!     [--mults 0.5,1,2,4,8] [--secs 3.0] [--budget-ms 5] \
//!     [--deadline-ms 50] [--smoke] [--out results] \
//!     [--trace-sample 0] [--flight-dir path]
//! ```
//!
//! With `--flight-dir`, the server's flight recorder is armed: the
//! shed spike the sweep provokes must trigger an anomaly dump, and the
//! run fails if none appears (pair with `--trace-sample` so the dump
//! carries request spans).
//!
//! Results go to `<out>/overload.json`; the committed
//! `BENCH_overload.json` is a snapshot of a full default sweep.

use std::collections::HashMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use aria_bench::{
    fmt_tput, git_rev, json_f64, json_str, newest_flight_dump, print_table, Args, SCHEMA_VERSION,
};
use aria_net::{proto, AriaClient, AriaServer, ClientConfig, Engine, ServerConfig};
use aria_sim::Enclave;
use aria_store::sharded::{BatchOp, ShardedStore};
use aria_store::{AriaHash, StoreConfig};
use aria_workload::{encode_key, value_bytes, KeyDistribution, Request, YcsbConfig, YcsbWorkload};

const VALUE_LEN: usize = 16;
const READ_RATIO: f64 = 0.8;

/// Versioned write payload: key id + per-key version, both LE. A
/// read-back that decodes a version the client never got an ack for is
/// an acked-then-wrong violation (a refusal that was secretly applied).
fn versioned_value(key_id: u64, version: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(VALUE_LEN);
    v.extend_from_slice(&key_id.to_le_bytes());
    v.extend_from_slice(&version.to_le_bytes());
    v
}

fn decode_version(key_id: u64, value: &[u8]) -> Option<u64> {
    if value.len() != VALUE_LEN || value[..8] != key_id.to_le_bytes() {
        return None;
    }
    Some(u64::from_le_bytes(value[8..16].try_into().unwrap()))
}

/// Per-key write ledger a load client keeps for the integrity check.
#[derive(Default, Clone, Copy)]
struct KeyLedger {
    /// Highest version the server acknowledged with PutOk.
    acked: u64,
    /// A transport error left a newer version in doubt: the key is
    /// excluded from strict verification (the write may or may not have
    /// been applied before the connection died).
    in_doubt: bool,
}

struct ClientOutcome {
    issued: u64,
    acked: u64,
    shed_overload: u64,
    shed_deadline: u64,
    other_errors: u64,
    transport_errors: u64,
    /// Round trips of windows in which every op was admitted.
    admitted_lats_ms: Vec<f64>,
    ledger: HashMap<u64, KeyLedger>,
}

struct ProbeOutcome {
    probes: u64,
    failures: u64,
    max_ms: f64,
    degraded_seen: bool,
    max_queue_delay_ms: u64,
}

struct Point {
    mult: f64,
    offered_target: f64,
    offered_actual: f64,
    goodput: f64,
    shed_overload: u64,
    shed_deadline: u64,
    other_errors: u64,
    transport_errors: u64,
    admitted_p50_ms: f64,
    admitted_p99_ms: f64,
    probe: ProbeOutcome,
    lost_writes: u64,
    wrong_writes: u64,
    verified_keys: u64,
    in_doubt_keys: u64,
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let engine = Engine::parse(&args.get_str("engine", "reactor"))
        .expect("--engine must be 'reactor' or 'threads'");
    let shards = args.get("shards", 4usize);
    let read_keys = args.get("keys", if smoke { 4_000u64 } else { 20_000 });
    let conns = args.get("conns", if smoke { 4usize } else { 8 });
    let depth = args.get("depth", 16usize);
    let secs = args
        .get_str("secs", if smoke { "0.8" } else { "3.0" })
        .parse::<f64>()
        .expect("--secs must be a float");
    let calib_secs = if smoke { 0.5 } else { 2.0 };
    let budget_ms = args.get("budget-ms", 2u64);
    let deadline_ms = args.get("deadline-ms", 50u64);
    let mults: Vec<f64> = args
        .get_str("mults", "0.5,1,2,4,8")
        .split(',')
        .filter_map(|p| p.trim().parse().ok())
        .collect();
    assert!(!mults.is_empty(), "empty --mults sweep");
    let seed = args.seed();
    let trace_sample = args.get("trace-sample", 0u32);
    let flight_dir = {
        let d = args.get_str("flight-dir", "");
        (!d.is_empty()).then(|| std::path::PathBuf::from(d))
    };
    // Disjoint per-client write ranges above the read keyspace, so two
    // clients never race on one key and "last acked version" is exact.
    let write_span = if smoke { 500u64 } else { 2_000 };

    // A blocking client cannot offer more than the server serves, so
    // overload is generated by scaling the client pool with the
    // multiplier: at 8x there are 8x as many connections, each paced at
    // the same per-connection rate as the 1x point.
    let max_mult = mults.iter().cloned().fold(1.0f64, f64::max);
    let max_conns = ((conns as f64 * max_mult).ceil() as usize).max(conns);

    let total_keys = read_keys + max_conns as u64 * write_span;
    let per_shard_keys = (total_keys / shards as u64) * 2 + 1024;
    let store = Arc::new(
        ShardedStore::with_shards(shards, move |_| {
            let suite = Arc::new(aria_crypto::FastSuite::from_master(&[0x42; 16]))
                as Arc<dyn aria_crypto::CipherSuite>;
            AriaHash::with_suite(
                StoreConfig::for_keys(per_shard_keys),
                Arc::new(Enclave::with_default_epc()),
                Some(suite),
            )
        })
        .expect("construct sharded store"),
    );

    // Preload the read keyspace in-process.
    let mut batch = Vec::with_capacity(512);
    for id in 0..read_keys {
        batch.push(BatchOp::Put(encode_key(id).to_vec(), value_bytes(id, VALUE_LEN)));
        if batch.len() == 512 {
            store.run_batch(std::mem::take(&mut batch));
        }
    }
    store.run_batch(batch);

    let server = AriaServer::bind(
        "127.0.0.1:0",
        Arc::clone(&store),
        ServerConfig::builder()
            .engine(engine)
            .max_connections(max_conns + 8)
            // A tight per-tick decode window keeps ticks short and
            // fair; frames past it wait in the read buffer, which is
            // exactly what sojourn-based shedding measures.
            .pipeline_window(64)
            .queue_delay_budget(Some(Duration::from_millis(budget_ms)))
            .shed_sojourn(Some(Duration::from_millis(budget_ms)))
            .watchdog_window(Some(Duration::from_millis(500)))
            .flight_dir(flight_dir.clone())
            .build()
            .expect("valid overloadbench server config"),
    )
    .expect("bind loopback server");
    let addr = server.local_addr();

    // --- Calibrate capacity: closed-loop, admission off, no pacing ---
    store.set_queue_delay_budget(None);
    let capacity = calibrate(addr, conns, depth, read_keys, calib_secs, seed);
    store.set_queue_delay_budget(Some(Duration::from_millis(budget_ms)));
    eprintln!("calibrated capacity: {} ({conns} conns, depth {depth})", fmt_tput(capacity));

    let mut points = Vec::new();
    for &mult in &mults {
        let point = run_point(RunPointCfg {
            addr,
            conns,
            depth,
            read_keys,
            write_span,
            secs,
            deadline_ms,
            seed,
            mult,
            offered: capacity * mult,
            trace_sample,
        });
        eprintln!(
            "  [{:.1}x] offered {} goodput {} shed {}+{} admitted p99 {:.2}ms probes {}/{} ok",
            mult,
            fmt_tput(point.offered_actual),
            fmt_tput(point.goodput),
            point.shed_overload,
            point.shed_deadline,
            point.admitted_p99_ms,
            point.probe.probes - point.probe.failures,
            point.probe.probes,
        );
        points.push(point);
    }

    let telemetry = server.telemetry().snapshot();
    server.shutdown();

    let table: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}x", p.mult),
                fmt_tput(p.offered_actual),
                fmt_tput(p.goodput),
                p.shed_overload.to_string(),
                p.shed_deadline.to_string(),
                format!("{:.2}", p.admitted_p99_ms),
                format!("{}/{}", p.probe.probes - p.probe.failures, p.probe.probes),
                format!("{}/{}", p.lost_writes, p.wrong_writes),
            ]
        })
        .collect();
    print_table(
        &format!("overloadbench (zipf-0.99, engine={engine}, budget {budget_ms}ms)"),
        &[
            "load",
            "offered/s",
            "goodput/s",
            "shed(ovl)",
            "shed(ddl)",
            "adm p99 ms",
            "probes ok",
            "lost/wrong",
        ],
        &table,
    );

    // --- Acceptance ---
    let goodput_1x = points
        .iter()
        .filter(|p| p.mult >= 1.0)
        .map(|p| p.goodput)
        .fold(f64::NAN, |a, b| if a.is_nan() { b } else { a });
    let last = points.last().expect("at least one point");
    let floor_ratio = last.goodput / goodput_1x.max(1e-9);
    let goodput_floor_ok = floor_ratio >= 0.70;
    // An admitted window's p99 should track the queue-delay budget, not
    // the offered load. The bound leaves room for wire + scheduling on
    // a shared CI box.
    let p99_bound_ms = budget_ms as f64 * 5.0 + 10.0;
    let p99_bounded =
        points.iter().all(|p| p.admitted_p99_ms.is_nan() || p.admitted_p99_ms <= p99_bound_ms);
    let lost: u64 = points.iter().map(|p| p.lost_writes).sum();
    let wrong: u64 = points.iter().map(|p| p.wrong_writes).sum();
    let probe_failures: u64 = points.iter().map(|p| p.probe.failures).sum();

    write_overload_json(
        &args.out_dir(),
        engine,
        shards,
        budget_ms,
        deadline_ms,
        capacity,
        &points,
        floor_ratio,
        goodput_floor_ok,
        p99_bound_ms,
        p99_bounded,
        &telemetry,
    );

    let mut fatal = false;
    if lost > 0 || wrong > 0 {
        eprintln!("FAIL: write integrity violated (lost {lost}, wrong {wrong})");
        fatal = true;
    }
    if probe_failures > 0 {
        eprintln!("FAIL: control plane unresponsive ({probe_failures} probe failures)");
        fatal = true;
    }
    if !smoke && !goodput_floor_ok {
        eprintln!(
            "FAIL: goodput collapsed under overload ({:.0}% of 1x plateau, need >= 70%)",
            floor_ratio * 100.0
        );
        fatal = true;
    }
    if !smoke && !p99_bounded {
        eprintln!("FAIL: admitted p99 exceeded {p99_bound_ms:.0}ms bound at some load point");
        fatal = true;
    }
    if let Some(dir) = &flight_dir {
        let sheds: u64 = points.iter().map(|p| p.shed_overload + p.shed_deadline).sum();
        match newest_flight_dump(dir) {
            Some((count, path, dump)) => {
                let spans = dump.matches("\"trace_id\"").count();
                println!(
                    "flight recorder: {count} dump(s), newest {} ({spans} span(s) aboard)",
                    path.display(),
                );
                if !dump.contains("\"reason\":\"anomaly\"") || !dump.contains("\"events\"") {
                    eprintln!(
                        "FAIL: flight dump at {} is not an anomaly post-mortem",
                        path.display()
                    );
                    fatal = true;
                }
            }
            None if sheds > 0 => {
                eprintln!(
                    "FAIL: {sheds} ops shed but no flight dump in {} (shed-spike trigger dead?)",
                    dir.display()
                );
                fatal = true;
            }
            None => println!("flight recorder: armed, no sheds, no dump — nothing to verify"),
        }
    }
    if fatal {
        std::process::exit(1);
    }
    println!(
        "overload contract held: goodput floor {:.0}%, {} probes, 0 lost, 0 wrong",
        floor_ratio * 100.0,
        points.iter().map(|p| p.probe.probes).sum::<u64>(),
    );
}

/// Closed-loop burst to find the acknowledged-ops/s plateau that the
/// sweep's offered-load multipliers are anchored to.
fn calibrate(
    addr: std::net::SocketAddr,
    conns: usize,
    depth: usize,
    read_keys: u64,
    secs: f64,
    seed: u64,
) -> f64 {
    let start = Instant::now();
    let end = start + Duration::from_secs_f64(secs);
    let workers: Vec<_> = (0..conns)
        .map(|c| {
            thread::spawn(move || {
                let mut client = AriaClient::connect(addr, ClientConfig::default())
                    .expect("connect calibration client");
                let mut wl = YcsbWorkload::new(YcsbConfig {
                    keyspace: read_keys,
                    read_ratio: READ_RATIO,
                    value_len: VALUE_LEN,
                    distribution: KeyDistribution::Zipfian { theta: 0.99 },
                    seed: seed ^ (0xa076_1d64_78bd_642fu64.wrapping_mul(c as u64 + 1)),
                });
                let mut acked = 0u64;
                let mut window = Vec::with_capacity(depth);
                while Instant::now() < end {
                    window.clear();
                    for _ in 0..depth {
                        window.push(match wl.next_request() {
                            Request::Get { id } => {
                                proto::Request::Get { key: encode_key(id).to_vec() }
                            }
                            Request::Put { id, value_len } => proto::Request::Put {
                                key: encode_key(id).to_vec(),
                                value: value_bytes(id, value_len),
                            },
                        });
                    }
                    match client.pipeline(&window) {
                        Ok(resps) => {
                            acked += resps
                                .iter()
                                .filter(|r| !matches!(r, proto::Response::Error { .. }))
                                .count() as u64;
                        }
                        Err(e) => panic!("calibration pipeline failed: {e}"),
                    }
                }
                acked
            })
        })
        .collect();
    let total: u64 = workers.into_iter().map(|w| w.join().expect("calibration worker")).sum();
    total as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

struct RunPointCfg {
    addr: std::net::SocketAddr,
    conns: usize,
    depth: usize,
    read_keys: u64,
    write_span: u64,
    secs: f64,
    deadline_ms: u64,
    seed: u64,
    mult: f64,
    offered: f64,
    trace_sample: u32,
}

fn run_point(cfg: RunPointCfg) -> Point {
    let stop = Arc::new(AtomicBool::new(false));

    // Control-plane prober: PING + HEALTH + STATS on a cadence for the
    // whole point. Control ops bypass admission, so any failure or
    // multi-hundred-ms stall here is an overload-contract violation.
    let prober = {
        let stop = Arc::clone(&stop);
        let addr = cfg.addr;
        thread::spawn(move || {
            let mut client = AriaClient::connect(
                addr,
                ClientConfig { retry_budget: 0, ..ClientConfig::default() },
            )
            .expect("connect prober");
            let mut out = ProbeOutcome {
                probes: 0,
                failures: 0,
                max_ms: 0.0,
                degraded_seen: false,
                max_queue_delay_ms: 0,
            };
            while !stop.load(Ordering::Relaxed) {
                let t0 = Instant::now();
                let ok = client.ping().is_ok()
                    && client.health().is_ok()
                    && match client.stats() {
                        Ok(s) => {
                            out.degraded_seen |= s.degraded;
                            out.max_queue_delay_ms = out.max_queue_delay_ms.max(s.queue_delay_ms);
                            true
                        }
                        Err(_) => false,
                    };
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                out.probes += 1;
                if !ok {
                    out.failures += 1;
                }
                if ms > out.max_ms {
                    out.max_ms = ms;
                }
                thread::sleep(Duration::from_millis(10));
            }
            out
        })
    };

    // A blocking client cannot outrun the server, so overload is
    // generated on two axes: the connection pool grows with the
    // multiplier (each connection paced at its 1x rate), and each
    // window bursts `mult` times deeper — past the server's per-tick
    // decode window, which is where sojourn shedding bites.
    let load_conns = ((cfg.conns as f64 * cfg.mult).ceil() as usize).max(1);
    let window_frames = (cfg.depth * (cfg.mult.ceil() as usize).max(1)).min(1024);
    let per_client_rate = cfg.offered / load_conns as f64;
    let interval = Duration::from_secs_f64(window_frames as f64 / per_client_rate.max(1.0));
    let end = Instant::now() + Duration::from_secs_f64(cfg.secs);

    let workers: Vec<_> = (0..load_conns)
        .map(|c| {
            let write_base = cfg.read_keys + c as u64 * cfg.write_span;
            let RunPointCfg {
                addr, read_keys, write_span, deadline_ms, seed, trace_sample, ..
            } = cfg;
            thread::spawn(move || {
                let mut client = AriaClient::connect(
                    addr,
                    ClientConfig { trace_sample, ..ClientConfig::default() },
                )
                .expect("connect load client");
                let mut wl = YcsbWorkload::new(YcsbConfig {
                    keyspace: read_keys,
                    read_ratio: READ_RATIO,
                    value_len: VALUE_LEN,
                    distribution: KeyDistribution::Zipfian { theta: 0.99 },
                    seed: seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(c as u64 + 1)),
                });
                let mut out = ClientOutcome {
                    issued: 0,
                    acked: 0,
                    shed_overload: 0,
                    shed_deadline: 0,
                    other_errors: 0,
                    transport_errors: 0,
                    admitted_lats_ms: Vec::new(),
                    ledger: HashMap::new(),
                };
                let mut versions: HashMap<u64, u64> = HashMap::new();
                let mut window: Vec<proto::Request> = Vec::with_capacity(window_frames);
                // Key ids of the writes in the current window, in op
                // order (None for reads).
                let mut window_writes: Vec<Option<(u64, u64)>> = Vec::with_capacity(window_frames);
                let mut next = Instant::now();
                while Instant::now() < end {
                    // Open-loop pacing with bounded catch-up: if the
                    // server stalls us for more than a second's worth of
                    // windows, resynchronize instead of bursting.
                    let now = Instant::now();
                    if now < next {
                        thread::sleep(next - now);
                    } else if now > next + Duration::from_secs(1) {
                        next = now;
                    }
                    next += interval;

                    window.clear();
                    window_writes.clear();
                    for _ in 0..window_frames {
                        match wl.next_request() {
                            Request::Get { id } => {
                                window.push(proto::Request::Get { key: encode_key(id).to_vec() });
                                window_writes.push(None);
                            }
                            Request::Put { id, .. } => {
                                // Map the zipf draw into this client's
                                // private range, keeping the skew shape.
                                let key_id = write_base + id % write_span;
                                let v = versions.entry(key_id).or_insert(0);
                                *v += 1;
                                window.push(proto::Request::Put {
                                    key: encode_key(key_id).to_vec(),
                                    value: versioned_value(key_id, *v),
                                });
                                window_writes.push(Some((key_id, *v)));
                            }
                        }
                    }
                    out.issued += window_frames as u64;
                    let op_deadline = Instant::now() + Duration::from_millis(deadline_ms);
                    let t0 = Instant::now();
                    match client.pipeline_with_deadline(&window, op_deadline) {
                        Ok(resps) => {
                            let lat_ms = t0.elapsed().as_secs_f64() * 1e3;
                            let mut all_admitted = true;
                            for (resp, write) in resps.iter().zip(window_writes.iter()) {
                                match resp {
                                    proto::Response::Error { code, .. } => {
                                        all_admitted = false;
                                        match *code {
                                            proto::ErrorCode::Overloaded => out.shed_overload += 1,
                                            proto::ErrorCode::DeadlineExceeded => {
                                                out.shed_deadline += 1
                                            }
                                            _ => out.other_errors += 1,
                                        }
                                    }
                                    _ => {
                                        out.acked += 1;
                                        if let Some((key_id, v)) = write {
                                            let e = out.ledger.entry(*key_id).or_default();
                                            e.acked = (*v).max(e.acked);
                                        }
                                    }
                                }
                            }
                            if all_admitted {
                                out.admitted_lats_ms.push(lat_ms);
                            }
                        }
                        Err(_) => {
                            // The whole window is in doubt: the server
                            // may have applied any prefix before the
                            // connection died.
                            out.transport_errors += 1;
                            for write in window_writes.iter().flatten() {
                                out.ledger.entry(write.0).or_default().in_doubt = true;
                            }
                        }
                    }
                }
                out
            })
        })
        .collect();

    let outcomes: Vec<ClientOutcome> =
        workers.into_iter().map(|w| w.join().expect("load worker")).collect();

    stop.store(true, Ordering::Relaxed);
    let probe = prober.join().expect("prober");

    // --- Read-back verification: every acked write must be readable
    // with its acked version; any other version is acked-then-wrong.
    let mut verifier =
        AriaClient::connect(cfg.addr, ClientConfig::default()).expect("connect verifier");
    let mut lost = 0u64;
    let mut wrong = 0u64;
    let mut verified = 0u64;
    let mut in_doubt = 0u64;
    for o in &outcomes {
        for (&key_id, ledger) in &o.ledger {
            if ledger.in_doubt {
                in_doubt += 1;
                continue;
            }
            if ledger.acked == 0 {
                continue; // nothing ever acknowledged for this key
            }
            verified += 1;
            let key = encode_key(key_id);
            match verifier.get(&key) {
                Ok(Some(value)) => match decode_version(key_id, &value) {
                    Some(v) if v == ledger.acked => {}
                    // A version above the ack means a refused or
                    // unacknowledged write was applied; below means an
                    // acked write was lost. Both are violations.
                    Some(_) | None => wrong += 1,
                },
                Ok(None) => lost += 1,
                Err(e) => panic!("verification read failed for key {key_id}: {e}"),
            }
        }
    }

    let mut admitted: Vec<f64> = outcomes.iter().flat_map(|o| o.admitted_lats_ms.clone()).collect();
    admitted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let issued: u64 = outcomes.iter().map(|o| o.issued).sum();
    let acked: u64 = outcomes.iter().map(|o| o.acked).sum();
    Point {
        mult: cfg.mult,
        offered_target: cfg.offered,
        offered_actual: issued as f64 / cfg.secs,
        goodput: acked as f64 / cfg.secs,
        shed_overload: outcomes.iter().map(|o| o.shed_overload).sum(),
        shed_deadline: outcomes.iter().map(|o| o.shed_deadline).sum(),
        other_errors: outcomes.iter().map(|o| o.other_errors).sum(),
        transport_errors: outcomes.iter().map(|o| o.transport_errors).sum(),
        admitted_p50_ms: percentile(&admitted, 0.50),
        admitted_p99_ms: percentile(&admitted, 0.99),
        probe,
        lost_writes: lost,
        wrong_writes: wrong,
        verified_keys: verified,
        in_doubt_keys: in_doubt,
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[allow(clippy::too_many_arguments)]
fn write_overload_json(
    out_dir: &str,
    engine: Engine,
    shards: usize,
    budget_ms: u64,
    deadline_ms: u64,
    capacity: f64,
    points: &[Point],
    floor_ratio: f64,
    goodput_floor_ok: bool,
    p99_bound_ms: f64,
    p99_bounded: bool,
    telemetry: &aria_telemetry::TelemetrySnapshot,
) {
    let mut doc = String::new();
    doc.push_str(&format!(
        "{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"git_rev\": {},\n  \
         \"bench\": \"overloadbench\",\n  \"engine\": \"{engine}\",\n  \
         \"shards\": {shards},\n  \"distribution\": \"zipf-0.99\",\n  \
         \"queue_delay_budget_ms\": {budget_ms},\n  \
         \"op_deadline_ms\": {deadline_ms},\n  \
         \"capacity_ops_s\": {},\n  \"points\": [\n",
        json_str(git_rev()),
        json_f64(capacity),
    ));
    for (i, p) in points.iter().enumerate() {
        doc.push_str(&format!(
            "    {{\"mult\": {}, \"offered_target\": {}, \"offered_actual\": {}, \
             \"goodput\": {}, \"shed_overload\": {}, \"shed_deadline\": {}, \
             \"other_errors\": {}, \"transport_errors\": {}, \
             \"admitted_p50_ms\": {}, \"admitted_p99_ms\": {}, \
             \"health_probes\": {}, \"health_failures\": {}, \
             \"health_max_ms\": {}, \"degraded_seen\": {}, \
             \"max_queue_delay_ms\": {}, \"verified_keys\": {}, \
             \"in_doubt_keys\": {}, \"lost_writes\": {}, \"wrong_writes\": {}}}{}\n",
            json_f64(p.mult),
            json_f64(p.offered_target),
            json_f64(p.offered_actual),
            json_f64(p.goodput),
            p.shed_overload,
            p.shed_deadline,
            p.other_errors,
            p.transport_errors,
            json_f64(p.admitted_p50_ms),
            json_f64(p.admitted_p99_ms),
            p.probe.probes,
            p.probe.failures,
            json_f64(p.probe.max_ms),
            p.probe.degraded_seen,
            p.probe.max_queue_delay_ms,
            p.verified_keys,
            p.in_doubt_keys,
            p.lost_writes,
            p.wrong_writes,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    doc.push_str(&format!(
        "  ],\n  \"summary\": {{\n    \"goodput_floor_ratio\": {},\n    \
         \"goodput_floor_ok\": {},\n    \"admitted_p99_bound_ms\": {},\n    \
         \"admitted_p99_bounded\": {},\n    \"lost_writes\": {},\n    \
         \"wrong_writes\": {},\n    \"health_failures\": {}\n  }},\n  \
         \"telemetry\": {}\n}}\n",
        json_f64(floor_ratio),
        goodput_floor_ok,
        json_f64(p99_bound_ms),
        p99_bounded,
        points.iter().map(|p| p.lost_writes).sum::<u64>(),
        points.iter().map(|p| p.wrong_writes).sum::<u64>(),
        points.iter().map(|p| p.probe.failures).sum::<u64>(),
        telemetry.to_json(),
    ));

    let dir = std::path::Path::new(out_dir);
    if std::fs::create_dir_all(dir).is_err() {
        eprintln!("warning: cannot create {out_dir}; results not persisted");
        return;
    }
    let path = dir.join("overload.json");
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let _ = f.write_all(doc.as_bytes());
            println!("\nresults written to {}", path.display());
        }
        Err(e) => eprintln!("warning: cannot write {path:?}: {e}"),
    }
}
