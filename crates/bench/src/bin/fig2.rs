//! Figure 2 — performance of the design schemes as the keyspace grows
//! (16-byte KV pairs, skewed, 50 % reads), plus secure-paging counts.
//!
//! Paper shape: Baseline collapses once the keyspace outgrows the EPC
//! (~24 MB); Aria w/o Cache stays flat until its counter array outgrows
//! the EPC (~119 MB); ShieldStore is flat but below Aria; Aria stays on
//! top throughout.

use aria_bench::*;
use aria_workload::KeyDistribution;

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    // Keyspace sizes in MB at full scale (keyspace size = #keys x 16 B).
    let points_mb = [4u64, 8, 16, 24, 32, 64, 119, 128];
    let kinds =
        [StoreKind::Baseline, StoreKind::Shield, StoreKind::AriaHashWoCache, StoreKind::AriaHash];

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for &mb in &points_mb {
        let keys = (mb * 1024 * 1024 / 16) as f64 / scale;
        let mut cfg = RunConfig::paper_default(scale);
        cfg.keys = keys as u64;
        cfg.ops = args.ops();
        cfg.fast_crypto = args.fast();
        cfg.seed = args.seed();
        cfg.workload = Workload::Ycsb {
            read_ratio: 0.5,
            value_len: 16,
            dist: KeyDistribution::Zipfian { theta: 0.99 },
        };
        let mut cells = vec![format!("{mb} MB")];
        for kind in kinds {
            let r = run(kind, &cfg);
            eprintln!(
                "  [{mb} MB] {}: {} ops/s, {} faults",
                r.kind,
                fmt_tput(r.throughput),
                r.page_faults
            );
            cells.push(format!("{} ({} PF)", fmt_tput(r.throughput), r.page_faults));
            rows.push(Row::new("fig2", r.kind, &format!("{mb}MB"), &r));
        }
        table.push(cells);
    }

    print_table(
        &format!("Figure 2: design schemes vs keyspace size (scale 1/{scale}, 50% read, skew 0.99, 16B KV)"),
        &["keyspace", "Baseline", "ShieldStore", "Aria w/o Cache", "Aria"],
        &table,
    );
    write_jsonl(&args.out_dir(), "fig2", &rows);
}
