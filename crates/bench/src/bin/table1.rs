//! Table I — qualitative comparison of the design schemes, backed by
//! measurements: protection granularity, KV-hotness awareness, index
//! schemes and EPC occupation.
//!
//! The qualitative cells are printed as in the paper; the EPC column is
//! *measured* from live instances, and the hotness row is demonstrated
//! by comparing skewed vs uniform throughput for each scheme.

use aria_bench::*;
use aria_workload::KeyDistribution;

fn main() {
    let args = Args::parse();
    let scale = args.scale();

    print_table(
        "Table I: design-scheme comparison (paper)",
        &["scheme", "protection granularity", "hotness-aware", "index schemes", "EPC occupation"],
        &[
            vec![
                "ShieldStore".into(),
                "hash bucket".into(),
                "unaware".into(),
                "hash".into(),
                "low (fixed roots)".into(),
            ],
            vec![
                "Aria w/o Cache".into(),
                "page (4 KB)".into(),
                "aware".into(),
                "hash/tree".into(),
                "medium (all counters)".into(),
            ],
            vec![
                "Aria".into(),
                "KV pair".into(),
                "aware".into(),
                "hash/tree".into(),
                "low (bounded cache)".into(),
            ],
        ],
    );

    // Measured support: skew-vs-uniform gain per scheme (hotness
    // awareness) and EPC occupation.
    let kinds = [StoreKind::Shield, StoreKind::AriaHashWoCache, StoreKind::AriaHash];
    let mut table = Vec::new();
    let mut rows = Vec::new();
    for kind in kinds {
        let mut skew_cfg = RunConfig::paper_default(scale);
        skew_cfg.ops = args.ops();
        skew_cfg.fast_crypto = args.fast();
        skew_cfg.workload = Workload::Ycsb {
            read_ratio: 0.95,
            value_len: 16,
            dist: KeyDistribution::Zipfian { theta: 0.99 },
        };
        let mut uni_cfg = skew_cfg.clone();
        uni_cfg.workload =
            Workload::Ycsb { read_ratio: 0.95, value_len: 16, dist: KeyDistribution::Uniform };
        let rs = run(kind, &skew_cfg);
        let ru = run(kind, &uni_cfg);
        let gain = improvement(rs.throughput, ru.throughput);
        table.push(vec![
            rs.kind.to_string(),
            fmt_tput(rs.throughput),
            fmt_tput(ru.throughput),
            format!("{gain:+.0}%"),
            format!("{:.1} MB", rs.epc_used as f64 / (1 << 20) as f64),
        ]);
        rows.push(Row::new("table1", rs.kind, "skew", &rs));
        rows.push(Row::new("table1", rs.kind, "uniform", &ru));
    }
    print_table(
        &format!("Table I (measured): skew benefit and EPC use (scale 1/{scale})"),
        &["scheme", "skew tput", "uniform tput", "skew gain", "EPC used"],
        &table,
    );
    write_jsonl(&args.out_dir(), "table1", &rows);
}
