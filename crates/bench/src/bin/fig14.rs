//! Figure 14 — sensitivity to the Secure Cache size: 100 % ("as much
//! EPC as possible") down to 16 %, skew RD_95 16 B, 10 M and 30 M
//! keyspaces, with ShieldStore reference lines.
//!
//! Paper shape: throughput degrades gracefully (-9 % at 50 %, -18 % at
//! 16 % for 10 M keys) and Aria at 16 % (15 MB) still beats ShieldStore
//! with its fixed 64 MB of roots.

use aria_bench::*;
use aria_workload::KeyDistribution;

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let fractions = [(100u32, 1.0f64), (50, 0.5), (33, 0.33), (25, 0.25), (20, 0.20), (16, 0.16)];
    let keyspaces = [10_000_000u64, 30_000_000];

    let mut rows = Vec::new();
    let mut table = Vec::new();

    // ShieldStore reference per keyspace.
    let mut shield_ref = Vec::new();
    for &ks in &keyspaces {
        let mut cfg = RunConfig::paper_default(scale);
        cfg.keys = (ks as f64 / scale) as u64;
        cfg.ops = args.ops();
        cfg.fast_crypto = args.fast();
        cfg.seed = args.seed();
        cfg.workload = Workload::Ycsb {
            read_ratio: 0.95,
            value_len: 16,
            dist: KeyDistribution::Zipfian { theta: 0.99 },
        };
        let r = run(StoreKind::Shield, &cfg);
        eprintln!("  [shield {ks}] {}", fmt_tput(r.throughput));
        rows.push(Row::new("fig14", &format!("ShieldStore-{}M", ks / 1_000_000), "ref", &r));
        shield_ref.push(r.throughput);
    }

    for (pct, frac) in fractions {
        let mut cells = vec![format!("{pct}%")];
        for &ks in &keyspaces {
            let mut cfg = RunConfig::paper_default(scale);
            cfg.keys = (ks as f64 / scale) as u64;
            cfg.ops = args.ops();
            cfg.fast_crypto = args.fast();
            cfg.seed = args.seed();
            cfg.workload = Workload::Ycsb {
                read_ratio: 0.95,
                value_len: 16,
                dist: KeyDistribution::Zipfian { theta: 0.99 },
            };
            // 100% = the auto "as much as possible" sizing; fractions are
            // relative to that.
            let auto = cfg.auto_cache_bytes();
            cfg.cache_bytes = Some(((auto as f64) * frac) as usize);
            let r = run(StoreKind::AriaHash, &cfg);
            eprintln!(
                "  [{pct}% {}M] {} (hit {:?})",
                ks / 1_000_000,
                fmt_tput(r.throughput),
                r.cache_hit_ratio().map(|h| (h * 100.0).round())
            );
            cells.push(fmt_tput(r.throughput));
            rows.push(Row::new(
                "fig14",
                &format!("Aria-{}M", ks / 1_000_000),
                &format!("{pct}%"),
                &r,
            ));
        }
        table.push(cells);
    }

    table.push(vec!["Shield ref".to_string(), fmt_tput(shield_ref[0]), fmt_tput(shield_ref[1])]);
    print_table(
        &format!("Figure 14: Secure Cache size sweep, skew RD_95 16B (scale 1/{scale})"),
        &["cache size", "Aria 10M keys", "Aria 30M keys"],
        &table,
    );
    write_jsonl(&args.out_dir(), "fig14", &rows);
}
