//! Calibration probe: one YCSB point for each scheme with diagnostics.
//! Not a paper figure; used to sanity-check the cost model.

use aria_bench::*;
use aria_workload::KeyDistribution;

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let rr = args.get("rr", 0.95f64);
    let uniform = args.flag("uniform");
    let mut cfg = RunConfig::paper_default(scale);
    cfg.ops = args.ops();
    cfg.fast_crypto = args.fast();
    cfg.workload = Workload::Ycsb {
        read_ratio: rr,
        value_len: args.get("vlen", 16usize),
        dist: if uniform {
            KeyDistribution::Uniform
        } else {
            KeyDistribution::Zipfian { theta: 0.99 }
        },
    };
    for kind in [StoreKind::Shield, StoreKind::AriaHash, StoreKind::AriaHashWoCache] {
        let r = run(kind, &cfg);
        println!(
            "{:<16} tput={:<8} cyc/op={:<6} faults={:<8} macs/op={:.2} hit={:?} swap={:?} epc={}MB",
            r.kind,
            fmt_tput(r.throughput),
            r.cycles / r.ops,
            r.page_faults,
            r.snapshot.macs_computed as f64 / r.ops as f64,
            r.cache_hit_ratio().map(|h| (h * 100.0).round()),
            r.cache_swapping(),
            r.epc_used >> 20,
        );
    }
}
