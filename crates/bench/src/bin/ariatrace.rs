//! ariatrace — live critical-path viewer for a running Aria server.
//!
//! Attaches over aria-net, streams sampled request spans through the
//! `TRACE` opcode (resume cursors keep each poll incremental), and
//! renders the per-stage critical path: how long sampled requests
//! spent in decode → admission → shard queue → execute → encode →
//! flush, split per shard and hot-vs-cold. `--dump` instead asks the
//! server's flight recorder for its JSON post-mortem and prints it.
//!
//! ```sh
//! cargo run --release -p aria-bench --bin ariatrace -- \
//!     --addr 127.0.0.1:4433 [--interval-ms 1000] [--iterations 0] \
//!     [--raw 0] [--no-clear] [--dump]
//! ```
//!
//! `--iterations 0` (the default) streams until interrupted;
//! `--raw N` additionally prints the newest N spans of each window;
//! `--no-clear` appends frames instead of redrawing in place.

use std::thread;
use std::time::Duration;

use aria_bench::{print_table, Args};
use aria_net::{AriaClient, ClientConfig};
use aria_telemetry::{outcome, stage, Span, STAGE_NAMES};

fn main() {
    let args = Args::parse();
    let addr = args.get_str("addr", "");
    if addr.is_empty() {
        eprintln!(
            "usage: ariatrace --addr <host:port> [--interval-ms 1000] \
             [--iterations 0] [--raw 0] [--no-clear] [--dump]"
        );
        std::process::exit(2);
    }
    let parsed: std::net::SocketAddr = addr.parse().unwrap_or_else(|_| {
        eprintln!("ariatrace: bad --addr {addr:?}");
        std::process::exit(2);
    });
    let interval = Duration::from_millis(args.get("interval-ms", 1_000u64).max(50));
    let iterations = args.get("iterations", 0u64);
    let raw = args.get("raw", 0usize);
    let clear = !args.flag("no-clear");

    let mut client = match AriaClient::connect(parsed, ClientConfig::default()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ariatrace: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };

    if args.flag("dump") {
        match client.flight_dump() {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("ariatrace: flight dump failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let mut cursors: Vec<u64> = Vec::new();
    let mut frame = 0u64;
    let mut total_spans = 0u64;
    loop {
        let spans = match client.trace_spans(&cursors) {
            Ok((spans, next)) => {
                cursors = next;
                spans
            }
            Err(e) => {
                eprintln!("ariatrace: {addr}: {e} (reconnecting)");
                client = match AriaClient::connect(parsed, ClientConfig::default()) {
                    Ok(c) => c,
                    Err(_) => {
                        frame += 1;
                        if iterations != 0 && frame >= iterations {
                            std::process::exit(1);
                        }
                        thread::sleep(interval);
                        continue;
                    }
                };
                // A fresh connection replays from the oldest resident
                // span; keep the cursors so nothing is double-counted.
                continue;
            }
        };
        total_spans += spans.len() as u64;
        render(&addr, &spans, total_spans, raw, clear);
        frame += 1;
        if iterations != 0 && frame >= iterations {
            break;
        }
        thread::sleep(interval);
    }
}

/// Nearest-rank percentile over an ascending-sorted slice of nanos,
/// rendered as microseconds.
fn pct_us(sorted: &[u64], q: f64) -> String {
    if sorted.is_empty() {
        return "-".to_string();
    }
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    format!("{:.1}", sorted[rank.min(sorted.len() - 1)] as f64 / 1e3)
}

/// Time from the previous stamped stage to `st`, when both exist.
fn stage_delta(span: &Span, st: usize) -> Option<u64> {
    let end = span.stages[st];
    if end == 0 {
        return None;
    }
    let start = span.stages[..st].iter().rev().copied().find(|&s| s != 0)?;
    Some(end.saturating_sub(start))
}

/// Whole-span latency: first stamp to last stamp.
fn span_total(span: &Span) -> u64 {
    let first = span.stages.iter().copied().find(|&s| s != 0).unwrap_or(0);
    let last = span.stages.iter().rev().copied().find(|&s| s != 0).unwrap_or(0);
    last.saturating_sub(first)
}

fn render(addr: &str, spans: &[Span], total: u64, raw: usize, clear: bool) {
    if clear {
        print!("\x1b[2J\x1b[H");
    }
    let shed = spans.iter().filter(|s| s.outcome == outcome::SHED).count();
    let errors = spans.iter().filter(|s| s.outcome == outcome::ERROR).count();
    println!(
        "ariatrace — {addr} — {} new span(s) ({} total, {} shed, {} error)",
        spans.len(),
        total,
        shed,
        errors,
    );
    if spans.is_empty() {
        println!("no sampled spans this window (is the client sampling? --trace-sample N)");
        return;
    }

    // Critical path: stage-to-stage latency across every new span.
    let mut rows = Vec::new();
    for (st, name) in STAGE_NAMES.iter().enumerate().take(stage::COUNT).skip(1) {
        let mut nanos: Vec<u64> = spans.iter().filter_map(|s| stage_delta(s, st)).collect();
        nanos.sort_unstable();
        rows.push(vec![
            format!("→ {name}"),
            nanos.len().to_string(),
            pct_us(&nanos, 0.50),
            pct_us(&nanos, 0.99),
        ]);
    }
    let mut totals: Vec<u64> = spans.iter().map(span_total).collect();
    totals.sort_unstable();
    rows.push(vec![
        "total".to_string(),
        totals.len().to_string(),
        pct_us(&totals, 0.50),
        pct_us(&totals, 0.99),
    ]);
    print_table("critical path (per stage)", &["stage", "spans", "p50 us", "p99 us"], &rows);

    // Per-shard split, hot vs cold execution.
    let mut shards: Vec<u32> = spans.iter().map(|s| s.shard).collect();
    shards.sort_unstable();
    shards.dedup();
    let mut rows = Vec::new();
    for shard in shards {
        let on: Vec<&Span> = spans.iter().filter(|s| s.shard == shard).collect();
        let mut totals: Vec<u64> = on.iter().map(|s| span_total(s)).collect();
        totals.sort_unstable();
        let cold = on.iter().filter(|s| s.cold_reads > 0).count();
        let verify: u64 = on.iter().map(|s| s.verify_depth).sum();
        rows.push(vec![
            if shard == u32::MAX { "-".to_string() } else { shard.to_string() },
            on.len().to_string(),
            pct_us(&totals, 0.50),
            pct_us(&totals, 0.99),
            (on.len() - cold).to_string(),
            cold.to_string(),
            verify.to_string(),
        ]);
    }
    print_table(
        "per shard",
        &["shard", "spans", "p50 us", "p99 us", "hot", "cold", "verify lvls"],
        &rows,
    );

    if raw > 0 {
        for span in spans.iter().rev().take(raw) {
            let mut line = String::new();
            aria_telemetry::span_json(&mut line, span);
            println!("{line}");
        }
    }
}
