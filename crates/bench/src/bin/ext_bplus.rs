//! Extension benchmark (not a paper figure): Aria-T vs Aria-T+ — the
//! B+-tree future work of §VII, implemented.
//!
//! Two effects to demonstrate:
//! * point lookups: B+ routing decrypts short separator keys instead of
//!   full KV entries, so the per-level cost no longer scales with value
//!   size;
//! * range scans: chained leaves stream sideways instead of re-descending.

use aria_bench::*;
use aria_workload::KeyDistribution;

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let value_lens = [16usize, 128, 512];
    let kinds = [StoreKind::AriaTree, StoreKind::AriaBPlus];

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for &vl in &value_lens {
        let mut cfg = RunConfig::paper_default(scale);
        cfg.ops = args.get("tree-ops", 30_000u64);
        cfg.warmup = Some(cfg.ops);
        cfg.fast_crypto = args.fast();
        cfg.seed = args.seed();
        cfg.workload = Workload::Ycsb {
            read_ratio: 0.95,
            value_len: vl,
            dist: KeyDistribution::Zipfian { theta: 0.99 },
        };
        let mut cells = vec![format!("{vl}B")];
        let mut tputs = Vec::new();
        for kind in kinds {
            let r = run(kind, &cfg);
            eprintln!("  [{vl}B] {}: {}", r.kind, fmt_tput(r.throughput));
            tputs.push(r.throughput);
            cells.push(fmt_tput(r.throughput));
            rows.push(Row::new("ext_bplus", r.kind, &format!("{vl}B"), &r));
        }
        cells.push(format!("{:+.0}%", improvement(tputs[1], tputs[0])));
        table.push(cells);
    }

    print_table(
        &format!("Extension: B-tree vs B+-tree point lookups, skew RD_95 (scale 1/{scale})"),
        &["value", "Aria-T (B-tree)", "Aria-T+ (B+-tree)", "B+ vs B"],
        &table,
    );
    write_jsonl(&args.out_dir(), "ext_bplus", &rows);
}
