//! Figure 11 — Facebook ETC workload, hash and tree indexes, read
//! ratios {0, 50, 95, 100} %.
//!
//! Paper shape: Aria beats every other scheme at all read ratios (~32 %
//! over ShieldStore on average, hash index); Aria w/o Cache beats
//! ShieldStore at 0 % reads (ShieldStore pays a bucket-root update per
//! Put) and loses as reads grow; tree-based throughput is ~10x lower.

use aria_bench::*;

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let read_ratios = [0.0f64, 0.5, 0.95, 1.0];

    let mut rows = Vec::new();

    // Hash-index panel.
    let hash_kinds =
        [StoreKind::Baseline, StoreKind::Shield, StoreKind::AriaHashWoCache, StoreKind::AriaHash];
    let mut table = Vec::new();
    for &rr in &read_ratios {
        let mut cfg = RunConfig::paper_default(scale);
        cfg.ops = args.ops();
        cfg.fast_crypto = args.fast();
        cfg.seed = args.seed();
        cfg.workload = Workload::Etc { read_ratio: rr, theta: 0.99 };
        let x = format!("RD_{:.0}", rr * 100.0);
        let mut cells = vec![x.clone()];
        for kind in hash_kinds {
            let r = run(kind, &cfg);
            eprintln!("  [hash {x}] {}: {}", r.kind, fmt_tput(r.throughput));
            cells.push(fmt_tput(r.throughput));
            rows.push(Row::new("fig11", &format!("hash/{}", r.kind), &x, &r));
        }
        table.push(cells);
    }
    print_table(
        &format!("Figure 11 (hash): Facebook ETC (scale 1/{scale})"),
        &["read ratio", "Baseline", "ShieldStore", "Aria w/o Cache", "Aria"],
        &table,
    );

    // Tree-index panel.
    let tree_kinds = [StoreKind::Baseline, StoreKind::AriaTreeWoCache, StoreKind::AriaTree];
    let mut table = Vec::new();
    for &rr in &read_ratios {
        let mut cfg = RunConfig::paper_default(scale);
        cfg.ops = args.get("tree-ops", 30_000u64);
        cfg.warmup = Some(cfg.ops);
        cfg.fast_crypto = args.fast();
        cfg.seed = args.seed();
        cfg.workload = Workload::Etc { read_ratio: rr, theta: 0.99 };
        let x = format!("RD_{:.0}", rr * 100.0);
        let mut cells = vec![x.clone()];
        for kind in tree_kinds {
            let r = run(kind, &cfg);
            eprintln!("  [tree {x}] {}: {}", r.kind, fmt_tput(r.throughput));
            cells.push(fmt_tput(r.throughput));
            rows.push(Row::new("fig11", &format!("tree/{}", r.kind), &x, &r));
        }
        table.push(cells);
    }
    print_table(
        &format!("Figure 11 (tree): Facebook ETC (scale 1/{scale})"),
        &["read ratio", "Baseline", "Aria w/o Cache", "Aria"],
        &table,
    );

    write_jsonl(&args.out_dir(), "fig11", &rows);
}
