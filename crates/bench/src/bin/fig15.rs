//! Figure 15 — sensitivity to the Merkle-tree branching factor (N-ary
//! MT), uniform and skewed, RD_95 16 B, one Merkle tree.
//!
//! Paper shape: under skew, throughput rises with arity (bigger nodes →
//! less per-entry cache metadata → more cached counters) until the MAC
//! input length and node copy cost win (drop at 16); under uniform, Aria
//! stops swapping so bigger nodes only make the per-op verification more
//! expensive — monotonically decreasing.

use aria_bench::*;
use aria_workload::KeyDistribution;

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let arities = [2usize, 4, 8, 10, 12, 14, 16];
    let dists: [(&str, KeyDistribution); 2] =
        [("skew", KeyDistribution::Zipfian { theta: 0.99 }), ("uniform", KeyDistribution::Uniform)];

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for &arity in &arities {
        let mut cells = vec![arity.to_string()];
        for (dname, dist) in &dists {
            let mut cfg = RunConfig::paper_default(scale);
            cfg.ops = args.ops();
            cfg.fast_crypto = args.fast();
            cfg.seed = args.seed();
            cfg.arity = arity;
            cfg.workload = Workload::Ycsb { read_ratio: 0.95, value_len: 16, dist: dist.clone() };
            let r = run(StoreKind::AriaHash, &cfg);
            eprintln!(
                "  [{dname} arity {arity}] {} (hit {:?})",
                fmt_tput(r.throughput),
                r.cache_hit_ratio().map(|h| (h * 100.0).round())
            );
            cells.push(fmt_tput(r.throughput));
            rows.push(Row::new("fig15", &format!("Aria-{dname}"), &arity.to_string(), &r));
        }
        table.push(cells);
    }

    print_table(
        &format!("Figure 15: N-ary Merkle tree sweep, RD_95 16B (scale 1/{scale})"),
        &["arity", "Aria-Skew", "Aria-Uniform"],
        &table,
    );
    write_jsonl(&args.out_dir(), "fig15", &rows);
}
