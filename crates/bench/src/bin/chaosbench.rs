//! chaosbench — end-to-end robustness harness for the untrusted boundary.
//!
//! Runs a zipfian read/write load over the real TCP service layer while
//! a deterministic, seed-scheduled adversary (`aria-chaos`) corrupts
//! untrusted state underneath it: bit flips and torn writes on the
//! sealed-entry write path, stale Merkle-node replays, node flips,
//! index-connection pointer swaps and free-list metadata tampering.
//!
//! The harness asserts the stack's graceful-degradation contract:
//!
//! * **no panic, no hang** — a watchdog kills the run (exit 2) if it
//!   outlives its deadline;
//! * **no acknowledged-then-wrong read** — every client tracks the last
//!   acked value per key; a `GET` must return it (or a typed integrity
//!   error, or a typed quarantine refusal) — never a wrong or silently
//!   missing value;
//! * **containment** — a violation quarantines only its shard; siblings
//!   keep serving (probed live via the `HEALTH` opcode while a shard is
//!   down) and at least one full quarantine → recovery → re-admission
//!   cycle is observed;
//! * **accountability** — every injected fault is either detected
//!   (typed violation, shard quarantine, final-audit destruction) or
//!   provably masked (the post-run audit re-verifies every surviving
//!   entry and the model sweep finds no wrong answers).
//!
//! ```sh
//! cargo run --release -p aria-bench --bin chaosbench -- \
//!     [--shards 4] [--clients 4] [--keys 8192] [--ops 120000] \
//!     [--budget 12000] [--heap-rate 600] [--driver-rate 4000] \
//!     [--watchdog-secs 300] [--smoke] [--out results] \
//!     [--listen 127.0.0.1:0]
//! ```
//!
//! `--listen` pins the server address (default: an ephemeral loopback
//! port) so a live `ariatop --addr <listen>` can watch shard health,
//! hit ratios and the quarantine → recovery cycle during the run; the
//! bound address is printed either way.
//!
//! Results go to `<out>/chaos.json`; the committed `BENCH_chaos.json`
//! is a snapshot of a full default run.
//!
//! ## Failover mode (`--failover`)
//!
//! With `--failover`, the harness instead exercises the *replication*
//! contract: every shard group runs a primary plus a synchronous
//! backup, a seed-scheduled killer panics acting primaries mid-load
//! (≥ `--kills`, only when the whole group is healthy so each kill
//! exercises a complete cycle), and the run asserts
//!
//! * **zero acknowledged-write loss** — every write acked to a client
//!   is readable after promotion and after re-admission (in-run model
//!   checks plus a final sweep);
//! * **sibling service** — other groups keep answering (probed via
//!   `HEALTH` + live `GET`s) during every failover window;
//! * **verified re-admission** — each kill completes a
//!   kill → promote → re-sync → re-admit cycle whose content roots
//!   matched (the `resyncs` counter only advances on a root match);
//! * **divergence refusal** — a scripted post-run divergence injection
//!   (`FaultSite::ReplicaDivergence` via the store's re-sync fault
//!   hook) is detected as `ReplicaDiverged` and the replica is never
//!   re-admitted.
//!
//! Results go to `<out>/failover.json`; the committed
//! `BENCH_failover.json` is a snapshot of a full default run.
//!
//! ## Reshard mode (`--reshard`)
//!
//! With `--reshard`, the harness exercises the *elastic resharding*
//! contract: an elastic store starts with `--shards` active groups
//! (twice that many sized), zipfian clients with routing caches churn
//! it, and a conductor splits every group (4 → 8 by default), then
//! merges them back — while the chaos engine tampers with migration
//! copy streams ([`FaultSite::MigrationStreamTamper`]), kills targets
//! mid-copy ([`FaultSite::TargetKill`]) and replays data ops stamped
//! with pre-migration routing epochs
//! ([`FaultSite::StaleEpochReplay`]). The run asserts
//!
//! * **zero acked-write loss across every flip** — the per-key model
//!   plus a final sweep: no acknowledged-then-wrong, no
//!   acknowledged-then-lost;
//! * **aborts are clean** — a scripted tampered-stream migration and a
//!   scripted target-kill migration both abort with the old epoch
//!   still serving, the target scrubbed, and an anomaly flight dump
//!   recorded;
//! * **stale claims are refused** — every replayed stale-epoch frame
//!   draws a typed `WRONG_SHARD` refusal, never data from the old
//!   owner, while a refreshed claim on the same key still succeeds;
//! * **convergence** — every planned migration commits (retrying
//!   through the chaos schedule), the epoch advances once per commit,
//!   and the group count returns to where it started.
//!
//! Results go to `<out>/reshard.json`; the committed
//! `BENCH_reshard.json` is a snapshot of a full default run.

use std::collections::HashMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use aria_bench::{git_rev, json_str, newest_flight_dump, print_table, Args, SCHEMA_VERSION};
use aria_chaos::{ChaosEngine, FaultPlan, FaultSite, HeapInjector, SITE_COUNT};
use aria_merkle::NodeId;
use aria_net::{AriaClient, ClientConfig, ErrorCode, NetError};
use aria_net::{AriaServer, Engine, ServerConfig};
use aria_sim::Enclave;
use aria_store::sharded::{BatchOp, ShardedStore};
use aria_store::{AriaHash, KvStore, RecoveryReport, ShardHealth, StoreConfig};
use aria_workload::{encode_key, ScrambledZipfian};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const VALUE_LEN: usize = 16;
const READ_RATIO_PCT: u64 = 50;

/// Pool of stale-node snapshots awaiting replay: (shard, tree, node, bytes).
type SnapshotPool = Mutex<Vec<(usize, usize, NodeId, Vec<u8>)>>;

/// Encode the value we expect to read back: key id ‖ version.
fn value_for(key_id: u64, version: u64) -> Vec<u8> {
    let mut v = vec![0u8; VALUE_LEN];
    v[..8].copy_from_slice(&key_id.to_le_bytes());
    v[8..].copy_from_slice(&version.to_le_bytes());
    v
}

fn decode_value(bytes: &[u8]) -> Option<(u64, u64)> {
    if bytes.len() != VALUE_LEN {
        return None;
    }
    let key_id = u64::from_le_bytes(bytes[..8].try_into().ok()?);
    let version = u64::from_le_bytes(bytes[8..].try_into().ok()?);
    Some((key_id, version))
}

/// Per-key client-side model: the set of versions a read may legally
/// return. Usually one (the last acked write); a put that failed or
/// timed out may or may not have applied, so its version joins the set
/// until a successful read re-synchronizes.
struct KeyModel {
    acceptable: Vec<u64>,
    next_version: u64,
}

#[derive(Default)]
struct ClientReport {
    ops: u64,
    wrong_reads: u64,
    integrity_errs: u64,
    destroyed_errs: u64,
    quarantined_errs: u64,
    unavailable_errs: u64,
    transport_errs: u64,
    other_errs: u64,
    latencies_us: Vec<f64>,
}

fn classify(report: &mut ClientReport, err: &NetError) {
    match err.code() {
        Some(c) if (c as u16) >= 1 && (c as u16) <= 6 => report.integrity_errs += 1,
        Some(ErrorCode::DataDestroyed) => report.destroyed_errs += 1,
        Some(ErrorCode::ShardQuarantined) => report.quarantined_errs += 1,
        Some(ErrorCode::ShardUnavailable) => report.unavailable_errs += 1,
        Some(_) => report.other_errs += 1,
        None => report.transport_errs += 1,
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One client: zipfian 50/50 read/write loop over its own key range,
/// checking every read against the acked-value model.
#[allow(clippy::too_many_arguments)]
fn run_client(
    addr: std::net::SocketAddr,
    base: u64,
    range: u64,
    ops: u64,
    seed: u64,
    trace_sample: u32,
    done: Arc<AtomicBool>,
) -> ClientReport {
    let mut client =
        AriaClient::connect(addr, ClientConfig { trace_sample, ..ClientConfig::default() })
            .expect("connect chaos client");
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = ScrambledZipfian::new(range, 0.99);
    let mut model: HashMap<u64, KeyModel> = HashMap::new();
    let mut report = ClientReport::default();
    report.latencies_us.reserve(ops as usize);

    for _ in 0..ops {
        if done.load(Ordering::Relaxed) {
            break;
        }
        let key_id = base + zipf.next(&mut rng);
        let key = encode_key(key_id);
        let entry =
            model.entry(key_id).or_insert(KeyModel { acceptable: vec![0], next_version: 1 });
        let is_get = rng.gen_range(0..100u64) < READ_RATIO_PCT;
        let start = Instant::now();
        if is_get {
            match client.get(&key) {
                Ok(Some(bytes)) => match decode_value(&bytes) {
                    Some((k, v)) if k == key_id && entry.acceptable.contains(&v) => {
                        entry.acceptable = vec![v];
                    }
                    _ => report.wrong_reads += 1,
                },
                // Every key is preloaded and never deleted: "absent" is
                // a silent loss, which the chain verification + trusted
                // per-bucket counts are supposed to make impossible.
                Ok(None) => report.wrong_reads += 1,
                Err(e) => classify(&mut report, &e),
            }
        } else {
            let v = entry.next_version;
            entry.next_version += 1;
            match client.put(&key, &value_for(key_id, v)) {
                Ok(()) => entry.acceptable = vec![v],
                Err(e) => {
                    // The put may or may not have applied before the
                    // error: both versions are now plausible.
                    entry.acceptable.push(v);
                    classify(&mut report, &e);
                }
            }
        }
        report.latencies_us.push(start.elapsed().as_secs_f64() * 1e6);
        report.ops += 1;
    }
    report
}

/// Driver-side adversary: consults the engine's schedule and delivers
/// stale-node replays, node flips, pointer swaps and free-list
/// tampering to *healthy* shards via detached shard closures.
#[allow(clippy::too_many_arguments)]
fn run_driver(
    store: Arc<ShardedStore<AriaHash>>,
    engine: Arc<ChaosEngine>,
    shard_keys: Arc<Vec<Vec<Vec<u8>>>>,
    snapshots: Arc<SnapshotPool>,
    delivered: Arc<[AtomicU64; SITE_COUNT]>,
    done: Arc<AtomicBool>,
) {
    let shards = store.shards();
    let mut tick = 0usize;
    while !done.load(Ordering::Relaxed) && !engine.budget_spent() {
        let shard = tick % shards;
        tick += 1;
        if store.health_of(shard) != ShardHealth::Healthy {
            thread::sleep(Duration::from_micros(50));
            continue;
        }
        for site in [
            FaultSite::StaleNodeReplay,
            FaultSite::NodeFlip,
            FaultSite::IndexPointerSwap,
            FaultSite::FreeListTamper,
        ] {
            let Some(entropy) = engine.try_inject(site) else { continue };
            let delivered = Arc::clone(&delivered);
            let keys = Arc::clone(&shard_keys);
            let snapshots = Arc::clone(&snapshots);
            store.exec_detached(shard, move |st: &mut AriaHash| {
                let hit = deliver(st, site, shard, entropy, &keys[shard], &snapshots);
                if hit {
                    delivered[site as usize].fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        thread::sleep(Duration::from_micros(200));
    }
}

/// Execute one driver-side fault against a shard's store. Returns
/// whether anything was actually mutated.
fn deliver(
    st: &mut AriaHash,
    site: FaultSite,
    shard: usize,
    entropy: u64,
    keys: &[Vec<u8>],
    snapshots: &SnapshotPool,
) -> bool {
    match site {
        FaultSite::StaleNodeReplay => {
            let Some(area) = st.core_mut().counters.as_cached_mut() else { return false };
            let mut pool = snapshots.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(pos) = pool.iter().position(|(s, ..)| *s == shard) {
                // Replay: write the stale bytes back over the live node.
                let (_, tree, id, bytes) = pool.swap_remove(pos);
                drop(pool);
                if tree >= area.trees() {
                    return false;
                }
                area.cache_mut(tree).tree_mut_raw().write_node(id, &bytes);
                true
            } else {
                // First strike on this shard: capture a snapshot for a
                // later rollback. Harmless by itself (provably masked).
                let tree = (entropy % area.trees() as u64) as usize;
                let mt = area.cache(tree).tree();
                let (id, _) = mt.locate_counter(entropy.rotate_right(17) % mt.num_counters());
                let bytes = mt.node(id).to_vec();
                pool.push((shard, tree, id, bytes));
                false
            }
        }
        FaultSite::NodeFlip => {
            let Some(area) = st.core_mut().counters.as_cached_mut() else { return false };
            let tree = (entropy % area.trees() as u64) as usize;
            let mt = area.cache_mut(tree).tree_mut_raw();
            let (id, _) = mt.locate_counter(entropy.rotate_right(13) % mt.num_counters());
            let node = mt.node_mut_raw(id);
            let bit = (entropy.rotate_right(29) % (node.len() as u64 * 8)) as usize;
            node[bit / 8] ^= 1 << (bit % 8);
            true
        }
        FaultSite::IndexPointerSwap => {
            if keys.len() < 2 {
                return false;
            }
            let a = &keys[(entropy % keys.len() as u64) as usize];
            let b = &keys[(entropy.rotate_right(23) % keys.len() as u64) as usize];
            if a == b {
                return false;
            }
            st.attack_swap_bucket_pointers(a, b);
            true
        }
        FaultSite::FreeListTamper => {
            if keys.is_empty() {
                return false;
            }
            let key = &keys[(entropy % keys.len() as u64) as usize];
            match st.attack_locate(key) {
                Some(ptr) => st.core_mut().heap.attack_requeue_block(ptr),
                None => false,
            }
        }
        // Write-path sites are the HeapInjector's job, not ours; the
        // replication sites belong to the failover mode's killer and
        // re-sync hook; the durability-log sites belong to durabench,
        // which owns a tiered store with an on-disk log to strike;
        // shard stalls belong to the overload tests, which own the
        // watchdog that must catch them; the migration sites belong to
        // the reshard mode's fault hook and raw replay probes.
        FaultSite::EntryFlip
        | FaultSite::TornWrite
        | FaultSite::PrimaryKill
        | FaultSite::ReplicaDivergence
        | FaultSite::LogBitFlip
        | FaultSite::TornAppend
        | FaultSite::StaleCheckpointRollback
        | FaultSite::ShardStall
        | FaultSite::MigrationStreamTamper
        | FaultSite::TargetKill
        | FaultSite::StaleEpochReplay => false,
    }
}

fn main() {
    let args = Args::parse();
    if args.flag("failover") {
        return run_failover(&args);
    }
    if args.flag("reshard") {
        return run_reshard(&args);
    }
    let smoke = args.flag("smoke");
    let shards = args.get("shards", 4usize);
    let clients = args.get("clients", 4usize);
    let keys = args.get("keys", 8_192u64);
    let ops = args.get("ops", if smoke { 16_000u64 } else { 120_000 });
    let budget = args.get("budget", if smoke { 1_000u64 } else { 12_000 });
    let heap_rate = args.get("heap-rate", 600u32);
    let driver_rate = args.get("driver-rate", 4_000u32);
    let watchdog_secs = args.get("watchdog-secs", if smoke { 180u64 } else { 600 });
    let seed = args.seed();
    let out_dir = args.out_dir();
    let injected_floor = args.get("min-injected", if smoke { 200u64 } else { 10_000 });
    let listen = args.get_str("listen", "127.0.0.1:0");
    let net_engine = Engine::parse(&args.get_str("engine", "reactor"))
        .expect("--engine must be 'reactor' or 'threads'");
    let trace_sample = args.get("trace-sample", 0u32);
    let flight_dir = {
        let d = args.get_str("flight-dir", "");
        (!d.is_empty()).then(|| std::path::PathBuf::from(d))
    };

    println!(
        "chaosbench: shards={shards} clients={clients} keys={keys} ops={ops} \
         budget={budget} heap-rate={heap_rate} driver-rate={driver_rate} seed={seed}"
    );

    // --- watchdog: no hang, ever -----------------------------------------
    let done = Arc::new(AtomicBool::new(false));
    {
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(watchdog_secs);
            while !done.load(Ordering::Relaxed) {
                if Instant::now() > deadline {
                    eprintln!("chaosbench: WATCHDOG — run exceeded {watchdog_secs}s, aborting");
                    std::process::exit(2);
                }
                thread::sleep(Duration::from_millis(100));
            }
        });
    }

    // --- store + chaos engine ---------------------------------------------
    let per_shard_keys = (keys / shards as u64) * 2 + 1_024;
    let store = Arc::new(
        ShardedStore::with_shards(shards, move |_| {
            let suite = Arc::new(aria_crypto::FastSuite::from_master(&[0x42; 16]))
                as Arc<dyn aria_crypto::CipherSuite>;
            AriaHash::with_suite(
                StoreConfig::for_keys(per_shard_keys),
                Arc::new(Enclave::with_default_epc()),
                Some(suite),
            )
        })
        .expect("construct sharded store"),
    );

    let plan = FaultPlan::new(seed)
        .with_rate(FaultSite::EntryFlip, heap_rate)
        .with_rate(FaultSite::TornWrite, heap_rate)
        .with_rate(FaultSite::StaleNodeReplay, driver_rate)
        .with_rate(FaultSite::NodeFlip, driver_rate)
        .with_rate(FaultSite::IndexPointerSwap, driver_rate)
        .with_rate(FaultSite::FreeListTamper, driver_rate)
        .with_budget(budget);
    let engine = ChaosEngine::new(plan);
    engine.arm(false); // quiet during preload
    for s in 0..shards {
        let eng = Arc::clone(&engine);
        store.with_shard(s, move |st: &mut AriaHash| {
            HeapInjector::install(&mut st.core_mut().heap, eng);
        });
    }

    // --- preload: client keys + per-shard probe keys ----------------------
    let probe_per_shard = 8u64;
    let total_keys = keys + shards as u64 * probe_per_shard * 4;
    let mut batch = Vec::with_capacity(512);
    let mut probe_keys: Vec<Vec<(u64, Vec<u8>)>> = vec![Vec::new(); shards];
    for id in 0..total_keys {
        let key = encode_key(id);
        if id >= keys {
            let shard = store.shard_of(&key);
            if (probe_keys[shard].len() as u64) < probe_per_shard {
                probe_keys[shard].push((id, key.to_vec()));
            }
        }
        batch.push(BatchOp::Put(key.to_vec(), value_for(id, 0)));
        if batch.len() == 512 {
            store.run_batch(std::mem::take(&mut batch));
        }
    }
    store.run_batch(batch);

    // Partition the client keyspace by owning shard for targeted faults.
    let mut shard_keys: Vec<Vec<Vec<u8>>> = vec![Vec::new(); shards];
    for id in 0..keys {
        let key = encode_key(id);
        shard_keys[store.shard_of(&key)].push(key.to_vec());
    }
    let shard_keys = Arc::new(shard_keys);

    // --- server ------------------------------------------------------------
    let server = AriaServer::bind(
        listen.as_str(),
        Arc::clone(&store),
        ServerConfig::builder()
            .engine(net_engine)
            .max_connections(clients + 8)
            .flight_dir(flight_dir.clone())
            .build()
            .expect("valid chaos server config"),
    )
    .expect("bind chaos server");
    let addr = server.local_addr();
    println!("chaosbench: serving on {addr} (engine={net_engine})");
    // Injections recorded per fault site in the same snapshot the
    // METRICS opcode serves.
    engine.set_telemetry(Arc::clone(&server.telemetry().chaos));

    // --- health poller: HEALTH opcode, cycle + containment evidence -------
    let poll_done = Arc::new(AtomicBool::new(false));
    let poller = {
        let poll_done = Arc::clone(&poll_done);
        let store = Arc::clone(&store);
        let probe_keys = probe_keys.clone();
        thread::spawn(move || {
            let mut client =
                AriaClient::connect(addr, ClientConfig::default()).expect("connect health poller");
            let mut saw_quarantine = 0u64;
            let mut sibling_serves = 0u64;
            let mut max_recoveries = vec![0u64; store.shards()];
            let mut probe_rng: u64 = 0x1234_5678;
            while !poll_done.load(Ordering::Relaxed) {
                if let Ok(reply) = client.health() {
                    let degraded: Vec<usize> = reply
                        .shards
                        .iter()
                        .enumerate()
                        .filter(|(_, i)| {
                            matches!(i.health(), ShardHealth::Quarantined | ShardHealth::Recovering)
                        })
                        .map(|(s, _)| s)
                        .collect();
                    for (s, info) in reply.shards.iter().enumerate() {
                        max_recoveries[s] = max_recoveries[s].max(info.recoveries);
                    }
                    if !degraded.is_empty() {
                        saw_quarantine += 1;
                        // Containment probe: a *different*, healthy shard
                        // must keep answering while this one is down.
                        let healthy: Vec<usize> = reply
                            .shards
                            .iter()
                            .enumerate()
                            .filter(|(s, i)| {
                                i.health() == ShardHealth::Healthy && !degraded.contains(s)
                            })
                            .map(|(s, _)| s)
                            .collect();
                        if let Some(&s) = healthy.first() {
                            probe_rng = probe_rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                            let picks = &probe_keys[s];
                            if !picks.is_empty() {
                                let (id, key) = &picks[(probe_rng % picks.len() as u64) as usize];
                                if let Ok(Some(bytes)) = client.get(key) {
                                    if decode_value(&bytes) == Some((*id, 0)) {
                                        sibling_serves += 1;
                                    }
                                }
                            }
                        }
                    }
                }
                thread::sleep(Duration::from_millis(2));
            }
            (saw_quarantine, sibling_serves, max_recoveries)
        })
    };

    // --- run: clients + driver-side adversary ------------------------------
    engine.arm(true);
    let delivered: Arc<[AtomicU64; SITE_COUNT]> = Arc::new(Default::default());
    let snapshots = Arc::new(Mutex::new(Vec::new()));
    let driver = {
        let store = Arc::clone(&store);
        let engine = Arc::clone(&engine);
        let shard_keys = Arc::clone(&shard_keys);
        let snapshots = Arc::clone(&snapshots);
        let delivered = Arc::clone(&delivered);
        let done = Arc::clone(&done);
        thread::spawn(move || run_driver(store, engine, shard_keys, snapshots, delivered, done))
    };

    let start = Instant::now();
    let ops_per_client = ops / clients as u64;
    let keys_per_client = keys / clients as u64;
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let done = Arc::clone(&done);
            let base = c as u64 * keys_per_client;
            let cseed = seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(c as u64 + 1);
            thread::spawn(move || {
                run_client(addr, base, keys_per_client, ops_per_client, cseed, trace_sample, done)
            })
        })
        .collect();
    let mut report = ClientReport::default();
    for w in workers {
        let r = w.join().expect("client thread panicked");
        report.ops += r.ops;
        report.wrong_reads += r.wrong_reads;
        report.integrity_errs += r.integrity_errs;
        report.destroyed_errs += r.destroyed_errs;
        report.quarantined_errs += r.quarantined_errs;
        report.unavailable_errs += r.unavailable_errs;
        report.transport_errs += r.transport_errs;
        report.other_errs += r.other_errs;
        report.latencies_us.extend(r.latencies_us);
    }
    let elapsed = start.elapsed();
    done.store(true, Ordering::Relaxed);
    driver.join().expect("driver thread panicked");

    // --- settle + disarm + final audit -------------------------------------
    engine.arm(false);
    let settle_deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let busy = store
            .healths()
            .iter()
            .any(|h| matches!(h.health, ShardHealth::Quarantined | ShardHealth::Recovering));
        if !busy || Instant::now() > settle_deadline {
            assert!(!busy, "quarantined shards failed to settle within 60s");
            break;
        }
        thread::sleep(Duration::from_millis(5));
    }
    poll_done.store(true, Ordering::Relaxed);
    let (saw_quarantine, sibling_serves, poll_recoveries) =
        poller.join().expect("health poller panicked");

    let healths = store.healths();
    let mut audits: Vec<Option<RecoveryReport>> = Vec::with_capacity(shards);
    for (s, info) in healths.iter().enumerate() {
        if info.health == ShardHealth::Dead {
            audits.push(None);
            continue;
        }
        audits.push(Some(
            store.with_shard(s, |st: &mut AriaHash| st.recover().expect("final audit")),
        ));
    }

    // --- model sweep: every acked value must still read correctly (or
    // fail with a typed, accounted error) -----------------------------------
    let mut sweep_client =
        AriaClient::connect(addr, ClientConfig::default()).expect("connect sweep client");
    let mut sweep_ok = 0u64;
    let mut sweep_typed = 0u64;
    let mut sweep_wrong = 0u64;
    for id in 0..keys {
        match sweep_client.get(&encode_key(id)) {
            Ok(Some(bytes)) => match decode_value(&bytes) {
                Some((k, _)) if k == id => sweep_ok += 1,
                _ => sweep_wrong += 1,
            },
            Ok(None) => sweep_wrong += 1,
            Err(e) if e.code().is_some() => sweep_typed += 1,
            Err(_) => sweep_typed += 1,
        }
    }
    let telemetry = server.telemetry().snapshot();
    server.shutdown();

    // --- verdict ------------------------------------------------------------
    let stats = engine.stats();
    let injected = stats.injected_total;
    let total_recoveries: u64 = healths.iter().map(|h| h.recoveries).sum();
    let total_violations: u64 = healths.iter().map(|h| h.violations).sum();
    let audit_destroyed: u64 = audits.iter().flatten().map(|r| r.entries_destroyed).sum();
    let audit_condemned: u64 = audits.iter().flatten().map(|r| r.merkle_nodes_condemned).sum();
    let detected_events = report.integrity_errs
        + report.destroyed_errs
        + total_violations
        + audit_destroyed
        + audit_condemned;

    report.latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p50 = percentile(&report.latencies_us, 0.50);
    let p99 = percentile(&report.latencies_us, 0.99);

    let mut failures: Vec<String> = Vec::new();
    let mut check = |ok: bool, msg: &str| {
        if !ok {
            failures.push(msg.to_string());
        }
    };
    check(report.wrong_reads == 0, "acknowledged-then-wrong reads observed");
    check(sweep_wrong == 0, "final model sweep returned wrong/missing values");
    check(injected >= injected_floor, "injected fault count below floor");
    check(total_recoveries >= 1, "no quarantine → recovery → re-admission cycle completed");
    check(saw_quarantine >= 1, "HEALTH opcode never observed a quarantined shard");
    check(sibling_serves >= 1, "no healthy sibling served while a shard was quarantined");
    check(detected_events >= 1, "no injected fault was ever detected");
    check(p99 < 500_000.0, "p99 latency above 500ms (hang-adjacent)");
    if let Some(dir) = &flight_dir {
        // Quarantines are flight-recorder anomalies: with the recorder
        // armed, the cycle this run provokes must leave a post-mortem.
        match newest_flight_dump(dir) {
            Some((count, path, dump)) => {
                println!(
                    "flight recorder: {count} dump(s), newest {} ({} span(s) aboard)",
                    path.display(),
                    dump.matches("\"trace_id\"").count(),
                );
                check(
                    dump.contains("\"reason\":\"anomaly\"") && dump.contains("\"events\""),
                    "flight dump is not an anomaly post-mortem",
                );
            }
            None => check(false, "quarantine cycle left no flight dump"),
        }
    }

    // --- report -------------------------------------------------------------
    let site_rows: Vec<Vec<String>> = FaultSite::ALL
        .iter()
        .map(|&s| {
            vec![
                s.name().to_string(),
                stats.site(s).draws.to_string(),
                stats.site(s).injected.to_string(),
                delivered[s as usize].load(Ordering::Relaxed).to_string(),
            ]
        })
        .collect();
    print_table("chaos sites", &["site", "draws", "injected", "delivered"], &site_rows);
    let health_rows: Vec<Vec<String>> = healths
        .iter()
        .enumerate()
        .map(|(s, h)| {
            vec![
                s.to_string(),
                h.health.to_string(),
                h.violations.to_string(),
                h.recoveries.to_string(),
                poll_recoveries[s].to_string(),
            ]
        })
        .collect();
    print_table(
        "shard health",
        &["shard", "state", "violations", "recoveries", "seen-via-HEALTH"],
        &health_rows,
    );
    println!(
        "ops={} elapsed={:.2}s p50={:.0}us p99={:.0}us wrong_reads={} injected={} \
         detected_events={} recoveries={} sweep ok/typed/wrong={}/{}/{}",
        report.ops,
        elapsed.as_secs_f64(),
        p50,
        p99,
        report.wrong_reads,
        injected,
        detected_events,
        total_recoveries,
        sweep_ok,
        sweep_typed,
        sweep_wrong,
    );

    write_json(
        &out_dir,
        seed,
        &args,
        &report,
        &stats,
        &delivered,
        &healths,
        &audits,
        (saw_quarantine, sibling_serves),
        (sweep_ok, sweep_typed, sweep_wrong),
        (p50, p99),
        elapsed,
        &failures,
        &telemetry,
    );

    if failures.is_empty() {
        println!("chaosbench: PASS");
    } else {
        for f in &failures {
            eprintln!("chaosbench: FAIL — {f}");
        }
        std::process::exit(1);
    }
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    out_dir: &str,
    seed: u64,
    args: &Args,
    report: &ClientReport,
    stats: &aria_chaos::ChaosStats,
    delivered: &[AtomicU64; SITE_COUNT],
    healths: &[aria_store::ShardHealthSnapshot],
    audits: &[Option<RecoveryReport>],
    (saw_quarantine, sibling_serves): (u64, u64),
    (sweep_ok, sweep_typed, sweep_wrong): (u64, u64, u64),
    (p50, p99): (f64, f64),
    elapsed: Duration,
    failures: &[String],
    telemetry: &aria_telemetry::TelemetrySnapshot,
) {
    let engine = args.get_str("engine", "reactor");
    let sites = FaultSite::ALL
        .iter()
        .map(|&s| {
            format!(
                "{{\"site\":{},\"draws\":{},\"injected\":{},\"delivered\":{}}}",
                json_str(s.name()),
                stats.site(s).draws,
                stats.site(s).injected,
                delivered[s as usize].load(Ordering::Relaxed)
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let shard_json = healths
        .iter()
        .enumerate()
        .map(|(s, h)| {
            let audit = match &audits[s] {
                Some(r) => format!(
                    "{{\"entries_verified\":{},\"entries_destroyed\":{},\
                     \"buckets_poisoned\":{},\"merkle_nodes_condemned\":{},\
                     \"counters_reinitialized\":{}}}",
                    r.entries_verified,
                    r.entries_destroyed,
                    r.buckets_poisoned,
                    r.merkle_nodes_condemned,
                    r.counters_reinitialized
                ),
                None => "null".to_string(),
            };
            format!(
                "{{\"shard\":{s},\"state\":{},\"violations\":{},\"recoveries\":{},\
                 \"final_audit\":{audit}}}",
                json_str(&h.health.to_string()),
                h.violations,
                h.recoveries
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let failures_json = failures.iter().map(|f| json_str(f)).collect::<Vec<_>>().join(",");
    let doc = format!(
        "{{\n\"schema_version\":{SCHEMA_VERSION},\n\"experiment\":\"chaos\",\n\
         \"engine\":{},\n\
         \"git_rev\":{},\n\"seed\":{seed},\n\"elapsed_s\":{:.3},\n\"ops\":{},\n\
         \"wrong_reads\":{},\n\"integrity_errors\":{},\n\"destroyed_errors\":{},\n\
         \"quarantined_errors\":{},\n\"unavailable_errors\":{},\n\
         \"transport_errors\":{},\n\"other_errors\":{},\n\
         \"injected_total\":{},\n\"sites\":[{sites}],\n\"shards\":[{shard_json}],\n\
         \"health_polls_with_quarantine\":{saw_quarantine},\n\
         \"sibling_serves_during_quarantine\":{sibling_serves},\n\
         \"sweep\":{{\"ok\":{sweep_ok},\"typed_errors\":{sweep_typed},\"wrong\":{sweep_wrong}}},\n\
         \"latency_us\":{{\"p50\":{:.1},\"p99\":{:.1}}},\n\
         \"telemetry\":{},\n\
         \"verdict\":{},\n\"failures\":[{failures_json}]\n}}\n",
        json_str(&engine),
        json_str(git_rev()),
        elapsed.as_secs_f64(),
        report.ops,
        report.wrong_reads,
        report.integrity_errs,
        report.destroyed_errs,
        report.quarantined_errs,
        report.unavailable_errs,
        report.transport_errs,
        report.other_errs,
        stats.injected_total,
        p50,
        p99,
        telemetry.to_json(),
        json_str(if failures.is_empty() { "pass" } else { "fail" }),
    );
    std::fs::create_dir_all(out_dir).expect("create out dir");
    let path = format!("{out_dir}/chaos.json");
    let mut f = std::fs::File::create(&path).expect("create chaos.json");
    f.write_all(doc.as_bytes()).expect("write chaos.json");
    println!("wrote {path}");
}

// ---------------------------------------------------------------------------
// Failover mode
// ---------------------------------------------------------------------------

/// One failover-mode client: zipfian 50/50 read/write loop with the
/// retry budget enabled (so failover windows are ridden out instead of
/// surfaced), returning both its report and its final acked-value
/// model for the post-run sweep.
fn run_failover_client(
    addr: std::net::SocketAddr,
    base: u64,
    range: u64,
    ops: u64,
    seed: u64,
    done: Arc<AtomicBool>,
) -> (ClientReport, HashMap<u64, Vec<u64>>) {
    let config = ClientConfig {
        retry_budget: 64,
        op_deadline: Duration::from_secs(20),
        retry_backoff: Duration::from_millis(2),
        ..ClientConfig::default()
    };
    let mut client = AriaClient::connect(addr, config).expect("connect failover client");
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = ScrambledZipfian::new(range, 0.99);
    let mut model: HashMap<u64, KeyModel> = HashMap::new();
    let mut report = ClientReport::default();
    report.latencies_us.reserve(ops as usize);

    for _ in 0..ops {
        if done.load(Ordering::Relaxed) {
            break;
        }
        let key_id = base + zipf.next(&mut rng);
        let key = encode_key(key_id);
        let entry =
            model.entry(key_id).or_insert(KeyModel { acceptable: vec![0], next_version: 1 });
        let is_get = rng.gen_range(0..100u64) < READ_RATIO_PCT;
        let start = Instant::now();
        if is_get {
            match client.get(&key) {
                Ok(Some(bytes)) => match decode_value(&bytes) {
                    Some((k, v)) if k == key_id && entry.acceptable.contains(&v) => {
                        entry.acceptable = vec![v];
                    }
                    _ => report.wrong_reads += 1,
                },
                Ok(None) => report.wrong_reads += 1,
                Err(e) => classify(&mut report, &e),
            }
        } else {
            let v = entry.next_version;
            entry.next_version += 1;
            match client.put(&key, &value_for(key_id, v)) {
                Ok(()) => entry.acceptable = vec![v],
                Err(e) => {
                    // The put may or may not have applied before the
                    // error: both versions stay plausible.
                    entry.acceptable.push(v);
                    classify(&mut report, &e);
                }
            }
        }
        report.latencies_us.push(start.elapsed().as_secs_f64() * 1e6);
        report.ops += 1;
    }
    let acked = model.into_iter().map(|(k, m)| (k, m.acceptable)).collect();
    (report, acked)
}

fn all_replicas_healthy(stats: &[aria_store::sharded::GroupStats]) -> bool {
    stats.iter().all(|g| g.replicas.iter().all(|r| r.health == ShardHealth::Healthy))
}

fn run_failover(args: &Args) {
    let smoke = args.flag("smoke");
    let groups = args.get("shards", 4usize);
    let replicas = 2usize;
    let clients = args.get("clients", 4usize);
    let keys = args.get("keys", 8_192u64);
    let ops = args.get("ops", if smoke { 24_000u64 } else { 160_000 });
    let kill_floor = args.get("kills", if smoke { 4u64 } else { 20 });
    let watchdog_secs = args.get("watchdog-secs", if smoke { 240u64 } else { 600 });
    let seed = args.seed();
    let out_dir = args.out_dir();
    let listen = args.get_str("listen", "127.0.0.1:0");
    let net_engine = Engine::parse(&args.get_str("engine", "reactor"))
        .expect("--engine must be 'reactor' or 'threads'");

    println!(
        "chaosbench[failover]: groups={groups} replicas={replicas} clients={clients} \
         keys={keys} ops={ops} kills>={kill_floor} seed={seed}"
    );

    // Injected primary kills panic a worker thread on purpose; keep the
    // expected backtraces out of the output while letting any *other*
    // panic (a real bug) print as usual.
    const KILL_MSG: &str = "chaosbench: injected primary kill";
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let expected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains(KILL_MSG))
            .or_else(|| info.payload().downcast_ref::<String>().map(|s| s.contains(KILL_MSG)))
            .unwrap_or(false);
        if !expected {
            default_hook(info);
        }
    }));

    // --- watchdog: no hang, ever -------------------------------------------
    let done = Arc::new(AtomicBool::new(false));
    {
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(watchdog_secs);
            while !done.load(Ordering::Relaxed) {
                if Instant::now() > deadline {
                    eprintln!(
                        "chaosbench[failover]: WATCHDOG — run exceeded {watchdog_secs}s, aborting"
                    );
                    std::process::exit(2);
                }
                thread::sleep(Duration::from_millis(100));
            }
        });
    }

    // --- replicated store + kill schedule ----------------------------------
    let per_shard_keys = (keys / groups as u64) * 2 + 1_024;
    let store = Arc::new(
        ShardedStore::with_replicas(groups, replicas, 64, move |_| {
            let suite = Arc::new(aria_crypto::FastSuite::from_master(&[0x42; 16]))
                as Arc<dyn aria_crypto::CipherSuite>;
            AriaHash::with_suite(
                StoreConfig::for_keys(per_shard_keys),
                Arc::new(Enclave::with_default_epc()),
                Some(suite),
            )
        })
        .expect("construct replicated store"),
    );

    // The kill schedule and the divergence injection both come from the
    // deterministic chaos engine: PrimaryKill fires on every consult
    // (the killer's own health gating paces it), ReplicaDivergence only
    // when the post-run phase arms the re-sync fault hook.
    let plan = FaultPlan::new(seed)
        .with_rate(FaultSite::PrimaryKill, 10_000)
        .with_rate(FaultSite::ReplicaDivergence, 10_000)
        .with_budget(kill_floor * 8 + 64);
    let engine = ChaosEngine::new(plan);
    engine.arm(true);
    let hook_armed = Arc::new(AtomicBool::new(false));
    {
        let armed = Arc::clone(&hook_armed);
        let engine = Arc::clone(&engine);
        store.set_resync_fault_hook(move |_group| {
            armed.load(Ordering::SeqCst)
                && engine.try_inject(FaultSite::ReplicaDivergence).is_some()
        });
    }

    // --- preload: client keys + per-group probe keys ------------------------
    let probe_per_group = 8usize;
    let total_keys = keys + (groups * probe_per_group) as u64 * 4;
    let mut probe_keys: Vec<Vec<(u64, Vec<u8>)>> = vec![Vec::new(); groups];
    let mut batch = Vec::with_capacity(512);
    for id in 0..total_keys {
        let key = encode_key(id);
        if id >= keys {
            let group = store.shard_of(&key);
            if probe_keys[group].len() < probe_per_group {
                probe_keys[group].push((id, key.to_vec()));
            }
        }
        batch.push(BatchOp::Put(key.to_vec(), value_for(id, 0)));
        if batch.len() == 512 {
            store.run_batch(std::mem::take(&mut batch));
        }
    }
    store.run_batch(batch);

    // --- server --------------------------------------------------------------
    let server = AriaServer::bind(
        listen.as_str(),
        Arc::clone(&store),
        ServerConfig::builder()
            .engine(net_engine)
            .max_connections(clients + 8)
            .build()
            .expect("valid chaos server config"),
    )
    .expect("bind failover server");
    let addr = server.local_addr();
    println!("chaosbench[failover]: serving on {addr} (engine={net_engine})");
    engine.set_telemetry(Arc::clone(&server.telemetry().chaos));

    // --- health poller + traffic pulse ---------------------------------------
    // The pulse GET is load-bearing beyond evidence gathering: a killed
    // worker is only *noticed* when a later op's channel fails, so the
    // poller keeps ops flowing even after the clients finish their
    // budgets, guaranteeing failover and re-sync keep making progress.
    let poll_done = Arc::new(AtomicBool::new(false));
    let poller = {
        let poll_done = Arc::clone(&poll_done);
        let probe_keys = probe_keys.clone();
        thread::spawn(move || {
            let mut client =
                AriaClient::connect(addr, ClientConfig::default()).expect("connect health poller");
            let mut sibling_serves = 0u64;
            let mut degraded_polls = 0u64;
            let mut promotions_seen = 0u64;
            let mut max_lag_seen = 0u64;
            let mut last_primary: Vec<Option<usize>> = vec![None; groups];
            let mut pulse_rng: u64 = 0x5151_7171;
            while !poll_done.load(Ordering::Relaxed) {
                if let Ok(reply) = client.health() {
                    // Entries are group-major: group * replicas + replica.
                    let degraded: Vec<usize> = (0..groups)
                        .filter(|g| {
                            reply.shards[g * replicas..(g + 1) * replicas]
                                .iter()
                                .any(|i| i.health() != ShardHealth::Healthy)
                        })
                        .collect();
                    for (g, last) in last_primary.iter_mut().enumerate() {
                        let entries = &reply.shards[g * replicas..(g + 1) * replicas];
                        max_lag_seen =
                            max_lag_seen.max(entries.iter().map(|i| i.lag).max().unwrap_or(0));
                        let primary = entries
                            .iter()
                            .position(|i| i.replica_role() == aria_store::ReplicaRole::Primary);
                        if let (Some(p), Some(prev)) = (primary, *last) {
                            if p != prev {
                                promotions_seen += 1;
                            }
                        }
                        if primary.is_some() {
                            *last = primary;
                        }
                    }
                    if !degraded.is_empty() {
                        degraded_polls += 1;
                        // Containment probe: a fully healthy *other* group
                        // must keep answering during this failover.
                        if let Some(&g) = (0..groups).find(|g| !degraded.contains(g)).as_ref() {
                            pulse_rng = pulse_rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                            let picks = &probe_keys[g];
                            if !picks.is_empty() {
                                let (id, key) = &picks[(pulse_rng % picks.len() as u64) as usize];
                                if let Ok(Some(bytes)) = client.get(key) {
                                    if decode_value(&bytes) == Some((*id, 0)) {
                                        sibling_serves += 1;
                                    }
                                }
                            }
                        }
                    }
                }
                // Traffic pulse: one GET on the full keyspace.
                pulse_rng = pulse_rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                let _ = client.get(&encode_key(pulse_rng % total_keys));
                thread::sleep(Duration::from_millis(2));
            }
            (sibling_serves, degraded_polls, promotions_seen, max_lag_seen)
        })
    };

    // --- killer: seed-scheduled primary kills, gated on group health --------
    let kills = Arc::new(AtomicU64::new(0));
    let killer_done = Arc::new(AtomicBool::new(false));
    let killer = {
        let store = Arc::clone(&store);
        let engine = Arc::clone(&engine);
        let kills = Arc::clone(&kills);
        let killer_done = Arc::clone(&killer_done);
        thread::spawn(move || {
            while !killer_done.load(Ordering::Relaxed) && kills.load(Ordering::Relaxed) < kill_floor
            {
                if let Some(entropy) = engine.try_inject(FaultSite::PrimaryKill) {
                    let g = (entropy % groups as u64) as usize;
                    let stats = store.group_stats();
                    // Only strike a fully healthy group: each kill then
                    // exercises one complete kill → promote → re-sync →
                    // re-admit cycle, and an acked write can never be
                    // stranded on a lone survivor.
                    if stats[g].replicas.iter().all(|r| r.health == ShardHealth::Healthy) {
                        let p = stats[g].primary;
                        if store.exec_detached_replica(g, p, |_st: &mut AriaHash| {
                            panic!("chaosbench: injected primary kill")
                        }) {
                            kills.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
                thread::sleep(Duration::from_millis(1));
            }
        })
    };

    // --- run: zipfian clients across the kill schedule ----------------------
    let start = Instant::now();
    let ops_per_client = ops / clients as u64;
    let keys_per_client = keys / clients as u64;
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let done = Arc::clone(&done);
            let base = c as u64 * keys_per_client;
            let cseed = seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(c as u64 + 1);
            thread::spawn(move || {
                run_failover_client(addr, base, keys_per_client, ops_per_client, cseed, done)
            })
        })
        .collect();

    let mut report = ClientReport::default();
    let mut acked: HashMap<u64, Vec<u64>> = HashMap::new();
    for w in workers {
        let (r, model) = w.join().expect("failover client panicked");
        report.ops += r.ops;
        report.wrong_reads += r.wrong_reads;
        report.integrity_errs += r.integrity_errs;
        report.destroyed_errs += r.destroyed_errs;
        report.quarantined_errs += r.quarantined_errs;
        report.unavailable_errs += r.unavailable_errs;
        report.transport_errs += r.transport_errs;
        report.other_errs += r.other_errs;
        report.latencies_us.extend(r.latencies_us);
        acked.extend(model); // client key ranges are disjoint
    }
    let elapsed = start.elapsed();

    // Clients are done; the poller's pulse keeps recovery moving until
    // the kill floor is reached and every group settles.
    let kill_deadline = Instant::now() + Duration::from_secs(watchdog_secs / 2);
    while kills.load(Ordering::SeqCst) < kill_floor && Instant::now() < kill_deadline {
        thread::sleep(Duration::from_millis(5));
    }
    killer_done.store(true, Ordering::SeqCst);
    killer.join().expect("killer thread panicked");
    let kills = kills.load(Ordering::SeqCst);

    let settle_deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let stats = store.group_stats();
        let resyncs: u64 = stats.iter().map(|g| g.resyncs).sum();
        if (all_replicas_healthy(&stats) && resyncs >= kills) || Instant::now() > settle_deadline {
            assert!(
                all_replicas_healthy(&stats),
                "groups failed to settle after the kill schedule: {stats:?}"
            );
            break;
        }
        thread::sleep(Duration::from_millis(5));
    }
    done.store(true, Ordering::SeqCst);

    // --- sweep: every acknowledged write must be readable --------------------
    let mut sweep_client =
        AriaClient::connect(addr, ClientConfig { retry_budget: 16, ..ClientConfig::default() })
            .expect("connect sweep client");
    let mut sweep_ok = 0u64;
    let mut sweep_wrong = 0u64;
    let preloaded = vec![0u64];
    for id in 0..keys {
        let acceptable = acked.get(&id).unwrap_or(&preloaded);
        match sweep_client.get(&encode_key(id)) {
            Ok(Some(bytes)) => match decode_value(&bytes) {
                Some((k, v)) if k == id && acceptable.contains(&v) => sweep_ok += 1,
                _ => sweep_wrong += 1,
            },
            _ => sweep_wrong += 1,
        }
    }

    // --- divergence phase: a corrupted rejoiner must never re-admit ----------
    let stats_before = store.group_stats();
    let div_group = 0usize;
    let div_primary = stats_before[div_group].primary;
    hook_armed.store(true, Ordering::SeqCst);
    store.exec_detached_replica(div_group, div_primary, |_st: &mut AriaHash| {
        panic!("chaosbench: injected primary kill")
    });
    let div_deadline = Instant::now() + Duration::from_secs(60);
    let mut diverged_detected = false;
    while Instant::now() < div_deadline {
        // Drive traffic so the kill is noticed and the re-sync runs.
        let _ = sweep_client.get(&encode_key(0));
        let g = &store.group_stats()[div_group];
        if matches!(g.last_resync_error, Some(aria_store::StoreError::ReplicaDiverged { .. })) {
            diverged_detected = true;
            break;
        }
        thread::sleep(Duration::from_millis(2));
    }
    hook_armed.store(false, Ordering::SeqCst);
    // The diverged replica must stay out of service, and the survivor
    // must keep the group serving.
    thread::sleep(Duration::from_millis(100));
    let div_stats = &store.group_stats()[div_group];
    let diverged_readmitted = div_stats.resyncs > stats_before[div_group].resyncs;
    let dead_replicas = div_stats.replicas.iter().filter(|r| r.health == ShardHealth::Dead).count();
    let survivor_serves = probe_keys[div_group]
        .first()
        .map(|(id, key)| {
            matches!(sweep_client.get(key), Ok(Some(bytes))
                if decode_value(&bytes) == Some((*id, 0)))
        })
        .unwrap_or(false);

    poll_done.store(true, Ordering::SeqCst);
    let (sibling_serves, degraded_polls, promotions_seen, max_lag_seen) =
        poller.join().expect("health poller panicked");
    let telemetry = server.telemetry().snapshot();
    let group_stats = store.group_stats();
    server.shutdown();

    // --- verdict --------------------------------------------------------------
    let failovers: u64 = group_stats.iter().map(|g| g.failovers).sum();
    let resyncs: u64 = group_stats.iter().map(|g| g.resyncs).sum();
    report.latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p50 = percentile(&report.latencies_us, 0.50);
    let p99 = percentile(&report.latencies_us, 0.99);

    let mut failures: Vec<String> = Vec::new();
    let mut check = |ok: bool, msg: &str| {
        if !ok {
            failures.push(msg.to_string());
        }
    };
    check(kills >= kill_floor, "primary-kill count below floor");
    check(report.wrong_reads == 0, "acknowledged-then-wrong reads observed");
    check(sweep_wrong == 0, "final sweep lost or corrupted an acknowledged write");
    check(failovers >= kills, "fewer promotions than kills");
    check(resyncs >= kills, "fewer verified re-sync cycles than kills");
    check(sibling_serves >= 1, "no sibling group served during a failover window");
    check(promotions_seen >= 1, "HEALTH opcode never observed a promotion");
    check(diverged_detected, "injected divergence was not detected as ReplicaDiverged");
    check(!diverged_readmitted, "a diverged replica was re-admitted");
    check(dead_replicas == 1, "diverged replica is not parked as Dead");
    check(survivor_serves, "survivor stopped serving after the divergence refusal");
    check(p99 < 500_000.0, "p99 latency above 500ms (hang-adjacent)");

    // --- report ---------------------------------------------------------------
    let group_rows: Vec<Vec<String>> = group_stats
        .iter()
        .map(|g| {
            vec![
                g.group.to_string(),
                g.primary.to_string(),
                g.failovers.to_string(),
                g.resyncs.to_string(),
                g.replicas
                    .iter()
                    .map(|r| format!("{}:{}", r.role, r.health))
                    .collect::<Vec<_>>()
                    .join(" "),
            ]
        })
        .collect();
    print_table(
        "shard groups",
        &["group", "primary", "failovers", "resyncs", "replicas"],
        &group_rows,
    );
    println!(
        "ops={} elapsed={:.2}s p50={:.0}us p99={:.0}us kills={} failovers={} resyncs={} \
         wrong_reads={} sweep ok/wrong={}/{} sibling_serves={} degraded_polls={} \
         promotions_seen={} max_lag_seen={} diverged detected/readmitted={}/{}",
        report.ops,
        elapsed.as_secs_f64(),
        p50,
        p99,
        kills,
        failovers,
        resyncs,
        report.wrong_reads,
        sweep_ok,
        sweep_wrong,
        sibling_serves,
        degraded_polls,
        promotions_seen,
        max_lag_seen,
        diverged_detected,
        diverged_readmitted,
    );

    let group_json = group_stats
        .iter()
        .map(|g| {
            let replicas = g
                .replicas
                .iter()
                .map(|r| {
                    format!(
                        "{{\"replica\":{},\"role\":{},\"state\":{},\"lag\":{},\
                         \"violations\":{},\"recoveries\":{}}}",
                        r.replica,
                        json_str(&r.role.to_string()),
                        json_str(&r.health.to_string()),
                        r.lag,
                        r.violations,
                        r.recoveries
                    )
                })
                .collect::<Vec<_>>()
                .join(",");
            format!(
                "{{\"group\":{},\"primary\":{},\"failovers\":{},\"resyncs\":{},\
                 \"last_resync_error\":{},\"replicas\":[{replicas}]}}",
                g.group,
                g.primary,
                g.failovers,
                g.resyncs,
                match &g.last_resync_error {
                    Some(e) => json_str(&e.to_string()),
                    None => "null".to_string(),
                }
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let failures_json = failures.iter().map(|f| json_str(f)).collect::<Vec<_>>().join(",");
    let doc = format!(
        "{{\n\"schema_version\":{SCHEMA_VERSION},\n\"experiment\":\"failover\",\n\
         \"engine\":{},\n\
         \"git_rev\":{},\n\"seed\":{seed},\n\"elapsed_s\":{:.3},\n\
         \"groups\":{groups},\n\"replicas\":{replicas},\n\"ops\":{},\n\
         \"kills\":{kills},\n\"failovers\":{failovers},\n\"resyncs\":{resyncs},\n\
         \"wrong_reads\":{},\n\"quarantined_errors\":{},\n\"unavailable_errors\":{},\n\
         \"transport_errors\":{},\n\"other_errors\":{},\n\
         \"sweep\":{{\"ok\":{sweep_ok},\"wrong\":{sweep_wrong}}},\n\
         \"sibling_serves_during_failover\":{sibling_serves},\n\
         \"degraded_health_polls\":{degraded_polls},\n\
         \"promotions_seen_via_health\":{promotions_seen},\n\
         \"max_replica_lag_seen\":{max_lag_seen},\n\
         \"divergence\":{{\"detected\":{diverged_detected},\
         \"readmitted\":{diverged_readmitted},\"survivor_serves\":{survivor_serves}}},\n\
         \"latency_us\":{{\"p50\":{:.1},\"p99\":{:.1}}},\n\
         \"group_stats\":[{group_json}],\n\
         \"telemetry\":{},\n\
         \"verdict\":{},\n\"failures\":[{failures_json}]\n}}\n",
        json_str(net_engine.name()),
        json_str(git_rev()),
        elapsed.as_secs_f64(),
        report.ops,
        report.wrong_reads,
        report.quarantined_errs,
        report.unavailable_errs,
        report.transport_errs,
        report.other_errs,
        p50,
        p99,
        telemetry.to_json(),
        json_str(if failures.is_empty() { "pass" } else { "fail" }),
    );
    std::fs::create_dir_all(&out_dir).expect("create out dir");
    let path = format!("{out_dir}/failover.json");
    std::fs::write(&path, doc).expect("write failover.json");
    println!("wrote {path}");

    if failures.is_empty() {
        println!("chaosbench[failover]: PASS");
    } else {
        for f in &failures {
            eprintln!("chaosbench[failover]: FAIL — {f}");
        }
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------------
// Reshard mode
// ---------------------------------------------------------------------------

/// One reshard-mode client: the failover loop plus routing-cache
/// evidence — runs until the conductor finishes (and its op floor is
/// met) so migrations always overlap live traffic, and reports the
/// routing epoch it ended on (> 1 proves a `WRONG_SHARD` refusal
/// refreshed the cache mid-run).
fn run_reshard_client(
    addr: std::net::SocketAddr,
    base: u64,
    range: u64,
    min_ops: u64,
    seed: u64,
    done: Arc<AtomicBool>,
) -> (ClientReport, HashMap<u64, Vec<u64>>, u64) {
    let config = ClientConfig {
        retry_budget: 64,
        op_deadline: Duration::from_secs(20),
        retry_backoff: Duration::from_millis(2),
        ..ClientConfig::default()
    };
    let mut client = AriaClient::connect(addr, config).expect("connect reshard client");
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = ScrambledZipfian::new(range, 0.99);
    let mut model: HashMap<u64, KeyModel> = HashMap::new();
    let mut report = ClientReport::default();
    report.latencies_us.reserve(min_ops as usize);

    while !done.load(Ordering::Relaxed) || report.ops < min_ops {
        let key_id = base + zipf.next(&mut rng);
        let key = encode_key(key_id);
        let entry =
            model.entry(key_id).or_insert(KeyModel { acceptable: vec![0], next_version: 1 });
        let is_get = rng.gen_range(0..100u64) < READ_RATIO_PCT;
        let start = Instant::now();
        if is_get {
            match client.get(&key) {
                Ok(Some(bytes)) => match decode_value(&bytes) {
                    Some((k, v)) if k == key_id && entry.acceptable.contains(&v) => {
                        entry.acceptable = vec![v];
                    }
                    _ => report.wrong_reads += 1,
                },
                Ok(None) => report.wrong_reads += 1,
                Err(e) => classify(&mut report, &e),
            }
        } else {
            let v = entry.next_version;
            entry.next_version += 1;
            match client.put(&key, &value_for(key_id, v)) {
                Ok(()) => entry.acceptable = vec![v],
                Err(e) => {
                    // The put may or may not have applied before the
                    // error: both versions stay plausible.
                    entry.acceptable.push(v);
                    classify(&mut report, &e);
                }
            }
        }
        report.latencies_us.push(start.elapsed().as_secs_f64() * 1e6);
        report.ops += 1;
    }
    let epoch = client.routing_epoch();
    let acked = model.into_iter().map(|(k, m)| (k, m.acceptable)).collect();
    (report, acked, epoch)
}

/// Replay one GET for `key` over a raw v6 connection, claiming
/// `claim_epoch` as the routing epoch — a captured-frame replay from
/// before a migration. Returns the server's answer.
fn replay_with_claim(
    addr: std::net::SocketAddr,
    key: &[u8],
    claim_epoch: u64,
) -> Option<aria_net::proto::Response> {
    use aria_net::proto::{self, Decoded, Request, Response, TraceContext};
    use std::io::Read as _;
    let mut stream = std::net::TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok()?;
    let read_one = |stream: &mut std::net::TcpStream, version: u16| -> Option<Response> {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            if let Decoded::Frame(_, _, resp) =
                proto::decode_response_versioned(&buf, version).ok()?
            {
                return Some(resp);
            }
            let n = stream.read(&mut chunk).ok()?;
            if n == 0 {
                return None;
            }
            buf.extend_from_slice(&chunk[..n]);
        }
    };
    let mut out = Vec::new();
    proto::encode_request(
        &mut out,
        1,
        &Request::Hello { version: proto::PROTOCOL_VERSION, features: proto::features::SUPPORTED },
    )
    .ok()?;
    stream.write_all(&out).ok()?;
    let Response::HelloAck { version, .. } = read_one(&mut stream, proto::BASE_PROTOCOL_VERSION)?
    else {
        return None;
    };
    out.clear();
    proto::encode_request_routed(
        &mut out,
        2,
        &Request::Get { key: key.to_vec() },
        0,
        TraceContext::NONE,
        claim_epoch,
        version,
    )
    .ok()?;
    stream.write_all(&out).ok()?;
    read_one(&mut stream, version)
}

/// Drive one migration to commit through the chaos schedule: start it,
/// wait for the driver to settle, retry on abort. Returns the number
/// of aborts ridden through, or `None` if `deadline` passed first.
fn drive_to_commit(
    client: &mut AriaClient,
    mode: aria_store::ReshardMode,
    source: u32,
    target: u32,
    deadline: Instant,
) -> Option<u64> {
    let mut aborts = 0u64;
    loop {
        let before = client.reshard_status().expect("reshard status").committed;
        let started = match mode {
            aria_store::ReshardMode::Split => client.start_split(source, target),
            aria_store::ReshardMode::Merge => client.start_merge(source, target),
        };
        if started.is_err() {
            // Most likely "a migration is already running" (e.g. the
            // previous attempt's driver has not settled yet).
            if Instant::now() > deadline {
                return None;
            }
            thread::sleep(Duration::from_millis(5));
            continue;
        }
        let settled = loop {
            let st = client.reshard_status().expect("reshard status");
            if st.state != aria_store::ReshardState::Running.as_u8() {
                break st;
            }
            if Instant::now() > deadline {
                return None;
            }
            thread::sleep(Duration::from_millis(2));
        };
        if settled.committed > before {
            return Some(aborts);
        }
        aborts += 1;
        if Instant::now() > deadline {
            return None;
        }
    }
}

/// Await the single-flight migration driver settling out of `Running`.
fn await_reshard_settled(client: &mut AriaClient, deadline: Instant) -> aria_net::ReshardReply {
    loop {
        let st = client.reshard_status().expect("reshard status");
        if st.state != aria_store::ReshardState::Running.as_u8() {
            return st;
        }
        assert!(Instant::now() < deadline, "migration never settled");
        thread::sleep(Duration::from_millis(2));
    }
}

fn run_reshard(args: &Args) {
    use aria_store::{ReshardFault, ReshardMode, ReshardState};

    let smoke = args.flag("smoke");
    let start_groups = args.get("shards", 4usize);
    let max_groups = start_groups * 2;
    let clients = args.get("clients", 4usize);
    let keys = args.get("keys", 8_192u64);
    let ops = args.get("ops", if smoke { 24_000u64 } else { 160_000 });
    let splits = args.get("splits", if smoke { 1u64 } else { start_groups as u64 }) as usize;
    assert!(splits >= 1 && splits <= start_groups, "--splits must be in 1..=--shards");
    let watchdog_secs = args.get("watchdog-secs", if smoke { 300u64 } else { 1_800 });
    let tamper_rate = args.get("tamper-rate", 2_500u32);
    let kill_rate = args.get("kill-rate", 800u32);
    let budget = args.get("budget", 32u64);
    let seed = args.seed();
    let out_dir = args.out_dir();
    let listen = args.get_str("listen", "127.0.0.1:0");
    let net_engine = Engine::parse(&args.get_str("engine", "reactor"))
        .expect("--engine must be 'reactor' or 'threads'");

    println!(
        "chaosbench[reshard]: groups={start_groups}->{} clients={clients} keys={keys} \
         ops>={ops} splits={splits} tamper-rate={tamper_rate} kill-rate={kill_rate} seed={seed}",
        start_groups + splits,
    );

    // Injected target kills panic a worker thread on purpose; keep the
    // expected backtraces quiet while any other panic prints as usual.
    const KILL_MSG: &str = "injected reshard target kill";
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let expected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains(KILL_MSG))
            .or_else(|| info.payload().downcast_ref::<String>().map(|s| s.contains(KILL_MSG)))
            .unwrap_or(false);
        if !expected {
            default_hook(info);
        }
    }));

    // --- watchdog: no hang, ever -------------------------------------------
    let done = Arc::new(AtomicBool::new(false));
    {
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(watchdog_secs);
            while !done.load(Ordering::Relaxed) {
                if Instant::now() > deadline {
                    eprintln!(
                        "chaosbench[reshard]: WATCHDOG — run exceeded {watchdog_secs}s, aborting"
                    );
                    std::process::exit(2);
                }
                thread::sleep(Duration::from_millis(100));
            }
        });
    }

    // --- elastic store + chaos-consulting fault hook ------------------------
    let per_shard_keys = (keys / start_groups as u64) * 2 + 1_024;
    let store = Arc::new(
        ShardedStore::with_elastic(start_groups, max_groups, 1, 64, move |_| {
            let suite = Arc::new(aria_crypto::FastSuite::from_master(&[0x42; 16]))
                as Arc<dyn aria_crypto::CipherSuite>;
            AriaHash::with_suite(
                StoreConfig::for_keys(per_shard_keys),
                Arc::new(Enclave::with_default_epc()),
                Some(suite),
            )
        })
        .expect("construct elastic store"),
    );

    let plan = FaultPlan::new(seed)
        .with_rate(FaultSite::MigrationStreamTamper, tamper_rate)
        .with_rate(FaultSite::TargetKill, kill_rate)
        .with_rate(FaultSite::StaleEpochReplay, FaultPlan::RATE_SCALE)
        .with_budget(budget);
    let engine = ChaosEngine::new(plan);
    engine.arm(true);
    // The migration driver consults this hook at its two injection
    // points. Scripted one-shot faults take precedence (they prove the
    // abort contract deterministically); otherwise the seed-scheduled
    // engine decides, but only while ride-along chaos is armed, so the
    // scripted phases observe exactly the fault they injected.
    let force_tamper = Arc::new(AtomicBool::new(false));
    let force_kill = Arc::new(AtomicBool::new(false));
    let ride_along = Arc::new(AtomicBool::new(false));
    let tamper_fires = Arc::new(AtomicU64::new(0));
    let kill_fires = Arc::new(AtomicU64::new(0));
    {
        let engine = Arc::clone(&engine);
        let (force_tamper, force_kill) = (Arc::clone(&force_tamper), Arc::clone(&force_kill));
        let ride_along = Arc::clone(&ride_along);
        let (tamper_fires, kill_fires) = (Arc::clone(&tamper_fires), Arc::clone(&kill_fires));
        store.set_reshard_fault_hook(move |f| {
            let (forced, site, fires) = match f {
                ReshardFault::TamperStream => {
                    (&force_tamper, FaultSite::MigrationStreamTamper, &tamper_fires)
                }
                ReshardFault::KillTarget => (&force_kill, FaultSite::TargetKill, &kill_fires),
            };
            let fire = forced.swap(false, Ordering::SeqCst)
                || (ride_along.load(Ordering::SeqCst) && engine.try_inject(site).is_some());
            if fire {
                fires.fetch_add(1, Ordering::SeqCst);
            }
            fire
        });
    }

    // --- preload: client keys + probe keys the clients never write ----------
    let probe_count = 64u64;
    let total_keys = keys + probe_count;
    let mut batch = Vec::with_capacity(512);
    for id in 0..total_keys {
        batch.push(BatchOp::Put(encode_key(id).to_vec(), value_for(id, 0)));
        if batch.len() == 512 {
            store.run_batch(std::mem::take(&mut batch));
        }
    }
    store.run_batch(batch);
    let probe_ids: Vec<u64> = (keys..total_keys).collect();

    // --- server (flight recorder armed: aborts must leave a post-mortem) ----
    let flight_dir = std::path::PathBuf::from(format!("{out_dir}/flight-reshard"));
    let _ = std::fs::remove_dir_all(&flight_dir);
    let server = AriaServer::bind(
        listen.as_str(),
        Arc::clone(&store),
        ServerConfig::builder()
            .engine(net_engine)
            .max_connections(clients + 8)
            .flight_dir(Some(flight_dir.clone()))
            .build()
            .expect("valid reshard server config"),
    )
    .expect("bind reshard server");
    let addr = server.local_addr();
    println!("chaosbench[reshard]: serving on {addr} (engine={net_engine})");
    engine.set_telemetry(Arc::clone(&server.telemetry().chaos));

    // --- epoch observer: watches the control plane from outside -------------
    let poll_done = Arc::new(AtomicBool::new(false));
    let poller = {
        let poll_done = Arc::clone(&poll_done);
        thread::spawn(move || {
            let mut client =
                AriaClient::connect(addr, ClientConfig::default()).expect("connect epoch poller");
            let mut max_epoch = 0u64;
            let mut running_polls = 0u64;
            let mut serves_during_migration = 0u64;
            let mut pulse_rng: u64 = 0x6b6b_2121;
            while !poll_done.load(Ordering::Relaxed) {
                if let Ok(st) = client.reshard_status() {
                    max_epoch = max_epoch.max(st.epoch);
                    if st.state == aria_store::ReshardState::Running.as_u8() {
                        running_polls += 1;
                        // The store must keep serving mid-migration:
                        // probe a key the clients never touch.
                        pulse_rng = pulse_rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let id = keys + pulse_rng % probe_count;
                        if let Ok(Some(bytes)) = client.get(&encode_key(id)) {
                            if decode_value(&bytes) == Some((id, 0)) {
                                serves_during_migration += 1;
                            }
                        }
                    }
                }
                thread::sleep(Duration::from_millis(2));
            }
            (max_epoch, running_polls, serves_during_migration)
        })
    };

    // --- clients: zipfian churn across every flip ----------------------------
    let start = Instant::now();
    let ops_per_client = ops / clients as u64;
    let keys_per_client = keys / clients as u64;
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let done = Arc::clone(&done);
            let base = c as u64 * keys_per_client;
            let cseed = seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(c as u64 + 1);
            thread::spawn(move || {
                run_reshard_client(addr, base, keys_per_client, ops_per_client, cseed, done)
            })
        })
        .collect();

    // --- conductor: scripted aborts, then the split/merge schedule ----------
    let mut ctl = AriaClient::connect(addr, ClientConfig::default()).expect("connect conductor");
    let deadline = Instant::now() + Duration::from_secs(watchdog_secs.saturating_sub(60).max(60));
    let probe_key = encode_key(probe_ids[0]);
    let probe_serves = |ctl: &mut AriaClient| -> bool {
        matches!(ctl.get(&probe_key), Ok(Some(bytes))
            if decode_value(&bytes) == Some((probe_ids[0], 0)))
    };

    // Scripted abort #1: a tampered copy stream. The content-root
    // handoff check must catch it, the old epoch must keep serving, and
    // the half-built target must leave no trace.
    let before = ctl.reshard_status().expect("reshard status");
    force_tamper.store(true, Ordering::SeqCst);
    ctl.start_split(0, start_groups as u32).expect("start tampered split");
    let st = await_reshard_settled(&mut ctl, deadline);
    let tamper_abort_clean = st.state == ReshardState::Aborted.as_u8()
        && st.aborted == before.aborted + 1
        && st.committed == before.committed
        && st.epoch == before.epoch
        && store.active_shards() == start_groups
        && store.routing().owned_slots(start_groups).is_empty()
        && matches!(
            store.reshard_status().last_error,
            Some(aria_store::StoreError::ReplicaDiverged { .. })
        )
        && probe_serves(&mut ctl);
    println!(
        "chaosbench[reshard]: scripted tamper abort {} (epoch {} unchanged)",
        if tamper_abort_clean { "clean" } else { "DIRTY" },
        st.epoch,
    );

    // Scripted abort #2: the target's primary dies mid-copy. Same
    // contract: abort, no epoch movement, no target residue.
    let before = ctl.reshard_status().expect("reshard status");
    force_kill.store(true, Ordering::SeqCst);
    ctl.start_split(0, start_groups as u32).expect("start killed split");
    let st = await_reshard_settled(&mut ctl, deadline);
    let kill_abort_clean = st.state == ReshardState::Aborted.as_u8()
        && st.aborted == before.aborted + 1
        && st.committed == before.committed
        && st.epoch == before.epoch
        && store.active_shards() == start_groups
        && store.routing().owned_slots(start_groups).is_empty()
        && probe_serves(&mut ctl);
    println!(
        "chaosbench[reshard]: scripted target-kill abort {} (epoch {} unchanged)",
        if kill_abort_clean { "clean" } else { "DIRTY" },
        st.epoch,
    );

    // The split/merge schedule, with seed-scheduled tampering and kills
    // riding along (each abort is retried until the migration commits).
    ride_along.store(true, Ordering::SeqCst);
    let mut ride_along_aborts = 0u64;
    let mut commits = 0u64;
    for i in 0..splits {
        let (s, t) = (i as u32, (start_groups + i) as u32);
        let aborts = drive_to_commit(&mut ctl, ReshardMode::Split, s, t, deadline)
            .unwrap_or_else(|| panic!("split {s}->{t} never committed"));
        ride_along_aborts += aborts;
        commits += 1;
        println!("chaosbench[reshard]: split {s}->{t} committed after {aborts} abort(s)");
    }

    // Stale-epoch replays: frames captured before the splits, played
    // back against the post-split table. Every one must draw a typed
    // WRONG_SHARD refusal; a refreshed claim on the same key must work.
    let moved_key = (0..total_keys)
        .map(encode_key)
        .find(|k| store.stale_claim(k, 1).is_some())
        .expect("splits moved at least one key");
    let mut replays_attempted = 0u64;
    let mut replays_refused = 0u64;
    for _ in 0..8 {
        if engine.try_inject(FaultSite::StaleEpochReplay).is_none() {
            continue;
        }
        replays_attempted += 1;
        match replay_with_claim(addr, &moved_key, 1) {
            Some(aria_net::proto::Response::WrongShard { .. }) => replays_refused += 1,
            other => eprintln!("chaosbench[reshard]: stale replay was not refused: {other:?}"),
        }
    }
    let fresh_claim_serves = matches!(
        replay_with_claim(addr, &moved_key, store.routing_epoch()),
        Some(aria_net::proto::Response::Value(Some(_)))
    );
    println!(
        "chaosbench[reshard]: {replays_refused}/{replays_attempted} stale replays refused, \
         fresh claim serves={fresh_claim_serves}"
    );

    for i in (0..splits).rev() {
        let (s, t) = ((start_groups + i) as u32, i as u32);
        let aborts = drive_to_commit(&mut ctl, ReshardMode::Merge, s, t, deadline)
            .unwrap_or_else(|| panic!("merge {s}->{t} never committed"));
        ride_along_aborts += aborts;
        commits += 1;
        println!("chaosbench[reshard]: merge {s}->{t} committed after {aborts} abort(s)");
    }
    done.store(true, Ordering::SeqCst);

    // --- join clients, merge models ------------------------------------------
    let mut report = ClientReport::default();
    let mut acked: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut max_client_epoch = 0u64;
    for w in workers {
        let (r, model, epoch) = w.join().expect("reshard client panicked");
        report.ops += r.ops;
        report.wrong_reads += r.wrong_reads;
        report.integrity_errs += r.integrity_errs;
        report.destroyed_errs += r.destroyed_errs;
        report.quarantined_errs += r.quarantined_errs;
        report.unavailable_errs += r.unavailable_errs;
        report.transport_errs += r.transport_errs;
        report.other_errs += r.other_errs;
        report.latencies_us.extend(r.latencies_us);
        acked.extend(model); // client key ranges are disjoint
        max_client_epoch = max_client_epoch.max(epoch);
    }
    let elapsed = start.elapsed();

    // --- sweep: every acknowledged write must still be readable --------------
    let mut sweep_client =
        AriaClient::connect(addr, ClientConfig { retry_budget: 16, ..ClientConfig::default() })
            .expect("connect sweep client");
    let mut sweep_ok = 0u64;
    let mut sweep_wrong = 0u64;
    let preloaded = vec![0u64];
    for id in 0..total_keys {
        let acceptable = acked.get(&id).unwrap_or(&preloaded);
        match sweep_client.get(&encode_key(id)) {
            Ok(Some(bytes)) => match decode_value(&bytes) {
                Some((k, v)) if k == id && acceptable.contains(&v) => sweep_ok += 1,
                _ => sweep_wrong += 1,
            },
            _ => sweep_wrong += 1,
        }
    }

    // --- flight dump: the scripted aborts must leave a post-mortem ----------
    let dump_deadline = Instant::now() + Duration::from_secs(30);
    let abort_dump = loop {
        match newest_flight_dump(&flight_dir) {
            Some((count, path, dump)) if dump.contains("\"reshard_abort\"") => {
                println!(
                    "flight recorder: {count} dump(s), newest {} records the abort",
                    path.display()
                );
                break Some(dump);
            }
            _ if Instant::now() > dump_deadline => break None,
            _ => thread::sleep(Duration::from_millis(100)),
        }
    };

    poll_done.store(true, Ordering::SeqCst);
    let (max_epoch_polled, running_polls, serves_during_migration) =
        poller.join().expect("epoch poller panicked");
    let status = store.reshard_status();
    let telemetry = server.telemetry().snapshot();
    server.shutdown();

    // --- verdict --------------------------------------------------------------
    let final_epoch = status.epoch;
    report.latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p50 = percentile(&report.latencies_us, 0.50);
    let p99 = percentile(&report.latencies_us, 0.99);

    let mut failures: Vec<String> = Vec::new();
    let mut check = |ok: bool, msg: &str| {
        if !ok {
            failures.push(msg.to_string());
        }
    };
    check(report.wrong_reads == 0, "acknowledged-then-wrong reads observed");
    check(sweep_wrong == 0, "final sweep lost or corrupted an acknowledged write");
    check(tamper_abort_clean, "tampered-stream migration did not abort cleanly");
    check(kill_abort_clean, "target-kill migration did not abort cleanly");
    check(status.committed == commits && commits == 2 * splits as u64, "commit count mismatch");
    check(final_epoch == 1 + commits, "epoch did not advance exactly once per commit");
    check(store.active_shards() == start_groups, "group count did not return to the start");
    check(status.aborted >= 2, "fewer than the two scripted aborts were recorded");
    check(replays_attempted >= 1, "no stale-epoch replay was attempted");
    check(replays_refused == replays_attempted, "a stale-epoch replay was not refused");
    check(fresh_claim_serves, "a fresh-epoch claim on a moved key was refused");
    check(max_client_epoch > 1, "no client routing cache was refreshed by a WRONG_SHARD refusal");
    check(max_epoch_polled == final_epoch, "RESHARD status never exposed the final epoch");
    check(running_polls >= 1, "RESHARD status never observed a running migration");
    check(serves_during_migration >= 1, "no probe was served mid-migration");
    check(abort_dump.is_some(), "scripted aborts left no flight-recorder post-mortem");
    check(p99 < 500_000.0, "p99 latency above 500ms (hang-adjacent)");

    // --- report ---------------------------------------------------------------
    println!(
        "ops={} elapsed={:.2}s p50={:.0}us p99={:.0}us commits={} aborts={} \
         (scripted=2 ride-along={}) tamper_fires={} kill_fires={} epoch={} \
         wrong_reads={} sweep ok/wrong={}/{} max_client_epoch={} replays {}/{}",
        report.ops,
        elapsed.as_secs_f64(),
        p50,
        p99,
        status.committed,
        status.aborted,
        ride_along_aborts,
        tamper_fires.load(Ordering::SeqCst),
        kill_fires.load(Ordering::SeqCst),
        final_epoch,
        report.wrong_reads,
        sweep_ok,
        sweep_wrong,
        max_client_epoch,
        replays_refused,
        replays_attempted,
    );

    let failures_json = failures.iter().map(|f| json_str(f)).collect::<Vec<_>>().join(",");
    let doc = format!(
        "{{\n\"schema_version\":{SCHEMA_VERSION},\n\"experiment\":\"reshard\",\n\
         \"engine\":{},\n\
         \"git_rev\":{},\n\"seed\":{seed},\n\"elapsed_s\":{:.3},\n\
         \"groups_start\":{start_groups},\n\"groups_max\":{max_groups},\n\
         \"splits\":{splits},\n\"merges\":{splits},\n\"ops\":{},\n\
         \"migrations\":{{\"started\":{},\"committed\":{},\"aborted\":{},\
         \"ride_along_aborts\":{ride_along_aborts},\
         \"tamper_fires\":{},\"kill_fires\":{}}},\n\
         \"scripted_aborts\":{{\"tamper_clean\":{tamper_abort_clean},\
         \"target_kill_clean\":{kill_abort_clean}}},\n\
         \"routing\":{{\"final_epoch\":{final_epoch},\
         \"max_epoch_polled\":{max_epoch_polled},\
         \"max_client_epoch\":{max_client_epoch},\
         \"running_polls\":{running_polls},\
         \"serves_during_migration\":{serves_during_migration}}},\n\
         \"stale_replays\":{{\"attempted\":{replays_attempted},\
         \"refused\":{replays_refused},\"fresh_claim_serves\":{fresh_claim_serves}}},\n\
         \"wrong_reads\":{},\n\"quarantined_errors\":{},\n\"unavailable_errors\":{},\n\
         \"transport_errors\":{},\n\"other_errors\":{},\n\
         \"sweep\":{{\"ok\":{sweep_ok},\"wrong\":{sweep_wrong}}},\n\
         \"abort_flight_dump\":{},\n\
         \"latency_us\":{{\"p50\":{:.1},\"p99\":{:.1}}},\n\
         \"telemetry\":{},\n\
         \"verdict\":{},\n\"failures\":[{failures_json}]\n}}\n",
        json_str(net_engine.name()),
        json_str(git_rev()),
        elapsed.as_secs_f64(),
        report.ops,
        status.started,
        status.committed,
        status.aborted,
        tamper_fires.load(Ordering::SeqCst),
        kill_fires.load(Ordering::SeqCst),
        report.wrong_reads,
        report.quarantined_errs,
        report.unavailable_errs,
        report.transport_errs,
        report.other_errs,
        abort_dump.is_some(),
        p50,
        p99,
        telemetry.to_json(),
        json_str(if failures.is_empty() { "pass" } else { "fail" }),
    );
    std::fs::create_dir_all(&out_dir).expect("create out dir");
    let path = format!("{out_dir}/reshard.json");
    std::fs::write(&path, doc).expect("write reshard.json");
    println!("wrote {path}");

    if failures.is_empty() {
        println!("chaosbench[reshard]: PASS");
    } else {
        for f in &failures {
            eprintln!("chaosbench[reshard]: FAIL — {f}");
        }
        std::process::exit(1);
    }
}
