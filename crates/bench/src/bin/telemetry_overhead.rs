//! telemetry_overhead — guardrail for the observability plane's cost.
//!
//! Drives a zipf-0.99 read-heavy load straight into a `ShardedStore`
//! (no sockets: the store hot path is what telemetry instruments) and
//! reports wall-clock throughput together with whether the telemetry
//! plane was compiled in. Run it twice and diff:
//!
//! ```sh
//! cargo run --release -p aria-bench --bin telemetry_overhead
//! cargo run --release -p aria-bench --bin telemetry_overhead \
//!     --features telemetry-off
//! ```
//!
//! Both runs append one JSON row (tagged `telemetry_enabled`) to
//! `<out>/telemetry_overhead.jsonl`; EXPERIMENTS.md records the
//! measured overhead, which must stay under 3%.
//!
//! `--trace-sample N` additionally stamps one in `N` windows with a
//! request span (stage stamps, execution attribution, ring publish) —
//! the store-side cost of the tracing plane at a given sampling rate.
//! The default rate for the guardrail is 128; `0` disables spans.

use std::io::Write as _;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use aria_bench::{fmt_tput, git_rev, json_f64, json_str, Args, SCHEMA_VERSION};
use aria_sim::Enclave;
use aria_store::sharded::{BatchOp, ShardedStore};
use aria_store::{AriaHash, StoreConfig};
use aria_workload::{encode_key, value_bytes, KeyDistribution, Request, YcsbConfig, YcsbWorkload};

const VALUE_LEN: usize = 16;
const READ_RATIO: f64 = 0.95;

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let keys = args.get("keys", if smoke { 5_000u64 } else { 20_000 });
    let ops = args.get("ops", if smoke { 20_000u64 } else { 400_000 });
    let shards = args.get("shards", 4usize);
    let threads = args.get("threads", 4usize);
    let depth = args.get("depth", 16usize);
    let trace_sample = args.get("trace-sample", 0u32);
    let seed = args.seed();

    let per_shard_keys = (keys / shards as u64) * 2 + 1_024;
    let store = Arc::new(
        ShardedStore::with_shards(shards, move |_| {
            let suite = Arc::new(aria_crypto::FastSuite::from_master(&[0x42; 16]))
                as Arc<dyn aria_crypto::CipherSuite>;
            AriaHash::with_suite(
                StoreConfig::for_keys(per_shard_keys),
                Arc::new(Enclave::with_default_epc()),
                Some(suite),
            )
        })
        .expect("construct sharded store"),
    );

    let mut batch = Vec::with_capacity(512);
    for id in 0..keys {
        batch.push(BatchOp::Put(encode_key(id).to_vec(), value_bytes(id, VALUE_LEN)));
        if batch.len() == 512 {
            store.run_batch(std::mem::take(&mut batch));
        }
    }
    store.run_batch(batch);

    // Span rings sized like a server's, so sampled windows pay the
    // full tracing path: stamps, attribution reads, ring publish.
    let traces =
        Arc::new(aria_telemetry::TraceHub::new(shards, aria_telemetry::DEFAULT_TRACE_CAPACITY));

    let ops_per_thread = ops / threads as u64;
    let start = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let store = Arc::clone(&store);
            let traces = Arc::clone(&traces);
            thread::spawn(move || {
                let mut wl = YcsbWorkload::new(YcsbConfig {
                    keyspace: keys,
                    read_ratio: READ_RATIO,
                    value_len: VALUE_LEN,
                    distribution: KeyDistribution::Zipfian { theta: 0.99 },
                    seed: seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(t as u64 + 1),
                });
                let mut issued = 0u64;
                let mut rng = seed ^ 0xd1b5_4a32_d192_ed03u64.wrapping_mul(t as u64 + 1);
                let mut window = Vec::with_capacity(depth);
                while issued < ops_per_thread {
                    window.clear();
                    while window.len() < depth && issued < ops_per_thread {
                        window.push(match wl.next_request() {
                            Request::Get { id } => BatchOp::Get(encode_key(id).to_vec()),
                            Request::Put { id, value_len } => {
                                BatchOp::Put(encode_key(id).to_vec(), value_bytes(id, value_len))
                            }
                        });
                        issued += 1;
                    }
                    let len = window.len();
                    let span = (trace_sample > 0)
                        .then(|| {
                            rng = rng
                                .wrapping_mul(0x5851_f42d_4c95_7f2d)
                                .wrapping_add(0x1405_7b7e_f767_814f);
                            (rng.is_multiple_of(u64::from(trace_sample))).then(|| {
                                let s = Arc::new(aria_telemetry::SpanCell::new(rng | 1, 0));
                                s.stamp(aria_telemetry::stage::DECODE);
                                s.set_ops(len as u64);
                                s
                            })
                        })
                        .flatten();
                    let op_spans =
                        span.as_ref().map(|s| vec![(0..len, Arc::clone(s))]).unwrap_or_default();
                    for reply in store.run_batch_traced(std::mem::take(&mut window), op_spans) {
                        if let Some(e) = reply.error() {
                            panic!("overhead bench op failed: {e}");
                        }
                    }
                    if let Some(s) = span {
                        s.stamp(aria_telemetry::stage::ENCODE);
                        s.stamp(aria_telemetry::stage::FLUSH);
                        traces.publish(&s.to_span());
                    }
                    window = Vec::with_capacity(depth);
                }
                issued
            })
        })
        .collect();
    let total: u64 = workers.into_iter().map(|w| w.join().expect("bench worker")).sum();
    let elapsed = start.elapsed();
    let throughput = total as f64 / elapsed.as_secs_f64().max(1e-9);

    let enabled = aria_telemetry::enabled();
    let spans_recorded = traces.summary().spans_recorded;
    println!(
        "telemetry_overhead: telemetry={} trace-sample={trace_sample} ({spans_recorded} spans) \
         zipf-0.99 ops={total} elapsed={:.2}s tput={}",
        if enabled { "on" } else { "off" },
        elapsed.as_secs_f64(),
        fmt_tput(throughput),
    );

    let row = format!(
        "{{\"schema_version\":{SCHEMA_VERSION},\"git_rev\":{},\"experiment\":\"telemetry_overhead\",\
         \"telemetry_enabled\":{enabled},\"shards\":{shards},\"threads\":{threads},\
         \"keys\":{keys},\"depth\":{depth},\"trace_sample\":{trace_sample},\
         \"spans_recorded\":{spans_recorded},\"ops\":{total},\
         \"elapsed_s\":{},\"throughput\":{}}}",
        json_str(git_rev()),
        json_f64(elapsed.as_secs_f64()),
        json_f64(throughput),
    );
    let out_dir = args.out_dir();
    if std::fs::create_dir_all(&out_dir).is_ok() {
        let path = format!("{out_dir}/telemetry_overhead.jsonl");
        match std::fs::OpenOptions::new().create(true).append(true).open(&path) {
            Ok(mut f) => {
                let _ = writeln!(f, "{row}");
                println!("row appended to {path}");
            }
            Err(e) => eprintln!("warning: cannot open {path}: {e}"),
        }
    }
}
