//! telemetry_overhead — guardrail for the observability plane's cost.
//!
//! Drives a zipf-0.99 read-heavy load straight into a `ShardedStore`
//! (no sockets: the store hot path is what telemetry instruments) and
//! reports wall-clock throughput together with whether the telemetry
//! plane was compiled in. Run it twice and diff:
//!
//! ```sh
//! cargo run --release -p aria-bench --bin telemetry_overhead
//! cargo run --release -p aria-bench --bin telemetry_overhead \
//!     --features telemetry-off
//! ```
//!
//! Both runs append one JSON row (tagged `telemetry_enabled`) to
//! `<out>/telemetry_overhead.jsonl`; EXPERIMENTS.md records the
//! measured overhead, which must stay under 3%.

use std::io::Write as _;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use aria_bench::{fmt_tput, git_rev, json_f64, json_str, Args, SCHEMA_VERSION};
use aria_sim::Enclave;
use aria_store::sharded::{BatchOp, ShardedStore};
use aria_store::{AriaHash, StoreConfig};
use aria_workload::{encode_key, value_bytes, KeyDistribution, Request, YcsbConfig, YcsbWorkload};

const VALUE_LEN: usize = 16;
const READ_RATIO: f64 = 0.95;

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let keys = args.get("keys", if smoke { 5_000u64 } else { 20_000 });
    let ops = args.get("ops", if smoke { 20_000u64 } else { 400_000 });
    let shards = args.get("shards", 4usize);
    let threads = args.get("threads", 4usize);
    let depth = args.get("depth", 16usize);
    let seed = args.seed();

    let per_shard_keys = (keys / shards as u64) * 2 + 1_024;
    let store = Arc::new(
        ShardedStore::with_shards(shards, move |_| {
            let suite = Arc::new(aria_crypto::FastSuite::from_master(&[0x42; 16]))
                as Arc<dyn aria_crypto::CipherSuite>;
            AriaHash::with_suite(
                StoreConfig::for_keys(per_shard_keys),
                Arc::new(Enclave::with_default_epc()),
                Some(suite),
            )
        })
        .expect("construct sharded store"),
    );

    let mut batch = Vec::with_capacity(512);
    for id in 0..keys {
        batch.push(BatchOp::Put(encode_key(id).to_vec(), value_bytes(id, VALUE_LEN)));
        if batch.len() == 512 {
            store.run_batch(std::mem::take(&mut batch));
        }
    }
    store.run_batch(batch);

    let ops_per_thread = ops / threads as u64;
    let start = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                let mut wl = YcsbWorkload::new(YcsbConfig {
                    keyspace: keys,
                    read_ratio: READ_RATIO,
                    value_len: VALUE_LEN,
                    distribution: KeyDistribution::Zipfian { theta: 0.99 },
                    seed: seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(t as u64 + 1),
                });
                let mut issued = 0u64;
                let mut window = Vec::with_capacity(depth);
                while issued < ops_per_thread {
                    window.clear();
                    while window.len() < depth && issued < ops_per_thread {
                        window.push(match wl.next_request() {
                            Request::Get { id } => BatchOp::Get(encode_key(id).to_vec()),
                            Request::Put { id, value_len } => {
                                BatchOp::Put(encode_key(id).to_vec(), value_bytes(id, value_len))
                            }
                        });
                        issued += 1;
                    }
                    for reply in store.run_batch(std::mem::take(&mut window)) {
                        if let Some(e) = reply.error() {
                            panic!("overhead bench op failed: {e}");
                        }
                    }
                    window = Vec::with_capacity(depth);
                }
                issued
            })
        })
        .collect();
    let total: u64 = workers.into_iter().map(|w| w.join().expect("bench worker")).sum();
    let elapsed = start.elapsed();
    let throughput = total as f64 / elapsed.as_secs_f64().max(1e-9);

    let enabled = aria_telemetry::enabled();
    println!(
        "telemetry_overhead: telemetry={} zipf-0.99 ops={total} elapsed={:.2}s tput={}",
        if enabled { "on" } else { "off" },
        elapsed.as_secs_f64(),
        fmt_tput(throughput),
    );

    let row = format!(
        "{{\"schema_version\":{SCHEMA_VERSION},\"git_rev\":{},\"experiment\":\"telemetry_overhead\",\
         \"telemetry_enabled\":{enabled},\"shards\":{shards},\"threads\":{threads},\
         \"keys\":{keys},\"depth\":{depth},\"ops\":{total},\
         \"elapsed_s\":{},\"throughput\":{}}}",
        json_str(git_rev()),
        json_f64(elapsed.as_secs_f64()),
        json_f64(throughput),
    );
    let out_dir = args.out_dir();
    if std::fs::create_dir_all(&out_dir).is_ok() {
        let path = format!("{out_dir}/telemetry_overhead.jsonl");
        match std::fs::OpenOptions::new().create(true).append(true).open(&path) {
            Ok(mut f) => {
                let _ = writeln!(f, "{row}");
                println!("row appended to {path}");
            }
            Err(e) => eprintln!("warning: cannot open {path}: {e}"),
        }
    }
}
