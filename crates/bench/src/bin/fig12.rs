//! Figure 12 — effect of each optimization and the total SGX overhead,
//! ETC workload at read ratios {0, 50, 95, 100} %.
//!
//! Variants (paper §VI-C):
//! * `AriaBase`   — OCALL per untrusted allocation, LRU, no pinning, no
//!   semantic swap optimizations;
//! * `+HeapAlloc` — user-space allocator (biggest jump at 0 % reads);
//! * `+PIN`       — adds level-pinning (still LRU);
//! * `+FIFO`      — FIFO replacement instead of LRU (no pinning);
//! * `Aria`       — all optimizations;
//! * `Aria w/o SGX` — all SGX-specific costs zeroed (protection
//!   overhead reference, ~25 % above Aria in the paper);
//! * plus ShieldStore and Aria w/o Cache for context.

use aria_bench::*;
use aria_cache::EvictionPolicy;
use aria_mem::AllocStrategy;

struct Variant {
    name: &'static str,
    alloc: AllocStrategy,
    policy: EvictionPolicy,
    pinned: u32,
    semantic: bool,
    no_sgx: bool,
}

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let read_ratios = [0.0f64, 0.5, 0.95, 1.0];
    let variants = [
        Variant {
            name: "AriaBase",
            alloc: AllocStrategy::Ocall,
            policy: EvictionPolicy::Lru,
            pinned: 0,
            semantic: false,
            no_sgx: false,
        },
        Variant {
            name: "+HeapAlloc",
            alloc: AllocStrategy::UserSpace,
            policy: EvictionPolicy::Lru,
            pinned: 0,
            semantic: false,
            no_sgx: false,
        },
        Variant {
            name: "+PIN",
            alloc: AllocStrategy::UserSpace,
            policy: EvictionPolicy::Lru,
            pinned: 3,
            semantic: false,
            no_sgx: false,
        },
        Variant {
            name: "+FIFO",
            alloc: AllocStrategy::UserSpace,
            policy: EvictionPolicy::Fifo,
            pinned: 0,
            semantic: false,
            no_sgx: false,
        },
        Variant {
            name: "Aria",
            alloc: AllocStrategy::UserSpace,
            policy: EvictionPolicy::Fifo,
            pinned: 3,
            semantic: true,
            no_sgx: false,
        },
        Variant {
            name: "Aria w/o SGX",
            alloc: AllocStrategy::UserSpace,
            policy: EvictionPolicy::Fifo,
            pinned: 3,
            semantic: true,
            no_sgx: true,
        },
    ];

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for &rr in &read_ratios {
        let x = format!("RD_{:.0}", rr * 100.0);
        let mut cells = vec![x.clone()];
        // ShieldStore + Aria w/o Cache context columns.
        for kind in [StoreKind::Shield, StoreKind::AriaHashWoCache] {
            let mut cfg = RunConfig::paper_default(scale);
            cfg.ops = args.ops();
            cfg.fast_crypto = args.fast();
            cfg.seed = args.seed();
            cfg.workload = Workload::Etc { read_ratio: rr, theta: 0.99 };
            let r = run(kind, &cfg);
            eprintln!("  [{x}] {}: {}", r.kind, fmt_tput(r.throughput));
            cells.push(fmt_tput(r.throughput));
            rows.push(Row::new("fig12", r.kind, &x, &r));
        }
        for v in &variants {
            let mut cfg = RunConfig::paper_default(scale);
            cfg.ops = args.ops();
            cfg.fast_crypto = args.fast();
            cfg.seed = args.seed();
            cfg.workload = Workload::Etc { read_ratio: rr, theta: 0.99 };
            cfg.alloc = v.alloc;
            cfg.policy = v.policy;
            cfg.pinned_levels = v.pinned;
            cfg.semantic_opts = v.semantic;
            cfg.no_sgx = v.no_sgx;
            let r = run(StoreKind::AriaHash, &cfg);
            eprintln!("  [{x}] {}: {}", v.name, fmt_tput(r.throughput));
            cells.push(fmt_tput(r.throughput));
            rows.push(Row::new("fig12", v.name, &x, &r));
        }
        table.push(cells);
    }

    print_table(
        &format!("Figure 12: optimization ablation + SGX overhead (ETC, scale 1/{scale})"),
        &[
            "read ratio",
            "ShieldStore",
            "Aria w/o Cache",
            "AriaBase",
            "+HeapAlloc",
            "+PIN",
            "+FIFO",
            "Aria",
            "Aria w/o SGX",
        ],
        &table,
    );
    write_jsonl(&args.out_dir(), "fig12", &rows);
}
