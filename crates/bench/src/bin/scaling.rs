//! Shard-scaling sweep: aggregate throughput of `ShardedStore<AriaHash>`
//! at 1 / 2 / 4 / 8 shards under uniform and zipfian (0.99) key
//! popularity.
//!
//! Each shard is a full Aria-H instance in its own simulated enclave;
//! aggregate throughput counts the run-phase ops against the *critical
//! path* — the busiest shard's simulated cycles — so skew-induced load
//! imbalance shows up as sublinear scaling rather than being averaged
//! away. Per-shard Secure Cache hit ratios are reported alongside.
//!
//! ```sh
//! cargo run --release --bin scaling -- [--ops N] [--keys N] [--fast] [--out results]
//! ```

use std::sync::{Arc, Mutex};

use aria_bench::*;
use aria_cache::CacheConfig;
use aria_sim::{CostModel, Enclave};
use aria_store::sharded::{BatchOp, BatchReply, ShardedStore};
use aria_store::{AriaHash, StoreConfig};
use aria_workload::{encode_key, value_bytes, KeyDistribution, Request, YcsbConfig, YcsbWorkload};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const CLIENT_BATCH: usize = 256;

struct SweepPoint {
    shards: usize,
    dist_label: &'static str,
    throughput: f64,
    hit_ratios: Vec<Option<f64>>,
    /// Run-phase cycles on the busiest shard (the critical path).
    max_cycles: u64,
    page_faults: u64,
    macs: u64,
    epc_used: usize,
}

fn main() {
    let args = Args::parse();
    let keys = args.get("keys", 50_000u64);
    let ops = args.get("ops", 100_000u64);
    // Total Secure Cache budget across the whole deployment, split
    // evenly among shards so every shard count competes for the same
    // EPC. Default: half the counter area, so misses are possible and
    // skew tolerance is visible in the hit column.
    let cache_total = args.get("cache-kb", (keys * 16 / 2 / 1024).max(64)) as usize * 1024;
    let fast = args.fast();
    let seed = args.seed();
    let cost = CostModel::default();

    let dists: [(&str, KeyDistribution); 2] = [
        ("uniform", KeyDistribution::Uniform),
        ("zipf-0.99", KeyDistribution::Zipfian { theta: 0.99 }),
    ];

    let mut points = Vec::new();
    let mut rows = Vec::new();

    for (dist_label, dist) in dists {
        for shards in SHARD_COUNTS {
            let point = run_point(
                shards,
                dist_label,
                dist.clone(),
                keys,
                ops,
                cache_total,
                fast,
                seed,
                &cost,
            );
            eprintln!(
                "  [{dist_label} x{shards}] {} (hit {})",
                fmt_tput(point.throughput),
                fmt_hits(&point.hit_ratios),
            );
            rows.push(scaling_row(&point, ops));
            points.push(point);
        }
    }

    let mut table = Vec::new();
    for point in &points {
        table.push(vec![
            point.dist_label.to_string(),
            point.shards.to_string(),
            fmt_tput(point.throughput),
            fmt_hits(&point.hit_ratios),
        ]);
    }
    print_table(
        "Shard scaling (aggregate throughput, critical-path cycles)",
        &["distribution", "shards", "throughput", "per-shard cache hit %"],
        &table,
    );

    write_jsonl(&args.out_dir(), "scaling", &rows);

    // The headline claim: on the skewed workload, more shards must not
    // make aggregate throughput worse anywhere in 1 -> 2 -> 4.
    for pair in points.iter().filter(|p| p.dist_label != "uniform").collect::<Vec<_>>().windows(2) {
        if pair[1].shards <= 4 && pair[1].throughput <= pair[0].throughput {
            eprintln!(
                "WARNING: skewed throughput did not improve from {} to {} shards",
                pair[0].shards, pair[1].shards
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_point(
    shards: usize,
    dist_label: &'static str,
    dist: KeyDistribution,
    keys: u64,
    ops: u64,
    cache_total: usize,
    fast: bool,
    seed: u64,
    cost: &CostModel,
) -> SweepPoint {
    // Each shard holds ~1/N of the keyspace; size its counter area and
    // buckets for that share (with slack for imbalance), and give it an
    // even split of the deployment-wide Secure Cache budget.
    let per_shard_keys = (keys / shards as u64) * 2 + 1024;
    let per_shard_cache = (cache_total / shards).max(16 * 1024);
    let cfg = StoreConfig::builder()
        .for_keys(per_shard_keys)
        .cache(CacheConfig::with_capacity(per_shard_cache))
        .epc_budget(aria_sim::DEFAULT_EPC_BYTES)
        .build()
        .expect("scaling sweep config is valid");
    let enclaves: Arc<Mutex<Vec<Arc<Enclave>>>> = Arc::new(Mutex::new(Vec::new()));
    let registry = Arc::clone(&enclaves);
    let store = ShardedStore::with_shards(shards, move |_shard| {
        let enclave = Arc::new(Enclave::with_default_epc());
        registry.lock().unwrap().push(Arc::clone(&enclave));
        let suite = fast.then(|| {
            Arc::new(aria_crypto::FastSuite::from_master(&[0x42; 16]))
                as Arc<dyn aria_crypto::CipherSuite>
        });
        AriaHash::with_suite(cfg.clone(), enclave, suite)
    })
    .expect("construct sharded store");

    // Load phase: the whole keyspace, batched.
    let mut batch = Vec::with_capacity(CLIENT_BATCH);
    for id in 0..keys {
        batch.push(BatchOp::Put(encode_key(id).to_vec(), value_bytes(id, 16)));
        if batch.len() == CLIENT_BATCH {
            drain_ok(store.run_batch(std::mem::take(&mut batch)));
        }
    }
    drain_ok(store.run_batch(std::mem::take(&mut batch)));

    let before = store.snapshots();
    let cache_before = store.cache_stats();

    // Run phase: 95% reads over the chosen popularity distribution.
    let mut wl = YcsbWorkload::new(YcsbConfig {
        keyspace: keys,
        read_ratio: 0.95,
        value_len: 16,
        distribution: dist,
        seed,
    });
    let mut issued = 0u64;
    let mut batch = Vec::with_capacity(CLIENT_BATCH);
    while issued < ops {
        batch.clear();
        while batch.len() < CLIENT_BATCH && issued < ops {
            batch.push(match wl.next_request() {
                Request::Get { id } => BatchOp::Get(encode_key(id).to_vec()),
                Request::Put { id, value_len } => {
                    BatchOp::Put(encode_key(id).to_vec(), value_bytes(id, value_len))
                }
            });
            issued += 1;
        }
        drain_ok(store.run_batch(std::mem::take(&mut batch)));
    }

    let after = store.snapshots();
    let cache_after = store.cache_stats();

    // Critical path of the run phase only.
    let max_cycles = before.iter().zip(&after).map(|(b, a)| a.cycles - b.cycles).max().unwrap_or(0);
    let throughput = cost.throughput(ops, max_cycles.max(1));

    // Run-phase hit ratio per shard (lifetime counters, differenced).
    let hit_ratios = cache_before
        .iter()
        .zip(&cache_after)
        .map(|(b, a)| match (b, a) {
            (Some(b), Some(a)) => {
                let hits = a.hits - b.hits;
                let total = hits + (a.misses - b.misses);
                (total > 0).then(|| hits as f64 / total as f64)
            }
            _ => None,
        })
        .collect();

    let page_faults = before.iter().zip(&after).map(|(b, a)| a.page_faults - b.page_faults).sum();
    let macs = before.iter().zip(&after).map(|(b, a)| a.macs_computed - b.macs_computed).sum();
    let epc_used = enclaves.lock().unwrap().iter().map(|e| e.epc_used()).sum();

    drop(store);
    SweepPoint {
        shards,
        dist_label,
        throughput,
        hit_ratios,
        max_cycles,
        page_faults,
        macs,
        epc_used,
    }
}

fn drain_ok(replies: Vec<BatchReply>) {
    for reply in replies {
        match reply {
            BatchReply::Get(r) => {
                r.expect("get failed during sweep");
            }
            BatchReply::Put(r) => r.expect("put failed during sweep"),
            BatchReply::Delete(r) => {
                r.expect("delete failed during sweep");
            }
        }
    }
}

fn fmt_hits(ratios: &[Option<f64>]) -> String {
    ratios
        .iter()
        .map(|r| match r {
            Some(r) => format!("{:.0}", r * 100.0),
            None => "-".to_string(),
        })
        .collect::<Vec<_>>()
        .join("/")
}

fn scaling_row(point: &SweepPoint, ops: u64) -> Row {
    Row {
        experiment: "scaling".to_string(),
        series: point.dist_label.to_string(),
        x: point.shards.to_string(),
        throughput: point.throughput,
        cycles: point.max_cycles,
        ops,
        page_faults: point.page_faults,
        macs: point.macs,
        epc_used: point.epc_used,
    }
}
