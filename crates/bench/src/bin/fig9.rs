//! Figure 9 — Aria-H overall performance on the YCSB grid:
//! {uniform, skew} x {50 %, 95 %, 100 % reads} x {16, 128, 512 B values},
//! 10 M keys, against ShieldStore and Aria w/o Cache.
//!
//! Paper shape: Aria leads under skew (by ~28-40 %); ShieldStore is
//! slightly ahead under uniform at this keyspace (Aria stops swapping);
//! Aria w/o Cache is comparable to ShieldStore under skew.

use aria_bench::*;
use aria_workload::KeyDistribution;

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let kinds = [StoreKind::Shield, StoreKind::AriaHashWoCache, StoreKind::AriaHash];
    let dists: [(&str, KeyDistribution); 2] =
        [("skew", KeyDistribution::Zipfian { theta: 0.99 }), ("uniform", KeyDistribution::Uniform)];
    let read_ratios = [0.5f64, 0.95, 1.0];
    let value_lens = [16usize, 128, 512];

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (dname, dist) in &dists {
        for &rr in &read_ratios {
            for &vl in &value_lens {
                let mut cfg = RunConfig::paper_default(scale);
                cfg.ops = args.ops();
                cfg.fast_crypto = args.fast();
                cfg.seed = args.seed();
                cfg.workload = Workload::Ycsb { read_ratio: rr, value_len: vl, dist: dist.clone() };
                let x = format!("{dname}/R{:.0}%/{vl}B", rr * 100.0);
                let mut cells = vec![x.clone()];
                let mut tputs = Vec::new();
                for kind in kinds {
                    let r = run(kind, &cfg);
                    eprintln!("  [{x}] {}: {}", r.kind, fmt_tput(r.throughput));
                    tputs.push(r.throughput);
                    cells.push(fmt_tput(r.throughput));
                    rows.push(Row::new("fig9", r.kind, &x, &r));
                }
                cells.push(format!("{:+.0}%", improvement(tputs[2], tputs[0])));
                table.push(cells);
            }
        }
    }

    print_table(
        &format!("Figure 9: Aria-H YCSB grid (scale 1/{scale}, 10M/scale keys)"),
        &["config", "ShieldStore", "Aria w/o Cache", "Aria", "Aria vs Shield"],
        &table,
    );
    write_jsonl(&args.out_dir(), "fig9", &rows);
}
