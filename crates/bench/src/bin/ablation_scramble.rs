//! Supplementary ablation (not a paper figure): plain vs scrambled
//! zipfian key layout.
//!
//! The paper's measurements imply hot keys that cluster at page/node
//! granularity (its Aria w/o Cache is "comparable to ShieldStore" at
//! 10 M keys, which requires hardware paging to find page-level
//! hotness). This ablation quantifies the difference: with YCSB's
//! *scrambled* zipfian, every page and Merkle leaf mixes hot and cold
//! keys, so page-granularity schemes collapse while KV-granularity
//! ShieldStore is unaffected — exactly the §III motivation for
//! fine-grained tracking.

use aria_bench::*;
use aria_workload::KeyDistribution;

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let kinds = [StoreKind::Shield, StoreKind::AriaHashWoCache, StoreKind::AriaHash];
    let dists: [(&str, KeyDistribution); 2] = [
        ("plain", KeyDistribution::Zipfian { theta: 0.99 }),
        ("scrambled", KeyDistribution::ScrambledZipfian { theta: 0.99 }),
    ];

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (dname, dist) in &dists {
        let mut cfg = RunConfig::paper_default(scale);
        cfg.ops = args.ops();
        cfg.fast_crypto = args.fast();
        cfg.seed = args.seed();
        cfg.workload = Workload::Ycsb { read_ratio: 0.95, value_len: 16, dist: dist.clone() };
        let mut cells = vec![dname.to_string()];
        for kind in kinds {
            let r = run(kind, &cfg);
            eprintln!(
                "  [{dname}] {}: {} (hit {:?}, {} faults)",
                r.kind,
                fmt_tput(r.throughput),
                r.cache_hit_ratio().map(|h| (h * 100.0).round()),
                r.page_faults
            );
            cells.push(format!("{} ({} PF)", fmt_tput(r.throughput), r.page_faults));
            rows.push(Row::new("ablation_scramble", r.kind, dname, &r));
        }
        table.push(cells);
    }

    print_table(
        &format!("Ablation: zipfian key layout, RD_95 16B (scale 1/{scale})"),
        &["layout", "ShieldStore", "Aria w/o Cache", "Aria"],
        &table,
    );
    write_jsonl(&args.out_dir(), "ablation_scramble", &rows);
}
