//! Figure 16(a) — multi-tenant: 2 and 4 tenants sharing the EPC, each
//! with its own enclave (multi-process isolation), keyspaces 10–50 M.
//!
//! EPC is split evenly: Aria tenants shrink their Secure Cache,
//! ShieldStore tenants shrink their root count — both eliminate secure
//! paging, as in the paper. Tenants are independent single-threaded
//! instances (the paper runs them as separate processes on separate
//! cores); we report the mean per-tenant throughput.
//!
//! Paper shape: the Aria-vs-ShieldStore gap widens with tenants and with
//! keyspace (24 %/26 % at 10 M for 2/4 tenants, 44 %/67 % at 50 M).

use aria_bench::*;
use aria_workload::KeyDistribution;

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let tenant_counts = [2usize, 4];
    let keyspaces = [10_000_000u64, 30_000_000, 50_000_000];

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for &ks in &keyspaces {
        for &tenants in &tenant_counts {
            let mut aria_sum = 0.0;
            let mut shield_sum = 0.0;
            for tenant in 0..tenants {
                let mut cfg = RunConfig::paper_default(scale);
                cfg.keys = (ks as f64 / scale) as u64;
                cfg.ops = args.get("ops", 100_000u64);
                cfg.fast_crypto = args.fast();
                cfg.seed = args.seed() ^ (tenant as u64) << 32;
                cfg.epc_bytes /= tenants;
                cfg.shield_buckets =
                    Some((((4_000_000 / tenants) as f64 / scale) as usize).max(64));
                cfg.workload = Workload::Ycsb {
                    read_ratio: 0.95,
                    value_len: 16,
                    dist: KeyDistribution::Zipfian { theta: 0.99 },
                };
                let ra = run(StoreKind::AriaHash, &cfg);
                let rs = run(StoreKind::Shield, &cfg);
                aria_sum += ra.throughput;
                shield_sum += rs.throughput;
                if tenant == 0 {
                    rows.push(Row::new(
                        "fig16a",
                        &format!("Aria-{tenants}t"),
                        &format!("{}M", ks / 1_000_000),
                        &ra,
                    ));
                    rows.push(Row::new(
                        "fig16a",
                        &format!("ShieldStore-{tenants}t"),
                        &format!("{}M", ks / 1_000_000),
                        &rs,
                    ));
                }
            }
            let aria_avg = aria_sum / tenants as f64;
            let shield_avg = shield_sum / tenants as f64;
            eprintln!(
                "  [{}M x{tenants}] Aria {} vs Shield {} ({:+.0}%)",
                ks / 1_000_000,
                fmt_tput(aria_avg),
                fmt_tput(shield_avg),
                improvement(aria_avg, shield_avg)
            );
            table.push(vec![
                format!("{}M x {tenants} tenants", ks / 1_000_000),
                fmt_tput(aria_avg),
                fmt_tput(shield_avg),
                format!("{:+.0}%", improvement(aria_avg, shield_avg)),
            ]);
        }
    }

    print_table(
        &format!("Figure 16(a): multi-tenant, skew RD_95 16B (scale 1/{scale})"),
        &["config", "Aria (avg/tenant)", "ShieldStore (avg/tenant)", "Aria vs Shield"],
        &table,
    );
    write_jsonl(&args.out_dir(), "fig16a", &rows);
}
