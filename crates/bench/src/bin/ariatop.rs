//! ariatop — live per-shard dashboard for a running Aria server.
//!
//! Polls the `METRICS` opcode over aria-net, diffs consecutive
//! snapshots, and renders a refreshing per-shard view: throughput,
//! p50/p95/p99 store latency, counter-cache hit ratio, live keys,
//! quarantine state, violations, plus the network plane and the
//! slow-op tail.
//!
//! ```sh
//! cargo run --release -p aria-bench --bin ariatop -- \
//!     --addr 127.0.0.1:4433 [--interval-ms 1000] [--iterations 0] \
//!     [--no-clear]
//! ```
//!
//! `--iterations 0` (the default) refreshes until interrupted;
//! `--no-clear` appends frames instead of redrawing in place (useful
//! for piping to a file or running under CI).

use std::thread;
use std::time::{Duration, Instant};

use aria_bench::{fmt_tput, print_table, Args};
use aria_net::{AriaClient, ClientConfig};
use aria_telemetry::{health_name, HistSnapshot, TelemetrySnapshot, FAULT_SITE_NAMES};

fn main() {
    let args = Args::parse();
    let addr = args.get_str("addr", "");
    if addr.is_empty() {
        eprintln!(
            "usage: ariatop --addr <host:port> [--interval-ms 1000] \
             [--iterations 0] [--no-clear]"
        );
        std::process::exit(2);
    }
    let interval = Duration::from_millis(args.get("interval-ms", 1_000u64).max(50));
    let iterations = args.get("iterations", 0u64);
    let clear = !args.flag("no-clear");

    let mut client: Option<AriaClient> = None;
    let mut prev: Option<(Instant, TelemetrySnapshot)> = None;
    let mut frame = 0u64;
    loop {
        let snap = match fetch(&mut client, &addr) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ariatop: {addr}: {e:?} (retrying)");
                client = None;
                prev = None;
                // A failed poll still consumes an iteration so a bounded
                // run terminates even if the server goes away.
                frame += 1;
                if iterations != 0 && frame >= iterations {
                    std::process::exit(1);
                }
                thread::sleep(interval);
                continue;
            }
        };
        let now = Instant::now();
        let (secs, delta) = match &prev {
            Some((t0, earlier)) => ((now - *t0).as_secs_f64().max(1e-9), snap.delta(earlier)),
            // First frame: everything since server start, over one
            // nominal interval (rates are meaningless until frame 2).
            None => (interval.as_secs_f64(), snap.clone()),
        };
        render(&addr, &snap, &delta, secs, clear);
        prev = Some((now, snap));
        frame += 1;
        if iterations != 0 && frame >= iterations {
            break;
        }
        thread::sleep(interval);
    }
}

fn fetch(
    client: &mut Option<AriaClient>,
    addr: &str,
) -> Result<TelemetrySnapshot, aria_net::NetError> {
    if client.is_none() {
        let parsed: std::net::SocketAddr = addr.parse().map_err(|_| {
            aria_net::NetError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "bad --addr",
            ))
        })?;
        *client = Some(AriaClient::connect(parsed, ClientConfig::default())?);
    }
    let result = client.as_mut().expect("client just set").metrics();
    if result.is_err() {
        *client = None;
    }
    result
}

/// Merged get/put/delete latency of one shard's delta window.
fn merged_latency(s: &aria_telemetry::ShardSnapshot) -> HistSnapshot {
    let mut h = s.store.get_latency.clone();
    h.merge(&s.store.put_latency);
    h.merge(&s.store.delete_latency);
    h
}

fn us(nanos: u64) -> String {
    format!("{:.0}", nanos as f64 / 1e3)
}

/// Wire encoding of a replica role (0 primary, everything else backup;
/// see `aria_store::ReplicaRole`).
fn role_name(role: u64) -> String {
    if role == 0 {
        "pri".to_string()
    } else {
        "bak".to_string()
    }
}

/// Migration-state gauge: which side of an in-flight elastic migration
/// this shard is on (0 neither, 1 source, 2 target).
fn migration_name(state: u64) -> String {
    match state {
        0 => "-".to_string(),
        1 => "src".to_string(),
        2 => "tgt".to_string(),
        other => format!("?{other}"),
    }
}

fn render(addr: &str, snap: &TelemetrySnapshot, delta: &TelemetrySnapshot, secs: f64, clear: bool) {
    if clear {
        print!("\x1b[2J\x1b[H");
    }
    println!(
        "ariatop — {addr} — snapshot v{} — {} shard(s) — window {:.1}s",
        snap.version,
        snap.shards.len(),
        secs
    );

    let mut rows: Vec<Vec<String>> = Vec::with_capacity(snap.shards.len() + 1);
    for (i, d) in delta.shards.iter().enumerate() {
        let lat = merged_latency(d);
        let cum = &snap.shards[i];
        rows.push(vec![
            i.to_string(),
            health_name(d.store.health_state as u8).to_string(),
            role_name(cum.store.replica_role),
            cum.store.replica_lag.to_string(),
            cum.store.routing_epoch.to_string(),
            migration_name(cum.store.migration_state),
            fmt_tput(lat.count() as f64 / secs),
            us(lat.percentile(0.50)),
            us(lat.percentile(0.95)),
            us(lat.percentile(0.99)),
            format!("{:.1}", d.cache.hit_ratio() * 100.0),
            d.store.keys_live.to_string(),
            d.store.hot_entries.to_string(),
            d.store.cold_entries.to_string(),
            fmt_tput(d.cache.evictions as f64 / secs),
            format!("{:.2}", cum.store.queue_delay_ns as f64 / 1e6),
            fmt_tput(d.store.admission_shed as f64 / secs),
            cum.store.violations.iter().sum::<u64>().to_string(),
            cum.store.failovers.to_string(),
        ]);
    }
    let agg = delta.aggregate();
    let cum_agg = snap.aggregate();
    let lat = merged_latency(&agg);
    rows.push(vec![
        "all".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        cum_agg.store.routing_epoch.to_string(),
        "-".to_string(),
        fmt_tput(lat.count() as f64 / secs),
        us(lat.percentile(0.50)),
        us(lat.percentile(0.95)),
        us(lat.percentile(0.99)),
        format!("{:.1}", agg.cache.hit_ratio() * 100.0),
        agg.store.keys_live.to_string(),
        agg.store.hot_entries.to_string(),
        agg.store.cold_entries.to_string(),
        fmt_tput(agg.cache.evictions as f64 / secs),
        format!("{:.2}", cum_agg.store.queue_delay_ns as f64 / 1e6),
        fmt_tput(agg.store.admission_shed as f64 / secs),
        cum_agg.store.violations.iter().sum::<u64>().to_string(),
        cum_agg.store.failovers.to_string(),
    ]);
    print_table(
        "shards",
        &[
            "shard", "state", "role", "lag", "epoch", "mig", "ops/s", "p50us", "p95us", "p99us",
            "hit%", "keys", "hot", "cold", "evict/s", "qdly ms", "shed/s", "viol", "fover",
        ],
        &rows,
    );
    let recovering = snap.shards.iter().filter(|s| s.store.health_state == 2).count();
    if recovering > 0 {
        println!("\nrecovering: {recovering} shard(s) replaying / verifying logs");
    }

    let n = &delta.net;
    println!(
        "\nnet: in {:.2} MiB/s  out {:.2} MiB/s  inflight {}  rejected {}  timed-out {}  slow-dropped {}",
        n.frame_bytes_in as f64 / secs / (1 << 20) as f64,
        n.frame_bytes_out as f64 / secs / (1 << 20) as f64,
        n.inflight,
        snap.net.rejected_connections,
        snap.net.timed_out_connections,
        snap.net.conns_disconnected_slow,
    );
    let shed_total = snap.net.ops_shed_overload
        + snap.net.ops_shed_deadline
        + snap.shards.iter().map(|s| s.store.admission_shed).sum::<u64>();
    let quarantines: u64 = snap.shards.iter().map(|s| s.store.watchdog_quarantines).sum();
    if shed_total > 0 || quarantines > 0 {
        println!(
            "overload: shed {:.0}/s (overload {}  deadline {}  admission {})  watchdog quarantines {}",
            (delta.net.ops_shed_overload
                + delta.net.ops_shed_deadline
                + delta.shards.iter().map(|s| s.store.admission_shed).sum::<u64>()) as f64
                / secs,
            snap.net.ops_shed_overload,
            snap.net.ops_shed_deadline,
            snap.shards.iter().map(|s| s.store.admission_shed).sum::<u64>(),
            quarantines,
        );
    }
    if snap.traces.spans_recorded > 0 {
        use aria_telemetry::stage;
        let t = &delta.traces;
        println!(
            "traces: {:.0} span/s ({} total)  hot {}  cold {}  queue-wait p99 {}us  exec p99 {}us",
            t.spans_recorded as f64 / secs,
            snap.traces.spans_recorded,
            snap.traces.hot_spans,
            snap.traces.cold_spans,
            us(t.stage_nanos.get(stage::DEQUEUE).map_or(0, |h| h.percentile(0.99))),
            us(t.stage_nanos.get(stage::EXEC_END).map_or(0, |h| h.percentile(0.99))),
        );
    }
    let injected: u64 = snap.chaos.injected.iter().sum();
    if injected > 0 {
        let sites: Vec<String> = snap
            .chaos
            .injected
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > 0)
            .map(|(i, &v)| format!("{}={v}", FAULT_SITE_NAMES.get(i).copied().unwrap_or("unknown")))
            .collect();
        println!("chaos: {injected} injected ({})", sites.join(" "));
    }

    if !snap.slow_ops.is_empty() {
        let tail: Vec<Vec<String>> = snap
            .slow_ops
            .iter()
            .rev()
            .take(8)
            .map(|op| {
                vec![
                    op.seq.to_string(),
                    op.shard.to_string(),
                    op.kind.name().to_string(),
                    format!("{:016x}", op.key_hash),
                    op.batch.to_string(),
                    us(op.total_nanos),
                    op.index_probes.to_string(),
                    op.counter_fetches.to_string(),
                    op.verify_depth.to_string(),
                    op.crypt_bytes.to_string(),
                ]
            })
            .collect();
        print_table(
            &format!("slow ops (newest first, {} dropped)", snap.slow_dropped),
            &[
                "seq", "shard", "kind", "keyhash", "batch", "tot us", "probes", "fetch", "depth",
                "crypt B",
            ],
            &tail,
        );
    }
}
