//! Figure 13 — sensitivity to the keyspace size (119 MB → 2 GB at full
//! scale), under uniform, skewed and ETC workloads, RD_95.
//!
//! Paper shape: everything declines with keyspace, but ShieldStore's
//! fixed bucket count makes its chains — and its bucket-granularity
//! verification — grow linearly, so Aria's lead widens (to ~104 % under
//! skew at 2 GB); Aria w/o Cache falls behind once its counter array
//! dwarfs the EPC.

use aria_bench::*;
use aria_workload::KeyDistribution;

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let points_mb = [119u64, 256, 512, 1024, 2048];
    let kinds = [StoreKind::Shield, StoreKind::AriaHashWoCache, StoreKind::AriaHash];
    let panels: [(&str, Workload); 3] = [
        (
            "uniform",
            Workload::Ycsb { read_ratio: 0.95, value_len: 16, dist: KeyDistribution::Uniform },
        ),
        (
            "skew",
            Workload::Ycsb {
                read_ratio: 0.95,
                value_len: 16,
                dist: KeyDistribution::Zipfian { theta: 0.99 },
            },
        ),
        ("etc", Workload::Etc { read_ratio: 0.95, theta: 0.99 }),
    ];

    let mut rows = Vec::new();
    for (panel, workload) in &panels {
        let mut table = Vec::new();
        for &mb in &points_mb {
            let keys = ((mb * 1024 * 1024 / 16) as f64 / scale) as u64;
            let mut cfg = RunConfig::paper_default(scale);
            cfg.keys = keys;
            cfg.ops = args.ops();
            cfg.fast_crypto = args.fast();
            cfg.seed = args.seed();
            cfg.workload = workload.clone();
            let mut cells = vec![format!("{mb} MB")];
            let mut tputs = Vec::new();
            for kind in kinds {
                let r = run(kind, &cfg);
                eprintln!("  [{panel} {mb}MB] {}: {}", r.kind, fmt_tput(r.throughput));
                tputs.push(r.throughput);
                cells.push(fmt_tput(r.throughput));
                rows.push(Row::new(
                    "fig13",
                    &format!("{panel}/{}", r.kind),
                    &format!("{mb}MB"),
                    &r,
                ));
            }
            cells.push(format!("{:+.0}%", improvement(tputs[2], tputs[0])));
            table.push(cells);
        }
        print_table(
            &format!("Figure 13 ({panel}): keyspace sweep, RD_95 (scale 1/{scale})"),
            &["keyspace", "ShieldStore", "Aria w/o Cache", "Aria", "Aria vs Shield"],
            &table,
        );
    }
    write_jsonl(&args.out_dir(), "fig13", &rows);
}
