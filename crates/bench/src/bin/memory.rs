//! §VI-D4 — memory-consumption analysis: per-component and per-key
//! memory, compared with the paper's accounting for 10 M keys
//! (16-byte counter + 16-byte MAC + 8-byte RedPtr per KV pair; ~152 MB
//! of counters; ~385 MB total for the counter Merkle structure; per-key
//! index and allocator metadata).

use aria_bench::*;
use aria_sim::{CostModel, Enclave};
use aria_store::{AriaHash, KvStore, StoreConfig};
use aria_workload::{encode_key, value_bytes};
use std::sync::Arc;

fn mb(x: usize) -> String {
    format!("{:.2} MB", x as f64 / (1 << 20) as f64)
}

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let keys = (10_000_000f64 / scale) as u64;

    let base = RunConfig::paper_default(scale);
    let mut cfg = StoreConfig::for_keys(keys);
    cfg.cache = aria_cache::CacheConfig::with_capacity(base.auto_cache_bytes());
    let enclave = Arc::new(Enclave::new(CostModel::default(), base.epc_bytes));
    let mut store = AriaHash::new(cfg, enclave).expect("store");
    for id in 0..keys {
        store.put(&encode_key(id), &value_bytes(id, 16)).expect("load");
    }

    let m = store.memory_breakdown();
    let levels = store.core().counters.as_cached().expect("cached").level_bytes();

    print_table(
        &format!("§VI-D4 memory consumption, {keys} keys (scale 1/{scale})"),
        &["component", "bytes", "per key"],
        &[
            vec![
                "counters + MT (untrusted)".into(),
                mb(m.merkle_untrusted),
                format!("{:.1} B", m.merkle_untrusted as f64 / keys as f64),
            ],
            vec![
                "sealed entries (live)".into(),
                mb(m.heap_live),
                format!("{:.1} B", m.heap_live as f64 / keys as f64),
            ],
            vec!["heap chunks (reserved)".into(), mb(m.heap_chunks), String::new()],
            vec!["untrusted free lists".into(), mb(m.freelist), String::new()],
            vec!["EPC: Secure Cache".into(), mb(m.epc_cache), String::new()],
            vec!["EPC: allocator bitmaps".into(), mb(m.epc_alloc_bitmaps), String::new()],
            vec!["EPC: total".into(), mb(m.epc_total), String::new()],
        ],
    );

    let level_rows: Vec<Vec<String>> =
        levels.iter().enumerate().map(|(i, &b)| vec![format!("L{i}"), mb(b)]).collect();
    print_table("Merkle-tree level sizes (L0 = counters)", &["level", "bytes"], &level_rows);

    println!("\npaper reference at 10M keys (full scale): ~152 MB counters;");
    println!("per KV pair: 16 B counter + 16 B MAC + 8 B RedPtr + index entry");
    println!("(4 B hint, 2 B length, pointer) + 1 bitmap bit + 16 B free-list slot.");
    println!("scaled expectation for counters here: {}", mb((152 << 20) / scale as usize));
}
