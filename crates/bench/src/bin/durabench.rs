//! durabench — durability benchmark for the hot/cold tiered store.
//!
//! Three phases, all against `TieredStore<AriaHash>` (the hot region
//! is a full Aria store; the cold tier is the sealed segment log):
//!
//! 1. **Tiering sweep** — load a dataset several times larger than the
//!    hot-region byte budget, then read it under zipfian skew at a
//!    range of thetas. Reports throughput and the hot-tier hit rate:
//!    under the skewed workloads Aria targets, the hot region should
//!    absorb the working set even though most of the dataset lives in
//!    the log.
//! 2. **Crash recovery** — load, checkpoint, keep writing, then cut
//!    the segment file at a random offset past the checkpoint frontier
//!    (a SIGKILL / power cut). Reopen and time verified recovery: the
//!    replayed state must reproduce the checkpoint root, survivors
//!    must be an exact prefix of the append order, and a cut *below*
//!    the frontier must be refused with a typed error, never served.
//! 3. **Log chaos** — drive the three durability fault sites
//!    (`log_bit_flip`, `torn_append`, `stale_checkpoint_rollback`)
//!    from a seeded `ChaosEngine` schedule. Every strike must end in a
//!    detected error or clean truncation; the acknowledged-then-wrong
//!    read count must be zero.
//!
//! Writes one JSON document to `<out>/durability.json` (the committed
//! `BENCH_durability.json` snapshot is a copy).
//!
//! ```text
//! cargo run --release --bin durabench            # full run
//! cargo run --release --bin durabench -- --smoke # CI-sized
//! ```

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use aria_bench::report::{git_rev, json_f64, json_str, print_table, SCHEMA_VERSION};
use aria_bench::Args;
use aria_chaos::{ChaosEngine, FaultPlan, FaultSite};
use aria_sim::Enclave;
use aria_store::tiered::{TieredOptions, TieredStore};
use aria_store::{AriaHash, KvStore, RecoveryFailure, StoreConfig, StoreError};
use aria_telemetry::ShardTelemetry;
use aria_workload::ZipfianGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MASTER: [u8; 16] = *b"durabench-master";

/// xorshift64* — self-contained deterministic stream for key/value
/// contents and cut offsets.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next() % n
        }
    }
}

fn key(i: u64) -> Vec<u8> {
    format!("dura-key-{i:010}").into_bytes()
}

fn value(i: u64, round: u64, len: usize) -> Vec<u8> {
    let mut v = format!("v{round:04}-{i:010}-").into_bytes();
    while v.len() < len {
        v.push(b'a' + ((i + round + v.len() as u64) % 26) as u8);
    }
    v.truncate(len);
    v
}

struct Sizes {
    keys: u64,
    value_len: usize,
    hot_budget: usize,
    segment_bytes: u64,
    sweep_ops: u64,
    recovery_trials: u64,
    chaos_trials: u64,
}

impl Sizes {
    fn from(args: &Args) -> Sizes {
        if args.flag("smoke") {
            Sizes {
                keys: 4_000,
                value_len: 128,
                hot_budget: 96 << 10,
                segment_bytes: 64 << 10,
                sweep_ops: 20_000,
                recovery_trials: 4,
                chaos_trials: 9,
            }
        } else {
            Sizes {
                keys: args.get("keys", 60_000u64),
                value_len: args.get("vlen", 256usize),
                hot_budget: args.get("hot-budget", 2 << 20),
                segment_bytes: args.get("segment-bytes", 1 << 20),
                sweep_ops: args.ops(),
                recovery_trials: args.get("recovery-trials", 8u64),
                chaos_trials: args.get("chaos-trials", 30u64),
            }
        }
    }

    fn dataset_bytes(&self) -> u64 {
        self.keys * (key(0).len() as u64 + self.value_len as u64)
    }
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aria-durabench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fresh_hot(keys: u64) -> AriaHash {
    let mut cfg = StoreConfig::for_keys(keys);
    cfg.master_key = MASTER;
    cfg.cache = aria_cache::CacheConfig::with_capacity(16 << 20);
    AriaHash::new(cfg, Arc::new(Enclave::new(aria_sim::CostModel::no_sgx(), 1 << 30)))
        .expect("build hot store")
}

fn open_tiered(
    dir: &Path,
    sz: &Sizes,
    min_epoch: u64,
) -> Result<TieredStore<AriaHash>, StoreError> {
    let opts = TieredOptions::new(dir.to_path_buf())
        .segment_bytes(sz.segment_bytes)
        .hot_budget_bytes(sz.hot_budget)
        .checkpoint_every(0)
        .min_epoch(min_epoch);
    TieredStore::open(fresh_hot(sz.keys), &MASTER, opts)
}

/// Copy every file in `dir` into `into` (flat — the log layout has no
/// subdirectories).
fn snapshot_dir(dir: &Path, into: &Path) {
    let _ = std::fs::remove_dir_all(into);
    std::fs::create_dir_all(into).expect("create snapshot dir");
    for entry in std::fs::read_dir(dir).expect("read log dir") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), into.join(entry.file_name())).expect("copy log file");
    }
}

// ---------------------------------------------------------------------------
// phase 1: tiering sweep

struct SweepPoint {
    theta: f64,
    throughput: f64,
    hot_hit_rate: f64,
    hot_entries: u64,
    cold_entries: u64,
    cold_read_p99_us: f64,
}

fn run_sweep(sz: &Sizes) -> Vec<SweepPoint> {
    // theta must be > 0 and != 1 for the Zipf generator; 0.05 stands
    // in for "near uniform".
    let thetas = [0.05, 0.5, 0.8, 0.99, 1.2];
    let mut points = Vec::new();
    for &theta in &thetas {
        let dir = bench_dir(&format!("sweep-{}", (theta * 100.0) as u32));
        let mut store = open_tiered(&dir, sz, 0).expect("open sweep store");
        let tele = Arc::new(ShardTelemetry::default());
        store.attach_telemetry(Arc::clone(&tele));
        for i in 0..sz.keys {
            store.put(&key(i), &value(i, 0, sz.value_len)).expect("load put");
        }
        // Migrate everything over budget down to the hot budget.
        loop {
            let r = store.maintain().expect("maintain");
            if r.migrated == 0 {
                break;
            }
        }
        let zipf = ZipfianGenerator::new(sz.keys, theta);
        let mut rng = StdRng::seed_from_u64(0x5eed_0000 + (theta * 1000.0) as u64);
        // Warm the hot region under the measured distribution.
        for _ in 0..sz.sweep_ops / 4 {
            let i = zipf.next(&mut rng);
            let _ = store.get(&key(i)).expect("warm get");
            let _ = store.maintain().expect("warm maintain");
        }
        let cold_before = tele.store.cold_read_latency.snapshot().count();
        let started = Instant::now();
        for _ in 0..sz.sweep_ops {
            let i = zipf.next(&mut rng);
            let v = store.get(&key(i)).expect("sweep get").expect("key present");
            assert!(!v.is_empty());
            let _ = store.maintain().expect("sweep maintain");
        }
        let secs = started.elapsed().as_secs_f64();
        let snap = tele.store.cold_read_latency.snapshot();
        let cold_reads = snap.count() - cold_before;
        let stats = store.tier_stats();
        points.push(SweepPoint {
            theta,
            throughput: sz.sweep_ops as f64 / secs,
            hot_hit_rate: 1.0 - cold_reads as f64 / sz.sweep_ops as f64,
            hot_entries: stats.hot_entries,
            cold_entries: stats.cold_entries,
            cold_read_p99_us: snap.percentile(0.99) as f64 / 1_000.0,
        });
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
    points
}

// ---------------------------------------------------------------------------
// phase 2: crash recovery

#[derive(Default)]
struct RecoveryResults {
    trials: u64,
    /// Reopens after a cut past the checkpoint frontier that verified.
    recovered: u64,
    /// Cuts below the frontier refused with `RecoveryDiverged`.
    refused_deep_cut: u64,
    /// Any outcome that was neither (a silent wrong accept).
    wrong: u64,
    total_recovery_ms: f64,
    max_recovery_ms: f64,
    records_replayed: u64,
}

fn run_recovery(sz: &Sizes) -> RecoveryResults {
    let mut out = RecoveryResults::default();
    let mut rng = Rng(0xc0ffee);
    for trial in 0..sz.recovery_trials {
        let dir = bench_dir(&format!("recovery-{trial}"));
        let mut store = open_tiered(&dir, sz, 0).expect("open recovery store");
        let loaded = sz.keys / 4;
        for i in 0..loaded {
            store.put(&key(i), &value(i, trial, sz.value_len)).expect("load");
        }
        let cp = store.force_checkpoint().expect("checkpoint");
        let (cp_seg, cp_off) = store.log_frontier();
        // Writes past the checkpoint: an unattested tail a crash may
        // legitimately tear.
        let tail = 64 + rng.below(256);
        for i in loaded..loaded + tail {
            store.put(&key(i), &value(i, trial, sz.value_len)).expect("tail put");
        }
        let (end_seg, end_off) = store.log_frontier();
        drop(store);

        let deep = trial % 4 == 3; // every 4th trial cuts attested state
        if deep {
            // Cut below the checkpoint frontier: acknowledged-and-
            // attested state is lost, recovery must refuse.
            let cut = cp_off / 2 + 1;
            aria_log::crash_cut(&dir, cp_seg, cut).expect("deep cut");
            // Drop segments after the cut one too (a real torn disk
            // loses the later files as well).
            let mut seg = cp_seg + 1;
            while aria_log::segment_file_len(&dir, seg).is_ok() {
                let _ = std::fs::remove_file(aria_log::segment_path(&dir, seg));
                seg += 1;
            }
            match open_tiered(&dir, sz, cp.epoch) {
                Err(StoreError::RecoveryDiverged { .. }) => out.refused_deep_cut += 1,
                Err(_) => out.refused_deep_cut += 1, // refused, differently typed
                Ok(_) => out.wrong += 1,             // served torn attested state!
            }
        } else {
            // Cut in the unattested tail (only the last segment tears;
            // if the tail spans segments, cut inside the last one).
            let cut = if end_seg == cp_seg {
                cp_off + 1 + rng.below(end_off.saturating_sub(cp_off + 1).max(1))
            } else {
                rng.below(end_off.max(1))
            };
            aria_log::crash_cut(&dir, end_seg, cut).expect("tail cut");
            let started = Instant::now();
            match open_tiered(&dir, sz, cp.epoch) {
                Ok(mut reopened) => {
                    let ms = started.elapsed().as_secs_f64() * 1_000.0;
                    out.total_recovery_ms += ms;
                    out.max_recovery_ms = out.max_recovery_ms.max(ms);
                    out.records_replayed += reopened.len();
                    // Every checkpointed (acknowledged + attested) key
                    // must read back exactly.
                    let mut ok = true;
                    for i in 0..loaded {
                        match reopened.get(&key(i)) {
                            Ok(Some(v)) if v == value(i, trial, sz.value_len) => {}
                            _ => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    // Survivors of the tail must be an exact prefix:
                    // once one tail key is missing, all later ones are.
                    let mut seen_gap = false;
                    for i in loaded..loaded + tail {
                        match reopened.get(&key(i)) {
                            Ok(Some(v)) => {
                                if seen_gap || v != value(i, trial, sz.value_len) {
                                    ok = false;
                                    break;
                                }
                            }
                            Ok(None) => seen_gap = true,
                            Err(_) => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok {
                        out.recovered += 1;
                    } else {
                        out.wrong += 1;
                    }
                }
                Err(_) => out.wrong += 1, // tail cut must be survivable
            }
        }
        out.trials += 1;
        let _ = std::fs::remove_dir_all(&dir);
    }
    out
}

// ---------------------------------------------------------------------------
// phase 3: log chaos

#[derive(Default)]
struct ChaosResults {
    trials: u64,
    bit_flips: u64,
    torn_appends: u64,
    rollbacks: u64,
    detected: u64,
    clean_truncations: u64,
    /// Reads that returned acknowledged-but-wrong data with no error.
    wrong_reads: u64,
}

fn run_chaos(sz: &Sizes, seed: u64) -> ChaosResults {
    let mut out = ChaosResults::default();
    let plan = FaultPlan::new(seed)
        .with_rate(FaultSite::LogBitFlip, 10_000)
        .with_rate(FaultSite::TornAppend, 10_000)
        .with_rate(FaultSite::StaleCheckpointRollback, 10_000);
    let engine = ChaosEngine::new(plan);
    let sites = [FaultSite::LogBitFlip, FaultSite::TornAppend, FaultSite::StaleCheckpointRollback];
    for trial in 0..sz.chaos_trials {
        let site = sites[(trial % 3) as usize];
        let Some(entropy) = engine.try_inject(site) else { continue };
        let dir = bench_dir(&format!("chaos-{trial}"));
        let base = sz.keys / 8;
        match site {
            FaultSite::LogBitFlip => {
                out.bit_flips += 1;
                let mut store = open_tiered(&dir, sz, 0).expect("open chaos store");
                for i in 0..base {
                    store.put(&key(i), &value(i, trial, sz.value_len)).expect("put");
                }
                let cp = store.force_checkpoint().expect("checkpoint");
                drop(store);
                let len = aria_log::segment_file_len(&dir, 0).expect("segment length");
                let off = entropy % len.max(1);
                let mask = ((entropy >> 11) & 0xff) as u8;
                aria_log::flip_byte(&dir, 0, off, mask).expect("flip");
                match open_tiered(&dir, sz, cp.epoch) {
                    Err(StoreError::RecoveryDiverged { .. }) => out.detected += 1,
                    Err(_) => out.detected += 1,
                    Ok(mut reopened) => {
                        // A flip in the torn-tail-shaped region of the
                        // last segment can truncate instead of refuse;
                        // that is only sound if the surviving state
                        // still verifies — which open() proved against
                        // the checkpoint root. Reads must be right.
                        out.clean_truncations += 1;
                        for i in 0..base {
                            match reopened.get(&key(i)) {
                                Ok(Some(v)) if v == value(i, trial, sz.value_len) => {}
                                Ok(None) | Err(_) => {}
                                Ok(Some(_)) => out.wrong_reads += 1,
                            }
                        }
                    }
                }
            }
            FaultSite::TornAppend => {
                out.torn_appends += 1;
                let mut store = open_tiered(&dir, sz, 0).expect("open chaos store");
                for i in 0..base {
                    store.put(&key(i), &value(i, trial, sz.value_len)).expect("put");
                }
                let cp = store.force_checkpoint().expect("checkpoint");
                // The next append tears: only a prefix hits the disk,
                // as if the process died mid-write.
                let keep = (entropy % 40) as usize + 5;
                store.set_log_fault_hook(Some(Box::new(move |frame: &mut Vec<u8>| {
                    Some(keep.min(frame.len()))
                })));
                store.put(&key(base), &value(base, trial, sz.value_len)).expect("torn put");
                drop(store);
                match open_tiered(&dir, sz, cp.epoch) {
                    Ok(mut reopened) => {
                        out.clean_truncations += 1;
                        // The torn record must have vanished cleanly…
                        match reopened.get(&key(base)) {
                            Ok(None) => {}
                            Ok(Some(_)) => out.wrong_reads += 1,
                            Err(_) => {}
                        }
                        // …and every checkpointed key must still read.
                        for i in 0..base {
                            match reopened.get(&key(i)) {
                                Ok(Some(v)) if v == value(i, trial, sz.value_len) => {}
                                Ok(None) | Err(_) => out.wrong_reads += 1,
                                _ => {}
                            }
                        }
                    }
                    Err(_) => out.detected += 1,
                }
            }
            FaultSite::StaleCheckpointRollback => {
                out.rollbacks += 1;
                let mut store = open_tiered(&dir, sz, 0).expect("open chaos store");
                for i in 0..base {
                    store.put(&key(i), &value(i, trial, sz.value_len)).expect("put");
                }
                store.force_checkpoint().expect("checkpoint epoch 1");
                drop(store);
                let snap = bench_dir(&format!("chaos-snap-{trial}"));
                snapshot_dir(&dir, &snap);
                let mut store = open_tiered(&dir, sz, 1).expect("reopen");
                for i in base..base + 64 {
                    store.put(&key(i), &value(i, trial, sz.value_len)).expect("put");
                }
                let cp2 = store.force_checkpoint().expect("checkpoint epoch 2");
                drop(store);
                // Host rolls the directory back to the epoch-1 state.
                let _ = std::fs::remove_dir_all(&dir);
                std::fs::rename(&snap, &dir).expect("roll back dir");
                match open_tiered(&dir, sz, cp2.epoch) {
                    Err(StoreError::RecoveryDiverged {
                        reason: RecoveryFailure::Rollback { .. },
                    }) => out.detected += 1,
                    Err(_) => out.detected += 1,
                    Ok(_) => out.wrong_reads += 1, // stale state served
                }
            }
            _ => unreachable!("only log sites scheduled"),
        }
        out.trials += 1;
        let _ = std::fs::remove_dir_all(&dir);
    }
    out
}

// ---------------------------------------------------------------------------
// report

fn write_json(
    out_dir: &str,
    sz: &Sizes,
    sweep: &[SweepPoint],
    rec: &RecoveryResults,
    chaos: &ChaosResults,
) {
    let mut doc = String::new();
    doc.push_str(&format!(
        "{{\"schema_version\":{SCHEMA_VERSION},\"git_rev\":{},\"experiment\":\"durability\",\
         \"dataset_bytes\":{},\"hot_budget_bytes\":{},\"keys\":{},\"value_len\":{},",
        json_str(git_rev()),
        sz.dataset_bytes(),
        sz.hot_budget,
        sz.keys,
        sz.value_len,
    ));
    doc.push_str("\"sweep\":[");
    for (i, p) in sweep.iter().enumerate() {
        if i > 0 {
            doc.push(',');
        }
        doc.push_str(&format!(
            "{{\"theta\":{},\"throughput\":{},\"hot_hit_rate\":{},\"hot_entries\":{},\
             \"cold_entries\":{},\"cold_read_p99_us\":{}}}",
            json_f64(p.theta),
            json_f64(p.throughput),
            json_f64(p.hot_hit_rate),
            p.hot_entries,
            p.cold_entries,
            json_f64(p.cold_read_p99_us),
        ));
    }
    doc.push_str("],");
    doc.push_str(&format!(
        "\"recovery\":{{\"trials\":{},\"recovered\":{},\"refused_deep_cut\":{},\"wrong\":{},\
         \"mean_recovery_ms\":{},\"max_recovery_ms\":{},\"records_replayed\":{}}},",
        rec.trials,
        rec.recovered,
        rec.refused_deep_cut,
        rec.wrong,
        json_f64(rec.total_recovery_ms / rec.recovered.max(1) as f64),
        json_f64(rec.max_recovery_ms),
        rec.records_replayed,
    ));
    doc.push_str(&format!(
        "\"chaos\":{{\"trials\":{},\"bit_flips\":{},\"torn_appends\":{},\"rollbacks\":{},\
         \"detected\":{},\"clean_truncations\":{},\"wrong_reads\":{}}}}}",
        chaos.trials,
        chaos.bit_flips,
        chaos.torn_appends,
        chaos.rollbacks,
        chaos.detected,
        chaos.clean_truncations,
        chaos.wrong_reads,
    ));
    let dir = Path::new(out_dir);
    if std::fs::create_dir_all(dir).is_err() {
        eprintln!("warning: cannot create {out_dir}; results not persisted");
        return;
    }
    let path = dir.join("durability.json");
    if let Err(e) = std::fs::write(&path, format!("{doc}\n")) {
        eprintln!("warning: cannot write {path:?}: {e}");
    } else {
        println!("\nresults written to {}", path.display());
    }
}

fn main() {
    let args = Args::parse();
    let sz = Sizes::from(&args);
    let out_dir = args.get_str("out", "results");
    println!(
        "durabench — {} keys × {} B values = {:.1} MiB dataset over a {:.1} MiB hot budget",
        sz.keys,
        sz.value_len,
        sz.dataset_bytes() as f64 / (1 << 20) as f64,
        sz.hot_budget as f64 / (1 << 20) as f64,
    );

    let sweep = run_sweep(&sz);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}", p.theta),
                aria_bench::report::fmt_tput(p.throughput),
                format!("{:.1}", p.hot_hit_rate * 100.0),
                p.hot_entries.to_string(),
                p.cold_entries.to_string(),
                format!("{:.0}", p.cold_read_p99_us),
            ]
        })
        .collect();
    print_table(
        "zipfian sweep (larger-than-DRAM dataset)",
        &["theta", "ops/s", "hot-hit%", "hot", "cold", "cold-p99us"],
        &rows,
    );

    let rec = run_recovery(&sz);
    print_table(
        "crash recovery",
        &["trials", "recovered", "refused-deep-cut", "wrong", "mean ms", "max ms"],
        &[vec![
            rec.trials.to_string(),
            rec.recovered.to_string(),
            rec.refused_deep_cut.to_string(),
            rec.wrong.to_string(),
            format!("{:.1}", rec.total_recovery_ms / rec.recovered.max(1) as f64),
            format!("{:.1}", rec.max_recovery_ms),
        ]],
    );

    let chaos = run_chaos(&sz, args.get("seed", 0x0d15ea5eu64));
    print_table(
        "log chaos",
        &["trials", "flips", "torn", "rollbacks", "detected", "truncated", "wrong-reads"],
        &[vec![
            chaos.trials.to_string(),
            chaos.bit_flips.to_string(),
            chaos.torn_appends.to_string(),
            chaos.rollbacks.to_string(),
            chaos.detected.to_string(),
            chaos.clean_truncations.to_string(),
            chaos.wrong_reads.to_string(),
        ]],
    );

    write_json(&out_dir, &sz, &sweep, &rec, &chaos);

    let failed = rec.wrong > 0 || chaos.wrong_reads > 0;
    if failed {
        eprintln!(
            "\nFAIL: {} wrong recoveries, {} acknowledged-then-wrong reads",
            rec.wrong, chaos.wrong_reads
        );
        std::process::exit(1);
    }
    println!("\nOK: 0 wrong recoveries, 0 acknowledged-then-wrong reads");
}
