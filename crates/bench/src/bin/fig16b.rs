//! Figure 16(b) — sensitivity to skewness: zipf theta 0.8 → 1.2,
//! RD_95 16 B, 10 M keyspace.
//!
//! Paper shape: Aria's lead over ShieldStore grows with skew (the Secure
//! Cache hit ratio rises), reaching ~96 % at theta 1.2.

use aria_bench::*;
use aria_workload::KeyDistribution;

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    // theta = 1.0 is a pole of the YCSB generator; 1.001 stands in for
    // the paper's "1".
    let thetas = [0.8f64, 0.9, 0.95, 0.99, 1.001, 1.2];

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for &theta in &thetas {
        let mut cfg = RunConfig::paper_default(scale);
        cfg.ops = args.ops();
        cfg.fast_crypto = args.fast();
        cfg.seed = args.seed();
        cfg.workload = Workload::Ycsb {
            read_ratio: 0.95,
            value_len: 16,
            dist: KeyDistribution::Zipfian { theta },
        };
        let ra = run(StoreKind::AriaHash, &cfg);
        let rs = run(StoreKind::Shield, &cfg);
        eprintln!(
            "  [theta {theta}] Aria {} (hit {:?}) vs Shield {} ({:+.0}%)",
            fmt_tput(ra.throughput),
            ra.cache_hit_ratio().map(|h| (h * 100.0).round()),
            fmt_tput(rs.throughput),
            improvement(ra.throughput, rs.throughput)
        );
        table.push(vec![
            format!("{theta}"),
            fmt_tput(ra.throughput),
            fmt_tput(rs.throughput),
            format!("{:+.0}%", improvement(ra.throughput, rs.throughput)),
        ]);
        rows.push(Row::new("fig16b", "Aria", &theta.to_string(), &ra));
        rows.push(Row::new("fig16b", "ShieldStore", &theta.to_string(), &rs));
    }

    print_table(
        &format!("Figure 16(b): skewness sweep, RD_95 16B (scale 1/{scale})"),
        &["skewness", "Aria", "ShieldStore", "Aria vs Shield"],
        &table,
    );
    write_jsonl(&args.out_dir(), "fig16b", &rows);
}
