//! Load generator for the TCP service layer: sweeps client connections
//! × pipeline depth × key popularity {uniform, zipf-0.99} against an
//! `AriaServer` over loopback, reporting **wall-clock** throughput and
//! p50/p95/p99 latency.
//!
//! Unlike the figure binaries (which report *simulated* enclave
//! cycles), netbench measures the real service layer end to end:
//! framing, socket round trips, pipelining, the sharded dispatch and
//! the store itself. Latency is the round trip of one pipelined window
//! (for depth 1 that is exact per-op latency). The harness-only fast
//! cipher suite is the default so the wire layer, not the from-scratch
//! AES, dominates; pass `--real` for the real suite.
//!
//! ```sh
//! cargo run --release -p aria-bench --bin netbench -- \
//!     [--engine reactor|threads] [--conns 1,2,4,8] [--depths 1,8,32] \
//!     [--ops 30000] [--keys 20000] [--shards 4] [--smoke] [--real] \
//!     [--out results] [--metrics-out results/metrics.prom] \
//!     [--trace-sample 0] [--flight-dir path]
//! ```
//!
//! Results go to `<out>/net.json` (one self-describing JSON document
//! with `schema_version` and `git_rev`); the committed `BENCH_net.json`
//! is a snapshot of a full default sweep. Every point embeds the
//! server's end-of-run telemetry snapshot; `--metrics-out` additionally
//! writes the last point's Prometheus-style exposition (debug builds
//! validate the counter invariants while rendering it).

use std::io::Write as _;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use aria_bench::{fmt_tput, git_rev, json_f64, json_str, print_table, Args, SCHEMA_VERSION};
use aria_net::{proto, AriaClient, AriaServer, ClientConfig, Engine, ServerConfig};
use aria_sim::Enclave;
use aria_store::sharded::{BatchOp, ShardedStore};
use aria_store::{AriaHash, StoreConfig};
use aria_workload::{encode_key, value_bytes, KeyDistribution, Request, YcsbConfig, YcsbWorkload};

const VALUE_LEN: usize = 16;
const READ_RATIO: f64 = 0.95;

struct Point {
    connections: usize,
    depth: usize,
    dist_label: &'static str,
    ops: u64,
    elapsed: Duration,
    throughput: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    telemetry: aria_telemetry::TelemetrySnapshot,
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let keys = args.get("keys", if smoke { 5_000u64 } else { 20_000 });
    let ops = args.get("ops", if smoke { 6_000u64 } else { 30_000 });
    let shards = args.get("shards", 4usize);
    let conns = parse_list(&args.get_str("conns", if smoke { "2,4" } else { "1,2,4,8" }));
    let depths = parse_list(&args.get_str("depths", if smoke { "1,16" } else { "1,8,32" }));
    let real_suite = args.flag("real");
    let engine = Engine::parse(&args.get_str("engine", "reactor"))
        .expect("--engine must be 'reactor' or 'threads'");
    let seed = args.seed();
    // Tracing knobs: `--trace-sample N` stamps one in N client requests
    // with a sampled trace context; `--flight-dir` arms the server's
    // flight recorder (anomaly / SIGUSR1 dumps land there).
    let trace_sample = args.get("trace-sample", 0u32);
    let flight_dir = {
        let d = args.get_str("flight-dir", "");
        (!d.is_empty()).then(|| std::path::PathBuf::from(d))
    };

    // `--serve <addr>` turns netbench into a long-lived demo server:
    // bind the given address, drive continuous zipf load from in-process
    // clients at the requested sampling rate, and park until killed.
    // This is what ariatop/ariatrace attach to.
    let serve = args.get_str("serve", "");
    if !serve.is_empty() {
        serve_forever(
            &serve,
            engine,
            shards,
            conns.first().copied().unwrap_or(2),
            depths.first().copied().unwrap_or(8),
            keys,
            real_suite,
            seed,
            trace_sample,
            flight_dir,
        );
    }

    let dists: [(&'static str, KeyDistribution); 2] = [
        ("uniform", KeyDistribution::Uniform),
        ("zipf-0.99", KeyDistribution::Zipfian { theta: 0.99 }),
    ];

    let mut points = Vec::new();
    for (dist_label, dist) in &dists {
        for &connections in &conns {
            for &depth in &depths {
                let point = run_point(
                    engine,
                    shards,
                    connections,
                    depth,
                    dist_label,
                    dist.clone(),
                    keys,
                    ops,
                    real_suite,
                    seed,
                    trace_sample,
                    flight_dir.clone(),
                );
                eprintln!(
                    "  [{dist_label} conns={connections} depth={depth}] {} p50 {:.0}us p99 {:.0}us",
                    fmt_tput(point.throughput),
                    point.p50_us,
                    point.p99_us,
                );
                points.push(point);
            }
        }
    }

    let table: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.dist_label.to_string(),
                p.connections.to_string(),
                p.depth.to_string(),
                fmt_tput(p.throughput),
                format!("{:.0}", p.p50_us),
                format!("{:.0}", p.p95_us),
                format!("{:.0}", p.p99_us),
            ]
        })
        .collect();
    print_table(
        &format!("netbench (loopback, wall-clock, engine={engine})"),
        &["distribution", "conns", "depth", "ops/s", "p50 us", "p95 us", "p99 us"],
        &table,
    );

    write_net_json(&args.out_dir(), engine, shards, keys, ops, &points);

    let metrics_out = args.get_str("metrics-out", "");
    if !metrics_out.is_empty() {
        let last = points.last().expect("sweep produced at least one point");
        let exposition = last.telemetry.render_prometheus();
        if let Some(parent) = std::path::Path::new(&metrics_out).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::write(&metrics_out, exposition) {
            Ok(()) => println!("metrics exposition written to {metrics_out}"),
            Err(e) => eprintln!("warning: cannot write {metrics_out}: {e}"),
        }
    }
}

/// Bind `addr`, preload the keyspace, and drive continuous zipf-0.99
/// load from in-process clients forever. Never returns; the process is
/// expected to be killed by its parent (CI trace-smoke, a demo shell).
#[allow(clippy::too_many_arguments)]
fn serve_forever(
    addr: &str,
    engine: Engine,
    shards: usize,
    connections: usize,
    depth: usize,
    keys: u64,
    real_suite: bool,
    seed: u64,
    trace_sample: u32,
    flight_dir: Option<std::path::PathBuf>,
) -> ! {
    let per_shard_keys = (keys / shards as u64) * 2 + 1024;
    let store = Arc::new(
        ShardedStore::with_shards(shards, move |_| {
            let suite = (!real_suite).then(|| {
                Arc::new(aria_crypto::FastSuite::from_master(&[0x42; 16]))
                    as Arc<dyn aria_crypto::CipherSuite>
            });
            AriaHash::with_suite(
                StoreConfig::for_keys(per_shard_keys),
                Arc::new(Enclave::with_default_epc()),
                suite,
            )
        })
        .expect("construct sharded store"),
    );
    let mut batch = Vec::with_capacity(512);
    for id in 0..keys {
        batch.push(BatchOp::Put(encode_key(id).to_vec(), value_bytes(id, VALUE_LEN)));
        if batch.len() == 512 {
            store.run_batch(std::mem::take(&mut batch));
        }
    }
    store.run_batch(batch);

    let server = AriaServer::bind(
        addr,
        Arc::clone(&store),
        ServerConfig::builder()
            .engine(engine)
            .max_connections(connections + 8)
            .flight_dir(flight_dir)
            .build()
            .expect("valid serve config"),
    )
    .unwrap_or_else(|e| panic!("netbench: cannot bind {addr}: {e}"));
    let bound = server.local_addr();
    println!("netbench: serving on {bound} (trace-sample {trace_sample}); kill to stop");

    for c in 0..connections {
        thread::spawn(move || {
            let mut wl = YcsbWorkload::new(YcsbConfig {
                keyspace: keys,
                read_ratio: READ_RATIO,
                value_len: VALUE_LEN,
                distribution: KeyDistribution::Zipfian { theta: 0.99 },
                seed: seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(c as u64 + 1)),
            });
            loop {
                let mut client = match AriaClient::connect(
                    bound,
                    ClientConfig { trace_sample, ..ClientConfig::default() },
                ) {
                    Ok(c) => c,
                    Err(_) => {
                        thread::sleep(Duration::from_millis(100));
                        continue;
                    }
                };
                loop {
                    let window: Vec<proto::Request> = (0..depth)
                        .map(|_| match wl.next_request() {
                            Request::Get { id } => {
                                proto::Request::Get { key: encode_key(id).to_vec() }
                            }
                            Request::Put { id, value_len } => proto::Request::Put {
                                key: encode_key(id).to_vec(),
                                value: value_bytes(id, value_len),
                            },
                        })
                        .collect();
                    if client.pipeline(&window).is_err() {
                        break;
                    }
                    // Gentle pacing: this is a demo target, not a stress rig.
                    thread::sleep(Duration::from_millis(2));
                }
            }
        });
    }
    loop {
        thread::sleep(Duration::from_secs(3600));
    }
}

#[allow(clippy::too_many_arguments)]
fn run_point(
    engine: Engine,
    shards: usize,
    connections: usize,
    depth: usize,
    dist_label: &'static str,
    dist: KeyDistribution,
    keys: u64,
    ops: u64,
    real_suite: bool,
    seed: u64,
    trace_sample: u32,
    flight_dir: Option<std::path::PathBuf>,
) -> Point {
    let per_shard_keys = (keys / shards as u64) * 2 + 1024;
    let store = Arc::new(
        ShardedStore::with_shards(shards, move |_| {
            let suite = (!real_suite).then(|| {
                Arc::new(aria_crypto::FastSuite::from_master(&[0x42; 16]))
                    as Arc<dyn aria_crypto::CipherSuite>
            });
            AriaHash::with_suite(
                StoreConfig::for_keys(per_shard_keys),
                Arc::new(Enclave::with_default_epc()),
                suite,
            )
        })
        .expect("construct sharded store"),
    );

    // Preload in-process (we are benching the wire, not the loader).
    let mut batch = Vec::with_capacity(512);
    for id in 0..keys {
        batch.push(BatchOp::Put(encode_key(id).to_vec(), value_bytes(id, VALUE_LEN)));
        if batch.len() == 512 {
            store.run_batch(std::mem::take(&mut batch));
        }
    }
    store.run_batch(batch);

    let server = AriaServer::bind(
        "127.0.0.1:0",
        Arc::clone(&store),
        ServerConfig::builder()
            .engine(engine)
            .max_connections(connections + 8)
            .flight_dir(flight_dir)
            .build()
            .expect("valid bench server config"),
    )
    .expect("bind loopback server");
    let addr = server.local_addr();

    let ops_per_client = ops / connections as u64;
    let start = Instant::now();
    let workers: Vec<_> = (0..connections)
        .map(|c| {
            let dist = dist.clone();
            thread::spawn(move || {
                let mut client = AriaClient::connect(
                    addr,
                    ClientConfig { trace_sample, ..ClientConfig::default() },
                )
                .expect("connect bench client");
                let mut wl = YcsbWorkload::new(YcsbConfig {
                    keyspace: keys,
                    read_ratio: READ_RATIO,
                    value_len: VALUE_LEN,
                    distribution: dist,
                    seed: seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(c as u64 + 1)),
                });
                let mut latencies_us: Vec<f64> =
                    Vec::with_capacity((ops_per_client as usize / depth.max(1)) + 1);
                let mut issued = 0u64;
                let mut window = Vec::with_capacity(depth);
                while issued < ops_per_client {
                    window.clear();
                    while window.len() < depth && issued < ops_per_client {
                        window.push(match wl.next_request() {
                            Request::Get { id } => {
                                proto::Request::Get { key: encode_key(id).to_vec() }
                            }
                            Request::Put { id, value_len } => proto::Request::Put {
                                key: encode_key(id).to_vec(),
                                value: value_bytes(id, value_len),
                            },
                        });
                        issued += 1;
                    }
                    let t0 = Instant::now();
                    let resps = client.pipeline(&window).expect("bench pipeline failed");
                    let lat = t0.elapsed().as_secs_f64() * 1e6;
                    latencies_us.push(lat);
                    debug_assert_eq!(resps.len(), window.len());
                    for resp in resps {
                        if let proto::Response::Error { code, message, .. } = resp {
                            panic!("bench op failed: {code}: {message}");
                        }
                    }
                }
                (issued, latencies_us)
            })
        })
        .collect();

    let mut total_ops = 0u64;
    let mut latencies = Vec::new();
    for w in workers {
        let (issued, lats) = w.join().expect("bench worker");
        total_ops += issued;
        latencies.extend(lats);
    }
    let elapsed = start.elapsed();
    let telemetry = server.telemetry().snapshot();
    server.shutdown();

    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Point {
        connections,
        depth,
        dist_label,
        ops: total_ops,
        elapsed,
        throughput: total_ops as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        p99_us: percentile(&latencies, 0.99),
        telemetry,
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn parse_list(s: &str) -> Vec<usize> {
    let list: Vec<usize> = s.split(',').filter_map(|p| p.trim().parse().ok()).collect();
    assert!(!list.is_empty(), "empty sweep list {s:?}");
    list
}

fn write_net_json(
    out_dir: &str,
    engine: Engine,
    shards: usize,
    keys: u64,
    ops: u64,
    points: &[Point],
) {
    let mut doc = String::new();
    doc.push_str(&format!(
        "{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"git_rev\": {},\n  \
         \"bench\": \"netbench\",\n  \"engine\": \"{engine}\",\n  \
         \"shards\": {shards},\n  \"keys\": {keys},\n  \
         \"ops_per_point\": {ops},\n  \"value_len\": {VALUE_LEN},\n  \
         \"read_ratio\": {READ_RATIO},\n  \"points\": [\n",
        json_str(git_rev()),
    ));
    for (i, p) in points.iter().enumerate() {
        doc.push_str(&format!(
            "    {{\"distribution\": {}, \"connections\": {}, \"depth\": {}, \
             \"ops\": {}, \"elapsed_ms\": {}, \"throughput\": {}, \
             \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \
             \"telemetry\": {}}}{}\n",
            json_str(p.dist_label),
            p.connections,
            p.depth,
            p.ops,
            json_f64(p.elapsed.as_secs_f64() * 1e3),
            json_f64(p.throughput),
            json_f64(p.p50_us),
            json_f64(p.p95_us),
            json_f64(p.p99_us),
            p.telemetry.to_json(),
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    doc.push_str("  ]\n}\n");

    let dir = std::path::Path::new(out_dir);
    if std::fs::create_dir_all(dir).is_err() {
        eprintln!("warning: cannot create {out_dir}; results not persisted");
        return;
    }
    let path = dir.join("net.json");
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let _ = f.write_all(doc.as_bytes());
            println!("\nresults written to {}", path.display());
        }
        Err(e) => eprintln!("warning: cannot write {path:?}: {e}"),
    }
}
