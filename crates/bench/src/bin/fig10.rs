//! Figure 10 — Aria-T (B-tree index) overall performance on the YCSB
//! grid, against Baseline and Aria w/o Cache.
//!
//! Paper shape: all tree-based schemes are roughly an order of magnitude
//! below the hash index (every routing comparison decrypts an entry);
//! Aria leads, Baseline collapses under paging.

use aria_bench::*;
use aria_workload::KeyDistribution;

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let kinds = [StoreKind::Baseline, StoreKind::AriaTreeWoCache, StoreKind::AriaTree];
    let dists: [(&str, KeyDistribution); 2] =
        [("skew", KeyDistribution::Zipfian { theta: 0.99 }), ("uniform", KeyDistribution::Uniform)];
    let read_ratios = [0.5f64, 0.95, 1.0];
    let value_lens = [16usize, 128, 512];

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (dname, dist) in &dists {
        for &rr in &read_ratios {
            for &vl in &value_lens {
                let mut cfg = RunConfig::paper_default(scale);
                cfg.ops = args.get("tree-ops", 30_000u64);
                cfg.warmup = Some(cfg.ops);
                cfg.fast_crypto = args.fast();
                cfg.seed = args.seed();
                cfg.workload = Workload::Ycsb { read_ratio: rr, value_len: vl, dist: dist.clone() };
                let x = format!("{dname}/R{:.0}%/{vl}B", rr * 100.0);
                let mut cells = vec![x.clone()];
                for kind in kinds {
                    let r = run(kind, &cfg);
                    eprintln!("  [{x}] {}: {}", r.kind, fmt_tput(r.throughput));
                    cells.push(fmt_tput(r.throughput));
                    rows.push(Row::new("fig10", r.kind, &x, &r));
                }
                table.push(cells);
            }
        }
    }

    print_table(
        &format!("Figure 10: Aria-T YCSB grid (scale 1/{scale})"),
        &["config", "Baseline", "Aria w/o Cache", "Aria"],
        &table,
    );
    write_jsonl(&args.out_dir(), "fig10", &rows);
}
